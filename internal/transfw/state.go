package transfw

import "idyll/internal/checkpoint"

// Checkpoint support: the FIFO order is behaviour-visible (displacement
// picks the oldest fingerprint), so entries are carried verbatim oldest
// first.

// SaveState writes the PRT's fingerprints and counters to w.
func (p *PRT) SaveState(w *checkpoint.Writer) {
	w.Int(p.capacity)
	w.U32(uint32(len(p.fifo)))
	for _, e := range p.fifo {
		w.U16(e.fp)
		w.U8(uint8(e.gpu))
	}
	w.U64(p.lookups)
	w.U64(p.hits)
}

// RestoreState reads the state written by SaveState into p, which must have
// the same capacity.
func (p *PRT) RestoreState(r *checkpoint.Reader) {
	if c := r.Int(); c != p.capacity {
		r.Failf("transfw: PRT capacity %d in checkpoint, %d configured", c, p.capacity)
		return
	}
	n := r.Count(3)
	if n > p.capacity {
		r.Failf("transfw: PRT checkpoint holds %d entries, capacity %d", n, p.capacity)
		return
	}
	p.fifo = p.fifo[:0]
	for i := 0; i < n; i++ {
		e := entry{fp: r.U16(), gpu: int8(r.U8())}
		p.fifo = append(p.fifo, e)
	}
	p.lookups = r.U64()
	p.hits = r.U64()
}
