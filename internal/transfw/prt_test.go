package transfw

import (
	"testing"

	"idyll/internal/memdef"
)

func TestInsertLookup(t *testing.T) {
	p := New(16)
	p.Insert(100, 2)
	gpu, ok := p.Lookup(100)
	if !ok || gpu != 2 {
		t.Fatalf("Lookup = %d,%v", gpu, ok)
	}
}

func TestLookupMiss(t *testing.T) {
	p := New(16)
	p.Insert(100, 2)
	// Find a VPN whose fingerprint differs from 100's.
	probe := memdef.VPN(101)
	for Fingerprint(probe) == Fingerprint(100) {
		probe++
	}
	if _, ok := p.Lookup(probe); ok {
		t.Fatal("phantom prediction")
	}
}

func TestFIFOEviction(t *testing.T) {
	p := New(2)
	vpns := distinctFingerprintVPNs(3)
	p.Insert(vpns[0], 0)
	p.Insert(vpns[1], 1)
	p.Insert(vpns[2], 2) // displaces vpns[0]
	if _, ok := p.Lookup(vpns[0]); ok {
		t.Fatal("oldest fingerprint survived")
	}
	if _, ok := p.Lookup(vpns[1]); !ok {
		t.Fatal("second fingerprint lost")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

// distinctFingerprintVPNs returns n VPNs with pairwise distinct fingerprints.
func distinctFingerprintVPNs(n int) []memdef.VPN {
	seen := map[uint16]bool{}
	var out []memdef.VPN
	for v := memdef.VPN(0); len(out) < n; v++ {
		fp := Fingerprint(v)
		if !seen[fp] {
			seen[fp] = true
			out = append(out, v)
		}
	}
	return out
}

func TestCollisionGivesFalsePositive(t *testing.T) {
	p := New(DefaultCapacity)
	base := memdef.VPN(12345)
	p.Insert(base, 3)
	// Find a colliding VPN: same fingerprint, different page.
	probe := base + 1
	for Fingerprint(probe) != Fingerprint(base) {
		probe++
	}
	gpu, ok := p.Lookup(probe)
	if !ok || gpu != 3 {
		t.Fatal("collision should predict (false positive), that's the design")
	}
}

func TestInsertRefreshesExistingFingerprint(t *testing.T) {
	p := New(4)
	p.Insert(7, 1)
	p.Insert(7, 2) // same page remaps to GPU2
	gpu, _ := p.Lookup(7)
	if gpu != 2 {
		t.Fatalf("prediction = GPU%d, want GPU2", gpu)
	}
	if p.Len() != 1 {
		t.Fatalf("duplicate fingerprint stored: len=%d", p.Len())
	}
}

func TestInvalidateVPN(t *testing.T) {
	p := New(8)
	p.Insert(9, 1)
	p.InvalidateVPN(9)
	if _, ok := p.Lookup(9); ok {
		t.Fatal("invalidated fingerprint still predicts")
	}
	p.InvalidateVPN(9) // no-op on absent entry
}

func TestStatsAndBytes(t *testing.T) {
	p := New(DefaultCapacity)
	p.Insert(1, 0)
	p.Lookup(1)
	lookups, hits := p.Stats()
	if lookups != 1 || hits != 1 {
		t.Fatalf("stats = %d,%d", lookups, hits)
	}
	// §7.5: PRT scaled to ~720 bytes to match the IRMB.
	if b := p.Bytes(); b < 700 || b > 740 {
		t.Fatalf("PRT bytes = %d, want ≈720", b)
	}
}

func TestFingerprintSpreadsNeighbours(t *testing.T) {
	// Neighbouring VPNs (a migrated region) must not all collide.
	fps := map[uint16]bool{}
	for v := memdef.VPN(0); v < 256; v++ {
		fps[Fingerprint(v)] = true
	}
	if len(fps) < 200 {
		t.Fatalf("256 neighbouring VPNs produced only %d fingerprints", len(fps))
	}
}
