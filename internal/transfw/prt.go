// Package transfw reimplements the relevant mechanism of Trans-FW (Li et
// al., HPCA 2023), the state-of-the-art the paper compares against in §7.5:
// short-circuiting far faults by forwarding the translation request to a
// remote GPU predicted — via a fingerprint table — to hold a valid mapping
// in its local page table, instead of waiting for the host UVM driver.
//
// The prediction structure is the PRT (Presence Remote Table): a FIFO of
// compact VPN fingerprints tagged with the GPU that established the mapping.
// Fingerprints are lossy, so lookups can produce false positives (the
// remote walk then finds nothing and the fault falls back to the host path);
// capacity is bounded, so entries age out. For the §7.5 comparison the PRT
// is scaled to 443 fingerprints ≈ 720 bytes, matching the IRMB budget.
package transfw

import "idyll/internal/memdef"

// FingerprintBits is the width of a stored VPN fingerprint. 13 tag bits
// (plus the GPU id) keep each entry at 720*8/443 ≈ 13 bits, matching the
// paper's scaled configuration.
const FingerprintBits = 13

// DefaultCapacity is the §7.5 PRT size matched to the IRMB's 720 bytes.
const DefaultCapacity = 443

// Fingerprint compresses a VPN to FingerprintBits bits. The mix must spread
// nearby VPNs (migrated neighbourhoods) across the space; a multiplicative
// hash does.
func Fingerprint(vpn memdef.VPN) uint16 {
	x := uint64(vpn) * 0x9e3779b97f4a7c15
	return uint16(x >> (64 - FingerprintBits))
}

type entry struct {
	fp  uint16
	gpu int8
}

// PRT is one GPU's fingerprint table.
type PRT struct {
	capacity int
	fifo     []entry

	lookups uint64
	hits    uint64
}

// New builds a PRT with the given fingerprint capacity.
func New(capacity int) *PRT {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &PRT{capacity: capacity}
}

// Insert records that gpu holds a valid translation for vpn. The oldest
// fingerprint is displaced when full (FIFO).
func (p *PRT) Insert(vpn memdef.VPN, gpu int) {
	fp := Fingerprint(vpn)
	for i := range p.fifo {
		if p.fifo[i].fp == fp {
			p.fifo[i].gpu = int8(gpu) // refresh prediction in place
			return
		}
	}
	if len(p.fifo) >= p.capacity {
		copy(p.fifo, p.fifo[1:])
		p.fifo = p.fifo[:len(p.fifo)-1]
	}
	p.fifo = append(p.fifo, entry{fp: fp, gpu: int8(gpu)})
}

// Lookup predicts which GPU holds a translation for vpn. ok is false when no
// fingerprint matches. A true result is only a prediction: it may be a false
// positive either from fingerprint collision or from staleness.
func (p *PRT) Lookup(vpn memdef.VPN) (gpu int, ok bool) {
	p.lookups++
	fp := Fingerprint(vpn)
	for i := range p.fifo {
		if p.fifo[i].fp == fp {
			p.hits++
			return int(p.fifo[i].gpu), true
		}
	}
	return 0, false
}

// InvalidateVPN removes vpn's fingerprint, called when the holder's mapping
// is invalidated so the PRT does not keep predicting a dead translation.
// Collisions mean this can also remove an alias — safe, since the PRT is
// only a performance hint.
func (p *PRT) InvalidateVPN(vpn memdef.VPN) {
	fp := Fingerprint(vpn)
	for i := range p.fifo {
		if p.fifo[i].fp == fp {
			p.fifo = append(p.fifo[:i], p.fifo[i+1:]...)
			return
		}
	}
}

// Len reports resident fingerprints.
func (p *PRT) Len() int { return len(p.fifo) }

// Stats reports lookups and predicted hits.
func (p *PRT) Stats() (lookups, hits uint64) { return p.lookups, p.hits }

// Bytes reports the hardware cost: capacity × (fingerprint + GPU id ≈ 13
// bits) rounded to bytes, ≈ 720 bytes at the default capacity.
func (p *PRT) Bytes() int { return p.capacity * FingerprintBits / 8 }
