// Package tlb models the GPU TLB hierarchy of §3.1: a private, fully
// associative L1 TLB per compute unit and a large set-associative L2 TLB
// shared by all CUs, plus the L2 TLB's miss-status holding register (MSHR)
// that merges concurrent misses to the same virtual page.
package tlb

import (
	"idyll/internal/cache"
	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Entry is a cached translation: the physical frame (which encodes the
// owning device, so remote mappings are directly visible) and the write
// permission, needed by the page-replication policy to trap writes to
// read-only replicas.
type Entry struct {
	PFN      memdef.PFN
	Writable bool
}

// TLB is one translation lookaside buffer level.
type TLB struct {
	c       *cache.SetAssoc[memdef.VPN, Entry]
	latency sim.VTime

	shootdowns     uint64
	shootdownHits  uint64
	flushedEntries uint64
}

// Config describes a TLB level's geometry and lookup latency.
type Config struct {
	Entries int
	Ways    int
	Latency sim.VTime
}

// New builds a TLB. A fully associative TLB has Ways == Entries (one set).
func New(cfg Config) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &TLB{
		c:       cache.New[memdef.VPN, Entry](sets, cfg.Ways, func(v memdef.VPN) uint64 { return uint64(v) }),
		latency: cfg.Latency,
	}
}

// Latency reports the lookup latency in cycles.
func (t *TLB) Latency() sim.VTime { return t.latency }

// Lookup probes the TLB for vpn.
func (t *TLB) Lookup(vpn memdef.VPN) (Entry, bool) { return t.c.Lookup(vpn) }

// Fill installs a translation.
func (t *TLB) Fill(vpn memdef.VPN, e Entry) { t.c.Insert(vpn, e) }

// Shootdown invalidates vpn and reports whether it was resident. Shootdowns
// are immediate in both baseline and IDYLL (§6.3: "upon receiving an
// invalidation request, the TLB is immediately invalidated").
func (t *TLB) Shootdown(vpn memdef.VPN) bool {
	t.shootdowns++
	if t.c.Invalidate(vpn) {
		t.shootdownHits++
		return true
	}
	return false
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.flushedEntries += uint64(t.c.Len())
	t.c.Flush()
}

// Len reports resident entries.
func (t *TLB) Len() int { return t.c.Len() }

// HitRate reports the lookup hit rate.
func (t *TLB) HitRate() float64 { return t.c.HitRate() }

// Lookups reports total lookups.
func (t *TLB) Lookups() uint64 { return t.c.Lookups() }

// Hits reports total hits.
func (t *TLB) Hits() uint64 { return t.c.Hits() }

// Shootdowns reports how many shootdown requests were received and how many
// actually removed a resident entry.
func (t *TLB) Shootdowns() (requests, hits uint64) {
	return t.shootdowns, t.shootdownHits
}
