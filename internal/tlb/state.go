package tlb

import (
	"idyll/internal/checkpoint"
	"idyll/internal/memdef"
)

// Checkpoint support. TLB contents are carried verbatim (the underlying
// set-associative cache preserves per-set recency order); the MSHR is empty
// at any quiescent point — an outstanding miss implies a pending event — so
// only its counters travel.

// SaveState writes the TLB's contents and counters to w.
func (t *TLB) SaveState(w *checkpoint.Writer) {
	t.c.SaveState(w, func(w *checkpoint.Writer, vpn memdef.VPN, e Entry) {
		w.U64(uint64(vpn))
		w.U64(uint64(e.PFN))
		w.Bool(e.Writable)
	})
	w.U64(t.shootdowns)
	w.U64(t.shootdownHits)
	w.U64(t.flushedEntries)
}

// RestoreState reads the state written by SaveState into t, which must have
// the same geometry.
func (t *TLB) RestoreState(r *checkpoint.Reader) {
	t.c.RestoreState(r, func(r *checkpoint.Reader) (memdef.VPN, Entry) {
		vpn := memdef.VPN(r.U64())
		e := Entry{PFN: memdef.PFN(r.U64()), Writable: r.Bool()}
		return vpn, e
	})
	t.shootdowns = r.U64()
	t.shootdownHits = r.U64()
	t.flushedEntries = r.U64()
}

// SaveState writes the MSHR's counters to w. At a quiescent point no miss is
// outstanding; the entry count is asserted into the stream so a
// non-quiescent save fails at restore.
func (m *MSHR[W]) SaveState(w *checkpoint.Writer) {
	w.Int(len(m.pending))
	w.U64(m.allocs)
	w.U64(m.merges)
	w.U64(m.full)
	w.U64(m.recycles)
}

// RestoreState reads the counters written by SaveState.
func (m *MSHR[W]) RestoreState(r *checkpoint.Reader) {
	if n := r.Int(); n != 0 {
		r.Failf("tlb: MSHR checkpointed with %d outstanding misses", n)
		return
	}
	m.allocs = r.U64()
	m.merges = r.U64()
	m.full = r.U64()
	m.recycles = r.U64()
}
