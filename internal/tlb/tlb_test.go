package tlb

import (
	"testing"
	"testing/quick"

	"idyll/internal/memdef"
)

func newL1() *TLB {
	// Table 2: L1 TLB, 32 entries, fully associative (32-way), 1 cycle.
	return New(Config{Entries: 32, Ways: 32, Latency: 1})
}

func newL2() *TLB {
	// Table 2: L2 TLB, 512 entries, 16-way, 10 cycles.
	return New(Config{Entries: 512, Ways: 16, Latency: 10})
}

func TestFillLookup(t *testing.T) {
	l1 := newL1()
	e := Entry{PFN: memdef.MakePFN(memdef.GPUDevice(1), 3), Writable: true}
	l1.Fill(100, e)
	got, ok := l1.Lookup(100)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v,%v", got, ok)
	}
	if _, ok := l1.Lookup(101); ok {
		t.Fatal("phantom hit")
	}
}

func TestL1FullyAssociativeCapacity(t *testing.T) {
	l1 := newL1()
	for v := memdef.VPN(0); v < 32; v++ {
		l1.Fill(v, Entry{})
	}
	if l1.Len() != 32 {
		t.Fatalf("len = %d, want 32", l1.Len())
	}
	// The 33rd fill evicts the LRU (vpn 0), regardless of address bits —
	// fully associative TLBs have a single set.
	l1.Fill(1<<30, Entry{})
	if l1.Len() != 32 {
		t.Fatalf("len = %d after overflow, want 32", l1.Len())
	}
	if _, ok := l1.Lookup(0); ok {
		t.Fatal("LRU entry survived in full L1")
	}
}

func TestL2SetAssociativity(t *testing.T) {
	l2 := newL2()
	// 512/16 = 32 sets. VPNs congruent mod 32 share a set; 17 of them must
	// overflow a 16-way set while leaving other sets untouched.
	for i := 0; i < 17; i++ {
		l2.Fill(memdef.VPN(i*32), Entry{})
	}
	if l2.Len() != 16 {
		t.Fatalf("set holds %d entries, want 16", l2.Len())
	}
}

func TestShootdown(t *testing.T) {
	l2 := newL2()
	l2.Fill(7, Entry{})
	if !l2.Shootdown(7) {
		t.Fatal("shootdown of resident entry must hit")
	}
	if l2.Shootdown(7) {
		t.Fatal("second shootdown must miss")
	}
	if _, ok := l2.Lookup(7); ok {
		t.Fatal("entry survived shootdown")
	}
	req, hits := l2.Shootdowns()
	if req != 2 || hits != 1 {
		t.Fatalf("shootdown stats = %d,%d", req, hits)
	}
}

func TestFlush(t *testing.T) {
	l1 := newL1()
	for v := memdef.VPN(0); v < 10; v++ {
		l1.Fill(v, Entry{})
	}
	l1.Flush()
	if l1.Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestHitRateAccounting(t *testing.T) {
	l1 := newL1()
	l1.Fill(1, Entry{})
	l1.Lookup(1)
	l1.Lookup(2)
	if l1.Lookups() != 2 || l1.Hits() != 1 {
		t.Fatalf("lookups=%d hits=%d", l1.Lookups(), l1.Hits())
	}
	if l1.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", l1.HitRate())
	}
}

func TestMSHRMergesSamePage(t *testing.T) {
	m := NewMSHR[int](8)
	if got := m.Add(5, 1); got != Allocated {
		t.Fatalf("first add = %v, want Allocated", got)
	}
	if got := m.Add(5, 2); got != Merged {
		t.Fatalf("second add = %v, want Merged", got)
	}
	if got := m.Add(6, 3); got != Allocated {
		t.Fatalf("other page = %v, want Allocated", got)
	}
	ws := m.Complete(5)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("waiters = %v", ws)
	}
	if m.Pending(5) {
		t.Fatal("entry survived Complete")
	}
	if !m.Pending(6) {
		t.Fatal("unrelated entry lost")
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR[int](2)
	m.Add(1, 0)
	m.Add(2, 0)
	if got := m.Add(3, 0); got != Full {
		t.Fatalf("overflow add = %v, want Full", got)
	}
	// Merging into an existing entry is allowed even when full.
	if got := m.Add(1, 9); got != Merged {
		t.Fatalf("merge while full = %v, want Merged", got)
	}
	m.Complete(1)
	if got := m.Add(3, 0); got != Allocated {
		t.Fatalf("add after free = %v, want Allocated", got)
	}
	_, _, full := m.Stats()
	if full != 1 {
		t.Fatalf("full count = %d", full)
	}
}

// Property: for any interleaving of adds, every waiter comes back exactly
// once via Complete, in arrival order per page.
func TestMSHRWaiterConservationProperty(t *testing.T) {
	prop := func(pages []uint8) bool {
		m := NewMSHR[int](0)
		want := map[memdef.VPN][]int{}
		for i, p := range pages {
			vpn := memdef.VPN(p % 16)
			m.Add(vpn, i)
			want[vpn] = append(want[vpn], i)
		}
		for vpn, ws := range want {
			got := m.Complete(vpn)
			if len(got) != len(ws) {
				return false
			}
			for i := range ws {
				if got[i] != ws[i] {
					return false
				}
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
