package tlb

import "idyll/internal/memdef"

// MSHR is a miss-status holding register: it tracks virtual pages with an
// outstanding translation and merges later requests to the same page onto
// the existing entry. Per §6.3 this blocking is what guarantees that while a
// far fault for a page is in flight, no other request to that page reaches
// the GMMU — the property IDYLL's lazy invalidation relies on for
// correctness.
//
// W is the caller's waiter payload (typically a request continuation).
type MSHR[W any] struct {
	capacity int
	pending  map[memdef.VPN][]W
	// free recycles waiter slices between misses (see Recycle), so the
	// per-miss Add path stops allocating once the MSHR has warmed up.
	free [][]W

	allocs   uint64
	merges   uint64
	full     uint64
	recycles uint64
}

// NewMSHR builds an MSHR with the given entry capacity (capacity <= 0 means
// unbounded).
func NewMSHR[W any](capacity int) *MSHR[W] {
	return &MSHR[W]{capacity: capacity, pending: make(map[memdef.VPN][]W)}
}

// Outcome reports what happened to a Lookup-and-allocate attempt.
type Outcome int

const (
	// Allocated means vpn had no outstanding miss; a new entry now tracks it
	// and the caller must launch the translation.
	Allocated Outcome = iota
	// Merged means vpn already had an outstanding miss; the waiter was
	// appended and the caller must NOT launch another translation.
	Merged
	// Full means the MSHR has no free entry; the caller must retry later.
	Full
)

// Add registers waiter for vpn.
func (m *MSHR[W]) Add(vpn memdef.VPN, waiter W) Outcome {
	if ws, ok := m.pending[vpn]; ok {
		m.pending[vpn] = append(ws, waiter)
		m.merges++
		return Merged
	}
	if m.capacity > 0 && len(m.pending) >= m.capacity {
		m.full++
		return Full
	}
	ws := m.getSlice()
	m.pending[vpn] = append(ws, waiter)
	m.allocs++
	return Allocated
}

// getSlice takes an empty waiter slice from the free list, or makes one.
func (m *MSHR[W]) getSlice() []W {
	if n := len(m.free); n > 0 {
		ws := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return ws
	}
	return make([]W, 0, 4)
}

// Recycle returns a slice obtained from Complete to the MSHR's free list.
// The caller must be done with it: its elements are cleared (so captured
// continuations are collectable) and its storage is handed to a future Add.
func (m *MSHR[W]) Recycle(ws []W) {
	if cap(ws) == 0 {
		return
	}
	clear(ws)
	m.free = append(m.free, ws[:0])
	m.recycles++
}

// Pending reports whether vpn has an outstanding miss.
func (m *MSHR[W]) Pending(vpn memdef.VPN) bool {
	_, ok := m.pending[vpn]
	return ok
}

// Complete removes vpn's entry and returns its waiters in arrival order.
func (m *MSHR[W]) Complete(vpn memdef.VPN) []W {
	ws := m.pending[vpn]
	delete(m.pending, vpn)
	return ws
}

// Len reports the number of outstanding entries.
func (m *MSHR[W]) Len() int { return len(m.pending) }

// Stats reports allocations, merges, and full rejections.
func (m *MSHR[W]) Stats() (allocs, merges, full uint64) {
	return m.allocs, m.merges, m.full
}

// Recycles reports how many waiter slices have been returned via Recycle.
func (m *MSHR[W]) Recycles() uint64 { return m.recycles }
