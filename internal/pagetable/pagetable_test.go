package pagetable

import (
	"testing"
	"testing/quick"

	"idyll/internal/memdef"
)

func TestMapLookupRoundTrip(t *testing.T) {
	pt := New(memdef.Page4K)
	pte := PTE{PFN: memdef.MakePFN(memdef.GPUDevice(1), 77), Valid: true, Writable: true}
	pt.Map(0xabcdef, pte)
	got, ok := pt.Lookup(0xabcdef)
	if !ok || got != pte {
		t.Fatalf("Lookup = %+v,%v", got, ok)
	}
	if _, ok := pt.Lookup(0xabcdee); ok {
		t.Fatal("phantom mapping")
	}
}

func TestWalkVisitsAllLevelsForMappedPage(t *testing.T) {
	pt := New(memdef.Page4K)
	vpn := memdef.VPN(0x123456789 & (1<<36 - 1))
	pt.Map(vpn, PTE{Valid: true})
	visits, pte, ok := pt.Walk(vpn)
	if !ok || !pte.Valid {
		t.Fatalf("walk failed: ok=%v pte=%+v", ok, pte)
	}
	if len(visits) != 4 {
		t.Fatalf("visited %d levels, want 4", len(visits))
	}
	for i, v := range visits {
		wantLevel := 4 - i
		if v.Level != wantLevel {
			t.Errorf("visit %d level %d, want %d", i, v.Level, wantLevel)
		}
		if v.Prefix != memdef.LevelPrefix(vpn, wantLevel) {
			t.Errorf("visit %d prefix %#x mismatch", i, v.Prefix)
		}
	}
}

func TestWalkStopsEarlyOnAbsentSubtree(t *testing.T) {
	pt := New(memdef.Page4K)
	pt.Map(0, PTE{Valid: true})
	// A VPN differing at the top level: only the L4 entry is inspected.
	far := memdef.VPN(1) << 27
	visits, _, ok := pt.Walk(far)
	if ok {
		t.Fatal("walk found absent mapping")
	}
	if len(visits) != 1 || visits[0].Level != 4 {
		t.Fatalf("visits = %+v, want single L4 visit", visits)
	}
	// A VPN sharing L4..L2 but with a different leaf index walks all levels.
	near := memdef.VPN(1)
	visits, _, ok = pt.Walk(near)
	if ok {
		t.Fatal("walk found absent leaf")
	}
	if len(visits) != 4 {
		t.Fatalf("near-miss visited %d levels, want 4", len(visits))
	}
}

func TestInvalidateKeepsResidentEntry(t *testing.T) {
	pt := New(memdef.Page4K)
	pt.Map(42, PTE{Valid: true})
	if !pt.Invalidate(42) {
		t.Fatal("first invalidation should report a valid entry")
	}
	if pt.Invalidate(42) {
		t.Fatal("second invalidation should be unnecessary")
	}
	// The stale entry still costs a full walk.
	visits, pte, ok := pt.Walk(42)
	if !ok || pte.Valid {
		t.Fatalf("stale PTE walk: ok=%v valid=%v", ok, pte.Valid)
	}
	if len(visits) != 4 {
		t.Fatalf("stale walk visited %d levels", len(visits))
	}
	if pt.Resident() != 1 || pt.ValidCount() != 0 {
		t.Fatalf("resident=%d valid=%d", pt.Resident(), pt.ValidCount())
	}
}

func TestInvalidateAbsentIsUnnecessary(t *testing.T) {
	pt := New(memdef.Page4K)
	if pt.Invalidate(7) {
		t.Fatal("invalidating an absent entry must report unnecessary")
	}
	if pt.Resident() != 0 {
		t.Fatal("invalidation of absent entry must not allocate")
	}
}

func TestValidCountTracksMapAndInvalidate(t *testing.T) {
	pt := New(memdef.Page4K)
	pt.Map(1, PTE{Valid: true})
	pt.Map(2, PTE{Valid: true})
	pt.Map(1, PTE{Valid: true, Writable: true}) // remap, still 2 valid
	if pt.ValidCount() != 2 {
		t.Fatalf("valid = %d, want 2", pt.ValidCount())
	}
	pt.Invalidate(1)
	if pt.ValidCount() != 1 {
		t.Fatalf("valid = %d, want 1", pt.ValidCount())
	}
	pt.Map(1, PTE{Valid: true})
	if pt.ValidCount() != 2 {
		t.Fatalf("revalidate: valid = %d, want 2", pt.ValidCount())
	}
}

func Test2MBTableHasThreeLevels(t *testing.T) {
	pt := New(memdef.Page2M)
	vpn := memdef.VPN(0x1ffffff) // 25-bit VPN
	pt.Map(vpn, PTE{Valid: true})
	visits, pte, ok := pt.Walk(vpn)
	if !ok || !pte.Valid {
		t.Fatal("2MB walk failed")
	}
	if len(visits) != 3 {
		t.Fatalf("2MB walk visited %d levels, want 3", len(visits))
	}
}

func TestRemoteMappingDetection(t *testing.T) {
	local := memdef.GPUDevice(0)
	pte := PTE{PFN: memdef.MakePFN(memdef.GPUDevice(2), 5), Valid: true}
	if !pte.Remote(local) {
		t.Fatal("mapping to GPU2 memory should be remote for GPU0")
	}
	if pte.Remote(memdef.GPUDevice(2)) {
		t.Fatal("mapping should be local for its owner")
	}
	if (PTE{}).Remote(local) {
		t.Fatal("invalid PTE must not report remote")
	}
}

func TestEntryAuxBitsPersist(t *testing.T) {
	pt := New(memdef.Page4K)
	pt.Map(9, PTE{Valid: true})
	pt.Entry(9).Aux |= 1 << 3
	got, _ := pt.Lookup(9)
	if got.Aux != 1<<3 {
		t.Fatalf("Aux = %#x", got.Aux)
	}
}

func TestRangeVisitsAllEntries(t *testing.T) {
	pt := New(memdef.Page4K)
	want := map[memdef.VPN]bool{}
	for _, v := range []memdef.VPN{1, 513, 1 << 20, 1 << 30} {
		pt.Map(v, PTE{Valid: true})
		want[v] = true
	}
	got := map[memdef.VPN]bool{}
	pt.Range(func(v memdef.VPN, p PTE) bool {
		got[v] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ranged %d entries, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Errorf("vpn %#x missing from Range", v)
		}
	}
}

// Property: Map then Lookup always round-trips, and Walk agrees with Lookup.
func TestMapWalkAgreementProperty(t *testing.T) {
	prop := func(raws []uint64) bool {
		pt := New(memdef.Page4K)
		seen := map[memdef.VPN]PTE{}
		for i, raw := range raws {
			vpn := memdef.VPN(raw & (1<<36 - 1))
			pte := PTE{PFN: memdef.PFN(i), Valid: i%3 != 0}
			pt.Map(vpn, pte)
			seen[vpn] = pte
		}
		for vpn, want := range seen {
			got, ok := pt.Lookup(vpn)
			if !ok || got != want {
				return false
			}
			visits, wgot, wok := pt.Walk(vpn)
			if !wok || wgot != want || len(visits) != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
