// Package pagetable implements the radix page tables used by both the GPUs
// (local page tables, walked by the GMMU) and the UVM driver (the
// centralized host page table that holds up-to-date translations for all
// GPUs, §3.1). A 4 KB-page table has 4 levels (L4..L1); a 2 MB-page table
// has 3 (L4..L2 with L2 as the leaf).
//
// The package models structure, not timing: a Walk reports exactly which
// level entries a hardware walker would touch, and the GMMU (internal/
// walker) charges per-level latency and consults its page-walk cache using
// those visits.
package pagetable

import (
	"sort"

	"idyll/internal/memdef"
)

// PTE is a page-table entry. The GPU-local tables use PFN/Valid/Writable;
// Aux models the unused bits 62–52 of the x86-64 PTE format (Figure 8) that
// the host-side table repurposes as the in-PTE directory's GPU access bits.
type PTE struct {
	PFN      memdef.PFN
	Valid    bool
	Writable bool
	// Aux carries the 11 unused high bits (62–52) available for the in-PTE
	// directory. Only the host page table uses it.
	Aux uint16
}

// Remote reports whether the mapping points at memory not owned by dev —
// i.e. it is a remote mapping in dev's local page table (§3.2).
func (p PTE) Remote(dev memdef.DeviceID) bool {
	return p.Valid && p.PFN.Device() != dev
}

// Visit records one page-table level touched during a walk. Level runs from
// the table's top level down to 1 (leaf); Prefix is the VPN prefix that
// identifies the visited entry, the key used by the page-walk cache.
type Visit struct {
	Level  int
	Prefix uint64
}

// node is an internal radix node. Non-leaf levels hold children; the leaf
// level holds PTEs.
type node struct {
	children map[uint64]*node
	ptes     map[uint64]*PTE
}

// Table is one radix page table.
type Table struct {
	pageSize memdef.PageSize
	levels   int
	root     *node
	resident int // number of PTEs present (valid or stale-invalid)
	valid    int // number of valid PTEs
}

// New creates an empty page table for the given page size.
func New(pageSize memdef.PageSize) *Table {
	return &Table{
		pageSize: pageSize,
		levels:   pageSize.Levels(),
		root:     &node{},
	}
}

// PageSize reports the table's page size.
func (t *Table) PageSize() memdef.PageSize { return t.pageSize }

// Levels reports the number of radix levels.
func (t *Table) Levels() int { return t.levels }

// Resident reports how many PTEs exist in the table (including entries that
// have been invalidated in place, which still occupy a leaf slot and still
// cost a full walk to inspect — the "even if it were invalid to begin with"
// case of §2).
func (t *Table) Resident() int { return t.resident }

// ValidCount reports how many PTEs are currently valid.
func (t *Table) ValidCount() int { return t.valid }

// leafIndex returns the radix index of vpn at the leaf, and walkLevel maps a
// walk step i (0-based from the top) to its level number.
func (t *Table) walkLevel(step int) int { return t.levels - step }

// Walk simulates a hardware page-table walk for vpn. It returns the ordered
// level visits a walker performs and the PTE found, if any. The walk
// descends from the top level; if an intermediate entry is absent the walk
// stops there (visits includes the level where absence was discovered) and
// ok is false. If the leaf slot is empty, ok is false after a full-length
// walk. If the leaf holds an invalidated PTE, ok is true and pte.Valid is
// false — the walker walked all the way to discover staleness.
func (t *Table) Walk(vpn memdef.VPN) (visits []Visit, pte PTE, ok bool) {
	return t.WalkInto(make([]Visit, 0, t.levels), vpn)
}

// WalkInto is Walk appending into a caller-provided buffer (resliced to
// empty), letting hot callers reuse one scratch slice across walks.
func (t *Table) WalkInto(buf []Visit, vpn memdef.VPN) (visits []Visit, pte PTE, ok bool) {
	visits = buf[:0]
	n := t.root
	for step := 0; step < t.levels; step++ {
		level := t.walkLevel(step)
		visits = append(visits, Visit{Level: level, Prefix: memdef.LevelPrefix(vpn, level)})
		idx := memdef.LevelIndex(vpn, level)
		if level == 1 {
			// Leaf level. Level numbering is table-relative: the leaf is
			// always level 1 and the top level is t.levels, so a 2 MB table
			// walks levels 3,2,1 over its 24-bit VPN.
			if n.ptes == nil {
				return visits, PTE{}, false
			}
			p, exists := n.ptes[idx]
			if !exists {
				return visits, PTE{}, false
			}
			return visits, *p, true
		}
		child, exists := nilSafeChildren(n)[idx]
		if !exists {
			return visits, PTE{}, false
		}
		n = child
	}
	return visits, PTE{}, false
}

func nilSafeChildren(n *node) map[uint64]*node {
	if n.children == nil {
		return nil
	}
	return n.children
}

// Lookup returns the PTE for vpn without simulating walk structure.
func (t *Table) Lookup(vpn memdef.VPN) (PTE, bool) {
	p := t.entry(vpn, false)
	if p == nil {
		return PTE{}, false
	}
	return *p, true
}

// entry returns the *PTE for vpn, creating the radix path if create is set.
func (t *Table) entry(vpn memdef.VPN, create bool) *PTE {
	n := t.root
	for step := 0; step < t.levels-1; step++ {
		level := t.walkLevel(step)
		idx := memdef.LevelIndex(vpn, level)
		child := n.children[idx]
		if child == nil {
			if !create {
				return nil
			}
			if n.children == nil {
				n.children = make(map[uint64]*node)
			}
			child = &node{}
			n.children[idx] = child
		}
		n = child
	}
	leafLevel := t.walkLevel(t.levels - 1)
	idx := memdef.LevelIndex(vpn, leafLevel)
	p := n.ptes[idx]
	if p == nil {
		if !create {
			return nil
		}
		if n.ptes == nil {
			n.ptes = make(map[uint64]*PTE)
		}
		p = &PTE{}
		n.ptes[idx] = p
		t.resident++
	}
	return p
}

// Map installs or replaces the translation for vpn.
func (t *Table) Map(vpn memdef.VPN, pte PTE) {
	p := t.entry(vpn, true)
	if p.Valid && !pte.Valid {
		t.valid--
	} else if !p.Valid && pte.Valid {
		t.valid++
	}
	*p = pte
}

// Invalidate marks vpn's PTE invalid in place. It reports whether a valid
// translation was present — the signal that distinguishes a necessary from
// an unnecessary invalidation (§5.2). The leaf slot is retained, matching
// hardware behaviour where invalidation clears the present bit but the entry
// still occupies the table.
func (t *Table) Invalidate(vpn memdef.VPN) (wasValid bool) {
	p := t.entry(vpn, false)
	if p == nil {
		return false
	}
	if p.Valid {
		p.Valid = false
		t.valid--
		return true
	}
	return false
}

// Entry exposes the mutable PTE for vpn, creating it if needed. The UVM
// driver uses this to update the in-PTE directory access bits (Aux) during
// host-side walks.
func (t *Table) Entry(vpn memdef.VPN) *PTE {
	return t.entry(vpn, true)
}

// UpdateValid adjusts the valid counter after direct mutation through Entry.
// Callers that flip Valid via Entry must keep the counter consistent; Map
// and Invalidate do this automatically and are preferred.
func (t *Table) UpdateValid(delta int) { t.valid += delta }

// Range iterates all resident PTEs in ascending VPN order until fn returns
// false. The order is part of the contract: callbacks escape iteration
// order to callers, so handing them raw map order would let the map hash
// seed leak into anything built on top of Range.
func (t *Table) Range(fn func(memdef.VPN, PTE) bool) {
	t.rangeNode(t.root, 0, 0, fn)
}

func (t *Table) rangeNode(n *node, step int, prefix uint64, fn func(memdef.VPN, PTE) bool) bool {
	if step == t.levels-1 {
		for _, idx := range sortedPTEIndices(n) {
			if !fn(memdef.VPN(prefix<<9|idx), *n.ptes[idx]) {
				return false
			}
		}
		return true
	}
	for _, idx := range sortedChildIndices(n) {
		if !t.rangeNode(n.children[idx], step+1, prefix<<9|idx, fn) {
			return false
		}
	}
	return true
}

// sortedPTEIndices fixes the traversal order of one leaf node (at most 512
// entries).
func sortedPTEIndices(n *node) []uint64 {
	idxs := make([]uint64, 0, len(n.ptes))
	for idx := range n.ptes {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// sortedChildIndices fixes the traversal order of one interior node.
func sortedChildIndices(n *node) []uint64 {
	idxs := make([]uint64, 0, len(n.children))
	for idx := range n.children {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}
