package pagetable

import (
	"idyll/internal/checkpoint"
	"idyll/internal/memdef"
)

// Checkpoint support. The radix structure is not serialized — only the leaf
// PTEs, in ascending VPN order via Range; restore rebuilds the paths through
// Map, which also reconstructs the resident/valid counters for both valid
// and invalidated-in-place entries. Aux (the in-PTE directory access bits)
// travels with each PTE, so the directory's state rides the host table's
// checkpoint for free.

// SaveState writes every resident PTE to w.
func (t *Table) SaveState(w *checkpoint.Writer) {
	w.Int(t.levels)
	w.U32(uint32(t.resident))
	t.Range(func(vpn memdef.VPN, pte PTE) bool {
		w.U64(uint64(vpn))
		w.U64(uint64(pte.PFN))
		w.Bool(pte.Valid)
		w.Bool(pte.Writable)
		w.U16(pte.Aux)
		return true
	})
}

// RestoreState reads the state written by SaveState into t, which must be an
// empty table of the same geometry.
func (t *Table) RestoreState(r *checkpoint.Reader) {
	if levels := r.Int(); levels != t.levels {
		r.Failf("pagetable: %d levels in checkpoint, %d configured", levels, t.levels)
		return
	}
	if t.resident != 0 {
		r.Failf("pagetable: RestoreState into a non-empty table (%d resident)", t.resident)
		return
	}
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		vpn := memdef.VPN(r.U64())
		pte := PTE{PFN: memdef.PFN(r.U64()), Valid: r.Bool(), Writable: r.Bool(), Aux: r.U16()}
		t.Map(vpn, pte)
	}
}
