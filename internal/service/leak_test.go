package service

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles at or below
// before+slack, failing the test otherwise. HTTP transports and handler
// goroutines wind down asynchronously, so a single instantaneous sample
// would be flaky in both directions.
func waitGoroutines(t *testing.T, before, slack int, drain func()) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if drain != nil {
			drain()
		}
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// A client that walks away mid-SSE-stream must not leave server- or
// client-side goroutines behind: the event handler exits with the
// connection, and repeated disconnects do not accumulate. Run with -race
// in CI.
func TestSSEDisconnectLeaksNoGoroutines(t *testing.T) {
	gate := make(chan struct{})
	_, c0 := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ CanonicalSpec,
			_ func(int, int, string)) ([]byte, error) {
			select {
			case <-gate:
				return []byte(`{}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	tr := &http.Transport{}
	c := NewClient(c0.Base(), WithHTTPClient(&http.Client{Transport: tr}))
	ctx := context.Background()

	st, err := c.Submit(ctx, cellSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		sctx, cancel := context.WithCancel(ctx)
		firstEvent := make(chan struct{}, 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = c.streamEvents(sctx, st.ID, func(Event) {
				select {
				case firstEvent <- struct{}{}:
				default:
				}
			})
		}()
		// Wait until the stream is established (an event arrived), then
		// disconnect mid-stream — the job is still running, so the server
		// would otherwise hold the subscription open forever.
		select {
		case <-firstEvent:
		case <-time.After(5 * time.Second):
			t.Fatal("stream never delivered an event")
		}
		cancel()
		<-done
	}

	waitGoroutines(t, before, 3, tr.CloseIdleConnections)
	close(gate)
	if _, err := c.Wait(ctx, st.ID, nil); err != nil {
		t.Fatalf("job did not finish after the disconnect storm: %v", err)
	}
}
