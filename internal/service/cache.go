package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"idyll/internal/fault"
	"idyll/internal/integrity"
)

// ResultCache is the content-addressed result store: an in-memory LRU over
// result payloads keyed by spec hash, optionally backed by an on-disk store
// (one file per hash, written atomically) that survives restarts. Disk blobs
// are wrapped in an integrity checksum envelope; a blob that fails to verify
// on read is quarantined to <file>.corrupt and treated as a miss, so damage
// on the substrate costs a recompute, never a wrong or failed job. Safe for
// concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int
	dir     string // "" = memory only
	faults  *fault.Injector

	hits, misses, diskHits      uint64
	verifyFailures, quarantined uint64
}

type cacheEntry struct {
	hash string
	raw  []byte
}

// hashPattern guards disk paths: a key must be a hex SHA-256 before it may
// name a file.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// NewResultCache returns a cache holding up to maxEntries results in memory
// (minimum 1), spilling to dir when dir is non-empty (created if missing).
func NewResultCache(maxEntries int, dir string) (*ResultCache, error) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &ResultCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     maxEntries,
		dir:     dir,
	}, nil
}

// Get returns the cached result bytes for hash, consulting memory first and
// the disk store second (a disk hit repopulates memory). The returned slice
// must not be modified.
func (c *ResultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		c.hits++
		raw := el.Value.(*cacheEntry).raw
		c.mu.Unlock()
		return raw, true
	}
	c.mu.Unlock()

	if raw, ok := c.diskGet(hash); ok {
		c.mu.Lock()
		c.hits++
		c.diskHits++
		c.putLocked(hash, raw)
		c.mu.Unlock()
		return raw, true
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a result under hash in memory and, when configured, on disk.
func (c *ResultCache) Put(hash string, raw []byte) error {
	c.mu.Lock()
	c.putLocked(hash, raw)
	c.mu.Unlock()
	return c.diskPut(hash, raw)
}

func (c *ResultCache) putLocked(hash string, raw []byte) {
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).raw = raw
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, raw: raw})
	for len(c.entries) > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).hash)
	}
}

// Len reports how many results are resident in memory.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative hit/miss counters (disk hits count as hits too).
func (c *ResultCache) Stats() (hits, misses, diskHits uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.diskHits
}

// IntegrityStats reports how many disk reads failed envelope verification
// and how many files were quarantined as a result.
func (c *ResultCache) IntegrityStats() (verifyFailures, quarantined uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verifyFailures, c.quarantined
}

// SetFaults arms fault-injection sites cache.disk.read / cache.disk.write.
// Call before the cache sees traffic; a nil injector disables injection.
func (c *ResultCache) SetFaults(inj *fault.Injector) {
	c.faults = inj
}

func (c *ResultCache) path(hash string) (string, bool) {
	if c.dir == "" || !hashPattern.MatchString(hash) {
		return "", false
	}
	return filepath.Join(c.dir, hash+".json"), true
}

// diskGet reads and verifies a blob. An unreadable or unverifiable file is
// a miss, never an error: the entry is quarantined and the caller recomputes.
func (c *ResultCache) diskGet(hash string) ([]byte, bool) {
	path, ok := c.path(hash)
	if !ok {
		return nil, false
	}
	if err := c.faults.Err("cache.disk.read"); err != nil {
		return nil, false
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	blob = c.faults.Mangle("cache.disk.read", blob)
	raw, err := integrity.Unwrap(blob)
	if err != nil {
		c.quarantine(path)
		return nil, false
	}
	return raw, true
}

// quarantine moves a damaged blob aside as <file>.corrupt (removing it if
// the rename fails) so the next read is a clean miss and the evidence keeps.
func (c *ResultCache) quarantine(path string) {
	c.mu.Lock()
	c.verifyFailures++
	c.quarantined++
	c.mu.Unlock()
	if os.Rename(path, path+".corrupt") != nil {
		os.Remove(path)
	}
}

// diskPut writes atomically (temp file + rename) so a crashed daemon never
// leaves a torn result a future daemon would serve. The payload goes to disk
// wrapped in a checksum envelope.
func (c *ResultCache) diskPut(hash string, raw []byte) error {
	path, ok := c.path(hash)
	if !ok {
		return nil
	}
	if err := c.faults.Err("cache.disk.write"); err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	blob := c.faults.Mangle("cache.disk.write", integrity.Wrap(raw))
	tmp, err := os.CreateTemp(c.dir, "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: cache rename: %w", err)
	}
	return nil
}
