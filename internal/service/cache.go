package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// ResultCache is the content-addressed result store: an in-memory LRU over
// result payloads keyed by spec hash, optionally backed by an on-disk store
// (one file per hash, written atomically) that survives restarts. Safe for
// concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int
	dir     string // "" = memory only

	hits, misses, diskHits uint64
}

type cacheEntry struct {
	hash string
	raw  []byte
}

// hashPattern guards disk paths: a key must be a hex SHA-256 before it may
// name a file.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// NewResultCache returns a cache holding up to maxEntries results in memory
// (minimum 1), spilling to dir when dir is non-empty (created if missing).
func NewResultCache(maxEntries int, dir string) (*ResultCache, error) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &ResultCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     maxEntries,
		dir:     dir,
	}, nil
}

// Get returns the cached result bytes for hash, consulting memory first and
// the disk store second (a disk hit repopulates memory). The returned slice
// must not be modified.
func (c *ResultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		c.hits++
		raw := el.Value.(*cacheEntry).raw
		c.mu.Unlock()
		return raw, true
	}
	c.mu.Unlock()

	if raw, ok := c.diskGet(hash); ok {
		c.mu.Lock()
		c.hits++
		c.diskHits++
		c.putLocked(hash, raw)
		c.mu.Unlock()
		return raw, true
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores a result under hash in memory and, when configured, on disk.
func (c *ResultCache) Put(hash string, raw []byte) error {
	c.mu.Lock()
	c.putLocked(hash, raw)
	c.mu.Unlock()
	return c.diskPut(hash, raw)
}

func (c *ResultCache) putLocked(hash string, raw []byte) {
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).raw = raw
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, raw: raw})
	for len(c.entries) > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).hash)
	}
}

// Len reports how many results are resident in memory.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative hit/miss counters (disk hits count as hits too).
func (c *ResultCache) Stats() (hits, misses, diskHits uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.diskHits
}

func (c *ResultCache) path(hash string) (string, bool) {
	if c.dir == "" || !hashPattern.MatchString(hash) {
		return "", false
	}
	return filepath.Join(c.dir, hash+".json"), true
}

func (c *ResultCache) diskGet(hash string) ([]byte, bool) {
	path, ok := c.path(hash)
	if !ok {
		return nil, false
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	return raw, true
}

// diskPut writes atomically (temp file + rename) so a crashed daemon never
// leaves a torn result a future daemon would serve.
func (c *ResultCache) diskPut(hash string, raw []byte) error {
	path, ok := c.path(hash)
	if !ok {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: cache sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: cache rename: %w", err)
	}
	return nil
}
