package service

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// APIError is a non-2xx daemon response, carrying the HTTP status, the
// server's message, and any Retry-After the server attached — enough for
// the retry layer to distinguish "try again shortly" (429 shed, 503 drain)
// from a real failure, and to honor the server's pacing.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // 0 when the server sent none
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return "idylld: " + e.Msg + " (HTTP " + strconv.Itoa(e.Status) + ")"
	}
	return "idylld: HTTP " + strconv.Itoa(e.Status)
}

// Temporary reports whether the response is worth retrying against the same
// server: load shedding (429), drain/unavailable (503), and transient
// gateway failures (502/504).
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header's delay-seconds form (the only
// form idylld emits; HTTP-date is ignored).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// RetryPolicy is exponential backoff with jitter and Retry-After honoring,
// shared by the typed client (a 429/503 from idylld used to be a hard
// error) and the fleet dispatcher. The zero value never retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (values below 1 behave as 1: no retry).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n waits about
	// BaseDelay·2ⁿ⁻¹, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (default: no cap beyond the math).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized (0..1). A delay d
	// becomes uniform in [d·(1−Jitter/2), d·(1+Jitter/2)], decorrelating
	// fleet clients that shed at the same instant.
	Jitter float64
	// Sleep is the wait primitive (tests inject instant sleeps); nil uses
	// a context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand is the jitter source (tests inject fixed values); nil uses
	// math/rand's global source. Never used by the deterministic core —
	// this is client-side pacing, outside the simulator.
	Rand func() float64
}

// DefaultRetry is the client's standard policy: 4 attempts, 100 ms base,
// 5 s cap, half-width jitter.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 5 * time.Second, Jitter: 0.5}
}

// NoRetry is a single attempt: the pre-retry behavior.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// Retryable classifies an error for retry: context cancellation never
// retries, *APIError retries iff Temporary, anything else (network errors:
// connection refused, resets, EOFs) retries — the peer may be mid-restart.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Temporary()
	}
	return true
}

// Do runs op until it succeeds, exhausts the attempt budget, hits a
// non-retryable error, or ctx ends. The delay before attempt n+1 is the
// jittered backoff step, raised to the server's Retry-After when that is
// longer.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || attempt >= attempts || !Retryable(err) || ctx.Err() != nil {
			return err
		}
		if serr := sleep(ctx, p.delay(attempt, err)); serr != nil {
			return err // context ended while backing off; report the op error
		}
	}
}

// delay computes the wait after the attempt-th failure.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.Jitter > 0 {
		rnd := p.Rand
		if rnd == nil {
			rnd = rand.Float64
		}
		j := float64(d) * p.Jitter
		d = time.Duration(float64(d) - j/2 + rnd()*j)
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
