package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// tinySpec is a real cell simulation small enough for unit tests.
func tinySpec() JobSpec {
	return JobSpec{
		Kind: "cell", App: "PR", Scheme: "idyll",
		Options: json.RawMessage(`{"cus_per_gpu":2,"accesses_per_cu":50,"counter_threshold":1}`),
	}
}

// TestRunSpecDeterministic runs a real tiny cell twice and demands
// byte-identical payloads — the property the content-addressed cache
// depends on.
func TestRunSpecDeterministic(t *testing.T) {
	canon := mustCanon(t, tinySpec())
	ctx := context.Background()
	a, err := RunSpec(ctx, canon, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(ctx, canon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("RunSpec not deterministic:\n a=%s\n b=%s", a, b)
	}
	var res CellResult
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatalf("result not a CellResult: %v\n%s", err, a)
	}
	if res.App != "PR" || res.Scheme != "idyll" || res.ExecCycles <= 0 || res.Accesses == 0 {
		t.Errorf("implausible cell result: %+v", res)
	}
}

// TestRunSpecCancellation proves a real simulation stops between event-loop
// batches when its context is cancelled.
func TestRunSpecCancellation(t *testing.T) {
	canon := mustCanon(t, JobSpec{
		Kind: "cell", App: "PR", Scheme: "idyll",
		Options: json.RawMessage(`{"cus_per_gpu":8,"accesses_per_cu":2000}`),
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts: must not complete
	if _, err := RunSpec(ctx, canon, nil); err == nil {
		t.Fatal("RunSpec completed despite a cancelled context")
	}
}

// TestServiceEndToEndRealRunner exercises the full daemon path with the
// default runner: submit a tiny real cell, wait, resubmit, and require a
// byte-identical cache hit.
func TestServiceEndToEndRealRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	first, err := c.SubmitAndWait(ctx, tinySpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusDone {
		t.Fatalf("first run = %+v", first)
	}
	second, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Errorf("resubmission missed the cache: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cached result differs from computed result")
	}
}
