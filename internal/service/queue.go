package service

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is the sentinel a JobQueue returns (possibly wrapped) when a
// push cannot be admitted: the global backlog is full, or the submitting
// tenant is over its quota. The HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: job queue full")

// JobQueue is the accepted-but-not-running backlog, made pluggable so the
// fleet layer can swap the default bounded FIFO for a weighted fair-share
// scheduler with per-tenant quotas (internal/fleet.FairQueue) without the
// server caring. Items are opaque to the queue; the server only ever pushes
// *job values. Implementations must be safe for concurrent use.
type JobQueue interface {
	// Push admits one item under the given tenant. An error that satisfies
	// errors.Is(err, ErrQueueFull) sheds the submission with 429; any push
	// after Close must return an error as well.
	Push(tenant string, item any) error
	// Pop blocks until an item is available and returns it. It returns
	// ok=false once the queue is closed and fully drained, or when ctx is
	// cancelled first.
	Pop(ctx context.Context) (item any, ok bool)
	// Close stops admissions. Items already queued continue to drain
	// through Pop; once they are gone Pop returns ok=false.
	Close()
	// Len reports how many items are queued (for the queue_depth gauge).
	Len() int
}

// fifoQueue is the default JobQueue: the original bounded first-in-first-out
// backlog, tenant-blind beyond an optional per-tenant cap.
type fifoQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	byTen  map[string]int // queued items per tenant
	tenant map[any]string // item → tenant, to decrement on pop
	max    int
	tenMax int // 0 = no per-tenant cap
	closed bool
}

// NewFIFOQueue returns the default bounded FIFO backlog. tenantMax, when
// positive, additionally caps how many queued items any single tenant may
// hold — the minimal per-tenant quota a standalone worker enforces without
// the full fair-share scheduler.
func NewFIFOQueue(max, tenantMax int) JobQueue {
	if max < 1 {
		max = 1
	}
	q := &fifoQueue{
		byTen:  make(map[string]int),
		tenant: make(map[any]string),
		max:    max,
		tenMax: tenantMax,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fifoQueue) Push(tenant string, item any) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("service: queue closed")
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	if q.tenMax > 0 && q.byTen[tenant] >= q.tenMax {
		return &TenantQuotaError{Tenant: tenant, Queued: q.byTen[tenant]}
	}
	q.items = append(q.items, item)
	q.byTen[tenant]++
	q.tenant[item] = tenant
	q.cond.Signal()
	return nil
}

func (q *fifoQueue) Pop(ctx context.Context) (any, bool) {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			item := q.items[0]
			q.items = q.items[1:]
			if t, ok := q.tenant[item]; ok {
				if q.byTen[t]--; q.byTen[t] <= 0 {
					delete(q.byTen, t)
				}
				delete(q.tenant, item)
			}
			return item, true
		}
		if q.closed || ctx.Err() != nil {
			return nil, false
		}
		q.cond.Wait()
	}
}

func (q *fifoQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *fifoQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// TenantQuotaError marks a push shed because one tenant exceeded its quota
// rather than because the whole queue is full. It unwraps to ErrQueueFull so
// both cases shed with 429.
type TenantQuotaError struct {
	Tenant string
	Queued int
}

func (e *TenantQuotaError) Error() string {
	return "service: tenant " + e.Tenant + " over queue quota"
}

func (e *TenantQuotaError) Unwrap() error { return ErrQueueFull }
