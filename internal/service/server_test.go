package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idyll/internal/experiment"
)

// newTestServer builds a server with cfg, serves it over httptest, and
// returns a typed client. Cleanup drains and closes everything.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.TTL == 0 {
		cfg.TTL = time.Minute
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Close()
	})
	return srv, NewClient(hs.URL)
}

// stubRunner returns a RunFunc producing deterministic bytes per spec after
// emitting n progress events.
func stubRunner(n int) RunFunc {
	return func(ctx context.Context, spec CanonicalSpec,
		progress func(done, total int, cell string)) ([]byte, error) {
		for i := 1; i <= n; i++ {
			progress(i, n, fmt.Sprintf("%s %s/%s", spec.Figure, spec.App, spec.Scheme))
		}
		return []byte(fmt.Sprintf(`{"app":%q,"scheme":%q,"seed":%d}`,
			spec.App, spec.Scheme, spec.Options.Seed)), nil
	}
}

func cellSpec(seed uint64) JobSpec {
	return JobSpec{
		Kind: "cell", App: "PR", Scheme: "idyll",
		Options: json.RawMessage(fmt.Sprintf(
			`{"cus_per_gpu":2,"accesses_per_cu":50,"seed":%d,"counter_threshold":1}`, seed)),
	}
}

func TestSubmitHappyPathAndCacheHit(t *testing.T) {
	var runs atomic.Int64
	_, c := newTestServer(t, Config{
		Workers: 2,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			runs.Add(1)
			return stubRunner(3)(ctx, spec, p)
		},
	})
	ctx := context.Background()

	st, err := c.Submit(ctx, cellSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("submission missing id/hash: %+v", st)
	}
	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || len(final.Result) == 0 {
		t.Fatalf("final = %+v", final)
	}

	// Identical resubmission: answered from cache without running, result
	// byte-identical, marked cached.
	again, err := c.Submit(ctx, cellSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone {
		t.Fatalf("resubmission not cached: %+v", again)
	}
	if !bytes.Equal(again.Result, final.Result) {
		t.Errorf("cache hit differs:\n first=%s\nsecond=%s", final.Result, again.Result)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner ran %d times, want 1", got)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["idylld_cache_hits"] < 1 {
		t.Errorf("cache_hits = %v, want >= 1", m["idylld_cache_hits"])
	}
	if m["idylld_jobs_completed"] != 1 {
		t.Errorf("jobs_completed = %v, want 1", m["idylld_jobs_completed"])
	}
}

func TestSubmitBadSpecs(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner(0)})
	hc := c.hc
	post := func(body string) *http.Response {
		resp, err := hc.Post(c.base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	for _, body := range []string{
		`{`,                          // malformed JSON
		`{"kind":"bogus"}`,           // unknown kind
		`{"kind":"cell","app":"PR"}`, // missing scheme
		`{"kind":"cell","app":"PR","scheme":"idyll","options":{"cus_per_gpu":-1}}`,
		`{"kind":"figure","figure":"fig99"}`,
		`{"kind":"cell","app":"PR","scheme":"idyll","surprise":1}`, // unknown field
	} {
		if resp := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s → %d, want 400", body, resp.StatusCode)
		}
	}
	if resp := post(strings.Repeat("x", 2<<20)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body → %d, want 413", resp.StatusCode)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []byte(`{}`), nil
		},
	})
	defer close(release)
	ctx := context.Background()

	// Distinct specs so dedupe cannot absorb them: one runs, one queues.
	if _, err := c.Submit(ctx, cellSpec(100)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { // first job picked up → queue empty again
		m, err := c.Metrics(ctx)
		return err == nil && m["idylld_jobs_inflight"] == 1
	})
	if _, err := c.Submit(ctx, cellSpec(101)); err != nil {
		t.Fatal(err)
	}

	raw, _ := json.Marshal(cellSpec(102))
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission → %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

// TestSingleflightDedupe is the tentpole concurrency property: 50
// concurrent identical submissions share one execution and one job ID.
// Run under -race this also proves the submit path is race-clean.
func TestSingleflightDedupe(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, c := newTestServer(t, Config{
		Workers: 4,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			runs.Add(1)
			once.Do(func() { close(started) })
			<-release
			return []byte(`{"v":1}`), nil
		},
	})
	ctx := context.Background()

	// Prime one execution so the in-flight entry exists, then race 50 more.
	first, err := c.Submit(ctx, cellSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const n = 50
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Submit(ctx, cellSpec(7))
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
			if !st.Deduped {
				errs[i] = fmt.Errorf("submission %d not marked deduped: %+v", i, st)
			}
		}(i)
	}
	wg.Wait()
	close(release)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if id != first.ID {
			t.Fatalf("submission %d got job %s, want %s", i, id, first.ID)
		}
	}

	if _, err := c.Wait(ctx, first.ID, nil); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner executed %d times for 51 identical submissions, want 1", got)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["idylld_jobs_deduped"] != n {
		t.Errorf("jobs_deduped = %v, want %d", m["idylld_jobs_deduped"], n)
	}
}

func TestSSEEventOrdering(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, Runner: stubRunner(3)})
	ctx := context.Background()
	st, err := c.Submit(ctx, cellSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if _, err := c.Wait(ctx, st.ID, func(ev Event) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	var types []string
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		types = append(types, ev.Type)
	}
	want := "queued,started,progress,progress,progress,done"
	if got := strings.Join(types, ","); got != want {
		t.Errorf("event order %q, want %q", got, want)
	}
	// progress payloads carry monotonically increasing done counts.
	last := 0
	for _, ev := range events {
		if ev.Type != "progress" {
			continue
		}
		if ev.Done <= last || ev.Total != 3 {
			t.Errorf("progress event out of order: %+v", ev)
		}
		last = ev.Done
	}
}

func TestJobFailureAndPanicIsolation(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			if spec.Options.Seed == 666 {
				panic("simulated cell panic")
			}
			return nil, fmt.Errorf("boom")
		},
	})
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, cellSpec(665), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusFailed || !strings.Contains(st.Error, "boom") {
		t.Errorf("failed job = %+v", st)
	}

	// A panicking job fails that job; the daemon keeps serving.
	st, err = c.SubmitAndWait(ctx, cellSpec(666), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusFailed || !strings.Contains(st.Error, "panicked") {
		t.Errorf("panicked job = %+v", st)
	}
	if err := c.Health(ctx); err != nil {
		t.Errorf("daemon unhealthy after panic: %v", err)
	}
	m, _ := c.Metrics(ctx)
	if m["idylld_job_panics"] != 1 {
		t.Errorf("job_panics = %v, want 1", m["idylld_job_panics"])
	}
	if m["idylld_jobs_failed"] != 2 {
		t.Errorf("jobs_failed = %v, want 2", m["idylld_jobs_failed"])
	}
}

func TestJobTimeoutCancels(t *testing.T) {
	_, c := newTestServer(t, Config{
		Workers:    1,
		JobTimeout: 50 * time.Millisecond,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	st, err := c.SubmitAndWait(context.Background(), cellSpec(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusCancelled {
		t.Errorf("timed-out job status %q, want cancelled", st.Status)
	}
}

func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	srv, c := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			close(started)
			select {
			case <-release:
				return []byte(`{"ok":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ctx := context.Background()
	st, err := c.Submit(ctx, cellSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(dctx)
	}()
	waitFor(t, srv.Draining)

	// New submissions are refused with 503 while draining.
	raw, _ := json.Marshal(cellSpec(22))
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining → %d, want 503", resp.StatusCode)
	}

	// The in-flight job finishes and drain completes cleanly.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Errorf("in-flight job after drain = %q, want done", final.Status)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	srv, c := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			<-ctx.Done() // never finishes voluntarily
			return nil, ctx.Err()
		},
	})
	ctx := context.Background()
	st, err := c.Submit(ctx, cellSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(dctx); err == nil {
		t.Fatal("Drain returned nil despite a stuck job")
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Errorf("stuck job after forced drain = %q, want cancelled", final.Status)
	}
}

func TestFigureEndpoint(t *testing.T) {
	table := `{"title":"Figure 11","columns":["PR","Ave."],` +
		`"series":[{"label":"IDYLL","values":[1.5,1.5]}]}`
	var runs atomic.Int64
	_, c := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			if spec.Kind != KindFigure || spec.Figure != "fig11" {
				return nil, fmt.Errorf("unexpected spec %+v", spec)
			}
			runs.Add(1)
			return []byte(table), nil
		},
	})
	ctx := context.Background()
	tab, err := c.Figure(ctx, "fig11", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Title != "Figure 11" || len(tab.Rows) != 1 {
		t.Errorf("parsed table = %+v", tab)
	}
	// Same options → served from cache, no second run.
	if _, err := c.Figure(ctx, "fig11", quickOpts()); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("figure ran %d times, want 1 (second fetch must hit the cache)", runs.Load())
	}
	// Unknown figure name → 400 naming valid IDs (shared resolver).
	if _, err := c.Figure(ctx, "fig99", quickOpts()); err == nil ||
		!strings.Contains(err.Error(), "unknown id") {
		t.Errorf("unknown figure error = %v", err)
	}
}

func TestStatusNotFound(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner(0)})
	if _, err := c.Status(context.Background(), "j-999999"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing job error = %v", err)
	}
}

func quickOpts() experiment.Options {
	return experiment.Options{CUsPerGPU: 2, AccessesPerCU: 50}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
