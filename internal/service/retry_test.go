package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// instant is a Sleep injection that records requested delays and returns
// immediately, keeping retry tests fast and deterministic.
type instant struct{ delays []time.Duration }

func (s *instant) sleep(_ context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return nil
}

func testPolicy(s *instant) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Sleep:       s.sleep,
	}
}

func TestRetryBackoffDoubles(t *testing.T) {
	s := &instant{}
	p := testPolicy(s)
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return &APIError{Status: http.StatusServiceUnavailable}
	})
	if err == nil || calls != 4 {
		t.Fatalf("calls = %d, err = %v; want 4 attempts then error", calls, err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(s.delays) != len(want) {
		t.Fatalf("delays = %v, want %v", s.delays, want)
	}
	for i := range want {
		if s.delays[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v (no jitter configured)", i, s.delays[i], want[i])
		}
	}
}

func TestRetryHonorsRetryAfterFloor(t *testing.T) {
	s := &instant{}
	p := testPolicy(s)
	p.Do(context.Background(), func() error {
		return &APIError{Status: http.StatusTooManyRequests, RetryAfter: 2 * time.Second}
	})
	for i, d := range s.delays {
		if d < 2*time.Second {
			t.Fatalf("delay %d = %v, below server Retry-After floor of 2s", i, d)
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	s := &instant{}
	p := testPolicy(s)
	p.Jitter = 0.5
	p.MaxAttempts = 2
	for _, rv := range []float64{0, 0.5, 0.999} {
		s.delays = nil
		p.Rand = func() float64 { return rv }
		p.Do(context.Background(), func() error {
			return &APIError{Status: http.StatusServiceUnavailable}
		})
		d := s.delays[0]
		lo, hi := 75*time.Millisecond, 125*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("rand=%v: jittered delay %v outside [%v, %v]", rv, d, lo, hi)
		}
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	s := &instant{}
	p := testPolicy(s)
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return &APIError{Status: http.StatusBadRequest}
	})
	var ae *APIError
	if !errors.As(err, &ae) || calls != 1 {
		t.Fatalf("calls = %d, err = %v; want single attempt on 400", calls, err)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := DefaultRetry().Do(ctx, func() error {
		calls++
		return errors.New("network down")
	})
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d, err = %v; want 1 attempt under cancelled context", calls, err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&APIError{Status: 429}, true},
		{&APIError{Status: 503}, true},
		{&APIError{Status: 502}, true},
		{&APIError{Status: 400}, false},
		{&APIError{Status: 404}, false},
		{&APIError{Status: 500}, false},
		{errors.New("connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Fatalf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestClientRetriesShedding drives a real HTTP round trip: the server sheds
// the first two attempts with 429 + Retry-After, then accepts. The client
// must transparently succeed.
func TestClientRetriesShedding(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Sleep:       (&instant{}).sleep,
	}))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after shedding: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientNoRetryPolicy pins the escape hatch: NoRetry must surface the
// first 429 immediately.
func TestClientNoRetryPolicy(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetry(NoRetry()))
	err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// TestClientTenantHeader pins that WithTenant stamps every request.
func TestClientTenantHeader(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(HeaderTenant))
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithTenant("alice"))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	if got.Load() != "alice" {
		t.Fatalf("tenant header = %q, want alice", got.Load())
	}
}
