package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func hashOf(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestResultCacheLRU(t *testing.T) {
	c, err := NewResultCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(hashOf(1), []byte("one"))
	c.Put(hashOf(2), []byte("two"))
	if _, ok := c.Get(hashOf(1)); !ok { // 1 becomes most recent
		t.Fatal("entry 1 missing")
	}
	c.Put(hashOf(3), []byte("three")) // evicts 2
	if _, ok := c.Get(hashOf(2)); ok {
		t.Error("entry 2 should have been evicted")
	}
	if raw, ok := c.Get(hashOf(1)); !ok || string(raw) != "one" {
		t.Errorf("entry 1 = %q, %v", raw, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"result":42}`)
	if err := c1.Put(hashOf(7), want); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same dir (a daemon restart) serves the result.
	c2, err := NewResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(hashOf(7))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after restart: got %q, %v", got, ok)
	}
	_, _, diskHits := c2.Stats()
	if diskHits != 1 {
		t.Errorf("diskHits = %d, want 1", diskHits)
	}

	// Memory eviction falls back to disk transparently.
	small, err := NewResultCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	small.Put(hashOf(8), []byte("evictor-a"))
	small.Put(hashOf(9), []byte("evictor-b")) // evicts 8 from memory
	if raw, ok := small.Get(hashOf(8)); !ok || string(raw) != "evictor-a" {
		t.Errorf("disk fallback after eviction: %q, %v", raw, ok)
	}
}

func TestResultCacheRejectsBadHashPaths(t *testing.T) {
	dir := t.TempDir()
	c, err := NewResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A non-hex key must never touch the filesystem (path traversal guard);
	// it still works as a memory-only key.
	key := "../escape"
	c.Put(key, []byte("x"))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("non-hash key escaped the cache directory")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("non-hash key created %d files in cache dir", len(entries))
	}
	if raw, ok := c.Get(key); !ok || string(raw) != "x" {
		t.Errorf("memory path broken for non-hash key: %q, %v", raw, ok)
	}
}

func TestResultCacheAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	c, err := NewResultCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put(hashOf(i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("leftover non-result file %q in cache dir", e.Name())
		}
	}
	if len(entries) != 10 {
		t.Errorf("cache dir has %d files, want 10", len(entries))
	}
}
