package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"context"

	"idyll/internal/fault"
	"idyll/internal/integrity"
)

func mustFaults(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// An injected worker panic fails exactly that job; the server and every
// subsequent job survive, and the injection shows up in /metrics.
func TestInjectedWorkerPanicFailsJobOnly(t *testing.T) {
	srv, c := newTestServer(t, Config{
		Workers: 1,
		Runner:  stubRunner(1),
		Faults:  mustFaults(t, "seed=3;worker.run:panic:count=1"),
	})
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, cellSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("status = %s (%s), want failed via injected panic", st.Status, st.Error)
	}

	// The injection budget (count=1) is spent: the next job runs clean.
	st2, err := c.SubmitAndWait(ctx, cellSpec(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Status != StatusDone {
		t.Fatalf("second job status = %s (%s), want done", st2.Status, st2.Error)
	}
	// Injection counters materialize at /metrics render time.
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"idylld_faults_injected 1",
		`idylld_faults_injected_site{site="worker.run"} 1`} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	_ = srv
}

// A bit-flipped disk cache entry is detected by the checksum envelope,
// quarantined to *.corrupt, counted, and transparently recomputed — the
// resubmission returns bytes identical to the original computation.
func TestDiskCorruptionQuarantineAndRecompute(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	srv, c := newTestServer(t, Config{
		Workers:      1,
		CacheEntries: 1, // single memory slot: the second spec evicts the first
		CacheDir:     dir,
		Runner: func(ctx context.Context, spec CanonicalSpec,
			p func(int, int, string)) ([]byte, error) {
			runs.Add(1)
			return stubRunner(1)(ctx, spec, p)
		},
		Faults: mustFaults(t, "seed=9;cache.disk.read:bitflip:count=1"),
	})
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, cellSpec(1), nil)
	if err != nil || st.Status != StatusDone {
		t.Fatalf("first job: %v %+v", err, st)
	}
	if _, err := c.SubmitAndWait(ctx, cellSpec(2), nil); err != nil {
		t.Fatal(err)
	}

	// Resubmission of the first spec reads its entry from disk; the armed
	// bitflip corrupts that read, so the job must recompute — and match.
	st2, err := c.SubmitAndWait(ctx, cellSpec(1), nil)
	if err != nil || st2.Status != StatusDone {
		t.Fatalf("resubmission: %v %+v", err, st2)
	}
	if string(st2.Result) != string(st.Result) {
		t.Fatal("recomputed bytes differ from the original result")
	}
	if runs.Load() != 3 {
		t.Fatalf("runs = %d, want 3 (corrupt entry recomputed)", runs.Load())
	}
	vf, q := srv.cache.IntegrityStats()
	if vf != 1 || q != 1 {
		t.Fatalf("verify failures = %d, quarantined = %d, want 1/1", vf, q)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("corrupt files = %v (err %v), want exactly one", matches, err)
	}
	// The recompute repaired the disk tier: the entry decodes again.
	hash := st.Hash
	blob, err := os.ReadFile(filepath.Join(dir, hash+".json"))
	if err != nil {
		t.Fatalf("repaired entry missing: %v", err)
	}
	payload, err := integrity.Unwrap(blob)
	if err != nil || string(payload) != string(st.Result) {
		t.Fatalf("repaired entry does not verify: %v", err)
	}
}

// A pre-envelope (legacy) disk entry is treated as a miss and rewritten in
// envelope form, not surfaced as an error.
func TestLegacyDiskEntryTreatedAsMiss(t *testing.T) {
	dir := t.TempDir()
	hash := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, hash+".json"), []byte(`{"old":"format"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cache, err := NewResultCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(hash); ok {
		t.Fatal("legacy entry served without verification")
	}
	vf, q := cache.IntegrityStats()
	if vf != 1 || q != 1 {
		t.Fatalf("verify failures = %d, quarantined = %d, want 1/1", vf, q)
	}
}

// The client rejects peer-fill payloads whose bytes disagree with the
// server's X-Idyll-Checksum header, and accepts them when the header is
// correct or absent (older peers).
func TestClientVerifiesChecksumHeader(t *testing.T) {
	hash := strings.Repeat("cd", 32)
	payload := []byte(`{"the":"bytes"}`)
	var mode atomic.Value // "good" | "bad" | "none"
	mode.Store("good")
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case "good":
			w.Header().Set(HeaderChecksum, integrity.SumHex(payload))
		case "bad":
			w.Header().Set(HeaderChecksum, strings.Repeat("00", 32))
		}
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	}))
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, WithRetry(NoRetry()))
	ctx := context.Background()

	data, ok, err := c.CacheGet(ctx, hash)
	if err != nil || !ok || string(data) != string(payload) {
		t.Fatalf("verified fetch failed: %v", err)
	}

	mode.Store("bad")
	_, _, err = c.CacheGet(ctx, hash)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("mismatched checksum not rejected: %v", err)
	}

	mode.Store("none")
	data, ok, err = c.CacheGet(ctx, hash)
	if err != nil || !ok || string(data) != string(payload) {
		t.Fatalf("header-less fetch (older peer) failed: %v", err)
	}
}

// Wait survives a mid-stream disconnect: it re-establishes the SSE stream,
// deduplicates replayed history by sequence number, and returns the final
// status — never a truncated-stream error.
func TestWaitResumesAfterStreamDisconnect(t *testing.T) {
	const id = "j1"
	var attempts, finished atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/"+id+"/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		n := attempts.Add(1)
		if n == 1 {
			// First attempt: two events, then the connection drops with no
			// terminal event (handler return closes the stream).
			fmt.Fprintf(w, "event: progress\ndata: {\"seq\":0,\"type\":\"progress\",\"done\":1,\"total\":4}\n\n")
			fmt.Fprintf(w, "event: progress\ndata: {\"seq\":1,\"type\":\"progress\",\"done\":2,\"total\":4}\n\n")
			return
		}
		// Resumed attempt: full history replay plus the terminal event.
		for i := 0; i < 4; i++ {
			fmt.Fprintf(w, "event: progress\ndata: {\"seq\":%d,\"type\":\"progress\",\"done\":%d,\"total\":4}\n\n", i, i+1)
		}
		fmt.Fprintf(w, "event: done\ndata: {\"seq\":4,\"type\":\"done\"}\n\n")
		finished.Store(1)
	})
	mux.HandleFunc("GET /v1/jobs/"+id, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if finished.Load() == 1 {
			fmt.Fprintf(w, `{"id":%q,"status":"done","result":{}}`, id)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"status":"running"}`, id)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	var got []int
	st, err := NewClient(hs.URL).Wait(context.Background(), id, func(ev Event) {
		got = append(got, ev.Seq)
	})
	if err != nil {
		t.Fatalf("Wait failed across disconnect: %v", err)
	}
	if st.Status != StatusDone {
		t.Fatalf("status = %s, want done", st.Status)
	}
	if attempts.Load() < 2 {
		t.Fatal("stream was never re-established")
	}
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want each of %v exactly once", got, want)
	}
	for i, seq := range want {
		if got[i] != seq {
			t.Fatalf("events = %v, want %v (replay not deduplicated)", got, want)
		}
	}
}
