package service

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustCanon(t *testing.T, s JobSpec) CanonicalSpec {
	t.Helper()
	c, err := s.Canonicalize()
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", s, err)
	}
	return c
}

func mustHash(t *testing.T, s JobSpec) string {
	t.Helper()
	h, err := mustCanon(t, s).Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSpecHashCollapsesSpellings(t *testing.T) {
	base := mustHash(t, JobSpec{Kind: "cell", App: "PR", Scheme: "idyll"})
	same := []JobSpec{
		{Kind: "CELL", App: "pr", Scheme: "IDYLL"},
		{Kind: "cell", App: "PR", Scheme: "idyll", Figure: "cell"},
		{Kind: "cell", App: "PR", Scheme: "idyll", TimeoutMS: 5000}, // execution knob
		{Kind: "cell", App: "PR", Scheme: "idyll",
			Options: json.RawMessage(`{"cus_per_gpu":16,"accesses_per_cu":600,"seed":20231028,"counter_threshold":2}`)},
	}
	for _, s := range same {
		if h := mustHash(t, s); h != base {
			t.Errorf("spec %+v hashed %s, want %s", s, h, base)
		}
	}
	diff := []JobSpec{
		{Kind: "cell", App: "MM", Scheme: "idyll"},
		{Kind: "cell", App: "PR", Scheme: "baseline"},
		{Kind: "cell", App: "PR", Scheme: "idyll", Figure: "fig11"},
		{Kind: "cell", App: "PR", Scheme: "idyll",
			Options: json.RawMessage(`{"seed":7}`)},
	}
	for _, s := range diff {
		if h := mustHash(t, s); h == base {
			t.Errorf("spec %+v hashed identically to the base spec", s)
		}
	}
}

func TestSpecSchemeAliasCanonicalizes(t *testing.T) {
	a := mustCanon(t, JobSpec{Kind: "cell", App: "PR", Scheme: "only-lazy"})
	b := mustCanon(t, JobSpec{Kind: "cell", App: "PR", Scheme: "lazy"})
	if a.Scheme != "lazy" || b.Scheme != "lazy" {
		t.Errorf("alias canonicalized to %q / %q, want \"lazy\"", a.Scheme, b.Scheme)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{}, "kind"},
		{JobSpec{Kind: "batch"}, "unknown kind"},
		{JobSpec{Kind: "cell", App: "PR"}, "scheme"},
		{JobSpec{Kind: "cell", App: "NOSUCH", Scheme: "idyll"}, "unknown application"},
		{JobSpec{Kind: "cell", App: "PR", Scheme: "NOSUCH"}, "unknown scheme"},
		{JobSpec{Kind: "figure"}, "figure"},
		{JobSpec{Kind: "figure", Figure: "fig99"}, "unknown id"},
		{JobSpec{Kind: "figure", Figure: "fig11", App: "PR"}, "only apply to cell"},
		{JobSpec{Kind: "cell", App: "PR", Scheme: "idyll", TimeoutMS: -1}, "negative"},
		{JobSpec{Kind: "cell", App: "PR", Scheme: "idyll",
			Options: json.RawMessage(`{"cus_per_gpu":-4}`)}, "negative"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Canonicalize()
		if err == nil {
			t.Errorf("Canonicalize(%+v) succeeded, want error containing %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Canonicalize(%+v) error %q, want substring %q", tc.spec, err, tc.want)
		}
	}
}

// Unknown-scheme and unknown-figure errors must name the valid choices —
// the shared-resolver contract the CLIs rely on too.
func TestSpecErrorsListValidNames(t *testing.T) {
	_, err := JobSpec{Kind: "cell", App: "PR", Scheme: "bogus"}.Canonicalize()
	if err == nil || !strings.Contains(err.Error(), "idyll+transfw") {
		t.Errorf("scheme error should list valid names, got: %v", err)
	}
	_, err = JobSpec{Kind: "figure", Figure: "bogus"}.Canonicalize()
	if err == nil || !strings.Contains(err.Error(), "fig11") {
		t.Errorf("figure error should list valid IDs, got: %v", err)
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"kind":"cell","app":"PR","scheme":"idyll","gpus":8}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
}
