package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Job states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Result sources: how a done job's bytes were obtained. Mirrored in the
// X-Idyll-Source response header so a coordinator can update copysets.
const (
	SourceComputed = "computed" // ran the simulation
	SourceCache    = "cache"    // local result cache (memory or disk)
	SourcePeer     = "peer"     // fetched from a peer's cache (copyset hint)
)

// Fleet-protocol headers understood by the daemon. The wire-protocol
// version string itself lives in internal/fleet; the daemon only echoes
// what cmd/idylld configures (Config.FleetVersion).
const (
	HeaderTenant  = "X-Idyll-Tenant"  // fairness/accounting identity
	HeaderCopyset = "X-Idyll-Copyset" // comma-separated peer base URLs holding this result
	HeaderPeers   = "X-Idyll-Peers"   // comma-separated current fleet peer base URLs
	HeaderSource  = "X-Idyll-Source"  // response: computed | cache | peer
	// HeaderChecksum carries the lowercase hex SHA-256 of the response body
	// on the peer-fill endpoints (GET /v1/cache/{hash}, GET /v1/ckpt/{key});
	// clients verify it before trusting transferred bytes.
	HeaderChecksum = "X-Idyll-Checksum"
)

// DefaultTenant labels submissions that carry no X-Idyll-Tenant header.
const DefaultTenant = "default"

// Event is one entry of a job's progress stream (GET /v1/jobs/{id}/events).
// Seq increases by one per event; subscribers that attach late replay the
// full history first, so the stream is totally ordered for every reader.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "queued", "started", "progress", "done", "failed", "cancelled"
	// Done/Total/Cell mirror experiment.Options.Progress for progress events.
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Cell  string `json:"cell,omitempty"`
	// Error carries the failure message on failed/cancelled events.
	Error string `json:"error,omitempty"`
}

// JobStatus is the wire form of a job (GET /v1/jobs/{id} and the POST
// response). Result is the raw result payload — byte-identical across
// cache hits by construction.
type JobStatus struct {
	ID     string  `json:"id"`
	Hash   string  `json:"hash"`
	Spec   JobSpec `json:"spec"`
	Status string  `json:"status"`
	// Cached marks a job answered from the result cache without running.
	Cached bool `json:"cached,omitempty"`
	// Deduped marks a submission that attached to an in-flight identical job.
	Deduped bool `json:"deduped,omitempty"`
	// Source reports how a done job's bytes were obtained: "computed",
	// "cache", or "peer" (peer cache fill instead of recompute).
	Source string          `json:"source,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// job is the server-side job record.
type job struct {
	id   string
	hash string
	spec CanonicalSpec

	cancel context.CancelFunc // set while running; cancels the run
	done   chan struct{}      // closed on reaching a terminal state

	mu       sync.Mutex
	status   string
	cached   bool
	source   string
	err      string
	result   []byte
	events   []Event
	subs     map[chan Event]struct{}
	started  time.Time
	finished time.Time
}

func newJob(id, hash string, spec CanonicalSpec) *job {
	j := &job{
		id:     id,
		hash:   hash,
		spec:   spec,
		done:   make(chan struct{}),
		status: StatusQueued,
		subs:   make(map[chan Event]struct{}),
	}
	j.emit(Event{Type: "queued"})
	return j
}

// emit appends an event and fans it out to subscribers. Slow subscribers
// never block the job: a full subscriber channel drops that event for that
// subscriber only (it still sees the terminal state via channel close and
// can fetch the full history again).
func (j *job) emit(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns the event history so far plus a live channel for
// subsequent events. The channel is closed once the job reaches a terminal
// state. Call the returned cancel func when done reading.
func (j *job) subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	if j.terminalLocked() {
		closed := make(chan Event)
		close(closed)
		return replay, closed, func() {}
	}
	ch := make(chan Event, 256)
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

func (j *job) terminalLocked() bool {
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled
}

// setRunning transitions queued→running.
func (j *job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.emit(Event{Type: "started"})
}

// finish transitions to a terminal state, emits the terminal event, closes
// subscriber channels, and releases waiters.
func (j *job) finish(status string, result []byte, errMsg string) {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.err = errMsg
	j.finished = time.Now()
	j.mu.Unlock()

	typ := map[string]string{
		StatusDone:      "done",
		StatusFailed:    "failed",
		StatusCancelled: "cancelled",
	}[status]
	j.emit(Event{Type: typ, Error: errMsg})

	j.mu.Lock()
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	j.mu.Unlock()
	close(j.done)
}

// snapshot renders the job's current wire status.
func (j *job) snapshot() (JobStatus, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	wire, err := j.spec.Wire()
	if err != nil {
		return JobStatus{}, err
	}
	return JobStatus{
		ID:     j.id,
		Hash:   j.hash,
		Spec:   wire,
		Status: j.status,
		Cached: j.cached,
		Source: j.source,
		Error:  j.err,
		Result: append(json.RawMessage(nil), j.result...),
	}, nil
}

// expired reports whether a terminal job finished more than ttl ago.
func (j *job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked() && !j.finished.IsZero() && now.Sub(j.finished) > ttl
}
