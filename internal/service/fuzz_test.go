package service

import (
	"strings"
	"testing"
)

// FuzzSplitComma guards the X-Idyll-Copyset / X-Idyll-Peers header parser:
// whatever a peer sends, the parse never panics, never yields an empty
// element, and never yields an element containing a comma or a space —
// join(parse(s)) must be a fixed point of the parse.
func FuzzSplitComma(f *testing.F) {
	f.Add("")
	f.Add("http://a:1,http://b:2")
	f.Add(" http://a:1 , ,, http://b:2 ")
	f.Add(",,,")
	f.Add("a,\x00,b")
	f.Fuzz(func(t *testing.T, s string) {
		out := splitComma(s)
		for _, el := range out {
			if el == "" {
				t.Fatalf("splitComma(%q) produced an empty element: %q", s, out)
			}
			if strings.ContainsAny(el, ", ") {
				t.Fatalf("splitComma(%q) element %q keeps separator chars", s, el)
			}
		}
		again := splitComma(strings.Join(out, ","))
		if len(again) != len(out) {
			t.Fatalf("splitComma not idempotent on %q: %q vs %q", s, out, again)
		}
		for i := range out {
			if again[i] != out[i] {
				t.Fatalf("splitComma not idempotent on %q: %q vs %q", s, out, again)
			}
		}
	})
}
