package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"idyll/internal/experiment"
	"idyll/internal/fault"
	"idyll/internal/integrity"
)

// Client is the typed Go client for an idylld daemon; cmd/idyllctl is a
// thin shell around it, and the fleet coordinator uses it to relay jobs to
// workers. Requests that fail with a retryable status (429 shed, 503
// drain) or a network error are retried under the configured RetryPolicy —
// safe even for submissions, because jobs are content-addressed and
// therefore idempotent.
type Client struct {
	base   string
	hc     *http.Client
	tenant string
	retry  RetryPolicy

	// faults/faultSite arm deterministic fault injection on this client's
	// requests (WithFaults). faultSite names the Err/Delay site; payload
	// mangling uses faultSite+".payload". nil faults = zero overhead.
	faults    *fault.Injector
	faultSite string
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithTenant attaches the X-Idyll-Tenant header to every request, feeding
// the server's per-tenant accounting, quotas, and fair-share scheduling.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// WithRetry replaces the default retry policy (DefaultRetry; use NoRetry
// for strict single-attempt behavior).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithHTTPClient replaces the underlying http.Client (tests inject
// httptest transports; the fleet shares a pooled client across workers).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithFaults arms deterministic fault injection on this client: each
// request consults inj at site (network errors, delays), and payloads
// fetched by CacheGet/CkptGet are additionally mangled at site+".payload"
// before checksum verification — which is how the chaos gate proves
// verification actually runs. A nil injector is inert.
func WithFaults(inj *fault.Injector, site string) ClientOption {
	return func(c *Client) { c.faults, c.faultSite = inj, site }
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). The underlying http.Client has no overall
// timeout — Wait streams events for a job's whole lifetime — so bound calls
// with a context instead.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{},
		retry: DefaultRetry(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the daemon base URL the client targets.
func (c *Client) Base() string { return c.base }

// apiErr decodes a non-2xx response into an *APIError carrying the
// server's message, the status code, and any Retry-After delay.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &APIError{Status: resp.StatusCode, RetryAfter: retryAfter(resp)}
	var wire apiError
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		e.Msg = wire.Error
	} else {
		e.Msg = string(bytes.TrimSpace(body))
	}
	return e
}

// do executes one HTTP request under the retry policy. Each attempt
// rebuilds the request (bodies are byte slices, so replay is safe). A
// response with a status outside ok is consumed, closed, and surfaced as
// *APIError; otherwise the caller owns resp.Body.
func (c *Client) do(ctx context.Context, method, path string, body []byte,
	hdr map[string]string, ok ...int) (*http.Response, error) {
	var resp *http.Response
	err := c.retry.Do(ctx, func() error {
		if c.faults != nil {
			c.faults.Delay(c.faultSite)
			if err := c.faults.Err(c.faultSite); err != nil {
				return err // a synthetic network error; retryable like one
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.tenant != "" {
			req.Header.Set(HeaderTenant, c.tenant)
		}
		for k, v := range hdr {
			if v != "" {
				req.Header.Set(k, v)
			}
		}
		r, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		for _, code := range ok {
			if r.StatusCode == code {
				resp = r
				return nil
			}
		}
		defer r.Body.Close()
		return apiErr(r)
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil, http.StatusOK)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitOpts carries per-call fleet metadata attached as headers; the
// zero value submits plainly.
type SubmitOpts struct {
	// Hints lists peer base URLs believed to hold this job's result
	// (copyset hints, X-Idyll-Copyset): the worker tries a peer cache
	// fill before recomputing.
	Hints []string
	// Peers lists the current fleet membership (X-Idyll-Peers), letting
	// workers on ephemeral ports learn where their peers live.
	Peers []string
}

func (o SubmitOpts) headers() map[string]string {
	return map[string]string{
		HeaderCopyset: strings.Join(o.Hints, ","),
		HeaderPeers:   strings.Join(o.Peers, ","),
	}
}

// Submit posts a job spec. The returned status reports whether the job was
// freshly queued, attached to an in-flight duplicate (Deduped), or answered
// directly from the result cache (Cached, Status "done", Result set).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	return c.SubmitWith(ctx, spec, SubmitOpts{})
}

// SubmitWith is Submit plus fleet metadata (copyset hints, peer list).
func (c *Client) SubmitWith(ctx context.Context, spec JobSpec, opts SubmitOpts) (*JobStatus, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", raw, opts.headers(),
		http.StatusOK, http.StatusAccepted)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait blocks until the job reaches a terminal state and returns its final
// status. Progress is streamed over SSE and forwarded to onEvent (which may
// be nil). A mid-stream disconnect is not fatal: Wait checks the job's
// status, then re-establishes the stream with backoff, deduplicating the
// replayed history by event Seq so onEvent sees each event exactly once.
// Servers without SSE degrade to the status polls the loop does anyway.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (*JobStatus, error) {
	lastSeq := -1
	dedup := func(ev Event) {
		if ev.Seq <= lastSeq {
			return // replayed history from a resumed stream
		}
		lastSeq = ev.Seq
		if onEvent != nil {
			onEvent(ev)
		}
	}
	delay := 50 * time.Millisecond
	for {
		_ = c.streamEvents(ctx, id, dedup) // nil: terminal event or server close
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		st, err := c.Status(ctx, id)
		switch {
		case err == nil:
			switch st.Status {
			case StatusDone, StatusFailed, StatusCancelled:
				return st, nil
			}
		case !Retryable(err):
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// streamEvents consumes the SSE stream until it ends (terminal event or
// server close). A nil return means the stream ended normally. The stream
// itself is not retried here — Wait re-establishes it after checking the
// job's status.
func (c *Client) streamEvents(ctx context.Context, id string, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	if c.tenant != "" {
		req.Header.Set(HeaderTenant, c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return sc.Err()
}

// SubmitAndWait submits a spec and waits for its result, combining Submit's
// cache fast path with Wait.
func (c *Client) SubmitAndWait(ctx context.Context, spec JobSpec, onEvent func(Event)) (*JobStatus, error) {
	return c.SubmitAndWaitWith(ctx, spec, SubmitOpts{}, onEvent)
}

// SubmitAndWaitWith is SubmitAndWait plus fleet metadata.
func (c *Client) SubmitAndWaitWith(ctx context.Context, spec JobSpec, opts SubmitOpts, onEvent func(Event)) (*JobStatus, error) {
	st, err := c.SubmitWith(ctx, spec, opts)
	if err != nil {
		return nil, err
	}
	if st.Status == StatusDone || st.Status == StatusFailed || st.Status == StatusCancelled {
		return st, nil
	}
	return c.Wait(ctx, st.ID, onEvent)
}

// Figure fetches a figure synchronously via GET /v1/figures/{name} and
// parses the resulting table.
func (c *Client) Figure(ctx context.Context, name string, o experiment.Options) (*experiment.Table, error) {
	q := url.Values{}
	if o.CUsPerGPU > 0 {
		q.Set("cus", fmt.Sprint(o.CUsPerGPU))
	}
	if o.AccessesPerCU > 0 {
		q.Set("accesses", fmt.Sprint(o.AccessesPerCU))
	}
	if o.Seed > 0 {
		q.Set("seed", fmt.Sprint(o.Seed))
	}
	if o.CounterThreshold > 0 {
		q.Set("threshold", fmt.Sprint(o.CounterThreshold))
	}
	if o.WarmupAccessesPerCU > 0 {
		q.Set("warmup", fmt.Sprint(o.WarmupAccessesPerCU))
	}
	if len(o.Apps) > 0 {
		q.Set("apps", strings.Join(o.Apps, ","))
	}
	path := "/v1/figures/" + url.PathEscape(name)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil, http.StatusOK)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return experiment.ParseTableJSON(string(raw))
}

// CacheGet fetches the raw result bytes a peer holds under hash
// (GET /v1/cache/{hash}). ok=false is a clean miss (the peer simply does
// not have it); errors are transport or server failures. Misses are not
// retried — a filler falls through to the next hint.
func (c *Client) CacheGet(ctx context.Context, hash string) (data []byte, ok bool, err error) {
	return c.getRaw(ctx, "/v1/cache/"+url.PathEscape(hash))
}

// CkptGet fetches a peer's warmup checkpoint under key
// (GET /v1/ckpt/{key}); miss/err semantics match CacheGet.
func (c *Client) CkptGet(ctx context.Context, key string) (data []byte, ok bool, err error) {
	return c.getRaw(ctx, "/v1/ckpt/"+url.PathEscape(key))
}

// ChecksumError reports a peer-fill payload whose bytes disagree with the
// X-Idyll-Checksum header the server sent: the transfer (or the peer's
// memory) is corrupt, and the bytes must not be used.
type ChecksumError struct {
	Path string // request path the bytes came from
	Want string // digest from the X-Idyll-Checksum header
	Got  string // digest of the received body
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("service: checksum mismatch on %s: header %.12s…, body %.12s…",
		e.Path, e.Want, e.Got)
}

func (c *Client) getRaw(ctx context.Context, path string) ([]byte, bool, error) {
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil,
		http.StatusOK, http.StatusNotFound)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if c.faults != nil {
		data = c.faults.Mangle(c.faultSite+".payload", data)
	}
	// Verify transferred bytes against the server's digest. Servers that
	// predate the header send none; those transfers pass unverified rather
	// than failing the fill.
	if want := resp.Header.Get(HeaderChecksum); want != "" {
		if !integrity.VerifyHex(data, want) {
			return nil, false, &ChecksumError{
				Path: path, Want: strings.TrimSpace(want), Got: integrity.SumHex(data),
			}
		}
	}
	return data, true, nil
}

// FillCache asks the daemon to pull the result under hash from one of
// sources into its local cache (POST /v1/cache/fill) — the replication
// push a coordinator issues after a job computes, so the result survives
// its computing worker's death. present reports the daemon already had it.
func (c *Client) FillCache(ctx context.Context, hash string, sources []string) (filled, present bool, err error) {
	raw, err := json.Marshal(fillRequest{Hash: hash, Sources: sources})
	if err != nil {
		return false, false, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/cache/fill", raw, nil, http.StatusOK)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	var out fillResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, false, err
	}
	return out.Filled, out.Present, nil
}

// HealthInfo is the decoded GET /healthz payload.
type HealthInfo struct {
	Status       string `json:"status"`
	Draining     bool   `json:"draining"`
	WorkerID     string `json:"worker_id"`
	FleetVersion string `json:"fleet_version"`
}

// Healthz fetches the full health payload — the fleet membership probe
// reads Draining and FleetVersion from it. A prober that supplies its own
// cadence and failure accounting should construct its client with
// WithRetry(NoRetry()).
func (c *Client) Healthz(ctx context.Context) (*HealthInfo, error) {
	var out HealthInfo
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz reports "ok".
func (c *Client) Health(ctx context.Context) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("idylld: health status %q", h.Status)
	}
	return nil
}

// MetricsText fetches the raw GET /metrics text exposition (the fleet
// rollup re-serves worker lines verbatim under per-worker labels).
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil, http.StatusOK)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// Metrics fetches and parses GET /metrics.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	text, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(text)
}
