package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"idyll/internal/experiment"
)

// Client is the typed Go client for an idylld daemon; cmd/idyllctl is a
// thin shell around it.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). The underlying http.Client has no overall
// timeout — Wait streams events for a job's whole lifetime — so bound calls
// with a context instead.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiErr decodes a non-2xx response into an error carrying the server's
// message and status code.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e apiError
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("idylld: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("idylld: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec. The returned status reports whether the job was
// freshly queued, attached to an in-flight duplicate (Deduped), or answered
// directly from the result cache (Cached, Status "done", Result set).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiErr(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait blocks until the job reaches a terminal state and returns its final
// status. Progress is streamed over SSE and forwarded to onEvent (which may
// be nil); if the event stream drops, Wait falls back to polling, so it
// survives daemon-side stream limits and proxies that buffer SSE.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (*JobStatus, error) {
	if err := c.streamEvents(ctx, id, onEvent); err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Terminal state reached (or the stream broke): poll until terminal.
	delay := 50 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// streamEvents consumes the SSE stream until it ends (terminal event or
// server close). A nil return means the stream ended normally.
func (c *Client) streamEvents(ctx context.Context, id string, onEvent func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return sc.Err()
}

// SubmitAndWait submits a spec and waits for its result, combining Submit's
// cache fast path with Wait.
func (c *Client) SubmitAndWait(ctx context.Context, spec JobSpec, onEvent func(Event)) (*JobStatus, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if st.Status == StatusDone || st.Status == StatusFailed || st.Status == StatusCancelled {
		return st, nil
	}
	return c.Wait(ctx, st.ID, onEvent)
}

// Figure fetches a figure synchronously via GET /v1/figures/{name} and
// parses the resulting table.
func (c *Client) Figure(ctx context.Context, name string, o experiment.Options) (*experiment.Table, error) {
	q := url.Values{}
	if o.CUsPerGPU > 0 {
		q.Set("cus", fmt.Sprint(o.CUsPerGPU))
	}
	if o.AccessesPerCU > 0 {
		q.Set("accesses", fmt.Sprint(o.AccessesPerCU))
	}
	if o.Seed > 0 {
		q.Set("seed", fmt.Sprint(o.Seed))
	}
	if o.CounterThreshold > 0 {
		q.Set("threshold", fmt.Sprint(o.CounterThreshold))
	}
	if o.WarmupAccessesPerCU > 0 {
		q.Set("warmup", fmt.Sprint(o.WarmupAccessesPerCU))
	}
	if len(o.Apps) > 0 {
		q.Set("apps", strings.Join(o.Apps, ","))
	}
	path := "/v1/figures/" + url.PathEscape(name)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return experiment.ParseTableJSON(string(raw))
}

// Metrics fetches and parses GET /metrics.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(string(raw))
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out struct {
		Status string `json:"status"`
	}
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return err
	}
	if out.Status != "ok" {
		return fmt.Errorf("idylld: health status %q", out.Status)
	}
	return nil
}
