package service

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsRenderStableOrder is the regression test for the /metrics
// ordering contract: lines are sorted by metric name (not by formatted
// line), so the order is a pure function of the key set and never shifts
// as values grow. The fleet rollup and the CI gates diff this text.
func TestMetricsRenderStableOrder(t *testing.T) {
	m := NewMetrics()
	m.Inc("jobs_submitted", 2)
	m.Inc("cache_hits", 100)
	m.Inc("jobs_completed", 1)
	m.IncLabeled("tenant_jobs_accepted", "tenant", "alice", 3)
	m.ObserveJobLatency(1500 * time.Microsecond)

	first := m.Render(map[string]int{"queue_depth": 7, "jobs_inflight": 0})

	// Same keys, wildly different values: the order must not move.
	m.Inc("jobs_submitted", 999998)
	m.Inc("cache_hits", 5)
	m.IncLabeled("tenant_jobs_accepted", "tenant", "alice", 40)
	second := m.Render(map[string]int{"queue_depth": 0, "jobs_inflight": 12})

	names := func(text string) []string {
		var out []string
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			name, _, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed metrics line %q", line)
			}
			out = append(out, name)
		}
		return out
	}
	n1, n2 := names(first), names(second)
	if len(n1) != len(n2) {
		t.Fatalf("key set changed: %d vs %d lines", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("line %d moved: %q vs %q\nfirst:\n%s\nsecond:\n%s",
				i, n1[i], n2[i], first, second)
		}
	}
	// And the order is genuinely sorted by name.
	for i := 1; i < len(n1); i++ {
		if n1[i-1] >= n1[i] {
			t.Fatalf("names not strictly sorted: %q then %q", n1[i-1], n1[i])
		}
	}
}

func TestRenderMetricLinesSortsKeys(t *testing.T) {
	got := RenderMetricLines("fleet_", map[string]string{
		"zeta":             "1",
		"alpha":            "22",
		`mid{worker="w2"}`: "3",
	})
	want := "fleet_alpha 22\nfleet_mid{worker=\"w2\"} 3\nfleet_zeta 1\n"
	if got != want {
		t.Fatalf("RenderMetricLines:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelKeySanitizes(t *testing.T) {
	got := LabelKey("tenant_jobs_shed", "tenant", `ali"ce{}\ bob`+"\n")
	if strings.ContainsAny(got[len(`tenant_jobs_shed{tenant="`):], "\n") {
		t.Fatalf("newline survived sanitization: %q", got)
	}
	want := `tenant_jobs_shed{tenant="ali_ce___-_bob_"}`
	_ = want // exact replacement chars checked below
	if !strings.HasPrefix(got, `tenant_jobs_shed{tenant="`) || !strings.HasSuffix(got, `"}`) {
		t.Fatalf("malformed labeled key %q", got)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(got, `tenant_jobs_shed{tenant="`), `"}`)
	if strings.ContainsAny(inner, `"{}\`+" \n\r\t") {
		t.Fatalf("unsafe characters survived in label value %q", inner)
	}
	// Long values are clipped.
	long := LabelKey("n", "l", strings.Repeat("x", 500))
	if len(long) > len(`n{l=""}`)+70 {
		t.Fatalf("label value not clipped: %d bytes", len(long))
	}
}

func TestMetricsParseRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Inc("jobs_submitted", 42)
	m.IncLabeled("tenant_jobs_accepted", "tenant", "bob", 7)
	parsed, err := ParseMetrics(m.Render(nil))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	if parsed["idylld_jobs_submitted"] != 42 {
		t.Fatalf("jobs_submitted = %v, want 42", parsed["idylld_jobs_submitted"])
	}
	if parsed[`idylld_tenant_jobs_accepted{tenant="bob"}`] != 7 {
		t.Fatalf("labeled counter = %v, want 7", parsed[`idylld_tenant_jobs_accepted{tenant="bob"}`])
	}
}
