package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"idyll/internal/sim"
	"idyll/internal/stats"
)

// Metrics aggregates the daemon's operational counters, exposed as plain
// text on GET /metrics (one "name value" pair per line, prometheus-style
// names without the type annotations). Safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	counters map[string]uint64
	// latency holds completed-job wall time in microseconds; the power-of-
	// two bucketing of stats.Histogram is plenty for p50/p99 of jobs whose
	// durations span micro- (cache hit) to many seconds (figure run).
	latency *stats.Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		latency:  stats.NewHistogram(),
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set overwrites the named counter (used to mirror cache statistics).
func (m *Metrics) Set(name string, v uint64) {
	m.mu.Lock()
	m.counters[name] = v
	m.mu.Unlock()
}

// Counter reads one counter's current value.
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// ObserveJobLatency records one completed job's wall time.
func (m *Metrics) ObserveJobLatency(d time.Duration) {
	m.mu.Lock()
	m.latency.Add(sim.VTime(d.Microseconds()))
	m.mu.Unlock()
}

// Render emits every counter plus latency percentiles, sorted by name so
// output is stable for tests and diffing. gauges carries point-in-time
// values (queue depth, in-flight) the server samples at render time.
func (m *Metrics) Render(gauges map[string]int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	lines := make([]string, 0, len(m.counters)+len(gauges)+4)
	for name, v := range m.counters {
		lines = append(lines, fmt.Sprintf("idylld_%s %d", name, v))
	}
	for name, v := range gauges {
		lines = append(lines, fmt.Sprintf("idylld_%s %d", name, v))
	}
	lines = append(lines,
		fmt.Sprintf("idylld_job_latency_count %d", m.latency.Count()),
		fmt.Sprintf("idylld_job_latency_mean_us %.0f", m.latency.Mean()),
		fmt.Sprintf("idylld_job_latency_p50_us %d", m.latency.Percentile(50)),
		fmt.Sprintf("idylld_job_latency_p99_us %d", m.latency.Percentile(99)),
	)
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// ParseMetrics decodes a Render payload back into a name→value map — the
// client-side half, used by idyllctl and the CI smoke test to assert on
// cache-hit counters.
func ParseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("service: bad metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(value, "%g", &v); err != nil {
			return nil, fmt.Errorf("service: bad metrics value %q: %w", line, err)
		}
		out[name] = v
	}
	return out, nil
}
