package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"idyll/internal/sim"
	"idyll/internal/stats"
)

// MetricKeys is the registry of every metric name the daemon and the fleet
// coordinator expose: plain counters, labeled-counter base names, gauges
// sampled at render time, and the latency summary lines. The /metrics text
// is a contract surface — the fleet rollup, the CI smoke tests, and
// dashboards grep it by name — so the idyllvet metricreg check enforces
// this list in both directions: a literal key incremented anywhere in
// internal/service or internal/fleet must appear here, and every entry here
// must be backed by code. Entries ending in "*" register a runtime-built
// family by prefix (e.g. fleet_results_<source>). Keep the list sorted.
var MetricKeys = []string{
	"cache_corrupt_quarantined",
	"cache_disk_hits",
	"cache_entries",
	"cache_hits",
	"cache_misses",
	"cache_verify_failures",
	"ckpt_corrupt_quarantined",
	"ckpt_disk_hits",
	"ckpt_entries",
	"ckpt_hits",
	"ckpt_misses",
	"ckpt_peer_serve_misses",
	"ckpt_peer_serves",
	"ckpt_peer_verify_failures",
	"ckpt_remote_hits",
	"ckpt_verify_failures",
	"faults_injected",
	"faults_injected_site",
	"fleet_breaker_trips",
	"fleet_breaker_trips_worker",
	"fleet_degraded_local_runs",
	"fleet_jobs_dispatched",
	"fleet_replications",
	"fleet_reroutes",
	"fleet_results_*",
	"job_latency_count",
	"job_latency_mean_us",
	"job_latency_p50_us",
	"job_latency_p99_us",
	"job_panics",
	"jobs_accepted",
	"jobs_cancelled",
	"jobs_completed",
	"jobs_deduped",
	"jobs_failed",
	"jobs_inflight",
	"jobs_shed",
	"jobs_tracked",
	"peer_fill_misses",
	"peer_fills",
	"peer_serve_misses",
	"peer_serves",
	"peer_verify_failures",
	"queue_depth",
	"scrape_error",
	"tenant_jobs_accepted",
	"tenant_jobs_completed",
	"tenant_jobs_shed",
}

// Metrics aggregates the daemon's operational counters, exposed as plain
// text on GET /metrics (one "name value" pair per line, prometheus-style
// names without the type annotations). Safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	counters map[string]uint64
	// latency holds completed-job wall time in microseconds; the power-of-
	// two bucketing of stats.Histogram is plenty for p50/p99 of jobs whose
	// durations span micro- (cache hit) to many seconds (figure run).
	latency *stats.Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		latency:  stats.NewHistogram(),
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// IncLabeled adds delta to the counter name{label="value"} — the one-label
// prometheus-style form used for per-tenant and per-worker breakdowns. The
// label value is sanitized so arbitrary header input cannot break the
// line-oriented format.
func (m *Metrics) IncLabeled(name, label, value string, delta uint64) {
	m.Inc(LabelKey(name, label, value), delta)
}

// LabelKey renders the canonical labeled-counter key. Label values are
// clipped to 64 bytes and stripped of characters that would corrupt the
// text exposition (quotes, braces, whitespace).
func LabelKey(name, label, value string) string {
	var b strings.Builder
	for _, r := range value {
		switch {
		case r == '"' || r == '{' || r == '}' || r == '\\',
			r == ' ' || r == '\n' || r == '\r' || r == '\t':
			b.WriteByte('_')
		default:
			b.WriteRune(r)
		}
		if b.Len() >= 64 {
			break
		}
	}
	return name + `{` + label + `="` + b.String() + `"}`
}

// Set overwrites the named counter (used to mirror cache statistics).
func (m *Metrics) Set(name string, v uint64) {
	m.mu.Lock()
	m.counters[name] = v
	m.mu.Unlock()
}

// Counter reads one counter's current value.
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// ObserveJobLatency records one completed job's wall time.
func (m *Metrics) ObserveJobLatency(d time.Duration) {
	m.mu.Lock()
	m.latency.Add(sim.VTime(d.Microseconds()))
	m.mu.Unlock()
}

// Render emits every counter plus latency percentiles as one
// "idylld_<name> <value>" line each, sorted by metric *name* — not by
// formatted line — so the order is a pure function of the key set and can
// never shift as values grow. Byte-stable output is a contract here: the
// fleet rollup and the CI gates diff and grep this text, so map-order or
// value-dependent ordering would be diff noise at best and a flaky gate at
// worst (RenderMetricLines has the regression test). gauges carries
// point-in-time values (queue depth, in-flight) the server samples at
// render time.
func (m *Metrics) Render(gauges map[string]int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	vals := make(map[string]string, len(m.counters)+len(gauges)+4)
	for name, v := range m.counters {
		vals[name] = fmt.Sprintf("%d", v)
	}
	for name, v := range gauges {
		vals[name] = fmt.Sprintf("%d", v)
	}
	vals["job_latency_count"] = fmt.Sprintf("%d", m.latency.Count())
	vals["job_latency_mean_us"] = fmt.Sprintf("%.0f", m.latency.Mean())
	vals["job_latency_p50_us"] = fmt.Sprintf("%d", m.latency.Percentile(50))
	vals["job_latency_p99_us"] = fmt.Sprintf("%d", m.latency.Percentile(99))
	return RenderMetricLines("idylld_", vals)
}

// RenderMetricLines formats a name→value map as sorted "prefix<name> value"
// lines, the shared text-exposition renderer for the daemon's /metrics and
// the fleet coordinator's rollup. Keys are sorted with sort.Strings before
// values are attached, so the line order is independent of both map
// iteration order and the values themselves.
func RenderMetricLines(prefix string, vals map[string]string) string {
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(prefix)
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(vals[name])
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseMetrics decodes a Render payload back into a name→value map — the
// client-side half, used by idyllctl and the CI smoke test to assert on
// cache-hit counters.
func ParseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("service: bad metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(value, "%g", &v); err != nil {
			return nil, fmt.Errorf("service: bad metrics value %q: %w", line, err)
		}
		out[name] = v
	}
	return out, nil
}
