// Package service is the simulation-as-a-service layer: an HTTP daemon
// (cmd/idylld) that accepts simulation jobs — single (app, scheme) cells or
// whole registry figures — runs them on a bounded worker pool layered on the
// experiment runner, and serves results.
//
// Because every job is fully deterministic given its spec (the determinism
// guarantee of internal/experiment), results are content-addressed: a
// canonical encoding of the spec is hashed, duplicate submissions dedupe
// onto one in-flight execution (singleflight), and repeat queries are
// answered byte-identically from an in-memory LRU backed by an optional
// on-disk store.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"idyll/internal/config"
	"idyll/internal/experiment"
	"idyll/internal/workload"
)

// Job kinds.
const (
	KindCell   = "cell"   // one (app, scheme) simulation via the cell runner
	KindFigure = "figure" // a full registry entry (fig11, table3, ...)
)

// JobSpec is the wire form of a job submission (POST /v1/jobs). Fields the
// daemon does not understand are rejected, not ignored: an unknown knob must
// never alias a cached result computed without it.
type JobSpec struct {
	// Kind selects what runs: "cell" or "figure".
	Kind string `json:"kind"`
	// Figure is the registry ID for figure jobs ("fig11"). For cell jobs it
	// is an optional label that salts the cell seed (default "cell"), so a
	// service cell with figure "fig11" draws the exact trace the suite's
	// fig11 cells draw (experiment.CellSeed).
	Figure string `json:"figure,omitempty"`
	// App is the application abbreviation (cell jobs; see Table 3).
	App string `json:"app,omitempty"`
	// Scheme is the scheme name (cell jobs; config.SchemeNames).
	Scheme string `json:"scheme,omitempty"`
	// Options is the experiment scale, in experiment.Options canonical-JSON
	// form (cus_per_gpu, accesses_per_cu, seed, apps, counter_threshold).
	// Omitted fields fill from experiment.DefaultOptions.
	Options json.RawMessage `json:"options,omitempty"`
	// TimeoutMS optionally caps the job's run time. It is an execution
	// knob, not result identity: it is excluded from the content hash.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CanonicalSpec is a validated, normalized job spec: names resolved to
// their canonical spellings, options default-filled, ready to hash and run.
type CanonicalSpec struct {
	Kind    string
	Figure  string
	App     string
	Scheme  string
	Options experiment.Options
	Timeout time.Duration // 0 = server default; not part of the hash
	// Tenant is the fairness/accounting identity the submission arrived
	// under (X-Idyll-Tenant header; "default" when absent). Like Timeout it
	// is execution metadata, never part of the content address: two tenants
	// submitting the same simulation share one cache entry by design.
	Tenant string
	// Hints is the copyset hint that rode in on X-Idyll-Copyset: base URLs
	// of peers believed to already hold this spec's result, tried by the
	// peer-fill path before recomputing. Execution metadata, never hashed.
	Hints []string
}

// Canonicalize validates s against the same resolvers the CLIs use —
// experiment.Find for figure IDs, config.SchemeByName for schemes,
// workload.App for applications — and returns its canonical form. Errors
// name the valid choices.
func (s JobSpec) Canonicalize() (CanonicalSpec, error) {
	c := CanonicalSpec{Kind: strings.ToLower(strings.TrimSpace(s.Kind))}
	if s.TimeoutMS < 0 {
		return CanonicalSpec{}, fmt.Errorf("service: timeout_ms = %d is negative", s.TimeoutMS)
	}
	c.Timeout = time.Duration(s.TimeoutMS) * time.Millisecond

	if len(s.Options) > 0 {
		o, err := experiment.OptionsFromCanonicalJSON(s.Options)
		if err != nil {
			return CanonicalSpec{}, fmt.Errorf("service: %w", err)
		}
		c.Options = o
	} else {
		o, err := experiment.Options{}.Canonical()
		if err != nil {
			return CanonicalSpec{}, err
		}
		c.Options = o
	}

	switch c.Kind {
	case KindCell:
		if s.App == "" || s.Scheme == "" {
			return CanonicalSpec{}, fmt.Errorf(`service: cell jobs need "app" and "scheme"`)
		}
		app, err := workload.App(s.App)
		if err != nil {
			return CanonicalSpec{}, fmt.Errorf("service: %w", err)
		}
		c.App = app.Abbr
		c.Scheme, err = canonicalSchemeName(s.Scheme)
		if err != nil {
			return CanonicalSpec{}, fmt.Errorf("service: %w", err)
		}
		c.Figure = strings.ToLower(strings.TrimSpace(s.Figure))
		if c.Figure == "" {
			c.Figure = "cell"
		}
	case KindFigure:
		if s.Figure == "" {
			return CanonicalSpec{}, fmt.Errorf(`service: figure jobs need "figure"`)
		}
		if s.App != "" || s.Scheme != "" {
			return CanonicalSpec{}, fmt.Errorf(`service: "app"/"scheme" only apply to cell jobs`)
		}
		e, err := experiment.Find(s.Figure)
		if err != nil {
			return CanonicalSpec{}, fmt.Errorf("service: %w", err)
		}
		c.Figure = e.ID
	case "":
		return CanonicalSpec{}, fmt.Errorf(`service: missing "kind" (valid: %s, %s)`, KindCell, KindFigure)
	default:
		return CanonicalSpec{}, fmt.Errorf("service: unknown kind %q (valid: %s, %s)",
			s.Kind, KindCell, KindFigure)
	}
	return c, nil
}

// canonicalSchemeName maps any accepted scheme spelling (alias, mixed case)
// to its canonical name from config.SchemeNames, so "Only-Lazy", "lazy",
// and "LAZY" all hash to one content address.
func canonicalSchemeName(name string) (string, error) {
	want, err := config.SchemeByName(name)
	if err != nil {
		return "", err
	}
	for _, n := range config.SchemeNames() {
		if s, err := config.SchemeByName(n); err == nil && s.Name == want.Name {
			return n, nil
		}
	}
	return strings.ToLower(strings.TrimSpace(name)), nil
}

// canonicalJSON is the hashed encoding: fixed field order, canonical names,
// default-filled options, execution knobs (timeout) excluded.
func (c CanonicalSpec) canonicalJSON() ([]byte, error) {
	opts, err := c.Options.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(`{"kind":`)
	b.Write(mustJSON(c.Kind))
	b.WriteString(`,"figure":`)
	b.Write(mustJSON(c.Figure))
	if c.Kind == KindCell {
		b.WriteString(`,"app":`)
		b.Write(mustJSON(c.App))
		b.WriteString(`,"scheme":`)
		b.Write(mustJSON(c.Scheme))
	}
	b.WriteString(`,"options":`)
	b.Write(opts)
	b.WriteString(`}`)
	return []byte(b.String()), nil
}

func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // strings and numbers cannot fail to marshal
	}
	return raw
}

// Hash returns the spec's content address: hex SHA-256 of the canonical
// encoding. Two submissions hash equal iff the determinism guarantee says
// their results are byte-identical.
func (c CanonicalSpec) Hash() (string, error) {
	raw, err := c.canonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Wire returns the canonical spec in JobSpec wire form (for status JSON).
func (c CanonicalSpec) Wire() (JobSpec, error) {
	opts, err := c.Options.CanonicalJSON()
	if err != nil {
		return JobSpec{}, err
	}
	return JobSpec{
		Kind:      c.Kind,
		Figure:    c.Figure,
		App:       c.App,
		Scheme:    c.Scheme,
		Options:   opts,
		TimeoutMS: c.Timeout.Milliseconds(),
	}, nil
}

// DecodeSpec parses a JobSpec from raw JSON, rejecting unknown fields.
func DecodeSpec(raw []byte) (JobSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("service: parsing job spec: %w", err)
	}
	return s, nil
}
