package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"idyll/internal/checkpoint/store"
	"idyll/internal/experiment"
	"idyll/internal/fault"
	"idyll/internal/integrity"
)

// Config tunes the daemon. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers bounds how many jobs run concurrently (default GOMAXPROCS).
	// Each job may itself parallelize across cells via its options' Jobs.
	Workers int
	// Par runs every simulation on the parallel event engine with this many
	// worker goroutines (values below 2 keep the serial engine). A pure
	// execution knob: results, and therefore spec hashes and cache contents,
	// are byte-identical at any setting. Ignored when Runner is injected.
	Par int
	// QueueDepth bounds the accepted-but-not-running backlog (default 64).
	// A full queue sheds load: POST answers 429 with Retry-After.
	QueueDepth int
	// Queue, when non-nil, replaces the default bounded FIFO backlog with a
	// custom JobQueue — the fleet coordinator injects a weighted fair-share
	// scheduler here. QueueDepth and TenantQueueMax are ignored when set.
	Queue JobQueue
	// TenantQueueMax, when positive, caps how many queued jobs any single
	// tenant (X-Idyll-Tenant) may hold in the default FIFO backlog; the
	// excess sheds with 429 before the global queue fills. 0 = no cap.
	TenantQueueMax int
	// PeerFill, when non-nil, is consulted when a job is about to run after
	// missing the result cache: given the spec hash and the copyset hint
	// that rode in on X-Idyll-Copyset (base URLs of peers believed to hold
	// the result), it returns the result bytes fetched from a peer. A
	// successful fill is cached and finishes the job without recomputing
	// (metrics: peer_fills / peer_fill_misses).
	PeerFill func(ctx context.Context, hash string, hints []string) ([]byte, bool)
	// CkptFill, when non-nil, is installed as the warmup-checkpoint store's
	// remote-fill hook: consulted after a memory and disk miss, before the
	// warmup is recomputed. Ignored when Runner is injected.
	CkptFill func(key string) ([]byte, bool)
	// OnPeers, when non-nil, receives the peer list that rode in on
	// X-Idyll-Peers with a dispatch — the coordinator's way of teaching
	// workers who their current peers are without static configuration.
	OnPeers func(peers []string)
	// FleetID is this process's stable fleet member name (idylld -fleet-id),
	// echoed in /healthz; the coordinator's rendezvous hashing keys on it.
	FleetID string
	// FleetVersion is the fleet wire-protocol version string echoed in
	// /healthz so a coordinator can refuse incompatible workers.
	FleetVersion string
	// CacheEntries sizes the in-memory result LRU (default 256).
	CacheEntries int
	// CacheDir, when non-empty, persists results on disk so cache contents
	// survive restarts.
	CacheDir string
	// CkptEntries sizes the in-memory warmup-checkpoint LRU (default 64).
	// Checkpoints are full machine states, orders of magnitude larger than
	// result payloads, so the default is smaller than CacheEntries.
	CkptEntries int
	// CkptDir, when non-empty, persists warmup checkpoints on disk so a
	// restarted daemon serves warmups computed in a previous life. Ignored
	// when Runner is injected.
	CkptDir string
	// TTL is how long finished job records stay queryable (default 15m);
	// cached results are unaffected — only the job-ID records expire.
	TTL time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// JobTimeout caps one job's run time (default 10m). A spec's timeout_ms
	// may only shorten it.
	JobTimeout time.Duration
	// Runner executes specs (default RunSpec). Tests inject stubs.
	Runner RunFunc
	// Faults, when non-nil, arms deterministic fault injection (idylld
	// -fault-spec). Sites this server exercises: cache.disk.read,
	// cache.disk.write, ckpt.disk.read, ckpt.disk.write (storage) and
	// worker.run (delay/panic around job execution). nil = zero overhead.
	Faults *fault.Injector
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CkptEntries <= 0 {
		c.CkptEntries = 64
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	// Runner's default is filled in NewServer, not here: the production
	// RunFunc closes over the server's warmup-checkpoint store.
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the simulation service: job queue, worker pool, result cache,
// and the HTTP API. Build with NewServer, serve via Handler, stop with
// Drain.
type Server struct {
	cfg     Config
	cache   *ResultCache
	ckpt    *store.Store // warmup checkpoints, shared by every job
	metrics *Metrics
	mux     *http.ServeMux

	baseCtx    context.Context // cancelled to force-stop in-flight jobs
	baseCancel context.CancelFunc

	queue JobQueue

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job // job ID → record (terminal records GC'd by TTL)
	inflight map[string]*job // spec hash → live job (the singleflight map)
	running  int             // jobs currently executing
	nextID   int

	workers sync.WaitGroup
	gcStop  chan struct{}
	gcDone  chan struct{}
}

// NewServer builds and starts a server: workers and the TTL sweeper run
// until Drain.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewResultCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	cache.SetFaults(cfg.Faults)
	ckpt := store.New(cfg.CkptEntries, cfg.CkptDir)
	ckpt.SetFaults(cfg.Faults)
	if cfg.CkptFill != nil {
		ckpt.SetRemoteFill(cfg.CkptFill)
	}
	if cfg.Runner == nil {
		cfg.Runner = RunSpecWith(cfg.Par, ckpt)
	}
	queue := cfg.Queue
	if queue == nil {
		queue = NewFIFOQueue(cfg.QueueDepth, cfg.TenantQueueMax)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		ckpt:       ckpt,
		metrics:    NewMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      queue,
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		gcStop:     make(chan struct{}),
		gcDone:     make(chan struct{}),
	}
	s.mux = s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	go s.gcLoop()
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (for embedding and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain performs the graceful-shutdown sequence: stop accepting new jobs
// (submissions answer 503), let queued and in-flight jobs finish, and
// return once every worker has stopped. If ctx expires first, in-flight
// jobs are cancelled at their next event-loop batch boundary and Drain
// waits for that cancellation to land, returning ctx.Err(). Results are
// written to the disk cache synchronously at job completion, so a clean
// drain implies a flushed cache.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.queue.Close()
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight jobs, then wait for them to stop
		<-done
	}
	if !already {
		close(s.gcStop)
	}
	<-s.gcDone
	s.baseCancel()
	return err
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errDraining marks submissions rejected because shutdown has begun; queue
// rejections satisfy errors.Is(err, ErrQueueFull) instead.
var errDraining = errors.New("service: draining, not accepting jobs")

// submit is the single entry point for new work: cache lookup, singleflight
// dedupe against in-flight identical jobs, then enqueue. The returned
// JobStatus reflects the submission outcome (Cached/Deduped set
// accordingly); the *job is registered and queryable by ID either way.
func (s *Server) submit(spec CanonicalSpec) (*job, JobStatus, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, JobStatus{}, err
	}

	if raw, ok := s.cache.Get(hash); ok {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, JobStatus{}, errDraining
		}
		j := newJob(s.nextIDLocked(), hash, spec)
		s.jobs[j.id] = j
		s.mu.Unlock()
		j.mu.Lock()
		j.cached = true
		j.source = SourceCache
		j.mu.Unlock()
		j.finish(StatusDone, raw, "")
		st, err := j.snapshot()
		return j, st, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, JobStatus{}, errDraining
	}
	if live, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		s.metrics.Inc("jobs_deduped", 1)
		st, err := live.snapshot()
		st.Deduped = true
		return live, st, err
	}
	j := newJob(s.nextIDLocked(), hash, spec)
	if err := s.queue.Push(spec.Tenant, j); err != nil {
		s.mu.Unlock()
		s.metrics.Inc("jobs_shed", 1)
		s.metrics.IncLabeled("tenant_jobs_shed", "tenant", tenantOrDefault(spec.Tenant), 1)
		return nil, JobStatus{}, err
	}
	s.jobs[j.id] = j
	s.inflight[hash] = j
	s.mu.Unlock()
	s.metrics.Inc("jobs_accepted", 1)
	s.metrics.IncLabeled("tenant_jobs_accepted", "tenant", tenantOrDefault(spec.Tenant), 1)
	st, err := j.snapshot()
	return j, st, err
}

// tenantOrDefault normalizes the accounting label for submissions that
// carried no X-Idyll-Tenant header.
func tenantOrDefault(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

func (s *Server) nextIDLocked() string {
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker drains the queue until Drain closes it (queued jobs still pop and
// run during drain; force-cancel lands through baseCtx instead).
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		item, ok := s.queue.Pop(context.Background())
		if !ok {
			return
		}
		s.runJob(item.(*job))
	}
}

// runJob executes one job with panic isolation: a panicking cell fails the
// job, never the daemon.
func (s *Server) runJob(j *job) {
	timeout := s.cfg.JobTimeout
	if j.spec.Timeout > 0 && j.spec.Timeout < timeout {
		timeout = j.spec.Timeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()

	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	j.setRunning()
	start := time.Now()

	// Peer cache fill: before recomputing, ask the peers the copyset hint
	// names for the finished result. Deterministic jobs make this sound —
	// any peer's bytes for this hash are THE bytes.
	var raw []byte
	var err error
	source := SourceComputed
	if s.cfg.PeerFill != nil && len(j.spec.Hints) > 0 {
		if pr, ok := s.cfg.PeerFill(ctx, j.hash, j.spec.Hints); ok {
			raw, source = pr, SourcePeer
			s.metrics.Inc("peer_fills", 1)
			s.cfg.Logf("job %s peer-filled %s", j.id, j.hash[:12])
		} else {
			s.metrics.Inc("peer_fill_misses", 1)
		}
	}
	if source != SourcePeer {
		raw, err = s.safeRun(ctx, j)
	}

	s.mu.Lock()
	s.running--
	delete(s.inflight, j.hash)
	s.mu.Unlock()

	switch {
	case err == nil:
		if cerr := s.cache.Put(j.hash, raw); cerr != nil {
			s.cfg.Logf("cache put %s: %v", j.hash[:12], cerr)
		}
		j.mu.Lock()
		j.source = source
		j.mu.Unlock()
		j.finish(StatusDone, raw, "")
		s.metrics.Inc("jobs_completed", 1)
		s.metrics.IncLabeled("tenant_jobs_completed", "tenant", tenantOrDefault(j.spec.Tenant), 1)
		s.metrics.ObserveJobLatency(time.Since(start))
		s.cfg.Logf("job %s done in %.2fs", j.id, time.Since(start).Seconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StatusCancelled, nil, err.Error())
		s.metrics.Inc("jobs_cancelled", 1)
		s.cfg.Logf("job %s cancelled: %v", j.id, err)
	default:
		j.finish(StatusFailed, nil, err.Error())
		s.metrics.Inc("jobs_failed", 1)
		s.cfg.Logf("job %s failed: %v", j.id, err)
	}
}

func (s *Server) safeRun(ctx context.Context, j *job) (raw []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc("job_panics", 1)
			err = fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	// worker.run is the injection site simulating a sick worker: delay rules
	// model a stall, panic rules a crash mid-job (caught above, like any
	// other panicking cell).
	s.cfg.Faults.Delay("worker.run")
	s.cfg.Faults.Panic("worker.run")
	return s.cfg.Runner(ctx, j.spec, func(done, total int, cell string) {
		j.emit(Event{Type: "progress", Done: done, Total: total, Cell: cell})
	})
}

// gcLoop expires finished job records past their TTL.
func (s *Server) gcLoop() {
	defer close(s.gcDone)
	interval := s.cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case now := <-t.C:
			s.mu.Lock()
			for id, j := range s.jobs {
				if j.expired(now, s.cfg.TTL) {
					delete(s.jobs, id)
				}
			}
			s.mu.Unlock()
		}
	}
}

// ---- HTTP API ----

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	// Peer endpoints: read-only cache lookups other fleet members use for
	// peer cache fill. They never trigger computation, and they keep
	// serving during drain — a draining worker's caches are exactly what
	// its peers need to pick up its work.
	mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheGet)
	mux.HandleFunc("POST /v1/cache/fill", s.handleCacheFill)
	mux.HandleFunc("GET /v1/ckpt/{key}", s.handleCkptGet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{err.Error()})
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	canon, err := spec.Canonicalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.applyFleetHeaders(&canon, r)
	_, st, err := s.submit(canon)
	switch {
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
	case st.Status == StatusDone || st.Deduped:
		if st.Source != "" {
			w.Header().Set(HeaderSource, st.Source)
		}
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// applyFleetHeaders threads the fleet request headers into the canonical
// spec (tenant, copyset hints) and delivers peer-list updates.
func (s *Server) applyFleetHeaders(canon *CanonicalSpec, r *http.Request) {
	canon.Tenant = tenantOrDefault(r.Header.Get(HeaderTenant))
	if hints := r.Header.Get(HeaderCopyset); hints != "" {
		canon.Hints = splitComma(hints)
	}
	if s.cfg.OnPeers != nil {
		if peers := r.Header.Get(HeaderPeers); peers != "" {
			s.cfg.OnPeers(splitComma(peers))
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	st, err := j.snapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as Server-Sent Events: the full
// history replays first (ordered by seq), then live events until the job
// reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.subscribe()
	defer cancel()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	flusher.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev Event) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
}

// handleFigure is the synchronous convenience endpoint: it submits a figure
// job (deduped and cached like any other) and waits for the result, bounded
// by the request context.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	spec := JobSpec{Kind: KindFigure, Figure: r.PathValue("name")}
	opts, err := optionsFromQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	spec.Options = opts
	canon, err := spec.Canonicalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.applyFleetHeaders(&canon, r)
	j, _, err := s.submit(canon)
	switch {
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeJSON(w, http.StatusGatewayTimeout, apiError{"request cancelled while waiting"})
		return
	}
	st, err := j.snapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	if st.Status != StatusDone {
		writeJSON(w, http.StatusInternalServerError, apiError{st.Error})
		return
	}
	if st.Source != "" {
		w.Header().Set(HeaderSource, st.Source)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.Result)
}

// ---- peer endpoints (fleet) ----

// handleCacheGet serves raw result bytes straight from the local result
// cache (memory or disk), 404 on miss. Never computes; never blocks on the
// queue. This is the supply side of peer cache fill.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !hashPattern.MatchString(hash) {
		writeJSON(w, http.StatusBadRequest, apiError{"hash must be 64 hex chars"})
		return
	}
	raw, ok := s.cache.Get(hash)
	if !ok {
		s.metrics.Inc("peer_serve_misses", 1)
		writeJSON(w, http.StatusNotFound, apiError{"no cached result for hash"})
		return
	}
	s.metrics.Inc("peer_serves", 1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderChecksum, integrity.SumHex(raw))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// handleCkptGet serves a warmup checkpoint blob from the local store
// (memory or disk), 404 on miss. Lookups here never recurse into this
// worker's own remote-fill hook — Store.Get is local-only by contract.
func (s *Server) handleCkptGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !hashPattern.MatchString(key) {
		writeJSON(w, http.StatusBadRequest, apiError{"key must be 64 hex chars"})
		return
	}
	data, ok := s.ckpt.Get(key)
	if !ok {
		s.metrics.Inc("ckpt_peer_serve_misses", 1)
		writeJSON(w, http.StatusNotFound, apiError{"no checkpoint for key"})
		return
	}
	s.metrics.Inc("ckpt_peer_serves", 1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderChecksum, integrity.SumHex(data))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// fillRequest is the body of POST /v1/cache/fill: the coordinator's
// replication push. The worker pulls the result for hash from the listed
// source peers and stores it locally, widening the copyset so the result
// survives the original computer's death.
type fillRequest struct {
	Hash    string   `json:"hash"`
	Sources []string `json:"sources"`
}

type fillResponse struct {
	// Filled is true when the result was fetched from a peer by this call;
	// false with Present=true means it was already held locally.
	Filled  bool `json:"filled"`
	Present bool `json:"present"`
}

func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{err.Error()})
		return
	}
	var req fillRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if !hashPattern.MatchString(req.Hash) {
		writeJSON(w, http.StatusBadRequest, apiError{"hash must be 64 hex chars"})
		return
	}
	if _, ok := s.cache.Get(req.Hash); ok {
		writeJSON(w, http.StatusOK, fillResponse{Present: true})
		return
	}
	if s.cfg.PeerFill == nil {
		writeJSON(w, http.StatusNotImplemented, apiError{"peer fill not configured"})
		return
	}
	raw, ok := s.cfg.PeerFill(r.Context(), req.Hash, req.Sources)
	if !ok {
		s.metrics.Inc("peer_fill_misses", 1)
		writeJSON(w, http.StatusBadGateway, apiError{"no listed source had the result"})
		return
	}
	s.metrics.Inc("peer_fills", 1)
	if err := s.cache.Put(req.Hash, raw); err != nil {
		s.cfg.Logf("fill put %s: %v", req.Hash[:12], err)
	}
	writeJSON(w, http.StatusOK, fillResponse{Filled: true, Present: true})
}

// optionsFromQuery assembles canonical-options JSON from ?cus=&accesses=&
// seed=&threshold=&warmup=&apps= query parameters.
func optionsFromQuery(r *http.Request) (json.RawMessage, error) {
	q := r.URL.Query()
	o := experiment.Options{}
	var err error
	geti := func(name string) int {
		v := q.Get(name)
		if v == "" || err != nil {
			return 0
		}
		var n int
		n, err = strconv.Atoi(v)
		if err != nil {
			err = fmt.Errorf("service: query %s=%q: %w", name, v, err)
		}
		return n
	}
	o.CUsPerGPU = geti("cus")
	o.AccessesPerCU = geti("accesses")
	o.CounterThreshold = geti("threshold")
	o.WarmupAccessesPerCU = geti("warmup")
	if v := q.Get("seed"); v != "" && err == nil {
		o.Seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			err = fmt.Errorf("service: query seed=%q: %w", v, err)
		}
	}
	if err != nil {
		return nil, err
	}
	if v := q.Get("apps"); v != "" {
		for _, a := range splitComma(v) {
			o.Apps = append(o.Apps, a)
		}
	}
	return o.CanonicalJSON()
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		if r != ' ' {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"status":   "ok",
		"draining": s.Draining(),
	}
	if s.cfg.FleetID != "" {
		out["worker_id"] = s.cfg.FleetID
	}
	if s.cfg.FleetVersion != "" {
		out["fleet_version"] = s.cfg.FleetVersion
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, diskHits := s.cache.Stats()
	s.metrics.Set("cache_hits", hits)
	s.metrics.Set("cache_misses", misses)
	s.metrics.Set("cache_disk_hits", diskHits)
	ckptHits, ckptMisses, ckptDiskHits, ckptRemoteHits := s.ckpt.Stats()
	s.metrics.Set("ckpt_hits", ckptHits)
	s.metrics.Set("ckpt_misses", ckptMisses)
	s.metrics.Set("ckpt_disk_hits", ckptDiskHits)
	s.metrics.Set("ckpt_remote_hits", ckptRemoteHits)
	cacheVF, cacheQ := s.cache.IntegrityStats()
	s.metrics.Set("cache_verify_failures", cacheVF)
	s.metrics.Set("cache_corrupt_quarantined", cacheQ)
	ckptVF, ckptQ := s.ckpt.IntegrityStats()
	s.metrics.Set("ckpt_verify_failures", ckptVF)
	s.metrics.Set("ckpt_corrupt_quarantined", ckptQ)
	if s.cfg.Faults != nil {
		s.metrics.Set("faults_injected", s.cfg.Faults.TotalFired())
		for site, n := range s.cfg.Faults.FiredBySite() {
			s.metrics.Set(LabelKey("faults_injected_site", "site", site), n)
		}
	}
	s.mu.Lock()
	gauges := map[string]int{
		"queue_depth":   s.queue.Len(),
		"jobs_inflight": s.running,
		"jobs_tracked":  len(s.jobs),
		"cache_entries": s.cache.Len(),
		"ckpt_entries":  s.ckpt.Len(),
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.metrics.Render(gauges))
}
