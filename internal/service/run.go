package service

import (
	"context"
	"encoding/json"
	"fmt"

	"idyll/internal/checkpoint/store"
	"idyll/internal/config"
	"idyll/internal/experiment"
	"idyll/internal/stats"
)

// RunFunc executes one canonical spec to completion and returns the result
// payload. The server's default is RunSpec; tests inject stubs to exercise
// queueing, shedding, and shutdown without multi-second simulations.
type RunFunc func(ctx context.Context, spec CanonicalSpec,
	progress func(done, total int, cell string)) ([]byte, error)

// CellResult is the JSON result payload of a cell job: the headline
// measurements of one (app, scheme) run. Field order is fixed by the struct,
// and every value is deterministic given the spec, so payloads are
// byte-identical across recomputations — the property the content-addressed
// cache rests on.
type CellResult struct {
	App            string  `json:"app"`
	Scheme         string  `json:"scheme"`
	ExecCycles     int64   `json:"exec_cycles"`
	Instructions   uint64  `json:"instructions"`
	Accesses       uint64  `json:"accesses"`
	MPKI           float64 `json:"mpki"`
	FarFaults      uint64  `json:"far_faults"`
	Migrations     uint64  `json:"migrations"`
	InvalReceived  uint64  `json:"invals_received"`
	DemandMissMean float64 `json:"demand_miss_mean_cy"`
	DemandMissP99  int64   `json:"demand_miss_p99_cy"`
	MigWaitMean    float64 `json:"migration_wait_mean_cy"`
	NVLinkBytes    uint64  `json:"nvlink_bytes"`
	PCIeBytes      uint64  `json:"pcie_bytes"`
	Summary        string  `json:"summary"`
}

// RunSpec is the production RunFunc: cell jobs run through the experiment
// cell runner (so seeds, and therefore traces, match the suite's), figure
// jobs through the registry. ctx cancellation stops the event loop at the
// next batch boundary.
func RunSpec(ctx context.Context, spec CanonicalSpec,
	progress func(done, total int, cell string)) ([]byte, error) {
	return runSpec(ctx, spec, progress, 0, nil)
}

// RunSpecPar returns a RunFunc that executes like RunSpec but on the
// parallel event engine with par worker goroutines per simulation. Par is a
// server-side execution knob (idylld -par): it never enters the spec, so
// spec hashes — and with them the content-addressed cache — are unaffected,
// which is sound because results are byte-identical at any worker count.
func RunSpecPar(par int) RunFunc {
	return RunSpecWith(par, nil)
}

// RunSpecWith returns the fully-configured production RunFunc: par as in
// RunSpecPar, plus a warmup-checkpoint store shared by every job the server
// runs. Specs whose options request a warmup phase
// (warmup_accesses_per_cu > 0) fetch or compute their warmup checkpoint
// through ckpt, so sweeps that share a warmup prefix simulate it once per
// daemon lifetime (or once ever, with a disk-backed store). Like par, the
// store is an execution knob: forking from a checkpoint is byte-identical to
// running straight through, so spec hashes and cached results are unaffected.
func RunSpecWith(par int, ckpt *store.Store) RunFunc {
	return func(ctx context.Context, spec CanonicalSpec,
		progress func(done, total int, cell string)) ([]byte, error) {
		return runSpec(ctx, spec, progress, par, ckpt)
	}
}

func runSpec(ctx context.Context, spec CanonicalSpec,
	progress func(done, total int, cell string), par int, ckpt *store.Store) ([]byte, error) {
	o := spec.Options.WithContext(ctx)
	o.Progress = progress
	o.Par = par
	o.CheckpointStore = ckpt

	switch spec.Kind {
	case KindCell:
		scheme, err := config.SchemeByName(spec.Scheme)
		if err != nil {
			return nil, err
		}
		cells := []experiment.CellSpec{{
			Figure:  spec.Figure,
			App:     spec.App,
			Machine: config.Default(),
			Scheme:  scheme,
		}}
		res, err := experiment.RunCells(o, cells)
		if err != nil {
			return nil, err
		}
		return marshalCellResult(spec, res[0])
	case KindFigure:
		e, err := experiment.Find(spec.Figure)
		if err != nil {
			return nil, err
		}
		tab, err := e.Run(o)
		if err != nil {
			return nil, err
		}
		raw, err := tab.RenderJSON()
		if err != nil {
			return nil, err
		}
		return []byte(raw), nil
	}
	return nil, fmt.Errorf("service: unknown kind %q", spec.Kind)
}

func marshalCellResult(spec CanonicalSpec, st *stats.Sim) ([]byte, error) {
	r := CellResult{
		App:            spec.App,
		Scheme:         spec.Scheme,
		ExecCycles:     int64(st.ExecCycles),
		Instructions:   st.Instructions,
		Accesses:       st.Accesses,
		MPKI:           st.MPKI(),
		FarFaults:      st.FarFaults,
		Migrations:     st.Migrations,
		InvalReceived:  st.InvalReceived,
		DemandMissMean: st.DemandMiss.Mean(),
		DemandMissP99:  int64(st.DemandMissHist.Percentile(99)),
		MigWaitMean:    st.MigrationWait.Mean(),
		NVLinkBytes:    st.NVLinkBytes,
		PCIeBytes:      st.PCIeBytes,
		Summary:        st.Summary(),
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result: %w", err)
	}
	return raw, nil
}
