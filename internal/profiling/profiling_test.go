package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterInstallsFlags(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if f.CPU != "a" || f.Mem != "b" || f.Trace != "c" {
		t.Fatalf("flags not bound: %+v", f)
	}
}

func TestStartStopWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little work so the collectors have something to record.
	sum := 0
	for i := 0; i < 1e6; i++ {
		sum += i
	}
	_ = sum
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPU, f.Mem, f.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartDisabledIsNoOp(t *testing.T) {
	var f Flags
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	f := Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable cpuprofile path")
	}
}
