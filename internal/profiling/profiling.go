// Package profiling wires Go's pprof and execution-trace collection into the
// CLIs as first-class flags, so any simulator invocation can capture the
// profiles that drive the engine's perf work (see DESIGN.md "Engine
// internals & profiling").
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three output paths. Empty paths disable that collector.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register installs -cpuprofile, -memprofile and -trace on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write an allocation profile to this file at exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the requested collectors and returns a stop function that
// must run before exit (it finalizes the CPU/trace streams and snapshots the
// heap profile). Start fails if any output file cannot be created.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	memPath := f.Mem
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			mf, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer mf.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
