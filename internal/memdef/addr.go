// Package memdef defines the address-space vocabulary shared by every other
// package: virtual/physical addresses, virtual page numbers, page geometry
// for 4 KB and 2 MB pages, radix page-table level indexing, and the IRMB
// base/offset split of a VPN described in §6.3 of the paper.
//
// The layout follows x86-64 4-level paging: a 48-bit virtual address is
// <9 bits L4><9 bits L3><9 bits L2><9 bits L1><12 bits page offset> for 4 KB
// pages; a 2 MB page drops the L1 level and widens the page offset to 21
// bits. (The paper's Figure 9 draws five levels L5..L1; the mechanism is
// level-count agnostic, and both the paper's IRMB arithmetic — 36-bit base,
// 9-bit offset — and ours treat "everything above the last level" as the
// base.)
package memdef

import "fmt"

// VAddr is a virtual address.
type VAddr uint64

// PAddr is a physical address. Physical addresses are globally unique across
// the system: bits above GPUFrameBits select the owning device (device 0 is
// the CPU/host, device k is GPU k-1).
type PAddr uint64

// VPN is a virtual page number: the virtual address shifted right by the
// page-offset width.
type VPN uint64

// PFN is a physical frame number.
type PFN uint64

// DeviceID names a memory-owning device. The CPU is device 0; GPU k is
// device k+1.
type DeviceID int

// CPUDevice is the host's device ID.
const CPUDevice DeviceID = 0

// GPUDevice returns the device ID of GPU gpu (0-based).
func GPUDevice(gpu int) DeviceID { return DeviceID(gpu + 1) }

// GPUIndex returns the 0-based GPU index of a GPU device, or -1 for the CPU.
func (d DeviceID) GPUIndex() int { return int(d) - 1 }

// IsCPU reports whether the device is the host.
func (d DeviceID) IsCPU() bool { return d == CPUDevice }

func (d DeviceID) String() string {
	if d.IsCPU() {
		return "CPU"
	}
	return fmt.Sprintf("GPU%d", d.GPUIndex())
}

// GPUFrameBits is the number of frame-number bits reserved for the
// frame-within-device portion of a PFN; bits above it encode the device.
const GPUFrameBits = 36

// MakePFN composes a global physical frame number from a device and a local
// frame index.
func MakePFN(dev DeviceID, frame uint64) PFN {
	return PFN(uint64(dev)<<GPUFrameBits | frame&(1<<GPUFrameBits-1))
}

// Device extracts the owning device from a PFN.
func (p PFN) Device() DeviceID { return DeviceID(uint64(p) >> GPUFrameBits) }

// Frame extracts the device-local frame index from a PFN.
func (p PFN) Frame() uint64 { return uint64(p) & (1<<GPUFrameBits - 1) }

// PageSize describes one of the two supported page geometries.
type PageSize int

const (
	// Page4K is the 4 KB baseline page size (Table 2).
	Page4K PageSize = iota
	// Page2M is the 2 MB large page evaluated in §7.3.
	Page2M
)

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 {
	if s == Page2M {
		return 2 << 20
	}
	return 4 << 10
}

// OffsetBits returns the width of the in-page offset.
func (s PageSize) OffsetBits() uint {
	if s == Page2M {
		return 21
	}
	return 12
}

// Levels returns the number of radix page-table levels for this page size
// (4 KB → 4 levels L4..L1; 2 MB → 3 levels L4..L2).
func (s PageSize) Levels() int {
	if s == Page2M {
		return 3
	}
	return 4
}

func (s PageSize) String() string {
	if s == Page2M {
		return "2MB"
	}
	return "4KB"
}

// levelIndexBits is the number of VPN bits consumed per radix level.
const levelIndexBits = 9

// PageNum returns the virtual page number of va under page size s.
func PageNum(va VAddr, s PageSize) VPN { return VPN(uint64(va) >> s.OffsetBits()) }

// PageBase returns the first virtual address of the page containing va.
func PageBase(va VAddr, s PageSize) VAddr {
	return VAddr(uint64(va) &^ (s.Bytes() - 1))
}

// PageOffset returns va's offset within its page.
func PageOffset(va VAddr, s PageSize) uint64 { return uint64(va) & (s.Bytes() - 1) }

// Addr returns the first virtual address of page v under page size s.
func (v VPN) Addr(s PageSize) VAddr { return VAddr(uint64(v) << s.OffsetBits()) }

// LevelIndex extracts the radix index of vpn at the given level, where level
// 1 is the leaf (PTE) level and higher levels are closer to the root. For a
// page table with L levels, valid levels are 1..L.
func LevelIndex(vpn VPN, level int) uint64 {
	return uint64(vpn) >> (uint(level-1) * levelIndexBits) & (1<<levelIndexBits - 1)
}

// LevelPrefix returns the VPN bits above and including the given level's
// index — the key a page-walk cache uses to identify the page-table node
// *entry* visited at that level.
func LevelPrefix(vpn VPN, level int) uint64 {
	return uint64(vpn) >> (uint(level-1) * levelIndexBits)
}

// IRMB base/offset split (§6.3): the leaf-level index (9 bits for both page
// sizes, since each radix level consumes 9 bits) is the offset and everything
// above it is the base, so invalidations to pages sharing all non-leaf levels
// merge into one IRMB entry and share the same last-level page-walk-cache
// entry during write-back.

// IRMBBase returns the merged-entry base for vpn: all VPN bits above the
// leaf-level index.
func IRMBBase(vpn VPN) uint64 { return uint64(vpn) >> levelIndexBits }

// IRMBOffset returns the 9-bit leaf-level index of vpn.
func IRMBOffset(vpn VPN) uint16 { return uint16(uint64(vpn) & (1<<levelIndexBits - 1)) }

// IRMBJoin reassembles a VPN from a base and an offset.
func IRMBJoin(base uint64, offset uint16) VPN {
	return VPN(base<<levelIndexBits | uint64(offset)&(1<<levelIndexBits-1))
}

// CachelineBytes is the transfer granularity for remote data accesses
// (§3.2: data is fetched from remote GPUs at cacheline granularity).
const CachelineBytes = 64

// ControlMsgBytes is the modelled size of a control message (invalidation
// request, ack, fault notification, translation reply) on the interconnect.
const ControlMsgBytes = 64
