package memdef

import (
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page4K.OffsetBits() != 12 || Page4K.Levels() != 4 {
		t.Fatal("4KB geometry wrong")
	}
	if Page2M.Bytes() != 2<<20 || Page2M.OffsetBits() != 21 || Page2M.Levels() != 3 {
		t.Fatal("2MB geometry wrong")
	}
}

func TestPageNumAndBase(t *testing.T) {
	va := VAddr(0x12345678)
	if got := PageNum(va, Page4K); got != 0x12345 {
		t.Fatalf("PageNum 4K = %#x, want 0x12345", got)
	}
	if got := PageBase(va, Page4K); got != 0x12345000 {
		t.Fatalf("PageBase 4K = %#x", got)
	}
	if got := PageOffset(va, Page4K); got != 0x678 {
		t.Fatalf("PageOffset 4K = %#x", got)
	}
	if got := PageNum(va, Page2M); got != 0x12345678>>21 {
		t.Fatalf("PageNum 2M = %#x", got)
	}
}

func TestVPNAddrRoundTrip(t *testing.T) {
	prop := func(raw uint64) bool {
		for _, s := range []PageSize{Page4K, Page2M} {
			vpn := VPN(raw & (1<<40 - 1))
			if PageNum(vpn.Addr(s), s) != vpn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelIndexDecomposition(t *testing.T) {
	// VPN bits: L4 = 0x1ab, L3 = 0x0cd, L2 = 0x1ef, L1 = 0x123.
	vpn := VPN(0x1ab<<27 | 0x0cd<<18 | 0x1ef<<9 | 0x123)
	want := map[int]uint64{4: 0x1ab, 3: 0x0cd, 2: 0x1ef, 1: 0x123}
	for level, w := range want {
		if got := LevelIndex(vpn, level); got != w {
			t.Errorf("LevelIndex(level %d) = %#x, want %#x", level, got, w)
		}
	}
}

func TestLevelIndexRecomposition(t *testing.T) {
	prop := func(raw uint64) bool {
		vpn := VPN(raw & (1<<36 - 1))
		var rebuilt uint64
		for level := 4; level >= 1; level-- {
			rebuilt = rebuilt<<9 | LevelIndex(vpn, level)
		}
		return VPN(rebuilt) == vpn
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelPrefixNesting(t *testing.T) {
	vpn := VPN(0x123456789)
	for level := 1; level < 4; level++ {
		// The prefix at level k+1 must be the prefix at level k shifted
		// right by 9 bits.
		if LevelPrefix(vpn, level)>>9 != LevelPrefix(vpn, level+1) {
			t.Fatalf("prefix nesting broken at level %d", level)
		}
	}
}

func TestIRMBSplitRoundTrip(t *testing.T) {
	prop := func(raw uint64) bool {
		vpn := VPN(raw & (1<<45 - 1))
		return IRMBJoin(IRMBBase(vpn), IRMBOffset(vpn)) == vpn
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIRMBNeighboursShareBase(t *testing.T) {
	vpn := VPN(0x40000) // offset 0 within its base
	for i := VPN(0); i < 512; i++ {
		if IRMBBase(vpn+i) != IRMBBase(vpn) {
			t.Fatalf("vpn+%d has different base", i)
		}
	}
	if IRMBBase(vpn+512) == IRMBBase(vpn) {
		t.Fatal("vpn+512 should roll over to the next base")
	}
}

func TestPFNDeviceEncoding(t *testing.T) {
	prop := func(devRaw uint8, frame uint64) bool {
		dev := DeviceID(devRaw % 33)
		frame &= 1<<GPUFrameBits - 1
		pfn := MakePFN(dev, frame)
		return pfn.Device() == dev && pfn.Frame() == frame
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceIDHelpers(t *testing.T) {
	if !CPUDevice.IsCPU() {
		t.Fatal("CPUDevice not CPU")
	}
	if GPUDevice(3).GPUIndex() != 3 {
		t.Fatal("GPU index round trip failed")
	}
	if GPUDevice(0).IsCPU() {
		t.Fatal("GPU0 misreported as CPU")
	}
	if CPUDevice.String() != "CPU" || GPUDevice(2).String() != "GPU2" {
		t.Fatal("String() wrong")
	}
}
