// Package integrity implements the self-describing checksum envelope that
// wraps every result-cache and checkpoint blob at rest, and the hex digest
// carried by the X-Idyll-Checksum header on peer fills.
//
// Envelope layout (41-byte header + payload):
//
//	offset 0  8 bytes  magic "IDYLLSUM"
//	offset 8  1 byte   format version (currently 1)
//	offset 9  32 bytes SHA-256 of the payload
//	offset 41          payload
//
// Unwrap is strict: a blob without the magic is ErrNotEnvelope and a blob
// whose digest disagrees is ErrChecksum. Callers treat both as "this entry
// does not exist" — quarantine the file and recompute — because every blob
// the stack writes is wrapped, so anything else on disk is damage.
package integrity

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

var magic = []byte("IDYLLSUM")

// Version is the current envelope format version.
const Version = 1

const headerLen = 8 + 1 + sha256.Size

var (
	// ErrNotEnvelope marks a blob that does not carry the envelope header.
	ErrNotEnvelope = errors.New("integrity: not a checksum envelope")
	// ErrChecksum marks a blob whose payload disagrees with its digest.
	ErrChecksum = errors.New("integrity: checksum mismatch")
)

// Wrap prefixes payload with the envelope header.
func Wrap(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic...)
	out = append(out, Version)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// Unwrap verifies blob and returns its payload. The payload aliases blob's
// backing array; copy it if blob will be reused.
func Unwrap(blob []byte) ([]byte, error) {
	if len(blob) < headerLen || !bytes.Equal(blob[:len(magic)], magic) {
		return nil, ErrNotEnvelope
	}
	if v := blob[len(magic)]; v != Version {
		return nil, fmt.Errorf("%w: unknown version %d", ErrNotEnvelope, v)
	}
	payload := blob[headerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], blob[len(magic)+1:headerLen]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// SumHex returns the lowercase hex SHA-256 of payload, the wire form used
// by the X-Idyll-Checksum header.
func SumHex(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// VerifyHex reports whether payload matches a hex digest from the wire.
func VerifyHex(payload []byte, sumHex string) bool {
	return SumHex(payload) == strings.ToLower(strings.TrimSpace(sumHex))
}
