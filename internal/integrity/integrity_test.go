package integrity

import (
	"bytes"
	"errors"
	"testing"
)

func TestWrapUnwrapRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xFF}, 4096),
		[]byte(`{"result":42}`),
	} {
		blob := Wrap(payload)
		got, err := Unwrap(blob)
		if err != nil {
			t.Fatalf("Unwrap(Wrap(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip lost payload: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestUnwrapRejectsNonEnvelope(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		[]byte(""),
		[]byte(`{"result":42}`),             // legacy unwrapped blob
		[]byte("IDYLLSU"),                   // short magic
		bytes.Repeat([]byte("IDYLLSUM"), 1), // magic only, no header
	} {
		if _, err := Unwrap(blob); !errors.Is(err, ErrNotEnvelope) {
			t.Errorf("Unwrap(%q) = %v, want ErrNotEnvelope", blob, err)
		}
	}
	// Unknown version is also not-an-envelope.
	blob := Wrap([]byte("v"))
	blob[8] = 99
	if _, err := Unwrap(blob); !errors.Is(err, ErrNotEnvelope) {
		t.Errorf("unknown version: %v, want ErrNotEnvelope", err)
	}
}

func TestUnwrapDetectsEveryBitFlip(t *testing.T) {
	payload := []byte("determinism under failure by demonstration")
	clean := Wrap(payload)
	for i := 0; i < len(clean)*8; i += 7 { // stride keeps the test fast
		blob := append([]byte(nil), clean...)
		blob[i/8] ^= 1 << (i % 8)
		if _, err := Unwrap(blob); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

func TestUnwrapDetectsTruncation(t *testing.T) {
	clean := Wrap([]byte("some payload worth keeping"))
	for _, n := range []int{0, 8, 40, 41, len(clean) - 1} {
		if _, err := Unwrap(clean[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestChecksumErrorIsDistinct(t *testing.T) {
	blob := Wrap([]byte("payload"))
	blob[len(blob)-1] ^= 1
	_, err := Unwrap(blob)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: %v, want ErrChecksum", err)
	}
	if errors.Is(err, ErrNotEnvelope) {
		t.Fatal("ErrChecksum must not satisfy ErrNotEnvelope")
	}
}

func TestSumHexAndVerify(t *testing.T) {
	payload := []byte("abc")
	want := "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
	if got := SumHex(payload); got != want {
		t.Fatalf("SumHex = %s", got)
	}
	if !VerifyHex(payload, want) || !VerifyHex(payload, "  "+want+"\n") ||
		!VerifyHex(payload, "BA7816BF8F01CFEA414140DE5DAE2223B00361A396177A9CB410FF61F20015AD") {
		t.Fatal("VerifyHex rejects a correct digest")
	}
	if VerifyHex(payload, SumHex([]byte("abd"))) {
		t.Fatal("VerifyHex accepts a wrong digest")
	}
}
