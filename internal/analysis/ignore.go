package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives.
//
//	//idyllvet:ignore <check>[,<check>...] <justification>
//	//idyllvet:ignore-file <check>[,<check>...] <justification>
//
// An ignore directive suppresses matching findings on its own line or on
// the line directly below it (so it works both as a trailing comment and as
// a comment above the offending statement). The -file form suppresses
// matching findings in the whole file.
//
// The justification is mandatory: a suppression is a reviewed exception to
// the determinism contract, and the reason must live next to the code. A
// directive without one is itself reported as an [idyllvet] finding.

const (
	ignorePrefix     = "//idyllvet:ignore"
	ignoreFilePrefix = "//idyllvet:ignore-file"
)

type directive struct {
	file     string
	line     int
	checks   map[string]bool
	fileWide bool
}

// parseDirectives scans a package's comments for idyllvet directives,
// returning the well-formed ones plus a diagnostic for each malformed one.
func parseDirectives(pkg *Package) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, ignoreFilePrefix):
					fileWide = true
					rest = text[len(ignoreFilePrefix):]
				case strings.HasPrefix(text, ignorePrefix):
					rest = text[len(ignorePrefix):]
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Check:    "idyllvet",
						Position: pos,
						Message:  "malformed ignore directive: want //idyllvet:ignore <check>[,<check>...] <justification>",
					})
					continue
				}
				checks := make(map[string]bool)
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						checks[name] = true
					}
				}
				// A check list that reduces to nothing (",," and friends)
				// names no check to suppress: malformed, not a silent no-op.
				if len(checks) == 0 {
					bad = append(bad, Diagnostic{
						Check:    "idyllvet",
						Position: pos,
						Message:  "malformed ignore directive: want //idyllvet:ignore <check>[,<check>...] <justification>",
					})
					continue
				}
				dirs = append(dirs, directive{
					file:     pos.Filename,
					line:     pos.Line,
					checks:   checks,
					fileWide: fileWide,
				})
			}
		}
	}
	return dirs, bad
}

// applyDirectives filters raw findings through the package's suppression
// directives and appends a finding for every malformed directive.
func applyDirectives(pkg *Package, raw []Diagnostic) []Diagnostic {
	dirs, bad := parseDirectives(pkg)
	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(dirs, d.Position, d.Check) {
			out = append(out, d)
		}
	}
	return append(out, bad...)
}

// applyDirectivesAll filters raw findings through the suppression
// directives of every listed package at once — the whole-program variant
// used by RunAll, where a taint-chain finding can land in a different
// package than the analyzer nominally ran on. Malformed directives are
// appended once per package, as in the per-package path.
func applyDirectivesAll(pkgs []*Package, raw []Diagnostic) []Diagnostic {
	var dirs []directive
	var bad []Diagnostic
	for _, pkg := range pkgs {
		d, b := parseDirectives(pkg)
		dirs = append(dirs, d...)
		bad = append(bad, b...)
	}
	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(dirs, d.Position, d.Check) {
			out = append(out, d)
		}
	}
	return append(out, bad...)
}

func suppressed(dirs []directive, pos token.Position, check string) bool {
	for _, dir := range dirs {
		if dir.file != pos.Filename || !dir.checks[check] {
			continue
		}
		if dir.fileWide || dir.line == pos.Line || dir.line == pos.Line-1 {
			return true
		}
	}
	return false
}
