// Package analysistest is the golden-file harness for idyllvet analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest but stdlib-only.
//
// A test package lives under internal/analysis/testdata/src/<name>/ and
// annotates the lines where findings are expected:
//
//	now := time.Now() // want `time\.Now reads the wall clock`
//
// Each back-quoted or double-quoted argument is a regexp that must match
// exactly one finding reported on that line; findings with no matching
// expectation, and expectations with no matching finding, both fail the
// test. Suppression directives (//idyllvet:ignore) are honored, so golden
// packages can also pin the suppression behaviour: a suppressed line simply
// carries no want comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"idyll/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads testdata/src/<pkg> (resolved relative to the caller's
// directory) and checks a's findings against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, testdata, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	root, err := moduleRoot(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	p, err := loader.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("%s: loading %s: %v", a.Name, dir, err)
	}
	diags, err := analysis.Apply(a, p)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkExpectations(t, a.Name, []*analysis.Package{p}, diags)
}

// RunModule loads testdata/src/<name> as a self-contained mini-module (the
// directory carries its own go.mod), runs the full whole-program pipeline —
// per-package checks, the interprocedural taint engine, and program-level
// checks — over ./... of that module, and checks the findings against the
// want comments of every package in it. This is the harness for behaviour
// that cannot be pinned from a single directory: taint chains crossing
// package boundaries, and registry checks that reconcile two packages.
func RunModule(t *testing.T, analyzers []*analysis.Analyzer, testdata, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join(testdata, "src", name))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	pkgs, err := loader.Match([]string{"./..."})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("%s: no packages under %s", name, dir)
	}
	diags, err := analysis.RunAll(analyzers, analysis.NewProgram(loader, pkgs))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	checkExpectations(t, name, pkgs, diags)
}

// moduleRoot walks up from dir to the enclosing go.mod, so the harness
// works no matter where the test binary runs from.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, label string, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, p.Fset, c)...)
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding at %s:%d:%d: %s",
				label, filepath.Base(d.Position.Filename), d.Position.Line, d.Position.Column, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected finding matching %q at %s:%d, got none",
				label, w.raw, filepath.Base(w.file), w.line)
		}
	}
}

// parseWants extracts the expectations of one "// want ..." comment. The
// expectation applies to the line the comment begins on.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	pos := fset.Position(c.Slash)
	var out []*expectation
	for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
		raw := m[1]
		if raw == "" {
			raw = m[2]
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("bad want regexp %q at %s:%d: %v", raw, pos.Filename, pos.Line, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
	}
	if len(out) == 0 {
		t.Fatalf("want comment with no pattern at %s:%d", pos.Filename, pos.Line)
	}
	return out
}
