package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one directory of non-test Go files, parsed and (when an
// analyzer applies to it) type-checked.
type Package struct {
	Path  string // full import path, e.g. "idyll/internal/sim"
	Rel   string // module-relative slash path, "" for the module root
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File

	Types *types.Package // nil until TypeCheck
	Info  *types.Info    // nil until TypeCheck
}

// A Loader discovers, parses, and type-checks the module's packages without
// invoking the go command: module-internal imports resolve against the
// source tree, and everything else (the standard library) goes through
// go/importer's source importer, which type-checks $GOROOT/src directly.
// That keeps idyllvet pure-stdlib and usable in any environment the tests
// run in.
type Loader struct {
	Root   string // module root directory (contains go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet

	pkgs     map[string]*Package // by import path, parsed
	std      types.ImporterFrom
	checking map[string]bool // cycle guard during type-checking
}

// NewLoader reads go.mod under root to learn the module path.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("idyllvet must run from the module root: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:     abs,
		Module:   module,
		Fset:     fset,
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Match walks the module tree and returns the parsed packages matching the
// go-style patterns ("./...", "./internal/...", "./cmd/idyllvet"). Test
// files are excluded by design: the determinism contract binds the
// simulator, not its tests, which legitimately use goroutines, timeouts,
// and the race detector.
func (l *Loader) Match(patterns []string) ([]*Package, error) {
	var rels []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		for _, pat := range patterns {
			if matchPattern(pat, rel) {
				rels = append(rels, rel)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	var out []*Package
	for _, rel := range rels {
		pkg, err := l.parseRel(rel)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// matchPattern implements the "./..." subset of go's package patterns
// against a module-relative slash path.
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "." {
		pat = ""
	}
	if sub, ok := strings.CutSuffix(pat, "..."); ok {
		sub = strings.TrimSuffix(sub, "/")
		return sub == "" || rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat
}

// parseRel parses the package in the module-relative directory rel,
// returning nil (no error) for directories with no buildable Go files.
func (l *Loader) parseRel(rel string) (*Package, error) {
	path := l.Module
	if rel != "" {
		path = l.Module + "/" + rel
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	pkg := &Package{Path: path, Rel: rel, Dir: dir, Fset: l.Fset}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// A LoadError is a package that could not be loaded — a module-internal
// import naming a directory that does not exist or holds no Go files. It
// carries the position of the offending import spec, so the failure prints
// as an ordinary file:line:col diagnostic instead of a bare package path,
// and the driver can exit 2 with the culprit named.
type LoadError struct {
	Pkg string         // the unresolvable import path
	Pos token.Position // the import spec that named it (zero if unknown)
	Err error
}

func (e *LoadError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: cannot load package %q: %v", e.Pos, e.Pkg, e.Err)
	}
	return fmt.Sprintf("cannot load package %q: %v", e.Pkg, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// resolveImports eagerly parses every module-internal import of pkg before
// the type checker runs, so a missing or Go-file-free package surfaces as a
// positioned LoadError naming the import, not as whatever the type
// checker's first downstream error happens to be.
func (l *Loader) resolveImports(pkg *Package) error {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
			p, err := l.parseRel(rel)
			if err != nil {
				return &LoadError{Pkg: path, Pos: l.Fset.Position(imp.Pos()), Err: err}
			}
			if p == nil {
				return &LoadError{Pkg: path, Pos: l.Fset.Position(imp.Pos()), Err: fmt.Errorf("no Go files in %s", filepath.Join(l.Root, filepath.FromSlash(rel)))}
			}
		}
	}
	return nil
}

// TypeCheck populates pkg.Types and pkg.Info, type-checking dependencies as
// needed. Type errors are fatal: analyzers must not run on partial
// information, where a missing Uses entry silently hides a finding.
func (l *Loader) TypeCheck(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	if l.checking[pkg.Path] {
		return fmt.Errorf("import cycle through %s", pkg.Path)
	}
	l.checking[pkg.Path] = true
	defer delete(l.checking, pkg.Path)

	if err := l.resolveImports(pkg); err != nil {
		return err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkg.Path, l.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// Import implements types.Importer: module-internal paths resolve against
// the source tree through this loader; everything else falls back to the
// standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.parseRel(rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, &LoadError{Pkg: path, Err: fmt.Errorf("no Go files in %s", filepath.Join(l.Root, filepath.FromSlash(rel)))}
		}
		if err := l.TypeCheck(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// LoadDir parses and type-checks the single directory dir as the import
// path name. It is the entry point used by the golden-file test harness,
// whose testdata packages live outside the module tree proper.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", abs, err)
	}
	pkg := &Package{Path: path, Rel: path, Dir: abs, Fset: l.Fset}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if err := l.TypeCheck(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}
