// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, built entirely on the standard
// library (go/ast, go/parser, go/token, go/types). It exists to enforce the
// simulator's determinism contract: every load-bearing guarantee in this
// repository — paired-baseline speedup calibration, the jobs=1-vs-8
// byte-identity CI gate, idylld's content-addressed result cache — assumes
// the deterministic core never consults wall-clock time, global math/rand,
// unordered map iteration, or ad-hoc goroutines. The analyzers under
// checks/ turn that assumption into a machine-checked invariant.
//
// The deterministic core is the set of packages listed in CorePackages.
// Concurrency and real time belong to the orchestration layers (experiment,
// service, profiling, cmd/...), which are loaded but exempt from the
// core-only checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CorePackages lists the module-relative paths of the deterministic core:
// packages that must produce bit-identical results for a given seed,
// independent of Go release, GOMAXPROCS, scheduling, or map iteration
// order. cmd/idyllvet runs the core-only analyzers on exactly this set, and
// the determinism contract test at the repository root independently bans
// wall-clock and concurrency imports on the same set as a cheap backstop.
//
// Deliberately absent: config (a configuration surface — it may carry
// time.Duration knobs for the service layer), experiment and service (the
// concurrency layers: worker pools, caches, HTTP), checkpoint/store (the
// concurrent warmup-checkpoint cache: mutex, singleflight, disk I/O — the
// pure codec in internal/checkpoint IS core), profiling (wraps
// runtime/pprof), and the cmd/ binaries.
var CorePackages = []string{
	"internal/cache",
	"internal/checkpoint",
	"internal/core",
	"internal/datapath",
	"internal/driver",
	"internal/gpu",
	"internal/interconnect",
	"internal/memdef",
	"internal/pagetable",
	"internal/sim",
	"internal/sim/pdes",
	"internal/stats",
	"internal/system",
	"internal/tlb",
	"internal/transfw",
	"internal/walker",
	"internal/workload",
}

// ConcurrencyBoundary is the one core package allowed to use goroutines and
// sync primitives: the parallel engine's synchronization layer. Its whole
// job is to run the per-domain engines on worker goroutines while proving —
// by construction and by the byte-identity CI gate — that no schedule leaks
// into results, so the straygoroutine analyzer exempts exactly this path.
// Every other determinism check (wall time, global rand, map order, float
// accumulation order) still applies to it in full: the boundary licenses
// concurrency, not nondeterminism.
const ConcurrencyBoundary = "internal/sim/pdes"

// IsCore reports whether the module-relative package path (e.g.
// "internal/sim") is part of the deterministic core.
func IsCore(rel string) bool {
	for _, p := range CorePackages {
		if rel == p {
			return true
		}
	}
	return false
}

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the check in diagnostics ("[name]") and in
	// //idyllvet:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the check enforces and
	// why, shown by `idyllvet -list`.
	Doc string

	// CoreOnly restricts the analyzer to packages in CorePackages. All
	// determinism checks are core-only: the orchestration layers are
	// allowed (and expected) to use goroutines, sync, and wall time.
	CoreOnly bool

	// Packages, when non-empty, restricts the analyzer to exactly these
	// module-relative package paths — the scoping used by the service-layer
	// contract checks (envelopewrite, missnoterror, metricreg, lockorder),
	// which bind specific orchestration packages rather than the core set.
	// Mutually exclusive with CoreOnly.
	Packages []string

	// Run inspects one package and reports findings via pass.Reportf.
	// Returning an error aborts the whole idyllvet run (exit 2); it is
	// reserved for internal failures, not findings.
	Run func(pass *Pass) error

	// Sources, when non-nil, enrolls the analyzer in the interprocedural
	// taint engine: it reports the nondeterminism source sites inside one
	// function body (a time.Now call, an order-sensitive map range, ...).
	// The engine calls it on every type-checked function in the module —
	// core and non-core alike — and propagates the taint backwards over
	// the static call graph, so a core function whose call chain reaches a
	// source three packages away is reported with the full chain even
	// though no core file mentions the source directly. Sources must not
	// call pass.Reportf; it returns sites, the engine does the reporting.
	Sources func(pass *Pass, fn *ast.FuncDecl) []Source

	// RunProgram, when non-nil, runs once over the whole loaded program
	// instead of package by package — for contract checks that need a
	// cross-package view, like metricreg's registry-vs-increment
	// reconciliation. It only runs when at least one package the analyzer
	// applies to was matched.
	RunProgram func(prog *Program) ([]Diagnostic, error)
}

// A Source is one nondeterminism site inside a function body, found by an
// Analyzer's Sources hook and propagated by the taint engine.
type Source struct {
	Pos token.Pos
	Msg string // e.g. "time.Now reads the wall clock"
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the loaded package under analysis: syntax, types, and the
	// type-checker's fact tables.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// A Diagnostic is one finding, printable as "file:line:col [check] message".
type Diagnostic struct {
	Check    string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Check, d.Message)
}

// Run applies each applicable analyzer to each package and returns the
// findings sorted by position, with //idyllvet:ignore suppressions already
// applied. Packages that fail to type-check surface as an error: analyzers
// must never run on partial type information, because a silently missing
// types.Info entry turns a real finding into a false negative.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		applicable := applicableTo(analyzers, pkg)
		if len(applicable) == 0 {
			continue
		}
		if pkg.Types == nil || pkg.Info == nil {
			return nil, fmt.Errorf("package %s was not type-checked", pkg.Path)
		}
		var raw []Diagnostic
		for _, a := range applicable {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &raw}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, applyDirectives(pkg, raw)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// Apply runs a single analyzer on a single package regardless of its
// CoreOnly scoping, with suppression directives applied — the entry point
// the golden-file test harness uses against testdata packages.
func Apply(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if pkg.Types == nil || pkg.Info == nil {
		return nil, fmt.Errorf("package %s was not type-checked", pkg.Path)
	}
	var raw []Diagnostic
	pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &raw}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags := applyDirectives(pkg, raw)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
}

func applicableTo(analyzers []*Analyzer, pkg *Package) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if !a.appliesTo(pkg.Rel) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// appliesTo reports whether the analyzer's scoping admits the
// module-relative package path.
func (a *Analyzer) appliesTo(rel string) bool {
	if a.CoreOnly {
		return IsCore(rel)
	}
	if len(a.Packages) > 0 {
		for _, p := range a.Packages {
			if rel == p {
				return true
			}
		}
		return false
	}
	return true
}

// NeedsTypes reports whether any analyzer in the set applies to pkg, i.e.
// whether the loader must type-check it at all. Parsing every package but
// type-checking only the analyzed ones keeps `idyllvet ./...` fast even
// though the service layer drags in net/http.
func NeedsTypes(analyzers []*Analyzer, pkg *Package) bool {
	return len(applicableTo(analyzers, pkg)) > 0
}

// RunAll is the whole-program entry point: it type-checks every matched
// package an analyzer applies to (core packages additionally when any
// analyzer enrolls in the taint engine, since their module-internal
// dependencies are pulled in transitively), runs the per-package analyzers,
// the interprocedural taint engine, and the program-level checks, and
// returns the findings with suppression directives from every matched
// package applied.
func RunAll(analyzers []*Analyzer, prog *Program) ([]Diagnostic, error) {
	needTaint := false
	for _, a := range analyzers {
		if a.Sources != nil {
			needTaint = true
			break
		}
	}
	for _, pkg := range prog.Pkgs {
		if len(applicableTo(analyzers, pkg)) == 0 && !(needTaint && IsCore(pkg.Rel)) {
			continue
		}
		if err := prog.Loader.TypeCheck(pkg); err != nil {
			return nil, err
		}
	}

	var raw []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range applicableTo(analyzers, pkg) {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &raw}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if needTaint {
		raw = append(raw, runTaint(analyzers, prog)...)
	}
	for _, a := range analyzers {
		if a.RunProgram == nil || len(prog.Scoped(a)) == 0 {
			continue
		}
		ds, err := a.RunProgram(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		raw = append(raw, ds...)
	}

	diags := applyDirectivesAll(prog.Pkgs, raw)
	sortDiagnostics(diags)
	return diags, nil
}
