package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// The interprocedural taint engine. Each enrolled analyzer (one with a
// Sources hook) contributes nondeterminism source sites; the engine finds
// them in every type-checked NON-core module function, propagates the taint
// backwards over the static call graph, and reports each call site where a
// core-package function's chain crosses into the tainted non-core region —
// with the full chain in the message, so a time.Now three helpers away is
// as loud as a direct import. Sources inside core packages are deliberately
// not re-reported here: the per-package checks already flag them at the
// source line, and the golden tests pin that the direct-import case and the
// chained case surface under the same check name.
//
// The taint never propagates through the sanctioned concurrency boundary's
// own goroutine use (analysis.ConcurrencyBoundary is core, so its sources
// are out of scope by the core rule), and a non-core function is tainted by
// what it can reach, not by the package it lives in — a pure helper in
// internal/config stays callable from the core.

// maxChain caps the rendered call chain. Deeper chains are still reported;
// the tail is elided so one pathological diagnostic cannot flood the log.
const maxChain = 12

func runTaint(analyzers []*Analyzer, prog *Program) []Diagnostic {
	var out []Diagnostic
	funcs := prog.SortedFuncs()
	module := prog.Loader.Module
	for _, a := range analyzers {
		if a.Sources == nil {
			continue
		}
		out = append(out, taintOne(a, prog, funcs, module)...)
	}
	return out
}

type taintState struct {
	dist int     // hops to the nearest source-bearing function (0 = contains one)
	src  *Source // set when dist == 0
}

func taintOne(a *Analyzer, prog *Program, funcs []*FuncInfo, module string) []Diagnostic {
	// Pass 1: source sites, non-core functions only.
	state := make(map[*types.Func]*taintState)
	for _, fi := range funcs {
		rel := relOf(module, fi.Pkg.Path)
		if IsCore(rel) {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fi.Pkg.Fset, Pkg: fi.Pkg}
		srcs := a.Sources(pass, fi.Decl)
		if len(srcs) == 0 {
			continue
		}
		best := srcs[0]
		for _, s := range srcs[1:] {
			if s.Pos < best.Pos {
				best = s
			}
		}
		s := best
		state[fi.Obj] = &taintState{dist: 0, src: &s}
	}
	if len(state) == 0 {
		return nil
	}

	// Pass 2: shortest hop counts by relaxation over the (small) graph.
	// Deterministic: funcs and each Calls list are sorted, and a distance
	// only ever improves strictly.
	index := make(map[*types.Func]*FuncInfo, len(funcs))
	for _, fi := range funcs {
		index[fi.Obj] = fi
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, call := range fi.Calls {
				callee, ok := state[call.Callee]
				if !ok {
					continue
				}
				if cur, ok := state[fi.Obj]; !ok || callee.dist+1 < cur.dist {
					state[fi.Obj] = &taintState{dist: callee.dist + 1}
					changed = true
				}
			}
		}
	}

	// Pass 3: report every call site where a core function steps into the
	// tainted non-core region.
	var out []Diagnostic
	for _, fi := range funcs {
		if !IsCore(relOf(module, fi.Pkg.Path)) {
			continue
		}
		for _, call := range fi.Calls {
			if _, tainted := state[call.Callee]; !tainted {
				continue
			}
			if IsCore(relOf(module, call.Callee.Pkg().Path())) {
				continue // that function reports its own crossing
			}
			chain, src := buildChain(prog, index, state, fi.Obj, call.Callee)
			out = append(out, Diagnostic{
				Check:    a.Name,
				Position: prog.Position(call.Pos),
				Message: fmt.Sprintf("call chain escapes the deterministic core: %s: %s (%s)",
					strings.Join(chain, " → "), src.Msg, prog.Position(src.Pos)),
			})
		}
	}
	return out
}

// buildChain walks the taint gradient from the core entry through callee
// down to the function that contains the source, returning the labelled
// chain and the source site. Each step picks the earliest call whose callee
// is strictly closer to a source, so the rendered chain is a real shortest
// path and stable across runs.
func buildChain(prog *Program, index map[*types.Func]*FuncInfo, state map[*types.Func]*taintState, entry, callee *types.Func) ([]string, *Source) {
	chain := []string{prog.FuncLabel(entry)}
	cur := callee
	for range [maxChain]struct{}{} {
		chain = append(chain, prog.FuncLabel(cur))
		st := state[cur]
		if st.dist == 0 {
			return chain, st.src
		}
		fi := index[cur]
		var next *types.Func
		for _, call := range fi.Calls {
			if cs, ok := state[call.Callee]; ok && cs.dist == st.dist-1 {
				next = call.Callee
				break
			}
		}
		if next == nil {
			break // unreachable: dist > 0 implies a closer callee exists
		}
		cur = next
	}
	chain = append(chain, "…")
	st := state[cur]
	if st.src != nil {
		return chain, st.src
	}
	return chain, &Source{Pos: index[cur].Decl.Pos(), Msg: "chain deeper than the render cap"}
}
