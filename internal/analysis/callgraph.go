package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole-program view RunAll and the interprocedural
// analyzers operate on: the matched packages plus the loader that can
// resolve (and has usually already type-checked) their module-internal
// dependencies. The static call graph over every type-checked module
// function is built once, on first use, and shared by all taint analyzers.
type Program struct {
	Loader *Loader
	Pkgs   []*Package // matched packages, in Loader.Match order

	funcs map[*types.Func]*FuncInfo
	built bool
}

// NewProgram pairs a loader with its matched packages.
func NewProgram(l *Loader, pkgs []*Package) *Program {
	return &Program{Loader: l, Pkgs: pkgs}
}

// Scoped returns the matched packages the analyzer applies to, in match
// order — the package set a RunProgram implementation should inspect.
func (p *Program) Scoped(a *Analyzer) []*Package {
	var out []*Package
	for _, pkg := range p.Pkgs {
		if a.appliesTo(pkg.Rel) {
			out = append(out, pkg)
		}
	}
	return out
}

// A FuncInfo is one function or method declaration in the call graph.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the statically resolvable calls the body makes to other
	// module-internal functions, in source order. Calls through interfaces
	// and function values do not appear: the graph is deliberately
	// conservative-by-construction for direct calls and silent on dynamic
	// dispatch, which the per-package checks (maporder's function-value
	// rule) cover from the other side.
	Calls []Call
}

// A Call is one static call site.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
}

// Funcs returns the call-graph index over every type-checked module
// package the loader knows — matched packages and the module-internal
// dependencies type-checking pulled in — keyed by the type-checker's
// canonical *types.Func objects.
func (p *Program) Funcs() map[*types.Func]*FuncInfo {
	if !p.built {
		p.build()
	}
	return p.funcs
}

// SortedFuncs returns the call-graph functions in a deterministic order:
// by package path, then source position. Every engine that iterates the
// graph goes through this, so diagnostics never depend on map order.
func (p *Program) SortedFuncs() []*FuncInfo {
	funcs := p.Funcs()
	out := make([]*FuncInfo, 0, len(funcs))
	for _, fi := range funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.Path != out[j].Pkg.Path {
			return out[i].Pkg.Path < out[j].Pkg.Path
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}

// typedPackages returns every loader-known package with type information,
// sorted by import path. This is the call graph's node universe: matched
// packages plus dependencies that were type-checked on demand.
func (p *Program) typedPackages() []*Package {
	seen := make(map[string]*Package)
	for _, pkg := range p.Pkgs {
		if pkg.Types != nil {
			seen[pkg.Path] = pkg
		}
	}
	for path, pkg := range p.Loader.pkgs {
		if pkg.Types != nil {
			seen[path] = pkg
		}
	}
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, seen[path])
	}
	return out
}

func (p *Program) build() {
	p.built = true
	p.funcs = make(map[*types.Func]*FuncInfo)
	module := p.Loader.Module
	for _, pkg := range p.typedPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				fi.Calls = collectCalls(pkg, fd, module)
				p.funcs[obj] = fi
			}
		}
	}
}

// collectCalls resolves the static module-internal calls in fd's body,
// including calls made inside function literals (a closure built by fd
// still runs fd's author's code) and go/defer statements.
func collectCalls(pkg *Package, fd *ast.FuncDecl, module string) []Call {
	var out []Call
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		callee, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok || callee.Pkg() == nil {
			return true
		}
		if path := callee.Pkg().Path(); path != module && !strings.HasPrefix(path, module+"/") {
			return true // stdlib and other externals are sources, not edges
		}
		out = append(out, Call{Callee: callee, Pos: call.Pos()})
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// relOf converts a full module import path to the module-relative form
// IsCore and Analyzer.Packages use.
func relOf(module, path string) string {
	if path == module {
		return ""
	}
	return strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
}

// FuncLabel renders a function for a call-chain diagnostic:
// "rel/pkg.Name" or "rel/pkg.(*Type).Method", short enough to chain with
// "→" and unambiguous within the module.
func (p *Program) FuncLabel(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(f.Pkg())) + ")." + name
	}
	rel := relOf(p.Loader.Module, f.Pkg().Path())
	if rel == "" {
		return name
	}
	return rel + "." + name
}

// Position resolves a token.Pos against the program's file set.
func (p *Program) Position(pos token.Pos) token.Position {
	return p.Loader.Fset.Position(pos)
}
