package checks_test

import (
	"strings"
	"testing"

	"idyll/internal/analysis"
	"idyll/internal/analysis/analysistest"
	"idyll/internal/analysis/checks"
)

// TestAnalyzers drives every analyzer over its golden package under
// ../testdata/src, covering positive, negative, and suppression cases via
// the // want expectation comments in the sources themselves. Single-
// directory goldens run one analyzer through the per-package path; the
// mini-module goldens (a go.mod of their own under testdata/src/<name>)
// run the whole-program pipeline — the interprocedural taint engine and
// the cross-package registry reconciliation — exactly as `idyllvet ./...`
// does.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		analyzer *analysis.Analyzer
		pkg      string
	}{
		{checks.Walltime, "walltime"},
		{checks.Globalrand, "globalrand"},
		{checks.Straygoroutine, "straygoroutine"},
		// The concurrency boundary: same constructs as the straygoroutine
		// golden package, zero expected findings (see the package comment).
		{checks.Straygoroutine, "internal/sim/pdes"},
		{checks.Maporder, "maporder"},
		{checks.Floataccum, "floataccum"},
		{checks.Envelopewrite, "envelopewrite"},
		{checks.Missnoterror, "missnoterror"},
		{checks.Lockorder, "lockorder"},
	}
	seen := make(map[string]bool)
	for _, tt := range tests {
		seen[tt.analyzer.Name] = true
		tt := tt
		t.Run(tt.pkg, func(t *testing.T) {
			analysistest.Run(t, tt.analyzer, "../testdata", tt.pkg)
		})
	}
	// Whole-program goldens: interproc pins the taint engine (a core
	// function reaching time.Now two hops away through non-core helpers,
	// next to the direct-import case reporting under the same check), and
	// metricreg pins the registry reconciliation across two packages.
	t.Run("interproc", func(t *testing.T) {
		analysistest.RunModule(t, checks.All(), "../testdata", "interproc")
	})
	t.Run("metricreg", func(t *testing.T) {
		analysistest.RunModule(t, checks.All(), "../testdata", "metricreg")
	})
	seen[checks.Metricreg.Name] = true
	// Every registered analyzer must have a golden package; a new check
	// added to All() without one fails here.
	for _, a := range checks.All() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s has no golden test package", a.Name)
		}
	}
}

// TestRegistry pins the registry's shape: stable names, docs, and the
// scoping contract — every analyzer is either core-only (the determinism
// checks) or bound to an explicit package list (the service-layer contract
// checks); nothing may silently apply everywhere.
func TestRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range checks.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing name or doc", a)
		}
		if a.Run == nil && a.RunProgram == nil {
			t.Errorf("analyzer %s has neither Run nor RunProgram", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if a.CoreOnly == (len(a.Packages) > 0) {
			t.Errorf("analyzer %s must be either CoreOnly or scoped to an explicit package list (got CoreOnly=%v, %d packages)",
				a.Name, a.CoreOnly, len(a.Packages))
		}
		if a.CoreOnly && a.Run == nil {
			t.Errorf("core determinism check %s must have a per-package Run", a.Name)
		}
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces", a.Name)
		}
	}
	for _, want := range []string{
		"walltime", "globalrand", "straygoroutine", "maporder", "floataccum",
		"envelopewrite", "missnoterror", "metricreg", "lockorder",
	} {
		if !names[want] {
			t.Errorf("registry is missing the %s analyzer", want)
		}
	}
	// The five determinism checks are all enrolled in the taint engine; the
	// contract checks are not (their findings are not reachability facts).
	for _, name := range []string{"walltime", "globalrand", "straygoroutine", "maporder", "floataccum"} {
		a, _ := checks.ByName([]string{name})
		if a[0].Sources == nil {
			t.Errorf("determinism check %s is not enrolled in the taint engine (nil Sources)", name)
		}
	}
}

func TestByName(t *testing.T) {
	got, unknown := checks.ByName([]string{"walltime", "maporder"})
	if unknown != "" || len(got) != 2 {
		t.Fatalf("ByName(walltime,maporder) = %d analyzers, unknown %q", len(got), unknown)
	}
	if got[0].Name != "walltime" || got[1].Name != "maporder" {
		t.Fatalf("ByName returned wrong analyzers: %s, %s", got[0].Name, got[1].Name)
	}
	if _, unknown := checks.ByName([]string{"nosuchcheck"}); unknown != "nosuchcheck" {
		t.Fatalf("ByName should report unknown check, got %q", unknown)
	}
}
