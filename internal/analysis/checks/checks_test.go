package checks_test

import (
	"strings"
	"testing"

	"idyll/internal/analysis"
	"idyll/internal/analysis/analysistest"
	"idyll/internal/analysis/checks"
)

// TestAnalyzers drives every analyzer over its golden package under
// ../testdata/src, covering positive, negative, and suppression cases via
// the // want expectation comments in the sources themselves.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		analyzer *analysis.Analyzer
		pkg      string
	}{
		{checks.Walltime, "walltime"},
		{checks.Globalrand, "globalrand"},
		{checks.Straygoroutine, "straygoroutine"},
		// The concurrency boundary: same constructs as the straygoroutine
		// golden package, zero expected findings (see the package comment).
		{checks.Straygoroutine, "internal/sim/pdes"},
		{checks.Maporder, "maporder"},
		{checks.Floataccum, "floataccum"},
	}
	seen := make(map[string]bool)
	for _, tt := range tests {
		seen[tt.analyzer.Name] = true
		tt := tt
		t.Run(tt.pkg, func(t *testing.T) {
			analysistest.Run(t, tt.analyzer, "../testdata", tt.pkg)
		})
	}
	// Every registered analyzer must have a golden package; a new check
	// added to All() without one fails here.
	for _, a := range checks.All() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s has no golden test package", a.Name)
		}
	}
}

// TestRegistry pins the registry's shape: stable names, docs, and the
// CoreOnly scoping every determinism check relies on.
func TestRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range checks.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if !a.CoreOnly {
			t.Errorf("analyzer %s is not CoreOnly; determinism checks must not fire on the orchestration layers", a.Name)
		}
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces", a.Name)
		}
	}
	for _, want := range []string{"walltime", "globalrand", "straygoroutine", "maporder", "floataccum"} {
		if !names[want] {
			t.Errorf("registry is missing the %s analyzer", want)
		}
	}
}

func TestByName(t *testing.T) {
	got, unknown := checks.ByName([]string{"walltime", "maporder"})
	if unknown != "" || len(got) != 2 {
		t.Fatalf("ByName(walltime,maporder) = %d analyzers, unknown %q", len(got), unknown)
	}
	if got[0].Name != "walltime" || got[1].Name != "maporder" {
		t.Fatalf("ByName returned wrong analyzers: %s, %s", got[0].Name, got[1].Name)
	}
	if _, unknown := checks.ByName([]string{"nosuchcheck"}); unknown != "nosuchcheck" {
		t.Fatalf("ByName should report unknown check, got %q", unknown)
	}
}
