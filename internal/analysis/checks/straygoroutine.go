package checks

import (
	"go/ast"
	"go/token"

	"idyll/internal/analysis"
)

// Straygoroutine keeps the deterministic core single-threaded: no go
// statements, no channel operations, no sync primitives. The event engine
// is the only scheduler — concurrency lives in internal/experiment (worker
// pool over independent cells), internal/service (HTTP), and the one
// sanctioned core boundary, internal/sim/pdes (the parallel engine's
// synchronization layer, whose barrier protocol keeps results
// schedule-independent by construction). A stray goroutine anywhere else in
// the core would make event interleaving depend on the Go scheduler, which
// no seed can reproduce.
var Straygoroutine = &analysis.Analyzer{
	Name:     "straygoroutine",
	CoreOnly: true,
	Doc: "forbid go statements, channel operations, and sync primitives in the " +
		"deterministic core: the event engine is the only scheduler, and " +
		"simulations must replay identically regardless of GOMAXPROCS; " +
		"concurrency belongs to experiment/, service/, and the sanctioned " +
		"boundary " + analysis.ConcurrencyBoundary + "; chains into non-core " +
		"helpers that spawn goroutines or select over channels are reported " +
		"interprocedurally",
	Run:     runStraygoroutine,
	Sources: straygoroutineSources,
}

// straygoroutineSources marks scheduler-dependent constructs inside fn as
// taint sources: spawning a goroutine, selecting over channels, and raw
// channel sends/receives. The sanctioned concurrency boundary contributes
// none — its goroutine use is licensed and held to byte-identity by CI —
// and sync.Mutex plumbing alone is not a source, because a lock changes
// scheduling only when a second goroutine exists to contend with (which the
// go-statement source already reports).
func straygoroutineSources(pass *analysis.Pass, fn *ast.FuncDecl) []analysis.Source {
	if fn.Body == nil || pass.Pkg.Rel == analysis.ConcurrencyBoundary {
		return nil
	}
	var out []analysis.Source
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			out = append(out, analysis.Source{Pos: x.Pos(), Msg: "spawns a goroutine (event interleaving would depend on the Go scheduler)"})
		case *ast.SelectStmt:
			out = append(out, analysis.Source{Pos: x.Pos(), Msg: "selects over channels (case choice is scheduler-dependent)"})
		case *ast.SendStmt:
			out = append(out, analysis.Source{Pos: x.Pos(), Msg: "sends on a channel (cross-goroutine communication is scheduler-dependent)"})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				out = append(out, analysis.Source{Pos: x.Pos(), Msg: "receives from a channel (cross-goroutine communication is scheduler-dependent)"})
			}
		}
		return true
	})
	return out
}

func runStraygoroutine(pass *analysis.Pass) error {
	if pass.Pkg.Rel == analysis.ConcurrencyBoundary {
		// The parallel engine's synchronization layer is the one core
		// package licensed to spawn goroutines; the byte-identity gate in CI
		// holds it to the same observable determinism as the rest.
		return nil
	}
	reportImports(pass, map[string]string{
		"sync":        "the core is single-threaded by contract; locking hides scheduling dependence instead of removing it",
		"sync/atomic": "the core is single-threaded by contract; atomics hide scheduling dependence instead of removing it",
	})
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(), "go statement in the deterministic core: event interleaving would depend on the Go scheduler; schedule on the sim.Engine instead")
			case *ast.SelectStmt:
				pass.Reportf(x.Pos(), "select in the deterministic core: case choice is scheduler-dependent")
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "channel send in the deterministic core: cross-goroutine communication is scheduler-dependent")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pass.Reportf(x.Pos(), "channel receive in the deterministic core: cross-goroutine communication is scheduler-dependent")
				}
			case *ast.ChanType:
				pass.Reportf(x.Pos(), "channel type in the deterministic core: use sim.Engine events and plain callbacks")
			}
			return true
		})
	}
	return nil
}
