package checks

import (
	"go/ast"
	"go/token"

	"idyll/internal/analysis"
)

// Straygoroutine keeps the deterministic core single-threaded: no go
// statements, no channel operations, no sync primitives. The event engine
// is the only scheduler — concurrency lives in internal/experiment (worker
// pool over independent cells), internal/service (HTTP), and the one
// sanctioned core boundary, internal/sim/pdes (the parallel engine's
// synchronization layer, whose barrier protocol keeps results
// schedule-independent by construction). A stray goroutine anywhere else in
// the core would make event interleaving depend on the Go scheduler, which
// no seed can reproduce.
var Straygoroutine = &analysis.Analyzer{
	Name:     "straygoroutine",
	CoreOnly: true,
	Doc: "forbid go statements, channel operations, and sync primitives in the " +
		"deterministic core: the event engine is the only scheduler, and " +
		"simulations must replay identically regardless of GOMAXPROCS; " +
		"concurrency belongs to experiment/, service/, and the sanctioned " +
		"boundary " + analysis.ConcurrencyBoundary,
	Run: runStraygoroutine,
}

func runStraygoroutine(pass *analysis.Pass) error {
	if pass.Pkg.Rel == analysis.ConcurrencyBoundary {
		// The parallel engine's synchronization layer is the one core
		// package licensed to spawn goroutines; the byte-identity gate in CI
		// holds it to the same observable determinism as the rest.
		return nil
	}
	reportImports(pass, map[string]string{
		"sync":        "the core is single-threaded by contract; locking hides scheduling dependence instead of removing it",
		"sync/atomic": "the core is single-threaded by contract; atomics hide scheduling dependence instead of removing it",
	})
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(), "go statement in the deterministic core: event interleaving would depend on the Go scheduler; schedule on the sim.Engine instead")
			case *ast.SelectStmt:
				pass.Reportf(x.Pos(), "select in the deterministic core: case choice is scheduler-dependent")
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "channel send in the deterministic core: cross-goroutine communication is scheduler-dependent")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pass.Reportf(x.Pos(), "channel receive in the deterministic core: cross-goroutine communication is scheduler-dependent")
				}
			case *ast.ChanType:
				pass.Reportf(x.Pos(), "channel type in the deterministic core: use sim.Engine events and plain callbacks")
			}
			return true
		})
	}
	return nil
}
