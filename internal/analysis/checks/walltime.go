package checks

import (
	"fmt"
	"go/ast"
	"go/types"

	"idyll/internal/analysis"
)

// wallClockFuncs are the package time symbols that read the host clock or
// block on it. Flagged individually (on top of the import itself) so the
// diagnostic lands on the exact call site.
var wallClockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"Tick":      "creates a wall-clock ticker",
	"NewTicker": "creates a wall-clock ticker",
	"NewTimer":  "creates a wall-clock timer",
	"After":     "creates a wall-clock timer",
	"AfterFunc": "creates a wall-clock timer",
}

// Walltime enforces virtual time in the deterministic core: simulated
// cycles advance only through sim.Engine's event clock (sim.VTime), so any
// consultation of package time makes results depend on host speed and
// scheduling. The import itself is flagged — even time.Duration has no
// business in the core; configuration surfaces that want duration knobs
// live in internal/config, which is outside the core set.
var Walltime = &analysis.Analyzer{
	Name:     "walltime",
	CoreOnly: true,
	Doc: "forbid package time in the deterministic core: the simulator runs on " +
		"virtual time (sim.VTime); wall-clock reads make results depend on host " +
		"speed and scheduling, which breaks byte-identical replay and the " +
		"content-addressed result cache; call chains from the core into " +
		"non-core helpers that read the clock are reported interprocedurally",
	Run:     runWalltime,
	Sources: walltimeSources,
}

func runWalltime(pass *analysis.Pass) error {
	reportImports(pass, map[string]string{
		"time": "the core runs on virtual time (sim.VTime); durations and timestamps must be cycle counts",
	})
	eachUseOf(pass, "time", func(id *ast.Ident, obj types.Object) {
		if why, ok := wallClockFuncs[obj.Name()]; ok {
			pass.Reportf(id.Pos(), "time.%s %s; schedule on the sim.Engine event clock instead", obj.Name(), why)
		}
	})
	return nil
}

// walltimeSources marks each wall-clock consultation inside fn as a taint
// source. Plain time.Duration plumbing is not a source: a helper that
// formats a duration is deterministic, one that reads the clock is not.
func walltimeSources(pass *analysis.Pass, fn *ast.FuncDecl) []analysis.Source {
	if fn.Body == nil {
		return nil
	}
	var out []analysis.Source
	eachUseOfIn(pass, fn.Body, "time", func(id *ast.Ident, obj types.Object) {
		if why, ok := wallClockFuncs[obj.Name()]; ok {
			out = append(out, analysis.Source{Pos: id.Pos(), Msg: fmt.Sprintf("time.%s %s", obj.Name(), why)})
		}
	})
	return out
}
