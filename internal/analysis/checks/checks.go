// Package checks holds the idyllvet analyzers that encode the simulator's
// determinism contract. Each analyzer is a pure function over one
// type-checked package; all of them are CoreOnly — the orchestration layers
// (experiment, service, cmd/...) are allowed to use goroutines, wall time,
// and everything else the core may not.
package checks

import (
	"go/ast"
	"go/types"
	"strconv"

	"idyll/internal/analysis"
)

// All returns every analyzer, in stable registration order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime,
		Globalrand,
		Straygoroutine,
		Maporder,
		Floataccum,
	}
}

// ByName resolves a comma-separated -checks flag value, returning nil and
// the offending name if one is unknown.
func ByName(names []string) ([]*analysis.Analyzer, string) {
	var out []*analysis.Analyzer
	for _, name := range names {
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, name
		}
	}
	return out, ""
}

// ---------------------------------------------------------------------------
// Shared AST helpers.
// ---------------------------------------------------------------------------

// reportImports flags every import of the given package paths in the
// package under analysis.
func reportImports(pass *analysis.Pass, banned map[string]string) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if msg, ok := banned[path]; ok {
				pass.Reportf(imp.Pos(), "import of %q in the deterministic core: %s", path, msg)
			}
		}
	}
}

// eachUseOf calls fn for every identifier in the package that resolves to a
// package-level object of the named package (e.g. time.Now, rand.Intn).
func eachUseOf(pass *analysis.Pass, pkgPath string, fn func(id *ast.Ident, obj types.Object)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
				return true
			}
			if obj.Parent() != obj.Pkg().Scope() {
				return true // method or field, not a package-level symbol
			}
			fn(id, obj)
			return true
		})
	}
}

// isMapRange reports whether rng iterates a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent peels index, selector, paren, and star expressions down to the
// base identifier of an assignable expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's object is declared inside node (e.g.
// a loop-local variable). Identifiers that do not resolve, or resolve to
// objects with no position, count as outside.
func declaredWithin(pass *analysis.Pass, id *ast.Ident, node ast.Node) bool {
	obj := pass.ObjectOf(id)
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// eachStmtList calls fn for every statement list in the file — block
// bodies, switch cases, and select clauses — so callers can see a
// statement together with its following siblings.
func eachStmtList(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			fn(x.List)
		case *ast.CaseClause:
			fn(x.Body)
		case *ast.CommClause:
			fn(x.Body)
		}
		return true
	})
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
