// Package checks holds the idyllvet analyzers that encode the simulator's
// determinism contract. Each analyzer is a pure function over one
// type-checked package; all of them are CoreOnly — the orchestration layers
// (experiment, service, cmd/...) are allowed to use goroutines, wall time,
// and everything else the core may not.
package checks

import (
	"go/ast"
	"go/types"
	"strconv"

	"idyll/internal/analysis"
)

// All returns every analyzer, in stable registration order: the five
// core-only determinism checks (all enrolled in the interprocedural taint
// engine), then the service-layer contract checks.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime,
		Globalrand,
		Straygoroutine,
		Maporder,
		Floataccum,
		Envelopewrite,
		Missnoterror,
		Metricreg,
		Lockorder,
	}
}

// ByName resolves a comma-separated -checks flag value, returning nil and
// the offending name if one is unknown.
func ByName(names []string) ([]*analysis.Analyzer, string) {
	var out []*analysis.Analyzer
	for _, name := range names {
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, name
		}
	}
	return out, ""
}

// ---------------------------------------------------------------------------
// Shared AST helpers.
// ---------------------------------------------------------------------------

// reportImports flags every import of the given package paths in the
// package under analysis.
func reportImports(pass *analysis.Pass, banned map[string]string) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if msg, ok := banned[path]; ok {
				pass.Reportf(imp.Pos(), "import of %q in the deterministic core: %s", path, msg)
			}
		}
	}
}

// eachUseOf calls fn for every identifier in the package that resolves to a
// package-level object of the named package (e.g. time.Now, rand.Intn).
func eachUseOf(pass *analysis.Pass, pkgPath string, fn func(id *ast.Ident, obj types.Object)) {
	for _, f := range pass.Pkg.Files {
		eachUseOfIn(pass, f, pkgPath, fn)
	}
}

// eachUseOfIn is eachUseOf scoped to one subtree — the form the taint
// engine's per-function Sources hooks use.
func eachUseOfIn(pass *analysis.Pass, root ast.Node, pkgPath string, fn func(id *ast.Ident, obj types.Object)) {
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
			return true
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return true // method or field, not a package-level symbol
		}
		fn(id, obj)
		return true
	})
}

// calleeFunc resolves a call expression's static callee, or nil for calls
// through function values, builtins, and type conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := pass.ObjectOf(id).(*types.Func)
	return f
}

// calleeIs reports whether call statically invokes a function named name
// from a package whose short name is pkgName. Matching by package name
// rather than full path keeps the contract checks testable from golden
// mini-modules, where the import path prefix differs from the real module.
func calleeIs(pass *analysis.Pass, call *ast.CallExpr, pkgName, name string) bool {
	f := calleeFunc(pass, call)
	return f != nil && f.Name() == name && f.Pkg() != nil && f.Pkg().Name() == pkgName
}

// isMapRange reports whether rng iterates a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent peels index, selector, paren, and star expressions down to the
// base identifier of an assignable expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's object is declared inside node (e.g.
// a loop-local variable). Identifiers that do not resolve, or resolve to
// objects with no position, count as outside.
func declaredWithin(pass *analysis.Pass, id *ast.Ident, node ast.Node) bool {
	obj := pass.ObjectOf(id)
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// eachStmtList calls fn for every statement list under root — block
// bodies, switch cases, and select clauses — so callers can see a
// statement together with its following siblings.
func eachStmtList(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			fn(x.List)
		case *ast.CaseClause:
			fn(x.Body)
		case *ast.CommClause:
			fn(x.Body)
		}
		return true
	})
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
