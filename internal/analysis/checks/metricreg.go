package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"idyll/internal/analysis"
)

// Metricreg reconciles the metric-key registry with the code, in both
// directions. The /metrics exposition is a contract surface: the fleet
// rollup greps it, CI smoke tests assert on specific counters, and
// dashboards hard-code names — so a counter incremented under a name the
// registry doesn't list is invisible-by-default monitoring drift, and a
// registry entry nothing increments is a dashboard lying about coverage.
// Every string-literal key passed to Metrics.Inc / IncLabeled / Set (or as
// the base name of a LabelKey call) must appear in the MetricKeys registry,
// and every registry entry must occur somewhere in the scoped packages.
// Keys built at runtime from a literal prefix ("fleet_results_"+source)
// match registry entries ending in "*" by prefix; fully dynamic keys are
// out of scope (and should be rare enough to justify with a directive at
// the registry).
var Metricreg = &analysis.Analyzer{
	Name: "metricreg",
	Packages: []string{
		"internal/service",
		"internal/fleet",
	},
	Doc: "cross-check metric counter keys against the MetricKeys registry: " +
		"every literal key incremented via Metrics.Inc/IncLabeled/Set or " +
		"named in a LabelKey call must be registered (prefix entries end in " +
		"\"*\"), and every registry entry must be used somewhere — the " +
		"/metrics text is a contract the fleet rollup and CI gates grep, so " +
		"drift in either direction is silent monitoring breakage",
}

// runMetricreg is attached in init to break the initialization cycle (the
// function needs the analyzer value for Scoped and the diagnostic name).
func init() { Metricreg.RunProgram = runMetricreg }

// regEntry is one registry element: its literal value (with a trailing "*"
// marking a prefix entry) and where it is declared.
type regEntry struct {
	val string
	pos token.Pos
}

func runMetricreg(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	pkgs := prog.Scoped(Metricreg)
	var diags []analysis.Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, analysis.Diagnostic{
			Check:    Metricreg.Name,
			Position: prog.Position(pos),
			Message:  msg,
		})
	}

	entries, regDecl := findMetricRegistry(pkgs)
	if regDecl == nil {
		report(pkgs[0].Files[0].Name.Pos(), "no MetricKeys registry found: declare `var MetricKeys = []string{...}` listing every metric counter key so the exposition surface is auditable in one place")
		return diags, nil
	}

	// Direction 1: every literal key at a metric call site must be
	// registered.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 || !isMetricKeyCall(pkg, call) {
					return true
				}
				key, prefix, pos, ok := literalKeyArg(call.Args[0])
				if !ok {
					return true
				}
				if !registered(entries, key, prefix) {
					if prefix {
						report(pos, "metric key prefix "+strconv.Quote(key)+" has no matching MetricKeys entry: register the family as "+strconv.Quote(key+"*")+" so the exposition surface stays auditable")
					} else {
						report(pos, "metric key "+strconv.Quote(key)+" is not in the MetricKeys registry: every counter the daemon exposes must be registered, or dashboards and the fleet rollup drift silently")
					}
				}
				return true
			})
		}
	}

	// Direction 2: every registry entry must occur as (or prefix) a string
	// literal somewhere outside the registry declaration itself.
	used := make(map[string]bool)
	var occurrences []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if n == regDecl {
					return false
				}
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(lit.Value); err == nil {
					if !used[s] {
						used[s] = true
						occurrences = append(occurrences, s)
					}
				}
				return true
			})
		}
	}
	for _, e := range entries {
		if entryUsed(e.val, used, occurrences) {
			continue
		}
		report(e.pos, "registry entry "+strconv.Quote(e.val)+" is never used in the scoped packages: remove it, or it documents a counter that does not exist")
	}
	return diags, nil
}

// findMetricRegistry locates the top-level `var MetricKeys = []string{...}`
// declaration in the scoped packages, returning its string elements and the
// ValueSpec node (nil if absent).
func findMetricRegistry(pkgs []*analysis.Package) ([]regEntry, ast.Node) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "MetricKeys" || len(vs.Values) != 1 {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					var entries []regEntry
					for _, el := range cl.Elts {
						lit, ok := el.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						if s, err := strconv.Unquote(lit.Value); err == nil {
							entries = append(entries, regEntry{val: s, pos: lit.Pos()})
						}
					}
					return entries, vs
				}
			}
		}
	}
	return nil, nil
}

// isMetricKeyCall reports whether call's first argument is a metric key:
// a Metrics.Inc / IncLabeled / Set method call (receiver's named type is
// "Metrics" — http.Header.Set and url.Values.Set don't match), or a call to
// a function named LabelKey. Matching by name keeps the check exercisable
// from golden mini-modules.
func isMetricKeyCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		switch sel.Sel.Name {
		case "Inc", "IncLabeled", "Set":
			return receiverIsMetrics(pkg, sel)
		case "LabelKey":
			f, _ := pkg.Info.ObjectOf(sel.Sel).(*types.Func)
			return f != nil && f.Type().(*types.Signature).Recv() == nil
		}
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "LabelKey" {
		_, isFunc := pkg.Info.ObjectOf(id).(*types.Func)
		return isFunc
	}
	return false
}

// receiverIsMetrics reports whether sel.X's type is (a pointer to) a named
// type called Metrics.
func receiverIsMetrics(pkg *analysis.Package, sel *ast.SelectorExpr) bool {
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Metrics"
}

// literalKeyArg classifies a metric-key argument: a string literal (exact
// key), a `"lit" + expr` concatenation (prefix key), or neither. Nested
// calls (Inc(LabelKey(...))) and fully dynamic expressions return !ok — the
// LabelKey call is checked on its own, and dynamic keys are out of scope.
func literalKeyArg(arg ast.Expr) (key string, prefix bool, pos token.Pos, ok bool) {
	switch x := arg.(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false, token.NoPos, false
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return "", false, token.NoPos, false
		}
		return s, false, x.Pos(), true
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false, token.NoPos, false
		}
		lit, okLit := x.X.(*ast.BasicLit)
		if !okLit || lit.Kind != token.STRING {
			return "", false, token.NoPos, false
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return "", false, token.NoPos, false
		}
		return s, true, lit.Pos(), true
	}
	return "", false, token.NoPos, false
}

// registered reports whether an exact key (or a literal prefix of a
// runtime-built key family) matches a registry entry. Prefix entries end in
// "*" and match by string prefix.
func registered(entries []regEntry, key string, prefix bool) bool {
	for _, e := range entries {
		if p, wild := strings.CutSuffix(e.val, "*"); wild {
			if prefix {
				if strings.HasPrefix(key, p) || strings.HasPrefix(p, key) {
					return true
				}
			} else if strings.HasPrefix(key, p) {
				return true
			}
		} else if !prefix && e.val == key {
			return true
		}
	}
	return false
}

// entryUsed reports whether a registry entry is backed by a string literal
// occurrence outside the registry: exact entries need an equal literal,
// prefix entries need a literal the prefix covers.
func entryUsed(entry string, used map[string]bool, occurrences []string) bool {
	p, wild := strings.CutSuffix(entry, "*")
	if !wild {
		return used[entry]
	}
	for _, o := range occurrences {
		if strings.HasPrefix(o, p) {
			return true
		}
	}
	return false
}
