package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"idyll/internal/analysis"
)

// Lockorder detects mutex acquisition-order cycles within the concurrent
// orchestration packages. The service and fleet layers hold several mutexes
// (server state, result cache, metrics, coordinator membership), and a pair
// of code paths that acquire two of them in opposite orders is a deadlock
// that no test catches until the unlucky interleaving ships. The check
// models each sync.Mutex/RWMutex by its owning type and field (or
// package-level variable name), walks every function with a held-lock set
// (branch-sensitive, defer-aware: a deferred Unlock holds the lock to
// function end), propagates which locks each function may acquire through
// same-package static calls to a fixpoint, and reports every cycle in the
// resulting held-before graph once, with the witness positions.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Packages: []string{
		"internal/fleet",
		"internal/service",
	},
	Doc: "detect mutex acquisition-order cycles inside a package: two paths " +
		"that take the same pair of locks in opposite orders deadlock under " +
		"the right interleaving; lock nesting must form a DAG, including " +
		"nesting hidden behind same-package calls made while holding a lock",
	Run: runLockorder,
}

// lockEdge is one held-before witness: acquiring `to` while `from` is held.
type lockEdge struct {
	pos token.Pos
}

type lockGraph struct {
	pass *analysis.Pass
	// acquires maps each package function to the set of lock keys it (or a
	// same-package callee) may acquire — the call summaries.
	acquires map[*types.Func]map[string]bool
	// edges[from][to] is the first witness of `to` acquired under `from`.
	edges map[string]map[string]lockEdge
}

func runLockorder(pass *analysis.Pass) error {
	g := &lockGraph{
		pass:     pass,
		acquires: make(map[*types.Func]map[string]bool),
		edges:    make(map[string]map[string]lockEdge),
	}
	fns := packageFuncs(pass)
	g.buildSummaries(fns)
	for _, fn := range fns {
		g.walkFunc(fn)
	}
	g.reportCycles()
	return nil
}

// packageFuncs returns the package's function declarations with bodies, in
// source order.
func packageFuncs(pass *analysis.Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// buildSummaries computes, to a fixpoint over same-package static calls,
// the set of lock keys each function may acquire.
func (g *lockGraph) buildSummaries(fns []*ast.FuncDecl) {
	callees := make(map[*types.Func][]*types.Func)
	objOf := make(map[*types.Func]*ast.FuncDecl)
	for _, fd := range fns {
		obj, ok := g.pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		objOf[obj] = fd
		direct := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, acquire, ok := g.mutexOp(call); ok && acquire {
				direct[key] = true
			}
			if callee := g.samePackageCallee(call); callee != nil {
				callees[obj] = append(callees[obj], callee)
			}
			return true
		})
		g.acquires[obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for obj := range objOf {
			for _, callee := range callees[obj] {
				for key := range g.acquires[callee] {
					if !g.acquires[obj][key] {
						g.acquires[obj][key] = true
						changed = true
					}
				}
			}
		}
	}
}

// walkFunc runs the held-set walk over one function body.
func (g *lockGraph) walkFunc(fd *ast.FuncDecl) {
	g.walkStmts(fd.Body.List, make(map[string]bool))
}

// walkStmts processes a statement list, threading the held set through
// sequential statements. Branch bodies get a copy: a lock acquired inside
// one arm is not held after the branch joins (if it leaks out on purpose,
// the sequential code after the acquisition already witnesses the edges).
func (g *lockGraph) walkStmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		g.walkStmt(st, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (g *lockGraph) walkStmt(st ast.Stmt, held map[string]bool) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		g.walkStmts(x.List, held)
	case *ast.LabeledStmt:
		g.walkStmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			g.walkStmt(x.Init, held)
		}
		g.scanExpr(x.Cond, held)
		g.walkStmt(x.Body, copyHeld(held))
		if x.Else != nil {
			g.walkStmt(x.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			g.walkStmt(x.Init, held)
		}
		if x.Cond != nil {
			g.scanExpr(x.Cond, held)
		}
		g.walkStmt(x.Body, copyHeld(held))
	case *ast.RangeStmt:
		g.scanExpr(x.X, held)
		g.walkStmt(x.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if x.Init != nil {
			g.walkStmt(x.Init, held)
		}
		if x.Tag != nil {
			g.scanExpr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				g.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases only at return: the lock stays in the
		// held set for the rest of the walk, which is exactly right. Other
		// deferred calls run with whatever is held at return — approximated
		// by the current held set.
		if _, acquire, ok := g.mutexOp(x.Call); ok && !acquire {
			return
		}
		g.scanExpr(x.Call, copyHeld(held))
	case *ast.GoStmt:
		// The goroutine starts with nothing held; its body is walked with a
		// fresh set so the spawner's locks don't fabricate edges.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			g.walkStmts(lit.Body.List, make(map[string]bool))
		}
	default:
		g.scanExpr(st, held)
	}
}

// scanExpr processes the calls inside one non-branching statement or
// expression in source order, mutating held.
func (g *lockGraph) scanExpr(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			// A closure is typically invoked where it is built (sort.Slice,
			// singleflight callbacks), so its body runs under the current
			// held set — walk it with a copy.
			g.walkStmts(x.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			g.handleCall(x, held)
		}
		return true
	})
}

func (g *lockGraph) handleCall(call *ast.CallExpr, held map[string]bool) {
	if key, acquire, ok := g.mutexOp(call); ok {
		if acquire {
			g.addEdges(held, key, call.Pos())
			held[key] = true
		} else {
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if callee := g.samePackageCallee(call); callee != nil {
		keys := make([]string, 0, len(g.acquires[callee]))
		for key := range g.acquires[callee] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			g.addEdges(held, key, call.Pos())
		}
	}
}

// addEdges records held→key witnesses for every currently held lock.
func (g *lockGraph) addEdges(held map[string]bool, key string, pos token.Pos) {
	froms := make([]string, 0, len(held))
	for h := range held {
		froms = append(froms, h)
	}
	sort.Strings(froms)
	for _, from := range froms {
		if from == key {
			continue // re-acquisition is a different bug than an order cycle
		}
		if g.edges[from] == nil {
			g.edges[from] = make(map[string]lockEdge)
		}
		if _, dup := g.edges[from][key]; !dup {
			g.edges[from][key] = lockEdge{pos: pos}
		}
	}
}

// samePackageCallee resolves call to a function or method declared in the
// package under analysis, or nil — the only calls whose lock summaries are
// visible to an intra-package check.
func (g *lockGraph) samePackageCallee(call *ast.CallExpr) *types.Func {
	f := calleeFunc(g.pass, call)
	if f == nil || f.Pkg() != g.pass.Pkg.Types {
		return nil
	}
	return f
}

// mutexOp classifies call as a sync mutex acquisition or release and
// returns the lock's key, or ok=false.
func (g *lockGraph) mutexOp(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var isAcquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	f, isFunc := g.pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, false
	}
	k := g.lockKey(sel.X)
	if k == "" {
		return "", false, false
	}
	return k, isAcquire, true
}

// lockKey names a mutex by its owning named type and field ("Server.mu"),
// or by its variable name for package-level and local mutexes. Locks
// reached through expressions with no stable name (map/slice elements) get
// no key and are skipped — the check is deliberately conservative.
func (g *lockGraph) lockKey(expr ast.Expr) string {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		t := g.pass.TypeOf(x.X)
		if t == nil {
			return ""
		}
		if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + x.Sel.Name
		}
		return ""
	case *ast.Ident:
		return x.Name
	case *ast.ParenExpr:
		return g.lockKey(x.X)
	case *ast.UnaryExpr:
		return g.lockKey(x.X)
	}
	return ""
}

// reportCycles finds every cycle in the held-before graph and reports each
// once, anchored at the first witness edge, with the full key chain and the
// witness position of every edge in the chain.
func (g *lockGraph) reportCycles() {
	keys := make([]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := make(map[string]bool)
	for _, a := range keys {
		tos := make([]string, 0, len(g.edges[a]))
		for to := range g.edges[a] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, b := range tos {
			path := g.shortestPath(b, a)
			if path == nil {
				continue
			}
			cycle := append([]string{a}, path...) // a, b, ..., a
			if smallest(cycle[:len(cycle)-1]) != a {
				continue // reported from the rotation starting at the smallest key
			}
			id := strings.Join(cycle, "→")
			if seen[id] {
				continue
			}
			seen[id] = true
			g.pass.Reportf(g.edges[a][b].pos,
				"mutex acquisition-order cycle: %s — opposite-order paths deadlock under the right interleaving; pick one global order and restructure the odd path out (witnesses: %s)",
				strings.Join(cycle, " → "), g.witnesses(cycle))
		}
	}
}

// shortestPath returns the keys from `from` to `to` inclusive, by BFS over
// sorted neighbors, or nil.
func (g *lockGraph) shortestPath(from, to string) []string {
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for k := to; k != ""; k = prev[k] {
				path = append([]string{k}, path...)
			}
			return path
		}
		next := make([]string, 0, len(g.edges[cur]))
		for n := range g.edges[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, visited := prev[n]; !visited {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}

func smallest(keys []string) string {
	min := keys[0]
	for _, k := range keys[1:] {
		if k < min {
			min = k
		}
	}
	return min
}

// witnesses renders "A→B at file:line" for each edge of the cycle, with
// base filenames so the message is machine-independent.
func (g *lockGraph) witnesses(cycle []string) string {
	var parts []string
	for i := 0; i+1 < len(cycle); i++ {
		e := g.edges[cycle[i]][cycle[i+1]]
		pos := g.pass.Fset.Position(e.pos)
		parts = append(parts, fmt.Sprintf("%s→%s at %s:%d", cycle[i], cycle[i+1], filepath.Base(pos.Filename), pos.Line))
	}
	return strings.Join(parts, ", ")
}
