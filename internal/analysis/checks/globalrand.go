package checks

import (
	"fmt"
	"go/ast"
	"go/types"

	"idyll/internal/analysis"
)

// Globalrand forbids math/rand (and math/rand/v2) in the deterministic
// core. The global generators are seeded per-process (and auto-seeded since
// Go 1.20), so two runs — or the same run on two Go releases — draw
// different streams; even explicitly seeded rand.New drifts across Go
// releases because the stdlib algorithms are not frozen. All core
// randomness must come from sim.Rand (xoshiro256**, seeded via splitmix64),
// whose stream is part of the repository's byte-identity guarantee.
var Globalrand = &analysis.Analyzer{
	Name:     "globalrand",
	CoreOnly: true,
	Doc: "forbid math/rand in the deterministic core: global generators are " +
		"process-seeded and stdlib algorithms drift across Go releases; use the " +
		"seeded sim.Rand (sim.NewRand) so random streams are part of the " +
		"byte-identity guarantee; chains into non-core helpers that draw from " +
		"math/rand are reported interprocedurally",
	Run:     runGlobalrand,
	Sources: globalrandSources,
}

// globalrandSources marks each math/rand draw inside fn as a taint source.
func globalrandSources(pass *analysis.Pass, fn *ast.FuncDecl) []analysis.Source {
	if fn.Body == nil {
		return nil
	}
	var out []analysis.Source
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		eachUseOfIn(pass, fn.Body, path, func(id *ast.Ident, obj types.Object) {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return
			}
			out = append(out, analysis.Source{Pos: id.Pos(), Msg: fmt.Sprintf("rand.%s draws from math/rand", obj.Name())})
		})
	}
	return out
}

func runGlobalrand(pass *analysis.Pass) error {
	msg := "core randomness must come from the seeded sim RNG (sim.NewRand)"
	reportImports(pass, map[string]string{
		"math/rand":    msg,
		"math/rand/v2": msg,
	})
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		eachUseOf(pass, path, func(id *ast.Ident, obj types.Object) {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return
			}
			switch obj.Name() {
			case "New":
				pass.Reportf(id.Pos(), "rand.New: even a seeded math/rand stream drifts across Go releases; use sim.NewRand(seed)")
			default:
				pass.Reportf(id.Pos(), "rand.%s: core randomness must come from the seeded sim RNG (sim.NewRand)", obj.Name())
			}
		})
	}
	return nil
}
