package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"idyll/internal/analysis"
)

// Maporder flags range statements over maps whose bodies are sensitive to
// iteration order: appending to a slice, writing state declared outside the
// loop, scheduling events, invoking a function value, or returning a value
// derived from the iteration variables. Go randomizes map iteration per
// run, so any of these lets a hash seed leak into simulation results — the
// exact drift mode that would corrupt the jobs=1-vs-8 byte-identity gate
// and idylld's content-addressed cache.
//
// The canonical fix is recognized and allowed: a loop that only collects
// the keys (or key-derived records) into a slice which is then handed to
// package sort before any other use. Everything else needs either sorted
// keys or an //idyllvet:ignore maporder directive with a justification
// (e.g. a commutative integer reduction).
var Maporder = &analysis.Analyzer{
	Name:     "maporder",
	CoreOnly: true,
	Doc: "flag order-sensitive bodies under range-over-map (appends, writes to " +
		"outer state, event scheduling, function-value calls, value-bearing " +
		"returns): map iteration order is randomized per run, so these leak the " +
		"hash seed into results; collect-and-sort the keys first, or suppress " +
		"with a justification when the reduction is provably commutative; " +
		"non-core helpers reached from the core are scanned interprocedurally",
	Run:     runMaporder,
	Sources: maporderSources,
}

func runMaporder(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		scanMaporder(pass, f, func(rng *ast.RangeStmt, v string) {
			pass.Reportf(rng.For, "range over %s: %s; iterate sorted keys instead",
				types.TypeString(pass.TypeOf(rng.X), types.RelativeTo(pass.Pkg.Types)), v)
		})
	}
	return nil
}

// maporderSources marks each order-sensitive map range inside fn as a taint
// source — a non-core helper that hands back (or schedules) map-ordered
// results poisons every core caller.
func maporderSources(pass *analysis.Pass, fn *ast.FuncDecl) []analysis.Source {
	if fn.Body == nil {
		return nil
	}
	var out []analysis.Source
	scanMaporder(pass, fn.Body, func(rng *ast.RangeStmt, v string) {
		out = append(out, analysis.Source{Pos: rng.For, Msg: "order-sensitive range over a map (" + v + ")"})
	})
	return out
}

// scanMaporder reports each order-sensitive map range under root through
// report, with the collect-keys-then-sort idiom already recognized and
// skipped.
func scanMaporder(pass *analysis.Pass, root ast.Node, report func(rng *ast.RangeStmt, violation string)) {
	eachStmtList(root, func(list []ast.Stmt) {
		for i, st := range list {
			if lab, ok := st.(*ast.LabeledStmt); ok {
				st = lab.Stmt
			}
			rng, ok := st.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rng) {
				continue
			}
			if isSortedKeyCollection(pass, rng, list[i+1:]) {
				continue
			}
			for _, v := range mapOrderViolations(pass, rng) {
				report(rng, v)
			}
		}
	})
}

// mapOrderViolations scans the loop body for order-sensitive effects. The
// walk stops at nested map ranges (they are checked on their own) but
// deliberately descends into func literals: a closure built per map entry
// observes iteration order through its capture and creation order.
func mapOrderViolations(pass *analysis.Pass, rng *ast.RangeStmt) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x != rng && isMapRange(pass, x) {
				return false
			}
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) && isAppendCall(x.Rhs[i]) {
					if root := rootIdent(lhs); root != nil && !declaredWithin(pass, root, rng) {
						add(fmt.Sprintf("body appends to %q in map order", root.Name))
					}
					continue
				}
				describeWrite(pass, rng, lhs, add)
			}
		case *ast.IncDecStmt:
			describeWrite(pass, rng, x.X, add)
		case *ast.CallExpr:
			describeCall(pass, rng, x, add)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if referencesRangeVars(pass, rng, res) {
					add("body returns a value derived from the iteration variables (picks an arbitrary element)")
					break
				}
			}
		}
		return true
	})
	return out
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// describeWrite records a violation if the written expression is rooted in
// a variable declared outside the range statement. Blank assignments and
// writes to loop-locals (including the key/value variables) are fine.
func describeWrite(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr, add func(string)) {
	root := rootIdent(lhs)
	if root == nil {
		add("body writes through an expression whose target cannot be proven loop-local")
		return
	}
	if root.Name == "_" || declaredWithin(pass, root, rng) {
		return
	}
	add(fmt.Sprintf("body writes %q, declared outside the loop, in map order", root.Name))
}

// describeCall flags event scheduling and calls through function values.
// Direct calls to named functions are not flagged by themselves — if their
// arguments feed outer state the assignment checks catch it, and flagging
// every call would drown the signal.
func describeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, add func(string)) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Schedule" || fun.Sel.Name == "ScheduleAt" {
			add("body schedules events in map order")
		}
	case *ast.Ident:
		obj := pass.ObjectOf(fun)
		v, ok := obj.(*types.Var)
		if !ok {
			return // builtin (append/delete/len) or a named function
		}
		// A call through a function variable that flows in from outside
		// the body — a parameter, an outer variable, or the range value
		// itself — lets the callee observe iteration order. A closure
		// both defined and called inside the body cannot.
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig && !declaredWithin(pass, fun, rng.Body) {
			add(fmt.Sprintf("body invokes function value %q in map order (iteration order escapes to the callee)", fun.Name))
		}
	}
}

// referencesRangeVars reports whether e mentions the range's key or value
// variable.
func referencesRangeVars(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) bool {
	vars := make(map[types.Object]bool)
	for _, kv := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	if len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// isSortedKeyCollection recognizes the canonical deterministic-iteration
// idiom: the loop body only appends to slices, and each such slice is
// handed to package sort (or slices) before any other use in the following
// statements.
func isSortedKeyCollection(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var targets []types.Object
	for _, st := range rng.Body.List {
		asg, ok := st.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || !isAppendCall(asg.Rhs[0]) {
			return false
		}
		root := rootIdent(asg.Lhs[0])
		if root == nil {
			return false
		}
		obj := pass.ObjectOf(root)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, tgt := range targets {
		if !sortedBeforeUse(pass, tgt, rest) {
			return false
		}
	}
	return true
}

// sortedBeforeUse reports whether the first following statement that
// mentions obj is a sort.X(...) / slices.X(...) call over it.
func sortedBeforeUse(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		if !mentions(pass, st, obj) {
			continue
		}
		expr, ok := st.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := expr.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return false
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && pass.ObjectOf(root) == obj {
				return true
			}
		}
		return false
	}
	return false // never sorted (and never used — conservatively not the idiom)
}

func mentions(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
