package checks

import (
	"go/ast"
	"go/types"

	"idyll/internal/analysis"
)

// Missnoterror enforces the degrade-to-miss contract on the disk tiers: a
// result-cache or checkpoint-store read that fails — file absent, envelope
// unverifiable, decode broken — must be reported as a cache miss, never
// surfaced as an error. The caller's recovery path is always the same
// (recompute and re-store), so propagating the error upward only converts a
// self-healing condition into a request failure; the chaos gate depends on
// corrupt blobs being quarantined and recomputed, not 500'd. Mechanically:
// inside the scoped packages, an error value produced by os.ReadFile,
// os.Open, or integrity.Unwrap must not appear in a return statement
// (directly or rewrapped via fmt.Errorf); log it, count it, and fall
// through to the miss path instead.
var Missnoterror = &analysis.Analyzer{
	Name: "missnoterror",
	Packages: []string{
		"internal/service",
		"internal/checkpoint/store",
	},
	Doc: "forbid returning disk-read errors from the result cache and the " +
		"checkpoint store: a failed read (missing file, bad envelope, decode " +
		"error) must degrade to a cache miss so the caller recomputes; " +
		"surfacing it turns a self-healing condition into a request failure",
	Run: runMissnoterror,
}

func runMissnoterror(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMissNotError(pass, fd)
		}
	}
	return nil
}

func checkMissNotError(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: error-typed variables whose value comes from a disk read.
	diskErrs := make(map[types.Object]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		src := diskReadName(pass, call)
		if src == "" {
			return true
		}
		// The error is by convention the last result.
		last := asg.Lhs[len(asg.Lhs)-1]
		id, ok := last.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !isErrorType(obj.Type()) {
			return true
		}
		diskErrs[obj] = src
		return true
	})
	if len(diskErrs) == 0 {
		return
	}
	// Pass 2: flag returns that mention one of those error values, directly
	// or nested inside a wrapping call like fmt.Errorf.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return true // closures share the outer scope; keep scanning
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				if src, hit := diskErrs[pass.ObjectOf(id)]; hit {
					pass.Reportf(id.Pos(), "disk-read error from %s escapes as a return value: the disk tier must degrade to a miss (log/count it and fall through) so the caller recomputes instead of failing", src)
					return false
				}
				return true
			})
		}
		return true
	})
}

// diskReadName names the disk-read operation a call performs, or "" if it
// is not one. Matching is by package short name so golden mini-modules can
// exercise the check with their own integrity package.
func diskReadName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch {
	case calleeIs(pass, call, "os", "ReadFile"):
		return "os.ReadFile"
	case calleeIs(pass, call, "os", "Open"):
		return "os.Open"
	case calleeIs(pass, call, "integrity", "Unwrap"):
		return "integrity.Unwrap"
	}
	return ""
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
