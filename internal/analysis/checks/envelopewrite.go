package checks

import (
	"go/ast"
	"go/types"

	"idyll/internal/analysis"
)

// Envelopewrite enforces the at-rest integrity contract the chaos gate
// relies on: every blob the result cache or the checkpoint store writes to
// disk must carry the IDYLLSUM checksum envelope, because the read path
// treats anything unverifiable as damage (quarantine + recompute). A write
// path that skips integrity.Wrap would make its own output look corrupt to
// the next process — or worse, ride on the legacy-blob tolerance and skip
// verification entirely. The check is function-granular: a function that
// puts bytes on disk (os.WriteFile, or Write/WriteString/WriteAt on an
// *os.File) must itself call integrity.Wrap; helpers that receive
// pre-wrapped bytes from a caller need an //idyllvet:ignore envelopewrite
// directive stating exactly that.
var Envelopewrite = &analysis.Analyzer{
	Name: "envelopewrite",
	Packages: []string{
		"internal/service",
		"internal/checkpoint/store",
	},
	Doc: "require every disk write in the result cache and the checkpoint " +
		"store to flow through integrity.Wrap: the read side quarantines " +
		"anything that fails envelope verification, so an unwrapped blob is " +
		"either self-inflicted corruption or a silent hole in the " +
		"end-to-end integrity story",
	Run: runEnvelopewrite,
}

func runEnvelopewrite(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var writes []ast.Expr
			wraps := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case calleeIs(pass, call, "integrity", "Wrap"):
					wraps = true
				case calleeIs(pass, call, "os", "WriteFile"), isOSFileWrite(pass, call):
					writes = append(writes, call.Fun)
				}
				return true
			})
			if wraps {
				continue
			}
			for _, w := range writes {
				pass.Reportf(w.Pos(), "disk write without integrity.Wrap in this function: at-rest blobs must carry the checksum envelope, or the read side will quarantine them (or skip verification) on the next load")
			}
		}
	}
	return nil
}

// isOSFileWrite reports whether call is a Write/WriteString/WriteAt method
// call on an *os.File (the temp-file half of the write-then-rename idiom).
func isOSFileWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteAt":
	default:
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
