package checks

import (
	"go/ast"
	"go/token"

	"idyll/internal/analysis"
)

// Floataccum flags order-sensitive floating-point accumulation inside map
// iteration. Float addition is not associative: summing the same multiset
// of values in two different orders can round differently, so an
// accumulation keyed off randomized map order can flip the last bits of a
// reported figure between runs — precisely the drift the byte-identity
// gates exist to catch. Integer accumulation is exact and commutative, so
// it is left to maporder's broader shared-state rule (where a suppression
// with justification is acceptable); float accumulation gets its own check
// because no justification can make it order-safe.
var Floataccum = &analysis.Analyzer{
	Name:     "floataccum",
	CoreOnly: true,
	Doc: "flag float64/float32 += (or x = x + y) under range-over-map: float " +
		"addition is not associative, so randomized iteration order can change " +
		"rounding between runs; iterate sorted keys so the summation order is " +
		"fixed; non-core helpers reached from the core are scanned " +
		"interprocedurally",
	Run:     runFloataccum,
	Sources: floataccumSources,
}

func runFloataccum(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		scanFloataccumUnder(pass, f, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s", msg)
		})
	}
	return nil
}

// floataccumSources marks each order-sensitive float accumulation inside fn
// as a taint source.
func floataccumSources(pass *analysis.Pass, fn *ast.FuncDecl) []analysis.Source {
	if fn.Body == nil {
		return nil
	}
	var out []analysis.Source
	scanFloataccumUnder(pass, fn.Body, func(pos token.Pos, msg string) {
		out = append(out, analysis.Source{Pos: pos, Msg: msg})
	})
	return out
}

// scanFloataccumUnder finds every map range under root and reports its
// order-sensitive float accumulations.
func scanFloataccumUnder(pass *analysis.Pass, root ast.Node, report func(pos token.Pos, msg string)) {
	ast.Inspect(root, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rng) {
			return true
		}
		scanFloatAccum(pass, rng, report)
		return true
	})
}

func scanFloatAccum(pass *analysis.Pass, rng *ast.RangeStmt, report func(pos token.Pos, msg string)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges are scanned by their own visit; without
			// this cut each site inside would be reported once per
			// enclosing loop.
			if isMapRange(pass, x) {
				return false
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			lhs := x.Lhs[0]
			if !isFloat(pass.TypeOf(lhs)) || isLoopLocal(pass, rng, lhs) {
				return true
			}
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				report(x.TokPos, "order-sensitive float accumulation under range-over-map: float addition is not associative; iterate sorted keys")
			case token.ASSIGN:
				if isSelfAccum(pass, lhs, x.Rhs[0]) {
					report(x.TokPos, "order-sensitive float accumulation (x = x ± ...) under range-over-map: float addition is not associative; iterate sorted keys")
				}
			}
		}
		return true
	})
}

// isLoopLocal reports whether the written expression is rooted in a
// variable declared inside the range statement (accumulating into a
// per-iteration temporary is harmless).
func isLoopLocal(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	root := rootIdent(lhs)
	return root != nil && (root.Name == "_" || declaredWithin(pass, root, rng))
}

// isSelfAccum matches `x = x + e` / `x = x - e` / `x = e + x` by comparing
// the root identifiers of both sides of a top-level binary add.
func isSelfAccum(pass *analysis.Pass, lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return false
	}
	lroot := rootIdent(lhs)
	if lroot == nil {
		return false
	}
	lobj := pass.ObjectOf(lroot)
	if lobj == nil {
		return false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if root := rootIdent(side); root != nil && pass.ObjectOf(root) == lobj {
			return true
		}
	}
	return false
}
