// Golden input for the walltime check: positive, negative, and
// suppression cases.
package walltime

import (
	"time" // want `import of "time" in the deterministic core`
)

// Positive: wall-clock reads and timers.
func positive() time.Time {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the wall clock`
	return time.Now()            // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func timers(d time.Duration) {
	t := time.NewTimer(d) // want `time\.NewTimer creates a wall-clock timer`
	t.Stop()
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc creates a wall-clock timer`
}

// Negative: virtual time is a plain cycle counter and needs nothing from
// package time (uses of time.Time/time.Duration values alone are not
// flagged beyond the import).
type vtime uint64

func advance(now, delta vtime) vtime { return now + delta }

// Suppression: the directive on the preceding line silences the finding.
//
//idyllvet:ignore walltime golden test for the suppression path
func suppressed() time.Time { return time.Now() }
