// Golden input for the globalrand check: positive, negative, and
// suppression cases.
package globalrand

import (
	"math/rand" // want `import of "math/rand" in the deterministic core`
)

// Positive: the process-global generator and explicitly seeded stdlib
// generators are both banned — only the sim RNG's stream is frozen.
func positive() int {
	r := rand.New(rand.NewSource(42)) // want `rand\.New: even a seeded math/rand stream drifts` `rand\.NewSource: core randomness must come from the seeded sim RNG`
	return r.Intn(10) + rand.Intn(10) // want `rand\.Intn: core randomness must come from the seeded sim RNG`
}

// Negative: a local splitmix-style generator owns its stream.
type localRand struct{ state uint64 }

func (r *localRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// Suppression: the directive on the preceding line silences the finding.
//
//idyllvet:ignore globalrand golden test for the suppression path
func suppressed() float64 { return rand.Float64() }
