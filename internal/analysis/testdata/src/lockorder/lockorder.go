// Package lockorder is the golden input for the lockorder check: mutex
// nesting must form a DAG, including nesting hidden behind same-package
// calls made while holding a lock.
package lockorder

import "sync"

// Alpha and Beta are locked in opposite orders by One and Two: the direct
// cycle, reported once from the rotation starting at the smallest key.
type Alpha struct {
	mu sync.Mutex
	b  *Beta
}

type Beta struct {
	mu sync.Mutex
	a  *Alpha
}

func (x *Alpha) One() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.b.mu.Lock() // want `mutex acquisition-order cycle: Alpha\.mu → Beta\.mu → Alpha\.mu`
	x.b.mu.Unlock()
}

func (y *Beta) Two() {
	y.mu.Lock()
	defer y.mu.Unlock()
	y.a.mu.Lock()
	y.a.mu.Unlock()
}

// Gamma reaches Delta.mu through a same-package call while holding its own
// lock — the half of the cycle only the call summaries can see.
type Gamma struct {
	mu sync.Mutex
	d  *Delta
}

type Delta struct {
	mu sync.Mutex
	g  *Gamma
}

func (g *Gamma) LockBoth() {
	g.mu.Lock()
	g.lockD()
	g.mu.Unlock()
}

func (g *Gamma) lockD() {
	g.d.mu.Lock()
	g.d.mu.Unlock()
}

func (d *Delta) Back() {
	d.mu.Lock()
	d.g.mu.Lock() // want `mutex acquisition-order cycle: Delta\.mu → Gamma\.mu → Delta\.mu`
	d.g.mu.Unlock()
	d.mu.Unlock()
}

// Outer and Inner are always locked in the same global order: no finding.
type Outer struct {
	mu sync.Mutex
	in *Inner
}

type Inner struct{ mu sync.Mutex }

func (o *Outer) A() {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.mu.Unlock()
	o.mu.Unlock()
}

func (o *Outer) B() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	defer o.in.mu.Unlock()
}

// Pinned and Quiet form a cycle whose witness carries a reviewed
// suppression: no finding.
type Pinned struct {
	mu sync.Mutex
	q  *Quiet
}

type Quiet struct {
	mu sync.Mutex
	p  *Pinned
}

func (p *Pinned) Hold() {
	p.mu.Lock()
	//idyllvet:ignore lockorder golden: pins that cycle findings honor suppression directives
	p.q.mu.Lock()
	p.q.mu.Unlock()
	p.mu.Unlock()
}

func (q *Quiet) Hold() {
	q.mu.Lock()
	q.p.mu.Lock()
	q.p.mu.Unlock()
	q.mu.Unlock()
}
