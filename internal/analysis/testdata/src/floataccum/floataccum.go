// Golden input for the floataccum check: positive, negative, and
// suppression cases.
package floataccum

// Positive: += on a float under map iteration rounds differently per
// iteration order.
func sums(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // (maporder also fires here; this package tests floataccum alone)
		total += v // want `order-sensitive float accumulation under range-over-map`
	}
	return total
}

// Positive: the spelled-out self-assignment form.
func selfAssign(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `order-sensitive float accumulation \(x = x ± \.\.\.\) under range-over-map`
	}
	return total
}

// Positive: accumulating into an indexed cell of an outer slice.
func binned(m map[int]float64, bins []float64) {
	for k, v := range m {
		bins[k%len(bins)] += v // want `order-sensitive float accumulation under range-over-map`
	}
}

// Negative: integer accumulation is exact and commutative (maporder's
// business, not floataccum's).
func ints(m map[int]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// Negative: slice iteration order is fixed.
func overSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// Negative: a per-iteration temporary cannot observe iteration order.
func loopLocal(m map[int][]float64) {
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		_ = rowSum
	}
}

// Suppression: an inline directive on the offending line.
func suppressed(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //idyllvet:ignore floataccum golden test for the suppression path
	}
	return total
}
