// Package pdes is the golden NEGATIVE case for the straygoroutine check's
// concurrency boundary: this package path (analysis.ConcurrencyBoundary) is
// the one core package licensed to use goroutines, channels, and sync
// primitives, so none of the constructs below carry a want comment — any
// finding here fails the test as unexpected. The positive case (the same
// constructs flagged in an ordinary core package) lives in
// testdata/src/straygoroutine.
package pdes

import (
	"sync"
	"sync/atomic"
)

type pool struct {
	wg      sync.WaitGroup
	round   atomic.Uint64
	results chan int
}

func (p *pool) spawn(n int) {
	p.results = make(chan int, n)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			p.round.Add(1)
			p.results <- w
		}(i)
	}
}

func (p *pool) drain(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		select {
		case w := <-p.results:
			total += w
		}
	}
	p.wg.Wait()
	return total
}
