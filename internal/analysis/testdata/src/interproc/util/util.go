// Package util is the non-core helper layer of the interproc golden
// module. Nothing here is flagged directly — util is outside the core set —
// but StampA is two hops from a wall-clock read, so any core caller must be
// reported with the full chain.
package util

import "time"

// StampA is one hop from the clock via stampB.
func StampA() int64 { return stampB() }

// stampB reads the wall clock: the taint source.
func stampB() int64 { return time.Now().UnixNano() }

// Pure is deterministic; calling it from the core is fine.
func Pure(x int) int { return x + 1 }

// UnreachedStamp also reads the clock but has no core caller: sources are
// only reported where a core chain crosses into them.
func UnreachedStamp() int64 { return time.Now().UnixNano() }
