// Package stats pins the direct-import half of the walltime contract: a
// core package that consults the clock itself is reported by the
// per-package check at the source line, under the same check name the
// chained case uses — the taint engine adds reach, it does not change the
// reporting surface.
package stats

import "time" // want `import of "time" in the deterministic core`

// Direct reads the clock in core code: flagged at the call site, not as a
// chain (the source is local).
func Direct() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}
