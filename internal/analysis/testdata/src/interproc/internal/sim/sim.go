// Package sim stands in for the deterministic core (its module-relative
// path, internal/sim, is in analysis.CorePackages). It never mentions
// package time, yet Tick's call chain reaches time.Now two hops away — the
// case only the interprocedural taint engine can catch.
package sim

import "interproc/util"

// Tick crosses into the tainted helper: reported with the full chain.
func Tick() int64 {
	return util.StampA() // want `call chain escapes the deterministic core: internal/sim\.Tick → util\.StampA → util\.stampB: time\.Now reads the wall clock`
}

// Clean calls an untainted helper: no finding.
func Clean() int {
	return util.Pure(3)
}

// Licensed pins that chain findings honor suppression directives like any
// per-package finding.
func Licensed() int64 {
	//idyllvet:ignore walltime golden: pins that taint-chain findings honor suppression directives
	return util.StampA()
}
