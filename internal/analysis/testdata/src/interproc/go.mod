module interproc

go 1.22
