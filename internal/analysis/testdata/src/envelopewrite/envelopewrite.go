// Package envelopewrite is the golden input for the envelopewrite check:
// disk writes in the cache/store layers must flow through integrity.Wrap
// in the same function, or carry a reviewed suppression.
package envelopewrite

import (
	"os"

	"idyll/internal/integrity"
)

// good wraps before writing: clean.
func good(path string, payload []byte) error {
	return os.WriteFile(path, integrity.Wrap(payload), 0o644)
}

// bad writes the raw payload with no envelope.
func bad(path string, payload []byte) error {
	return os.WriteFile(path, payload, 0o644) // want `disk write without integrity\.Wrap`
}

// badFile goes through an *os.File handle (the write-then-rename idiom's
// temp-file half).
func badFile(f *os.File, payload []byte) error {
	_, err := f.Write(payload) // want `disk write without integrity\.Wrap`
	return err
}

// goodFile wraps before handing bytes to the handle: clean.
func goodFile(f *os.File, payload []byte) error {
	_, err := f.Write(integrity.Wrap(payload))
	return err
}

// preWrapped receives bytes the caller already wrapped — the reviewed
// exception path a suppression documents.
func preWrapped(path string, wrapped []byte) error {
	//idyllvet:ignore envelopewrite caller passes pre-wrapped bytes (golden suppression case)
	return os.WriteFile(path, wrapped, 0o644)
}
