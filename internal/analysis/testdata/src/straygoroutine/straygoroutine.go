// Golden input for the straygoroutine check: positive, negative, and
// suppression cases.
package straygoroutine

import (
	"sync" // want `import of "sync" in the deterministic core`
)

// Positive: goroutines and channels make event interleaving depend on the
// Go scheduler.
func positive(mu *sync.Mutex) int {
	ch := make(chan int, 1) // want `channel type in the deterministic core`
	go func() {             // want `go statement in the deterministic core`
		ch <- 1 // want `channel send in the deterministic core`
	}()
	return <-ch // want `channel receive in the deterministic core`
}

func selects(a chan int) { // want `channel type in the deterministic core`
	select { // want `select in the deterministic core`
	case <-a: // want `channel receive in the deterministic core`
	default:
	}
}

// Negative: single-threaded callback scheduling is the core's concurrency
// model.
type engine struct{ queue []func() }

func (e *engine) schedule(fn func()) { e.queue = append(e.queue, fn) }

func (e *engine) run() {
	for len(e.queue) > 0 {
		fn := e.queue[0]
		e.queue = e.queue[1:]
		fn()
	}
}

// Suppression: the directive on the preceding line silences the finding.
//
//idyllvet:ignore straygoroutine golden test for the suppression path
func suppressed() { go func() {}() }
