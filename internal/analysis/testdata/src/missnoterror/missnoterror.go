// Package missnoterror is the golden input for the missnoterror check: a
// disk-read failure in the cache/store layers must degrade to a miss, never
// surface as an error — the caller's recovery is always recompute-and-
// restore, so propagating the error converts self-healing into failure.
package missnoterror

import (
	"fmt"
	"os"

	"idyll/internal/integrity"
)

// goodMiss degrades every failure to a miss: clean.
func goodMiss(path string) ([]byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	data, err := integrity.Unwrap(raw)
	if err != nil {
		return nil, false
	}
	return data, true
}

// badReturn surfaces the read error directly.
func badReturn(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err // want `disk-read error from os\.ReadFile escapes as a return value`
	}
	return raw, nil
}

// badWrapped rewraps the error before surfacing it — still an escape.
func badWrapped(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err) // want `disk-read error from os\.ReadFile escapes as a return value`
	}
	return data, nil
}

// badUnwrap surfaces the envelope-verification error.
func badUnwrap(raw []byte) ([]byte, error) {
	data, err := integrity.Unwrap(raw)
	if err != nil {
		return nil, err // want `disk-read error from integrity\.Unwrap escapes as a return value`
	}
	return data, nil
}

// justified keeps the error on purpose — the reviewed exception path.
func justified(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		//idyllvet:ignore missnoterror strict-verification entry point returns the error by design (golden suppression case)
		return nil, err
	}
	return raw, nil
}
