module metricreg

go 1.22
