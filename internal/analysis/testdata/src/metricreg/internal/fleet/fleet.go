// Package fleet is the consumer half of the metricreg golden module: it
// increments counters against the registry that lives in internal/service,
// which only a whole-program check can reconcile.
package fleet

import "metricreg/internal/service"

// report exercises the wildcard-prefix match and the suppression path.
func report(m *service.Metrics, source string) {
	m.Inc("fleet_results_"+source, 1)
	m.Inc("fleet_rogue", 1) //idyllvet:ignore metricreg golden: pins that registry findings honor suppression directives
}
