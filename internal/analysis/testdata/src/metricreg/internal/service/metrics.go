// Package service is the registry-owning half of the metricreg golden
// module: a miniature Metrics type, the LabelKey helper, and the MetricKeys
// registry the check reconciles in both directions.
package service

import "sync"

// Metrics mirrors the real daemon's counter set.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set overwrites the named counter.
func (m *Metrics) Set(name string, v uint64) {
	m.mu.Lock()
	m.counters[name] = v
	m.mu.Unlock()
}

// LabelKey renders the labeled-counter key.
func LabelKey(name, label, value string) string {
	return name + `{` + label + `="` + value + `"}`
}

// MetricKeys is the registry under test. "fleet_results_*" registers a
// runtime-built family by prefix; "ghost_counter" is backed by nothing.
var MetricKeys = []string{
	"fleet_results_*",
	"ghost_counter", // want `registry entry "ghost_counter" is never used`
	"jobs_accepted",
	"queue_depth",
}
