package service

// record exercises the registered, unregistered, composed, and dynamic
// call-site shapes.
func record(m *Metrics) {
	m.Inc("jobs_accepted", 1)
	m.Inc("jobs_dropped", 1) // want `metric key "jobs_dropped" is not in the MetricKeys registry`
	// A composed key is checked at the LabelKey call (registered here), not
	// at the Inc whose argument is the call.
	m.Inc(LabelKey("jobs_accepted", "tenant", "t"), 1)
	// Fully dynamic keys are out of the check's scope.
	m.Set(dynamicName(), 1)
}

// gauges backs the "queue_depth" registry entry with a literal occurrence.
func gauges() map[string]int {
	return map[string]int{"queue_depth": 0}
}

func dynamicName() string { return "x" }
