// Golden input for the maporder check: positive, negative, and
// suppression cases.
package maporder

import "sort"

// Positive: appending in map order leaks the hash seed into the slice.
func appendsUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `body appends to "out" in map order`
		out = append(out, v)
	}
	return out
}

// Positive: writing state declared outside the loop in map order.
func writesOuter(m map[int]int) int {
	total := 0
	for _, v := range m { // want `body writes "total", declared outside the loop, in map order`
		total += v
	}
	return total
}

// Positive: scheduling events in map order.
type engine struct{}

func (engine) Schedule(delay uint64, fn func()) {}

func schedules(e engine, m map[int]func()) {
	for _, fn := range m { // want `body schedules events in map order`
		e.Schedule(1, fn)
	}
}

// Positive: invoking a function value exposes iteration order to the
// callee.
func invokes(m map[int]func()) {
	for _, fn := range m { // want `body invokes function value "fn" in map order`
		fn()
	}
}

// Positive: returning a key-derived value picks an arbitrary element.
func arbitrary(m map[int]int) int {
	for k := range m { // want `body returns a value derived from the iteration variables`
		return k
	}
	return -1
}

// Negative: the canonical collect-keys-then-sort idiom.
func sortedKeyCollection(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Negative: loop-local work and deleting from the ranged map are safe.
func locals(m map[int][]int) {
	for k, vs := range m {
		n := 0
		n += len(vs)
		if n == 0 {
			delete(m, k)
		}
	}
}

// Suppression: a commutative integer reduction, justified in place.
func commutativeCount(m map[int]bool) int {
	n := 0
	//idyllvet:ignore maporder integer count is commutative, order cannot be observed
	for range m {
		n++
	}
	return n
}
