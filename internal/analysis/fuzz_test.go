package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzIgnoreDirective feeds arbitrary text after the "//idyllvet:ignore"
// prefix through the real comment parser and pins the directive grammar's
// one invariant: every directive-shaped comment is classified as exactly
// one of a well-formed directive (with a non-empty check set) or a single
// malformed-directive finding — never both, never neither, and never a
// panic. CI's fuzz-smoke job runs this for a short budget on every push.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add(" maporder commutative integer reduction")
	f.Add("-file walltime,globalrand legacy shim")
	f.Add(" straygoroutine")
	f.Add("")
	f.Add(" ,, x")
	f.Add("-file  ")
	f.Add("\tmaporder\tjustified")
	f.Add(" a,b,c because")
	f.Fuzz(func(t *testing.T, suffix string) {
		// Keep the directive a single line comment: line breaks would end
		// the comment early and NULs are rejected by the scanner. Anything
		// else — including invalid UTF-8 — must be handled gracefully.
		suffix = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' || r == 0 {
				return ' '
			}
			return r
		}, suffix)
		src := "package p\n\n//idyllvet:ignore" + suffix + "\nvar x int\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz/src.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // scanner rejected the comment body; nothing to classify
		}
		pkg := &Package{Path: "fuzz", Fset: fset, Files: []*ast.File{file}}
		dirs, bad := parseDirectives(pkg)
		if len(dirs)+len(bad) != 1 {
			t.Fatalf("suffix %q: classified as %d directives + %d malformed findings, want exactly 1 total",
				suffix, len(dirs), len(bad))
		}
		if len(dirs) == 1 {
			d := dirs[0]
			if len(d.checks) == 0 {
				t.Fatalf("suffix %q: well-formed directive with empty check set: %+v", suffix, d)
			}
			if d.file != "fuzz/src.go" || d.line != 3 {
				t.Fatalf("suffix %q: directive position = %s:%d, want fuzz/src.go:3", suffix, d.file, d.line)
			}
			for name := range d.checks {
				if name == "" || strings.ContainsAny(name, " \t,") {
					t.Fatalf("suffix %q: malformed check name %q survived parsing", suffix, name)
				}
			}
		} else {
			b := bad[0]
			if b.Check != "idyllvet" {
				t.Fatalf("suffix %q: malformed-directive finding reported under %q, want idyllvet", suffix, b.Check)
			}
			if !b.Position.IsValid() || b.Position.Filename != "fuzz/src.go" || b.Position.Line != 3 {
				t.Fatalf("suffix %q: malformed-directive position = %v, want fuzz/src.go:3", suffix, b.Position)
			}
		}
	})
}
