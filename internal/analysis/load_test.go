package analysis

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadErrorPosition pins the missing-package failure mode end to end: a
// module-internal import naming a directory with no Go files must surface
// from RunAll as a *LoadError carrying the import path and the position of
// the offending import spec — the contract cmd/idyllvet relies on to print
// a file:line:col diagnostic and exit 2 instead of dumping whatever type-
// checker error happens to come first.
func TestLoadErrorPosition(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module broken\n\ngo 1.22\n")
	write("a.go", `package a

import "broken/missing"

var _ = missing.X
`)
	// The directory exists but holds no Go files — the shape left behind by
	// a bad rename or an over-eager delete.
	if err := os.MkdirAll(filepath.Join(root, "missing"), 0o755); err != nil {
		t.Fatal(err)
	}

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Match([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Match(./...) = %d packages, want 1", len(pkgs))
	}

	// An unscoped probe applies everywhere, forcing RunAll to type-check
	// the broken package.
	probe := &Analyzer{
		Name: "probe",
		Doc:  "test probe",
		Run:  func(pass *Pass) error { return nil },
	}
	_, err = RunAll([]*Analyzer{probe}, NewProgram(loader, pkgs))
	if err == nil {
		t.Fatal("RunAll succeeded despite the unresolvable import")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("RunAll error = %v (%T), want a *LoadError in the chain", err, err)
	}
	if le.Pkg != "broken/missing" {
		t.Errorf("LoadError.Pkg = %q, want broken/missing", le.Pkg)
	}
	if !le.Pos.IsValid() {
		t.Fatalf("LoadError.Pos is zero; the diagnostic must point at the import spec")
	}
	if filepath.Base(le.Pos.Filename) != "a.go" || le.Pos.Line != 3 {
		t.Errorf("LoadError.Pos = %s:%d, want a.go:3 (the import spec)", le.Pos.Filename, le.Pos.Line)
	}
}
