package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestMatchPattern(t *testing.T) {
	tests := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "", true},
		{"./...", "internal/sim", true},
		{"./...", "cmd/idyllvet", true},
		{"./internal/...", "internal", true},
		{"./internal/...", "internal/sim", true},
		{"./internal/...", "cmd/idyllvet", false},
		{"./internal/sim", "internal/sim", true},
		{"./internal/sim", "internal/sim/sub", false},
		{"./cmd/...", "cmd", true},
		{"./cmd/...", "cmdx", false},
		{".", "", true},
		{".", "internal", false},
	}
	for _, tt := range tests {
		if got := matchPattern(tt.pat, tt.rel); got != tt.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tt.pat, tt.rel, got, tt.want)
		}
	}
}

// parseOne builds a minimal Package (syntax and fset only) for directive
// tests, which never consult type information.
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fake/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fake", Fset: fset, Files: []*ast.File{f}}
}

func TestParseDirectives(t *testing.T) {
	pkg := parseOne(t, `package p

//idyllvet:ignore maporder commutative integer reduction
var a int

//idyllvet:ignore-file walltime,globalrand legacy shim
var b int

//idyllvet:ignore straygoroutine
var c int
`)
	dirs, bad := parseDirectives(pkg)
	if len(dirs) != 2 {
		t.Fatalf("got %d well-formed directives, want 2", len(dirs))
	}
	if dirs[0].fileWide || dirs[0].line != 3 || !dirs[0].checks["maporder"] {
		t.Errorf("first directive parsed wrong: %+v", dirs[0])
	}
	if !dirs[1].fileWide || !dirs[1].checks["walltime"] || !dirs[1].checks["globalrand"] {
		t.Errorf("ignore-file directive parsed wrong: %+v", dirs[1])
	}
	// The justification-free directive must be rejected and reported.
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-directive findings, want 1", len(bad))
	}
	if bad[0].Check != "idyllvet" || bad[0].Position.Line != 9 {
		t.Errorf("malformed directive finding = %+v, want [idyllvet] at line 9", bad[0])
	}
}

func TestApplyDirectives(t *testing.T) {
	pkg := parseOne(t, `package p

//idyllvet:ignore maporder justified here
var a int
var b int
`)
	at := func(line int, check string) Diagnostic {
		return Diagnostic{
			Check:    check,
			Position: token.Position{Filename: "fake/src.go", Line: line},
		}
	}
	raw := []Diagnostic{
		at(3, "maporder"), // same line as the directive
		at(4, "maporder"), // line directly below the directive
		at(5, "maporder"), // out of the directive's reach
		at(4, "walltime"), // different check, not covered
	}
	got := applyDirectives(pkg, raw)
	if len(got) != 2 {
		t.Fatalf("got %d findings after suppression, want 2: %v", len(got), got)
	}
	if got[0].Position.Line != 5 || got[0].Check != "maporder" {
		t.Errorf("surviving finding 0 = %+v", got[0])
	}
	if got[1].Position.Line != 4 || got[1].Check != "walltime" {
		t.Errorf("surviving finding 1 = %+v", got[1])
	}
}

func TestFileWideSuppression(t *testing.T) {
	pkg := parseOne(t, `package p

//idyllvet:ignore-file maporder whole file is a reviewed exception
var a int
`)
	raw := []Diagnostic{
		{Check: "maporder", Position: token.Position{Filename: "fake/src.go", Line: 100}},
		{Check: "walltime", Position: token.Position{Filename: "fake/src.go", Line: 100}},
		{Check: "maporder", Position: token.Position{Filename: "other/file.go", Line: 100}},
	}
	got := applyDirectives(pkg, raw)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (other check and other file): %v", len(got), got)
	}
}

// TestLoaderCore exercises the real loader end to end on a small core
// package: discovery, parsing, and type-checking through the chained
// module + source importer.
func TestLoaderCore(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Match([]string{"./internal/memdef"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Rel != "internal/memdef" {
		t.Fatalf("Match(./internal/memdef) = %v", pkgs)
	}
	if !IsCore(pkgs[0].Rel) {
		t.Fatalf("%s must be a core package", pkgs[0].Rel)
	}
	if err := loader.TypeCheck(pkgs[0]); err != nil {
		t.Fatal(err)
	}
	if pkgs[0].Types == nil || pkgs[0].Info == nil {
		t.Fatal("TypeCheck left Types/Info nil")
	}
	if pkgs[0].Types.Name() != "memdef" {
		t.Fatalf("type-checked package name = %q", pkgs[0].Types.Name())
	}
}

// TestRunSkipsNonCore pins the scoping rule: a CoreOnly analyzer never
// runs on non-core packages, and Run does not demand type information for
// packages no analyzer applies to.
func TestRunSkipsNonCore(t *testing.T) {
	fired := false
	a := &Analyzer{
		Name:     "probe",
		Doc:      "test probe",
		CoreOnly: true,
		Run: func(pass *Pass) error {
			fired = true
			return nil
		},
	}
	pkg := parseOne(t, "package p\n") // Rel "fake" is not core; never type-checked
	pkg.Rel = "internal/experiment"
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if fired || len(diags) != 0 {
		t.Fatalf("CoreOnly analyzer ran on non-core package (fired=%v, diags=%v)", fired, diags)
	}
	if NeedsTypes([]*Analyzer{a}, pkg) {
		t.Fatal("NeedsTypes must be false when no analyzer applies")
	}
}
