// Package checkpoint defines the versioned, deterministic binary format the
// simulator's warmup checkpoints are written in. A checkpoint is the full
// simulator state at a quiescent point — the engine clocks, every TLB and
// page-walk-cache line in recency order, the page tables with their in-PTE
// directory bits, the IRMB, the driver's residency and frame-allocation
// state, per-link interconnect state, and the per-domain stats shards — so a
// run restored from it and a run that never checkpointed are byte-identical
// from that point on.
//
// The codec is deliberately primitive: fixed-width little-endian integers and
// length-prefixed byte strings, appended in a fixed order that each
// component's SaveState/RestoreState pair owns. There is no field tagging and
// no skipping — any layout change is a new format version, and readers reject
// versions they do not understand (see DESIGN.md "Checkpoint format &
// forking" for the version policy). Determinism of the byte stream follows
// from determinism of the serialization order: every component iterates its
// state in a canonical order (sorted map keys, fixed component order,
// MRU-first cache ways), never in Go's randomized map order.
//
// The package is part of the deterministic core (idyllvet CorePackages):
// encoding must not consult wall time, global rand, goroutines, or unordered
// map iteration. The concurrent content-addressed store built on top of this
// codec lives in the checkpoint/store subpackage, outside the core contract.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// magic identifies a checkpoint byte stream.
const magic = "IDYLLCKP"

// Version is the current format version. Readers accept exactly this
// version: the format has no compatibility machinery, because checkpoints
// are content-addressed cache entries — a version bump simply misses the
// cache and regenerates, it never needs to migrate old bytes.
const Version = 1

// Writer appends values to a checkpoint byte stream. The zero Writer is not
// usable; NewWriter stamps the magic/version header.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the format header already written.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, magic...)
	w.U32(Version)
	return w
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Finish returns the completed byte stream.
func (w *Writer) Finish() []byte { return w.buf }

// Len reports the current stream length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reader consumes a checkpoint byte stream written by Writer. Errors are
// sticky: after the first decode failure every subsequent read returns the
// zero value, so RestoreState implementations can decode unconditionally and
// check Err once at the end. All reads are bounds-checked against the
// remaining input before consuming anything, so truncated or corrupt streams
// (including hostile length fields) fail cleanly without allocating.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the header and returns a Reader positioned after it.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("checkpoint: stream too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(magic)], []byte(magic)) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)])
	}
	v := binary.LittleEndian.Uint32(data[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("checkpoint: format version %d, want %d", v, Version)
	}
	return &Reader{buf: data, off: len(magic) + 4}, nil
}

// need reserves n bytes of input, setting the sticky error on truncation.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.err = fmt.Errorf("checkpoint: truncated stream at offset %d (need %d of %d bytes)",
			r.off, n, len(r.buf)-r.off)
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool. Any byte other than 0 or 1 is a decode error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("invalid bool encoding")
		return false
	}
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// input buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if !r.need(n) {
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Count reads a u32 element count and validates it against the remaining
// input, assuming each element occupies at least minBytes. This bounds the
// slices RestoreState implementations pre-allocate, so a corrupt count field
// cannot trigger a huge allocation.
func (r *Reader) Count(minBytes int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > (len(r.buf)-r.off)/minBytes {
		r.Failf("element count %d exceeds remaining input", n)
		return 0
	}
	return n
}

// Failf records a semantic decode error (bad invariant, mismatched
// configuration) with the same sticky behaviour as a truncation.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// Err reports the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Finish reports the first decode error, or an error if the stream was not
// fully consumed — a layout mismatch between SaveState and RestoreState
// always fails loudly rather than silently misaligning.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("checkpoint: %d trailing bytes after decode", len(r.buf)-r.off)
	}
	return nil
}
