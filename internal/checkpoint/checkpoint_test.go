package checkpoint

import (
	"strings"
	"testing"
)

// Every primitive the codec offers must round-trip through a Writer/Reader
// pair in order, with Finish confirming full consumption.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(0xab)
	w.U16(0xcdef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.String("idyll")
	w.String("")

	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U8(); v != 0xab {
		t.Fatalf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xcdef {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Fatalf("Int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if v := r.Bytes(); string(v) != "\x01\x02\x03" {
		t.Fatalf("Bytes = %v", v)
	}
	if v := r.Bytes(); len(v) != 0 {
		t.Fatalf("empty Bytes = %v", v)
	}
	if v := r.String(); v != "idyll" {
		t.Fatalf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := NewReader([]byte("NOTMAGIC\x01\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader([]byte("IDYLLCKP\xff\x00\x00\x00")); err == nil {
		t.Fatal("future version accepted")
	}
}

// The sticky error contract: the first failure poisons every later read, and
// reads after failure return zero values without advancing.
func TestReaderStickyError(t *testing.T) {
	w := NewWriter()
	w.U8(7)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if r.U8() != 7 {
		t.Fatal("first read wrong")
	}
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("read past end must fail")
	}
	first := r.Err()
	if r.U32() != 0 || r.Bool() || r.String() != "" {
		t.Fatal("poisoned reads must return zero values")
	}
	if r.Err() != first {
		t.Fatal("later failures overwrote the first error")
	}
	if r.Finish() != first {
		t.Fatal("Finish must surface the first error")
	}
}

func TestReaderRejectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U8(1)
	w.U8(2)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	r.U8()
	if err := r.Finish(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestReaderRejectsBadBool(t *testing.T) {
	w := NewWriter()
	w.U8(2)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if r.Bool() || r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

// A hostile count or length field must fail the decode without allocating
// anything near the claimed size.
func TestReaderBoundsHostileLengths(t *testing.T) {
	w := NewWriter()
	w.U32(1 << 30) // claimed element count, nothing behind it
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("hostile count passed: n=%d err=%v", n, r.Err())
	}

	w = NewWriter()
	w.U32(1 << 30) // claimed byte-string length
	r, err = NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if b := r.Bytes(); b != nil || r.Err() == nil {
		t.Fatal("hostile Bytes length passed")
	}
}

// FuzzReader drives the decoder with arbitrary bytes through the same access
// pattern RestoreState implementations use: decode unconditionally, check the
// sticky error at the end. Nothing may panic, loops are bounded by Count, and
// a failed reader must stay failed.
func FuzzReader(f *testing.F) {
	w := NewWriter()
	w.U8(1)
	w.U16(2)
	w.U32(3)
	w.U64(4)
	w.I64(-5)
	w.Int(6)
	w.Bool(true)
	w.Bytes([]byte("abc"))
	w.String("def")
	w.U32(2) // a valid count for the Count/U64 loop below
	w.U64(7)
	w.U64(8)
	f.Add(w.Finish())
	f.Add([]byte("IDYLLCKP\x01\x00\x00\x00")) // header only
	f.Add([]byte("IDYLLCKP"))                 // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.U64()
		_ = r.I64()
		_ = r.Int()
		_ = r.Bool()
		_ = r.Bytes()
		_ = r.String()
		n := r.Count(8)
		for i := 0; i < n; i++ {
			_ = r.U64()
		}
		if r.Err() != nil {
			if r.U64() != 0 || r.U8() != 0 || r.Bool() || r.Bytes() != nil {
				t.Fatal("poisoned reader returned non-zero values")
			}
			if r.Err() == nil {
				t.Fatal("sticky error cleared itself")
			}
		}
		_ = r.Finish()
	})
}
