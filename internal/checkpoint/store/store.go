// Package store is the concurrent, content-addressed warmup-checkpoint
// cache: the same LRU + disk-spill + singleflight shape as idylld's
// whole-job result cache, applied one level down to partial computations.
// Keys are SHA-256 hex content addresses derived from everything the warmup
// prefix depends on (format version, machine, scheme, warmup length, and the
// full trace bytes — see experiment.WarmupKey); values are checkpoint byte
// streams. The package sits outside the deterministic core on purpose: it
// owns the mutex, the disk I/O, and the cross-goroutine dedupe, so the codec
// package underneath can stay pure.
package store

import (
	"container/list"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"idyll/internal/fault"
	"idyll/internal/integrity"
)

// hashPattern guards file names: only lowercase-hex SHA-256 keys ever touch
// the disk directory.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Store is a bounded in-memory LRU of checkpoint blobs with optional disk
// persistence and singleflight computation dedupe. The zero value is not
// usable; use New. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	max      int
	dir      string // "" disables disk persistence
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight

	hits       uint64 // served from memory, disk, remote fill, or a joined in-flight compute
	misses     uint64 // required a fresh compute
	diskHits   uint64 // subset of hits that came off disk
	remoteHits uint64 // subset of hits filled from a peer via the remote hook

	verifyFailures uint64 // blobs that failed checksum-envelope verification
	quarantined    uint64 // damaged entries moved aside / evicted

	faults *fault.Injector // nil = injection disabled

	// remoteFill, when non-nil, is consulted by GetOrCompute after a memory
	// and disk miss, before compute runs. It is called WITHOUT the store
	// lock (it does network I/O); a successful fill is cached locally like
	// a computed value. Get never consults it, so a peer serving its cache
	// over HTTP cannot recurse into its own remote hook.
	remoteFill func(key string) ([]byte, bool)

	// testDiskDelay, when non-nil, runs at the top of every disk read and
	// write — the injected slow disk the race tests use to widen the
	// window between the memory tier and the disk tier.
	testDiskDelay func()
}

type entry struct {
	key  string
	data []byte
}

// flight is one in-progress compute that late arrivals wait on.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// New returns a store holding at most maxEntries checkpoints in memory
// (minimum 1), persisting to dir when non-empty. The directory is created
// on demand; persisted checkpoints survive process restarts, which is what
// lets a freshly started idylld serve warmups it computed in a previous
// life.
func New(maxEntries int, dir string) *Store {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Store{
		max:      maxEntries,
		dir:      dir,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// SetRemoteFill installs the fetch-from-peer hook GetOrCompute consults
// after a local (memory + disk) miss, before recomputing. Install it before
// the store sees traffic; the hook must be safe for concurrent use.
func (s *Store) SetRemoteFill(fill func(key string) ([]byte, bool)) {
	s.mu.Lock()
	s.remoteFill = fill
	s.mu.Unlock()
}

// Get returns the checkpoint stored under key, consulting memory first and
// then disk — never the remote-fill hook, so serving peers stays local.
// A disk hit repopulates the memory tier.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *Store) getLocked(key string) ([]byte, bool) {
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).data, true
	}
	if data, ok := s.diskGet(key); ok {
		s.putLocked(key, data)
		s.hits++
		s.diskHits++
		return data, true
	}
	return nil, false
}

// Put stores data under key in memory and, when configured, on disk.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	s.putLocked(key, data)
	s.mu.Unlock()
	s.diskPut(key, data)
}

func (s *Store) putLocked(key string, data []byte) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry).data = data
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&entry{key: key, data: data})
	for s.order.Len() > s.max {
		last := s.order.Back()
		delete(s.entries, last.Value.(*entry).key)
		s.order.Remove(last)
	}
}

// GetOrCompute returns the checkpoint under key, computing and caching it on
// a miss. Concurrent callers with the same key share one compute
// (singleflight): the joiners block until the leader finishes and count as
// hits, since they paid no simulation time. When a remote-fill hook is
// installed (SetRemoteFill), the leader tries it after the local miss and
// before computing — a fleet worker fetches a peer's warmup checkpoint
// rather than re-simulating the warmup; joiners share the filled bytes like
// any other flight. hit reports whether this call avoided running compute
// itself (local hit, joined flight, or remote fill). A failed compute is
// not cached and its error propagates to every waiter.
func (s *Store) GetOrCompute(key string, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	s.mu.Lock()
	if data, ok := s.getLocked(key); ok {
		s.mu.Unlock()
		return data, true, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.hits++
		s.mu.Unlock()
		<-f.done
		return f.data, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	remote := s.remoteFill
	s.mu.Unlock()

	filled := false
	if remote != nil {
		if data, ok := remote(key); ok {
			f.data, filled = data, true
		}
	}
	if !filled {
		f.data, f.err = compute()
	}

	s.mu.Lock()
	delete(s.inflight, key)
	if filled {
		s.hits++
		s.remoteHits++
	} else {
		s.misses++
	}
	if f.err == nil {
		s.putLocked(key, f.data)
	}
	s.mu.Unlock()
	if f.err == nil {
		s.diskPut(key, f.data)
	}
	close(f.done)
	return f.data, filled, f.err
}

// Len reports the number of checkpoints in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats reports cumulative hit/miss/disk-hit/remote-hit counters. Disk and
// remote hits are subsets of hits.
func (s *Store) Stats() (hits, misses, diskHits, remoteHits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.diskHits, s.remoteHits
}

// IntegrityStats reports how many blobs failed checksum verification and how
// many entries were quarantined (on disk or evicted from memory) as damaged.
func (s *Store) IntegrityStats() (verifyFailures, quarantined uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyFailures, s.quarantined
}

// SetFaults arms fault-injection sites ckpt.disk.read / ckpt.disk.write.
// Install before the store sees traffic; a nil injector disables injection.
func (s *Store) SetFaults(inj *fault.Injector) {
	s.mu.Lock()
	s.faults = inj
	s.mu.Unlock()
}

// Quarantine evicts key from the memory tier and moves its disk blob aside
// as damaged. Callers use it when bytes that verified at the envelope level
// turn out to be undecodable one level up (e.g. checkpoint Resume fails), so
// the next GetOrCompute recomputes instead of re-serving poison.
func (s *Store) Quarantine(key string) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.Remove(el)
		delete(s.entries, key)
	}
	s.verifyFailures++
	s.quarantined++
	dir := s.dir
	s.mu.Unlock()
	if dir != "" && hashPattern.MatchString(key) {
		quarantineFile(filepath.Join(dir, key))
	}
}

// diskGet loads key from the disk tier. Any failure — no directory, bad
// key, unreadable file, failed checksum verification — is a plain miss;
// damaged blobs are additionally quarantined to <key>.corrupt. Caller holds
// s.mu.
func (s *Store) diskGet(key string) ([]byte, bool) {
	if s.dir == "" || !hashPattern.MatchString(key) {
		return nil, false
	}
	if s.testDiskDelay != nil {
		s.testDiskDelay()
	}
	if err := s.faults.Err("ckpt.disk.read"); err != nil {
		return nil, false
	}
	path := filepath.Join(s.dir, key)
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	blob = s.faults.Mangle("ckpt.disk.read", blob)
	data, err := integrity.Unwrap(blob)
	if err != nil {
		s.verifyFailures++
		s.quarantined++
		quarantineFile(path)
		return nil, false
	}
	return data, true
}

// quarantineFile moves a damaged blob aside as <file>.corrupt, deleting it
// when even the rename fails.
func quarantineFile(path string) {
	if os.Rename(path, path+".corrupt") != nil {
		os.Remove(path)
	}
}

// diskPut writes key atomically (temp file + rename) to the disk tier.
// Failures are silently dropped: disk persistence is an optimization, never
// a correctness dependency.
func (s *Store) diskPut(key string, data []byte) {
	if s.dir == "" || !hashPattern.MatchString(key) {
		return
	}
	if s.testDiskDelay != nil {
		s.testDiskDelay()
	}
	if err := s.faults.Err("ckpt.disk.write"); err != nil {
		return
	}
	blob := s.faults.Mangle("ckpt.disk.write", integrity.Wrap(data))
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	os.Rename(tmp.Name(), filepath.Join(s.dir, key))
}
