package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// key returns a syntactically valid content address (64 hex chars).
func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestGetOrComputeCachesAndCounts(t *testing.T) {
	s := New(4, "")
	computes := 0
	compute := func() ([]byte, error) {
		computes++
		return []byte("blob"), nil
	}
	data, hit, err := s.GetOrCompute(key(1), compute)
	if err != nil || hit || string(data) != "blob" {
		t.Fatalf("first call: data=%q hit=%v err=%v", data, hit, err)
	}
	data, hit, err = s.GetOrCompute(key(1), compute)
	if err != nil || !hit || string(data) != "blob" {
		t.Fatalf("second call: data=%q hit=%v err=%v", data, hit, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	hits, misses, diskHits, _ := s.Stats()
	if hits != 1 || misses != 1 || diskHits != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/0", hits, misses, diskHits)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2, "")
	s.Put(key(1), []byte("a"))
	s.Put(key(2), []byte("b"))
	if _, ok := s.Get(key(1)); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("key 1 missing")
	}
	s.Put(key(3), []byte("c")) // evicts 2
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestDiskPersistenceAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	first := New(4, dir)
	first.Put(key(7), []byte("persisted"))

	// A "restarted daemon": a fresh store over the same directory.
	second := New(4, dir)
	data, ok := second.Get(key(7))
	if !ok || string(data) != "persisted" {
		t.Fatalf("disk tier lost the entry: %q ok=%v", data, ok)
	}
	hits, _, diskHits, _ := second.Stats()
	if hits != 1 || diskHits != 1 {
		t.Fatalf("stats = hits %d diskHits %d, want 1/1", hits, diskHits)
	}
	// The disk hit repopulated memory: a second read must not touch disk.
	if _, ok := second.Get(key(7)); !ok {
		t.Fatal("entry missing after repopulation")
	}
	if _, _, diskHits, _ := second.Stats(); diskHits != 1 {
		t.Fatalf("second read went to disk (diskHits %d)", diskHits)
	}
}

// An eviction from the bounded memory tier must not lose a disk-backed entry.
func TestEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s := New(1, dir)
	s.Put(key(1), []byte("one"))
	s.Put(key(2), []byte("two")) // evicts 1 from memory, not from disk
	data, ok := s.Get(key(1))
	if !ok || string(data) != "one" {
		t.Fatal("evicted entry not recovered from disk")
	}
}

// Keys that are not content addresses must never become file names.
func TestDiskRejectsNonHashKeys(t *testing.T) {
	dir := t.TempDir()
	s := New(1, dir)
	s.Put("../escape", []byte("x"))
	s.Put("UPPER"+key(1)[5:], []byte("y"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("non-hash key reached disk: %v", entries[0].Name())
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); err == nil {
		t.Fatal("path traversal escaped the cache directory")
	}
}

// Concurrent GetOrCompute calls for one key share a single compute; the
// joiners count as hits.
func TestSingleflight(t *testing.T) {
	s := New(4, "")
	const waiters = 8
	gate := make(chan struct{})
	var computes int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.GetOrCompute(key(9), func() ([]byte, error) {
				computes++ // leader-only; the gate serializes entry
				<-gate
				return []byte("once"), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Let every goroutine reach the store before releasing the leader. The
	// joiners may or may not arrive before the leader finishes, so only the
	// compute count is asserted, not the exact hit split.
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times under contention", computes)
	}
	hits, misses, _, _ := s.Stats()
	if misses != 1 || hits != waiters-1 {
		t.Fatalf("stats = %d hits %d misses, want %d/1", hits, misses, waiters-1)
	}
}

// A failed compute propagates its error and caches nothing.
func TestComputeErrorNotCached(t *testing.T) {
	s := New(4, "")
	boom := errors.New("boom")
	if _, _, err := s.GetOrCompute(key(3), func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := s.Get(key(3)); ok {
		t.Fatal("failed compute was cached")
	}
	data, hit, err := s.GetOrCompute(key(3), func() ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || hit || string(data) != "recovered" {
		t.Fatalf("retry after failure: data=%q hit=%v err=%v", data, hit, err)
	}
}

func TestNewClampsMaxEntries(t *testing.T) {
	s := New(0, "")
	s.Put(key(1), []byte("a"))
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Put(key(2), []byte("b"))
	if s.Len() != 1 {
		t.Fatal("clamped store grew past one entry")
	}
}

func TestDiskFilesAreContentAddresses(t *testing.T) {
	dir := t.TempDir()
	s := New(4, dir)
	s.Put(key(5), []byte("x"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.EqualFold(entries[0].Name(), key(5)) {
		t.Fatalf("unexpected disk contents: %v", entries)
	}
}
