package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests widen the window between the memory tier and the disk tier
// with an injected slow disk (testDiskDelay) and hammer the store from many
// goroutines. They are most valuable under -race (CI runs this package in
// the race job); without -race they still assert the logical invariants.

// TestConcurrentDiskSpillSingleflight spills many distinct keys to a slow
// disk while concurrent readers of the same keys pile onto the singleflight
// path. Invariants: each key computes at most once, every caller sees the
// right bytes, and the counters balance (hits + misses == calls).
func TestConcurrentDiskSpillSingleflight(t *testing.T) {
	s := New(2, t.TempDir()) // tiny memory tier forces constant spill
	s.testDiskDelay = func() { time.Sleep(200 * time.Microsecond) }

	const keys = 8
	const callersPerKey = 6
	var computes [keys]atomic.Int64
	var calls atomic.Int64

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for c := 0; c < callersPerKey; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				want := fmt.Sprintf("blob-%d", k)
				data, _, err := s.GetOrCompute(key(k), func() ([]byte, error) {
					computes[k].Add(1)
					time.Sleep(100 * time.Microsecond)
					return []byte(want), nil
				})
				calls.Add(1)
				if err != nil {
					t.Errorf("key %d: %v", k, err)
					return
				}
				if string(data) != want {
					t.Errorf("key %d: got %q, want %q", k, data, want)
				}
			}(k)
		}
	}
	wg.Wait()

	// A key CAN legitimately compute more than once here: the memory slot can
	// be churned out by other keys in the window between putLocked and the
	// slow diskPut landing. What must hold: every key computed at least once,
	// each compute was accounted as a miss, and hits + misses balance the
	// total calls — no lost or double-counted caller under the race.
	var totalComputes uint64
	for k := 0; k < keys; k++ {
		got := computes[k].Load()
		if got < 1 {
			t.Fatalf("key %d never computed", k)
		}
		totalComputes += uint64(got)
	}
	hits, misses, _, _ := s.Stats()
	if hits+misses != uint64(calls.Load()) {
		t.Fatalf("counter imbalance: hits %d + misses %d != calls %d",
			hits, misses, calls.Load())
	}
	if misses != totalComputes {
		t.Fatalf("misses = %d, want %d (one per compute)", misses, totalComputes)
	}
}

// TestEvictionRacesDiskHit pins the recovery path: one goroutine loop
// evicts a key from the 1-entry memory tier by putting other keys, while
// readers keep fetching the victim — every read must land the right bytes,
// served from disk when memory just lost it.
func TestEvictionRacesDiskHit(t *testing.T) {
	s := New(1, t.TempDir())
	s.testDiskDelay = func() { time.Sleep(100 * time.Microsecond) }

	victim := key(100)
	s.Put(victim, []byte("victim"))

	stop := make(chan struct{})
	evictorDone := make(chan struct{})
	go func() { // evictor: churn the single memory slot
		defer close(evictorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Put(key(200+i%4), []byte("churn"))
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				data, ok := s.Get(victim)
				if !ok {
					t.Error("disk-backed victim vanished during eviction churn")
					return
				}
				if string(data) != "victim" {
					t.Errorf("victim bytes corrupted: %q", data)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("timeout: eviction/disk-hit race wedged")
	}
	close(stop)
	<-evictorDone
}

// TestRemoteFillServesBeforeCompute pins the fleet peer-fill path: after a
// local miss the installed hook supplies the bytes, compute never runs, and
// the fill counts as a hit + remoteHit and is cached locally.
func TestRemoteFillServesBeforeCompute(t *testing.T) {
	s := New(4, "")
	fills := 0
	s.SetRemoteFill(func(k string) ([]byte, bool) {
		fills++
		if k == key(1) {
			return []byte("from-peer"), true
		}
		return nil, false
	})

	data, hit, err := s.GetOrCompute(key(1), func() ([]byte, error) {
		t.Fatal("compute ran despite remote fill")
		return nil, nil
	})
	if err != nil || !hit || string(data) != "from-peer" {
		t.Fatalf("remote fill: data=%q hit=%v err=%v", data, hit, err)
	}
	if fills != 1 {
		t.Fatalf("remote hook called %d times, want 1", fills)
	}
	hits, misses, _, remoteHits := s.Stats()
	if hits != 1 || misses != 0 || remoteHits != 1 {
		t.Fatalf("stats = hits %d misses %d remote %d, want 1/0/1", hits, misses, remoteHits)
	}
	// The fill was cached: a plain Get (local-only) now finds it.
	if got, ok := s.Get(key(1)); !ok || string(got) != "from-peer" {
		t.Fatal("remote fill not cached locally")
	}
}

// TestRemoteFillMissFallsBackToCompute: a hook that has nothing must not
// block the compute path or poison the counters.
func TestRemoteFillMissFallsBackToCompute(t *testing.T) {
	s := New(4, "")
	s.SetRemoteFill(func(string) ([]byte, bool) { return nil, false })
	data, hit, err := s.GetOrCompute(key(2), func() ([]byte, error) {
		return []byte("computed"), nil
	})
	if err != nil || hit || string(data) != "computed" {
		t.Fatalf("fallback: data=%q hit=%v err=%v", data, hit, err)
	}
	_, misses, _, remoteHits := s.Stats()
	if misses != 1 || remoteHits != 0 {
		t.Fatalf("stats = misses %d remote %d, want 1/0", misses, remoteHits)
	}
}

// TestGetNeverConsultsRemote pins the anti-recursion contract: Get is the
// method peer-serving HTTP handlers call, so it must stay local even with a
// hook installed — otherwise peers asking peers would loop.
func TestGetNeverConsultsRemote(t *testing.T) {
	s := New(4, "")
	s.SetRemoteFill(func(string) ([]byte, bool) {
		t.Fatal("Get consulted the remote hook")
		return nil, false
	})
	if _, ok := s.Get(key(3)); ok {
		t.Fatal("Get fabricated a hit")
	}
}

// TestRemoteFillSharedBySingleflight: joiners of a flight whose leader was
// served by remote fill share the filled bytes and count as hits.
func TestRemoteFillSharedBySingleflight(t *testing.T) {
	s := New(4, "")
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.SetRemoteFill(func(string) ([]byte, bool) {
		once.Do(func() { close(entered) })
		<-gate
		return []byte("peer-bytes"), true
	})

	const joiners = 4
	var wg sync.WaitGroup
	results := make([]string, joiners+1)
	for i := 0; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _, err := s.GetOrCompute(key(4), func() ([]byte, error) {
				t.Error("compute ran despite remote fill")
				return nil, errors.New("unreachable")
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(data)
		}(i)
	}
	<-entered // leader is inside the hook; joiners pile onto the flight
	close(gate)
	wg.Wait()
	for i, r := range results {
		if r != "peer-bytes" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	hits, misses, _, remoteHits := s.Stats()
	if misses != 0 || remoteHits != 1 || hits != joiners+1 {
		t.Fatalf("stats = hits %d misses %d remote %d, want %d/0/1",
			hits, misses, remoteHits, joiners+1)
	}
}
