package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"idyll/internal/sim"
)

// Histogram accumulates a latency distribution in power-of-two buckets, so
// experiments can report percentiles (the paper's figures report means; the
// tail behaviour of demand-miss latency under invalidation bursts is where
// the contention actually lives).
type Histogram struct {
	buckets []uint64 // bucket i counts samples in [2^i, 2^(i+1))
	count   uint64
	sum     sim.VTime
	max     sim.VTime
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, 40)}
}

// Add records one sample (negative samples are clamped to zero).
func (h *Histogram) Add(v sim.VTime) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := 0
	if v > 0 {
		b = int(math.Log2(float64(v)))
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the average sample.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.VTime { return h.max }

// Percentile reports an upper bound for the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing that rank. Bucketed storage makes
// this approximate within a factor of two, which is enough to compare
// schemes' tails.
func (h *Histogram) Percentile(p float64) sim.VTime {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			upper := sim.VTime(1) << uint(i+1)
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// String renders the non-empty buckets for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
	return b.String()
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// BucketCounts returns the non-empty buckets as (lowerBound, count) pairs
// in ascending order.
func (h *Histogram) BucketCounts() []BucketCount {
	var out []BucketCount
	for i, n := range h.buckets {
		if n > 0 {
			out = append(out, BucketCount{Lower: sim.VTime(1) << uint(i), Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lower < out[j].Lower })
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	Lower sim.VTime
	Count uint64
}
