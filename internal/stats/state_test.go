package stats

import (
	"reflect"
	"testing"

	"idyll/internal/checkpoint"
)

// TestSaveRestoreCoversAllFields fills every numeric field of a Sim with a
// distinct value, round-trips it through SaveState/RestoreState, and requires
// the restored copy to deep-equal the original field by field. A counter
// added to Sim but missing from the state methods stays zero after restore
// and fails here by name — the checkpoint analogue of
// TestMergeCoversAllFields.
func TestSaveRestoreCoversAllFields(t *testing.T) {
	orig := NewSim()
	var next uint64
	fillNumericFields(reflect.ValueOf(orig).Elem(), &next)
	if next == 0 {
		t.Fatal("fillNumericFields found no fields")
	}
	orig.DemandMissHist.Add(17)
	orig.InvalHist.Add(33)
	orig.Sharing().Record(7, 1)
	orig.Sharing().Record(7, 2)
	orig.Sharing().Record(9, 0)

	w := checkpoint.NewWriter()
	orig.SaveState(w)
	r, err := checkpoint.NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSim()
	restored.RestoreState(r)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}

	ov := reflect.ValueOf(orig).Elem()
	rv := reflect.ValueOf(restored).Elem()
	ty := ov.Type()
	for i := 0; i < ov.NumField(); i++ {
		of, rf := ov.Field(i), rv.Field(i)
		if !of.CanSet() {
			continue // unexported: checked through accessors below
		}
		switch of.Kind() {
		case reflect.Uint64, reflect.Uint32, reflect.Uint,
			reflect.Int64, reflect.Int32, reflect.Int, reflect.Struct:
			if !reflect.DeepEqual(of.Interface(), rf.Interface()) {
				t.Errorf("field %s: restored %v, want %v — is it missing from the state methods?",
					ty.Field(i).Name, rf.Interface(), of.Interface())
			}
		}
	}
	if restored.DemandMissHist.Count() != 1 || restored.DemandMissHist.Max() != 17 {
		t.Errorf("DemandMissHist not restored: count=%d max=%d",
			restored.DemandMissHist.Count(), restored.DemandMissHist.Max())
	}
	if restored.InvalHist.Count() != 1 || restored.InvalHist.Max() != 33 {
		t.Errorf("InvalHist not restored: count=%d max=%d",
			restored.InvalHist.Count(), restored.InvalHist.Max())
	}
	if restored.Sharing().Pages() != 2 {
		t.Errorf("Sharing not restored: pages=%d, want 2", restored.Sharing().Pages())
	}

	// A second save of the restored shard must reproduce the bytes exactly —
	// the property the whole-machine byte-identity gate composes from.
	w2 := checkpoint.NewWriter()
	restored.SaveState(w2)
	if !reflect.DeepEqual(w.Finish(), w2.Finish()) {
		t.Error("save → restore → save is not byte-identical")
	}
}
