package stats

import (
	"idyll/internal/checkpoint"
	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Checkpoint support. Shards are serialized field-by-field in declaration
// order, mirroring Merge. TestSaveRestoreCoversAllFields fills every Sim
// field reflectively and round-trips it, so a counter added to Sim but
// forgotten here fails loudly — the same guard TestMergeCoversAllFields
// provides for Merge.

// SaveState writes one latency accumulator.
func (l *Latency) SaveState(w *checkpoint.Writer) {
	w.U64(l.Count)
	w.I64(int64(l.Sum))
	w.I64(int64(l.Max))
}

// RestoreState reads one latency accumulator.
func (l *Latency) RestoreState(r *checkpoint.Reader) {
	l.Count = r.U64()
	l.Sum = sim.VTime(r.I64())
	l.Max = sim.VTime(r.I64())
}

// SaveState writes the histogram's buckets and summary fields.
func (h *Histogram) SaveState(w *checkpoint.Writer) {
	w.U32(uint32(len(h.buckets)))
	for _, n := range h.buckets {
		w.U64(n)
	}
	w.U64(h.count)
	w.I64(int64(h.sum))
	w.I64(int64(h.max))
}

// RestoreState reads the state written by SaveState.
func (h *Histogram) RestoreState(r *checkpoint.Reader) {
	if n := int(r.U32()); n != len(h.buckets) {
		r.Failf("stats: %d histogram buckets in checkpoint, %d configured", n, len(h.buckets))
		return
	}
	for i := range h.buckets {
		h.buckets[i] = r.U64()
	}
	h.count = r.U64()
	h.sum = sim.VTime(r.I64())
	h.max = sim.VTime(r.I64())
}

// SaveState writes the sharing tracker's per-page maps in ascending VPN
// order (both maps share a key set: Record always writes both).
func (sh *Sharing) SaveState(w *checkpoint.Writer) {
	vpns := sh.sortedVPNs()
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		w.U64(uint64(vpn))
		w.U64(sh.accessors[vpn])
		w.U64(sh.accesses[vpn])
	}
}

// RestoreState reads the state written by SaveState into sh, replacing its
// contents.
func (sh *Sharing) RestoreState(r *checkpoint.Reader) {
	n := r.Count(24)
	clear(sh.accessors)
	clear(sh.accesses)
	for i := 0; i < n; i++ {
		vpn := memdef.VPN(r.U64())
		sh.accessors[vpn] = r.U64()
		sh.accesses[vpn] = r.U64()
	}
}

// SaveState writes the full measurement set to w.
func (s *Sim) SaveState(w *checkpoint.Writer) {
	w.I64(int64(s.ExecCycles))
	w.U64(s.Instructions)
	w.U64(s.Accesses)

	w.U64(s.L1TLBLookups)
	w.U64(s.L1TLBHits)
	w.U64(s.L2TLBLookups)
	w.U64(s.L2TLBHits)
	s.DemandMiss.SaveState(w)
	w.U64(s.FarFaults)
	w.U64(s.MSHRMerges)

	w.U64(s.WalkerDemand)
	w.U64(s.WalkerInval)
	w.U64(s.WalkerUpdate)
	w.U64(s.InvalNecessary)
	w.U64(s.InvalUnnecessary)
	w.U64(s.PWCLookups)
	w.U64(s.PWCHits)
	w.U64(s.WalkQueueRejects)
	w.U64(s.WalkerLevelVisits)

	w.U64(s.InvalReceived)
	s.Inval.SaveState(w)
	w.I64(int64(s.InvalBusy))

	w.U64(s.MigrationRequests)
	w.U64(s.Migrations)
	s.MigrationWait.SaveState(w)
	s.MigrationTotal.SaveState(w)

	w.U64(s.LocalAccesses)
	w.U64(s.RemoteAccesses)
	w.U64(s.L1DLookups)
	w.U64(s.L1DHits)
	w.U64(s.L2DLookups)
	w.U64(s.L2DHits)

	w.U64(s.IRMBInserts)
	w.U64(s.IRMBMergeHits)
	w.U64(s.IRMBEvictions)
	w.U64(s.IRMBLookups)
	w.U64(s.IRMBLookupHits)
	w.U64(s.IRMBWritebacks)
	w.U64(s.IRMBDrains)
	w.U64(s.DirectoryTargeted)
	w.U64(s.DirectoryFiltered)
	w.U64(s.VMCacheLookups)
	w.U64(s.VMCacheHits)

	w.U64(s.PRTLookups)
	w.U64(s.PRTHits)
	w.U64(s.PRTFalsePositives)

	w.U64(s.Replications)
	w.U64(s.WriteCollapses)

	w.U64(s.NVLinkBytes)
	w.U64(s.PCIeBytes)

	w.U64(s.EngineEvents)
	w.U64(s.EngineRingScheduled)
	w.U64(s.EngineFarScheduled)
	w.U64(s.EngineMigrated)
	w.U64(s.EngineCancelled)
	w.U64(s.EnginePoolHits)

	s.DemandMissHist.SaveState(w)
	s.InvalHist.SaveState(w)
	s.sharing.SaveState(w)
}

// RestoreState reads the state written by SaveState into s.
func (s *Sim) RestoreState(r *checkpoint.Reader) {
	s.ExecCycles = sim.VTime(r.I64())
	s.Instructions = r.U64()
	s.Accesses = r.U64()

	s.L1TLBLookups = r.U64()
	s.L1TLBHits = r.U64()
	s.L2TLBLookups = r.U64()
	s.L2TLBHits = r.U64()
	s.DemandMiss.RestoreState(r)
	s.FarFaults = r.U64()
	s.MSHRMerges = r.U64()

	s.WalkerDemand = r.U64()
	s.WalkerInval = r.U64()
	s.WalkerUpdate = r.U64()
	s.InvalNecessary = r.U64()
	s.InvalUnnecessary = r.U64()
	s.PWCLookups = r.U64()
	s.PWCHits = r.U64()
	s.WalkQueueRejects = r.U64()
	s.WalkerLevelVisits = r.U64()

	s.InvalReceived = r.U64()
	s.Inval.RestoreState(r)
	s.InvalBusy = sim.VTime(r.I64())

	s.MigrationRequests = r.U64()
	s.Migrations = r.U64()
	s.MigrationWait.RestoreState(r)
	s.MigrationTotal.RestoreState(r)

	s.LocalAccesses = r.U64()
	s.RemoteAccesses = r.U64()
	s.L1DLookups = r.U64()
	s.L1DHits = r.U64()
	s.L2DLookups = r.U64()
	s.L2DHits = r.U64()

	s.IRMBInserts = r.U64()
	s.IRMBMergeHits = r.U64()
	s.IRMBEvictions = r.U64()
	s.IRMBLookups = r.U64()
	s.IRMBLookupHits = r.U64()
	s.IRMBWritebacks = r.U64()
	s.IRMBDrains = r.U64()
	s.DirectoryTargeted = r.U64()
	s.DirectoryFiltered = r.U64()
	s.VMCacheLookups = r.U64()
	s.VMCacheHits = r.U64()

	s.PRTLookups = r.U64()
	s.PRTHits = r.U64()
	s.PRTFalsePositives = r.U64()

	s.Replications = r.U64()
	s.WriteCollapses = r.U64()

	s.NVLinkBytes = r.U64()
	s.PCIeBytes = r.U64()

	s.EngineEvents = r.U64()
	s.EngineRingScheduled = r.U64()
	s.EngineFarScheduled = r.U64()
	s.EngineMigrated = r.U64()
	s.EngineCancelled = r.U64()
	s.EnginePoolHits = r.U64()

	s.DemandMissHist.RestoreState(r)
	s.InvalHist.RestoreState(r)
	s.sharing.RestoreState(r)
}
