package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"idyll/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []sim.VTime{1, 2, 4, 8, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 203 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Add(10)
	}
	h.Add(100000)
	p50 := h.Percentile(50)
	if p50 < 10 || p50 > 16 {
		t.Fatalf("p50 = %d, want ≈10..16", p50)
	}
	p100 := h.Percentile(100)
	if p100 != 100000 {
		t.Fatalf("p100 = %d, want the max", p100)
	}
	if h.Percentile(99) > p100 {
		t.Fatal("p99 exceeds p100")
	}
}

func TestHistogramEmptyIsZero(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample mishandled")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(10)
	b.Add(1000)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 1000 {
		t.Fatalf("merge lost samples: count=%d max=%d", a.Count(), a.Max())
	}
}

func TestHistogramBucketCounts(t *testing.T) {
	h := NewHistogram()
	h.Add(3) // bucket [2,4)
	h.Add(3)
	h.Add(100) // bucket [64,128)
	bcs := h.BucketCounts()
	if len(bcs) != 2 {
		t.Fatalf("buckets = %+v", bcs)
	}
	if bcs[0].Lower != 2 || bcs[0].Count != 2 {
		t.Fatalf("first bucket = %+v", bcs[0])
	}
	if bcs[1].Lower != 64 || bcs[1].Count != 1 {
		t.Fatalf("second bucket = %+v", bcs[1])
	}
}

func TestHistogramStringMentionsStats(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	s := h.String()
	for _, want := range []string{"n=1", "mean=5", "max=5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
}

// Properties: percentiles are monotone in p, and every percentile upper
// bound is ≥ the true value's bucket lower bound.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Add(sim.VTime(v))
		}
		prev := sim.VTime(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) >= sim.VTime(maxOf(raw))/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func maxOf(vs []uint16) uint16 {
	m := uint16(0)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
