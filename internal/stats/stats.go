// Package stats collects the measurements every experiment in the paper is
// built from: latency accumulators for demand TLB misses, invalidations and
// migrations; request-mix counters at the page walker; and the page-sharing
// tracker behind Figure 4.
package stats

import (
	"fmt"
	"math/bits"
	"sort"

	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Latency accumulates a latency distribution: count, sum, and max.
type Latency struct {
	Count uint64
	Sum   sim.VTime
	Max   sim.VTime
}

// Add records one sample.
func (l *Latency) Add(v sim.VTime) {
	l.Count++
	l.Sum += v
	if v > l.Max {
		l.Max = v
	}
}

// Mean reports the average sample, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// Sim is the full set of measurements for one simulation run.
type Sim struct {
	// ExecCycles is the end-to-end execution time: the cycle at which the
	// last compute unit retired its last access.
	ExecCycles sim.VTime
	// Instructions is the modelled dynamic instruction count, used for MPKI.
	Instructions uint64
	// Accesses is the number of memory accesses issued.
	Accesses uint64

	// Translation path.
	L1TLBLookups, L1TLBHits uint64
	L2TLBLookups, L2TLBHits uint64
	// DemandMiss is the latency of demand TLB-miss requests: from missing
	// the L2 TLB to the translation becoming available (§5.2 definition).
	DemandMiss Latency
	FarFaults  uint64
	// MSHRMerges counts requests coalesced onto an in-flight miss.
	MSHRMerges uint64

	// Page walker request mix (Figure 5).
	WalkerDemand      uint64
	WalkerInval       uint64
	WalkerUpdate      uint64
	InvalNecessary    uint64
	InvalUnnecessary  uint64
	PWCLookups        uint64
	PWCHits           uint64
	WalkQueueRejects  uint64
	WalkerLevelVisits uint64

	// Invalidation handling (Figure 13): latency from a GPU receiving an
	// invalidation request to its PTE actually being invalidated (or the
	// request being absorbed by the IRMB and later written back).
	InvalReceived uint64
	Inval         Latency
	// InvalBusy is walker-cycles spent performing invalidation walks.
	InvalBusy sim.VTime

	// Migration (Figures 7 and 14).
	MigrationRequests uint64
	Migrations        uint64
	// MigrationWait is request→data-transfer-start (waiting latency, §5.2).
	MigrationWait Latency
	// MigrationTotal is request→completion (new mapping established).
	MigrationTotal Latency

	// Data path.
	LocalAccesses  uint64
	RemoteAccesses uint64
	L1DLookups     uint64
	L1DHits        uint64
	L2DLookups     uint64
	L2DHits        uint64

	// IDYLL mechanisms.
	IRMBInserts    uint64
	IRMBMergeHits  uint64
	IRMBEvictions  uint64
	IRMBLookups    uint64
	IRMBLookupHits uint64
	IRMBWritebacks uint64
	IRMBDrains     uint64
	// DirectoryTargeted counts invalidations actually sent; DirectoryFiltered
	// counts invalidations the directory suppressed vs. a broadcast.
	DirectoryTargeted uint64
	DirectoryFiltered uint64
	VMCacheLookups    uint64
	VMCacheHits       uint64

	// Trans-FW.
	PRTLookups        uint64
	PRTHits           uint64
	PRTFalsePositives uint64

	// Replication.
	Replications   uint64
	WriteCollapses uint64

	// Interconnect.
	NVLinkBytes uint64
	PCIeBytes   uint64

	// Event-engine internals (sim.EngineStats, copied at end of run): how
	// many events fired, how schedules split between the O(1) bucket ring
	// and the far-future heap, heap→ring migrations, and event-node pool
	// traffic. These quantify the simulator's own hot path, not the modelled
	// hardware.
	EngineEvents        uint64
	EngineRingScheduled uint64
	EngineFarScheduled  uint64
	EngineMigrated      uint64
	EngineCancelled     uint64
	EnginePoolHits      uint64

	// DemandMissHist and InvalHist capture the full latency distributions
	// behind DemandMiss and Inval, for percentile reporting.
	DemandMissHist *Histogram
	InvalHist      *Histogram

	sharing *Sharing
}

// NewSim returns a zeroed measurement set with a sharing tracker attached.
func NewSim() *Sim {
	return &Sim{
		sharing:        NewSharing(),
		DemandMissHist: NewHistogram(),
		InvalHist:      NewHistogram(),
	}
}

// Sharing exposes the run's page-sharing tracker.
func (s *Sim) Sharing() *Sharing { return s.sharing }

// MPKI reports L2 TLB misses per kilo-instruction (Table 3's metric).
func (s *Sim) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L2TLBLookups-s.L2TLBHits) / float64(s.Instructions) * 1000
}

// EngineBucketFraction reports the share of schedules served by the bucket
// ring's O(1) path rather than the heap.
func (s *Sim) EngineBucketFraction() float64 {
	total := s.EngineRingScheduled + s.EngineFarScheduled
	if total == 0 {
		return 0
	}
	return float64(s.EngineRingScheduled) / float64(total)
}

// Speedup reports base-exec-time / this-exec-time: >1 means faster than base.
func (s *Sim) Speedup(base *Sim) float64 {
	if s.ExecCycles == 0 {
		return 0
	}
	return float64(base.ExecCycles) / float64(s.ExecCycles)
}

// UnnecessaryInvalFraction reports the share of invalidation walks that
// found no valid PTE (Figure 5's "unnecessary" category).
func (s *Sim) UnnecessaryInvalFraction() float64 {
	total := s.InvalNecessary + s.InvalUnnecessary
	if total == 0 {
		return 0
	}
	return float64(s.InvalUnnecessary) / float64(total)
}

// Sharing tracks, per page, which GPUs accessed it and how many accesses it
// received — the data behind Figure 4's "distribution of accesses
// referencing shared pages".
type Sharing struct {
	accessors map[memdef.VPN]uint64 // bitmask of GPUs
	accesses  map[memdef.VPN]uint64
}

// NewSharing returns an empty tracker.
func NewSharing() *Sharing {
	return &Sharing{
		accessors: make(map[memdef.VPN]uint64),
		accesses:  make(map[memdef.VPN]uint64),
	}
}

// Record notes one access to vpn by gpu.
func (sh *Sharing) Record(vpn memdef.VPN, gpu int) {
	sh.accessors[vpn] |= 1 << uint(gpu)
	sh.accesses[vpn]++
}

// Pages reports the number of distinct pages touched.
func (sh *Sharing) Pages() int { return len(sh.accessors) }

// sortedVPNs returns the tracked pages in ascending VPN order. Every
// reducer below iterates this slice rather than the maps directly so that
// accumulation order — which matters for the float sums in
// AccessDistribution — is independent of Go's randomized map iteration.
func (sh *Sharing) sortedVPNs() []memdef.VPN {
	vpns := make([]memdef.VPN, 0, len(sh.accessors))
	for vpn := range sh.accessors {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// AccessDistribution returns, indexed by sharer count k (1-based up to
// maxGPUs), the fraction of all accesses that went to pages accessed by
// exactly k GPUs. Index 0 is unused.
func (sh *Sharing) AccessDistribution(maxGPUs int) []float64 {
	dist := make([]float64, maxGPUs+1)
	var total uint64
	for _, vpn := range sh.sortedVPNs() {
		k := bits.OnesCount64(sh.accessors[vpn])
		if k > maxGPUs {
			k = maxGPUs
		}
		n := sh.accesses[vpn]
		dist[k] += float64(n)
		total += n
	}
	if total > 0 {
		for i := range dist {
			dist[i] /= float64(total)
		}
	}
	return dist
}

// SharedAccessRatio reports the paper's "page access sharing ratio": shared
// page accesses / total accesses, where a shared page is one accessed by
// more than one GPU (§5.1).
func (sh *Sharing) SharedAccessRatio() float64 {
	var shared, total uint64
	for _, vpn := range sh.sortedVPNs() {
		n := sh.accesses[vpn]
		total += n
		if bits.OnesCount64(sh.accessors[vpn]) > 1 {
			shared += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}

// HottestPages returns the n most-accessed pages, hottest first.
func (sh *Sharing) HottestPages(n int) []memdef.VPN {
	type pc struct {
		vpn memdef.VPN
		n   uint64
	}
	all := make([]pc, 0, len(sh.accesses))
	for vpn, c := range sh.accesses {
		all = append(all, pc{vpn, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].vpn < all[j].vpn
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]memdef.VPN, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].vpn
	}
	return out
}

// Summary renders the headline numbers of a run for CLI output.
func (s *Sim) Summary() string {
	return fmt.Sprintf(
		"exec=%d cycles, accesses=%d, L2TLB miss=%d (MPKI %.1f), far faults=%d, "+
			"migrations=%d, invals recv=%d (unnecessary %.0f%%), demand-miss mean=%.0f cy, "+
			"mig-wait mean=%.0f cy",
		s.ExecCycles, s.Accesses, s.L2TLBLookups-s.L2TLBHits, s.MPKI(), s.FarFaults,
		s.Migrations, s.InvalReceived, s.UnnecessaryInvalFraction()*100,
		s.DemandMiss.Mean(), s.MigrationWait.Mean())
}
