package stats

import (
	"reflect"
	"testing"
)

// fillNumericFields sets every settable numeric leaf field of v (recursing
// into plain structs like Latency) to a distinct non-zero value.
func fillNumericFields(v reflect.Value, next *uint64) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanSet() {
			continue // unexported: handled explicitly by the test
		}
		switch f.Kind() {
		case reflect.Uint64, reflect.Uint32, reflect.Uint:
			*next++
			f.SetUint(*next)
		case reflect.Int64, reflect.Int32, reflect.Int:
			*next++
			f.SetInt(int64(*next))
		case reflect.Struct:
			fillNumericFields(f, next)
		}
	}
}

// TestMergeCoversAllFields fills every numeric field of a shard with a
// distinct value and merges it into a zero Sim: since every counter merge is
// an add or max with a zero left operand, the merged Sim must reproduce the
// shard exactly. A field added to Sim but missing from Merge stays zero and
// fails here by name.
func TestMergeCoversAllFields(t *testing.T) {
	shard := NewSim()
	var next uint64
	fillNumericFields(reflect.ValueOf(shard).Elem(), &next)
	if next == 0 {
		t.Fatal("fillNumericFields found no fields")
	}
	shard.DemandMissHist.Add(17)
	shard.InvalHist.Add(33)
	shard.Sharing().Record(7, 1)
	shard.Sharing().Record(7, 2)
	shard.Sharing().Record(9, 0)

	merged := NewSim()
	merged.Merge(shard)

	sv := reflect.ValueOf(shard).Elem()
	mv := reflect.ValueOf(merged).Elem()
	ty := sv.Type()
	for i := 0; i < sv.NumField(); i++ {
		sf, mf := sv.Field(i), mv.Field(i)
		if !sf.CanSet() {
			continue
		}
		switch sf.Kind() {
		case reflect.Uint64, reflect.Uint32, reflect.Uint,
			reflect.Int64, reflect.Int32, reflect.Int, reflect.Struct:
			if !reflect.DeepEqual(sf.Interface(), mf.Interface()) {
				t.Errorf("field %s: merge into zero Sim got %v, want %v — is it missing from Sim.Merge?",
					ty.Field(i).Name, mf.Interface(), sf.Interface())
			}
		}
	}
	if merged.DemandMissHist.Count() != 1 || merged.DemandMissHist.Max() != 17 {
		t.Errorf("DemandMissHist not merged: count=%d max=%d",
			merged.DemandMissHist.Count(), merged.DemandMissHist.Max())
	}
	if merged.InvalHist.Count() != 1 || merged.InvalHist.Max() != 33 {
		t.Errorf("InvalHist not merged: count=%d max=%d",
			merged.InvalHist.Count(), merged.InvalHist.Max())
	}
	if merged.Sharing().Pages() != 2 {
		t.Errorf("Sharing not merged: pages=%d, want 2", merged.Sharing().Pages())
	}
}

// TestMergeAccumulates checks the non-trivial merge semantics: counts add,
// maxima take the max, histograms combine bucket-wise, sharing masks union.
func TestMergeAccumulates(t *testing.T) {
	a, b := NewSim(), NewSim()
	a.Accesses, b.Accesses = 3, 4
	a.ExecCycles, b.ExecCycles = 100, 70
	a.DemandMiss.Add(10)
	b.DemandMiss.Add(30)
	a.DemandMissHist.Add(10)
	b.DemandMissHist.Add(30)
	a.Sharing().Record(5, 0)
	b.Sharing().Record(5, 1)

	a.Merge(b)
	if a.Accesses != 7 {
		t.Errorf("Accesses = %d, want 7", a.Accesses)
	}
	if a.ExecCycles != 100 {
		t.Errorf("ExecCycles = %d, want max 100", a.ExecCycles)
	}
	if a.DemandMiss.Count != 2 || a.DemandMiss.Sum != 40 || a.DemandMiss.Max != 30 {
		t.Errorf("DemandMiss = %+v, want {2 40 30}", a.DemandMiss)
	}
	if a.DemandMissHist.Count() != 2 || a.DemandMissHist.Max() != 30 {
		t.Errorf("DemandMissHist count=%d max=%d", a.DemandMissHist.Count(), a.DemandMissHist.Max())
	}
	dist := a.Sharing().AccessDistribution(4)
	if dist[2] != 1 {
		t.Errorf("page 5 should be shared by 2 GPUs after merge: dist=%v", dist)
	}
}
