package stats

// Shard merging. Under the parallel engine every GPU and the driver write
// into their own Sim shard (one writer per synchronization domain); the
// system merges the shards into one Sim after the run, always in the same
// fixed order (GPU 0..N-1, then the host). Merging is pure integer and
// bucket addition plus the Sharing maps — no floats — so the merged result
// is exactly the Sim a shared single collector would have produced, and the
// float reducers downstream (AccessDistribution, means) see identical
// inputs regardless of domain count or worker count.

// Merge folds o's samples into l.
func (l *Latency) Merge(o Latency) {
	l.Count += o.Count
	l.Sum += o.Sum
	if o.Max > l.Max {
		l.Max = o.Max
	}
}

// Merge folds o's per-page records into sh. The |= and += folds are
// commutative, but iterating sorted keys anyway keeps even intermediate map
// states identical across runs — and keeps the maporder check clean.
func (sh *Sharing) Merge(o *Sharing) {
	if o == nil {
		return
	}
	for _, vpn := range o.sortedVPNs() {
		sh.accessors[vpn] |= o.accessors[vpn]
		sh.accesses[vpn] += o.accesses[vpn]
	}
}

// Merge folds shard o into s: every counter adds, latency accumulators and
// histograms combine, and the sharing trackers union. ExecCycles takes the
// max — it is an end-of-run watermark, not a count. TestMergeCoversAllFields
// walks Sim's fields reflectively so a counter added to Sim but forgotten
// here fails loudly rather than silently dropping a shard's contribution.
func (s *Sim) Merge(o *Sim) {
	if o.ExecCycles > s.ExecCycles {
		s.ExecCycles = o.ExecCycles
	}
	s.Instructions += o.Instructions
	s.Accesses += o.Accesses

	s.L1TLBLookups += o.L1TLBLookups
	s.L1TLBHits += o.L1TLBHits
	s.L2TLBLookups += o.L2TLBLookups
	s.L2TLBHits += o.L2TLBHits
	s.DemandMiss.Merge(o.DemandMiss)
	s.FarFaults += o.FarFaults
	s.MSHRMerges += o.MSHRMerges

	s.WalkerDemand += o.WalkerDemand
	s.WalkerInval += o.WalkerInval
	s.WalkerUpdate += o.WalkerUpdate
	s.InvalNecessary += o.InvalNecessary
	s.InvalUnnecessary += o.InvalUnnecessary
	s.PWCLookups += o.PWCLookups
	s.PWCHits += o.PWCHits
	s.WalkQueueRejects += o.WalkQueueRejects
	s.WalkerLevelVisits += o.WalkerLevelVisits

	s.InvalReceived += o.InvalReceived
	s.Inval.Merge(o.Inval)
	s.InvalBusy += o.InvalBusy

	s.MigrationRequests += o.MigrationRequests
	s.Migrations += o.Migrations
	s.MigrationWait.Merge(o.MigrationWait)
	s.MigrationTotal.Merge(o.MigrationTotal)

	s.LocalAccesses += o.LocalAccesses
	s.RemoteAccesses += o.RemoteAccesses
	s.L1DLookups += o.L1DLookups
	s.L1DHits += o.L1DHits
	s.L2DLookups += o.L2DLookups
	s.L2DHits += o.L2DHits

	s.IRMBInserts += o.IRMBInserts
	s.IRMBMergeHits += o.IRMBMergeHits
	s.IRMBEvictions += o.IRMBEvictions
	s.IRMBLookups += o.IRMBLookups
	s.IRMBLookupHits += o.IRMBLookupHits
	s.IRMBWritebacks += o.IRMBWritebacks
	s.IRMBDrains += o.IRMBDrains
	s.DirectoryTargeted += o.DirectoryTargeted
	s.DirectoryFiltered += o.DirectoryFiltered
	s.VMCacheLookups += o.VMCacheLookups
	s.VMCacheHits += o.VMCacheHits

	s.PRTLookups += o.PRTLookups
	s.PRTHits += o.PRTHits
	s.PRTFalsePositives += o.PRTFalsePositives

	s.Replications += o.Replications
	s.WriteCollapses += o.WriteCollapses

	s.NVLinkBytes += o.NVLinkBytes
	s.PCIeBytes += o.PCIeBytes

	s.EngineEvents += o.EngineEvents
	s.EngineRingScheduled += o.EngineRingScheduled
	s.EngineFarScheduled += o.EngineFarScheduled
	s.EngineMigrated += o.EngineMigrated
	s.EngineCancelled += o.EngineCancelled
	s.EnginePoolHits += o.EnginePoolHits

	s.DemandMissHist.Merge(o.DemandMissHist)
	s.InvalHist.Merge(o.InvalHist)
	s.sharing.Merge(o.sharing)
}
