package stats

import (
	"math"
	"strings"
	"testing"

	"idyll/internal/memdef"
	"idyll/internal/sim"
)

func TestLatencyAccumulator(t *testing.T) {
	var l Latency
	for _, v := range []sim.VTime{10, 20, 30} {
		l.Add(v)
	}
	if l.Count != 3 || l.Sum != 60 || l.Max != 30 {
		t.Fatalf("latency = %+v", l)
	}
	if l.Mean() != 20 {
		t.Fatalf("mean = %v", l.Mean())
	}
	var empty Latency
	if empty.Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestMPKI(t *testing.T) {
	s := NewSim()
	s.Instructions = 10000
	s.L2TLBLookups = 600
	s.L2TLBHits = 100
	if got := s.MPKI(); got != 50 {
		t.Fatalf("MPKI = %v, want 50", got)
	}
	if (NewSim()).MPKI() != 0 {
		t.Fatal("MPKI with no instructions should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	base, opt := NewSim(), NewSim()
	base.ExecCycles = 2000
	opt.ExecCycles = 1000
	if got := opt.Speedup(base); got != 2 {
		t.Fatalf("speedup = %v", got)
	}
}

func TestUnnecessaryInvalFraction(t *testing.T) {
	s := NewSim()
	s.InvalNecessary = 68
	s.InvalUnnecessary = 32
	if got := s.UnnecessaryInvalFraction(); math.Abs(got-0.32) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestSharingDistribution(t *testing.T) {
	sh := NewSharing()
	// Page 1: GPUs 0,1,2,3 access it, 4 accesses total.
	for g := 0; g < 4; g++ {
		sh.Record(1, g)
	}
	// Page 2: only GPU 0, 6 accesses.
	for i := 0; i < 6; i++ {
		sh.Record(2, 0)
	}
	dist := sh.AccessDistribution(4)
	if math.Abs(dist[4]-0.4) > 1e-12 {
		t.Fatalf("shared-by-4 = %v, want 0.4", dist[4])
	}
	if math.Abs(dist[1]-0.6) > 1e-12 {
		t.Fatalf("one-GPU = %v, want 0.6", dist[1])
	}
	if got := sh.SharedAccessRatio(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("shared ratio = %v", got)
	}
	if sh.Pages() != 2 {
		t.Fatalf("pages = %d", sh.Pages())
	}
}

func TestSharingDistributionSums(t *testing.T) {
	sh := NewSharing()
	for i := 0; i < 100; i++ {
		sh.Record(memdef.VPN(i%7), i%3)
	}
	dist := sh.AccessDistribution(4)
	sum := 0.0
	for _, f := range dist {
		sum += f
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestHottestPages(t *testing.T) {
	sh := NewSharing()
	for i := 0; i < 5; i++ {
		sh.Record(100, 0)
	}
	for i := 0; i < 3; i++ {
		sh.Record(200, 0)
	}
	sh.Record(300, 0)
	hot := sh.HottestPages(2)
	if len(hot) != 2 || hot[0] != 100 || hot[1] != 200 {
		t.Fatalf("hottest = %v", hot)
	}
	if got := sh.HottestPages(10); len(got) != 3 {
		t.Fatalf("clamped hottest = %v", got)
	}
}

func TestSummaryMentionsKeyNumbers(t *testing.T) {
	s := NewSim()
	s.ExecCycles = 12345
	s.Migrations = 7
	out := s.Summary()
	for _, want := range []string{"12345", "migrations=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}
