// Package system assembles a complete UVM-managed multi-GPU machine — GPUs,
// UVM driver, interconnect — for one (machine, scheme) design point, runs a
// workload trace on it, and returns the measurements every experiment is
// computed from.
package system

import (
	"context"
	"fmt"
	"sort"

	"idyll/internal/config"
	"idyll/internal/driver"
	"idyll/internal/gpu"
	"idyll/internal/interconnect"
	"idyll/internal/memdef"
	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// System is one assembled machine instance. Build with New, use once.
type System struct {
	Cluster *pdes.Cluster
	Machine config.Machine
	Scheme  config.Scheme
	Net     *interconnect.Network
	Driver  *driver.Driver
	GPUs    []*gpu.GPU
	// Stats is the run's merged measurement set: per-component shards (one
	// per GPU, one for the driver — each written only by its own
	// synchronization domain) fold into it in fixed order when the run
	// completes. Empty until then.
	Stats *stats.Sim

	// ParWorkers selects the parallel engine: the number of goroutines
	// executing the cluster's domains (values below 2 run the serial
	// executor). Results are byte-identical at any setting — it is an
	// execution knob, never part of result identity (see internal/sim/pdes).
	ParWorkers int

	// CheckTranslations enables the online correctness probe: every
	// translation handed to a data access is compared against the host page
	// table. Mismatches outside a migration window are hard errors;
	// mismatches while the page migrates (in-flight window) are counted.
	// The probe reads driver state from GPU callbacks, so it forces the
	// serial executor regardless of ParWorkers.
	CheckTranslations bool
	// ColdStart disables the default affinity pre-placement of pages, so
	// every page begins in CPU memory and first-touch-migrates on demand.
	ColdStart      bool
	shards         []*stats.Sim
	staleWindow    uint64
	hardViolations []string
}

// New builds a system for the given machine and scheme.
//
// Domain layout: one synchronization domain per GPU plus one for the
// host/driver, with lookahead derived from the interconnect — the cheapest
// link's propagation plus the one serialization cycle every message pays.
// Zero-latency-invalidation schemes invalidate all GPUs synchronously from
// the driver's event (lookahead zero), which conservative windows cannot
// express: those schemes collapse to a single shared domain, where the
// cluster degenerates to the plain serial engine.
func New(machine config.Machine, scheme config.Scheme) (*System, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	numDomains := machine.NumGPUs + 1
	lookahead := machine.NVLinkLatency
	if machine.PCIeLatency < lookahead {
		lookahead = machine.PCIeLatency
	}
	lookahead++
	if scheme.ZeroLatencyInval {
		numDomains, lookahead = 1, 1
	}
	cl := pdes.NewCluster(numDomains, lookahead)
	hostDom := cl.Domain(numDomains - 1)
	gpuDom := func(i int) *pdes.Domain {
		if numDomains == 1 {
			return cl.Domain(0)
		}
		return cl.Domain(i)
	}
	// Stats shard per component, not per domain, so the merge — and with it
	// every output byte — is independent of the domain layout.
	shards := make([]*stats.Sim, machine.NumGPUs+1)
	for i := range shards {
		shards[i] = stats.NewSim()
	}
	net := interconnect.NewNetwork(cl, interconnect.Config{
		NumGPUs:             machine.NumGPUs,
		NVLinkBytesPerCycle: machine.NVLinkBytesPerCycle,
		NVLinkLatency:       machine.NVLinkLatency,
		PCIeBytesPerCycle:   machine.PCIeBytesPerCycle,
		PCIeLatency:         machine.PCIeLatency,
	})
	drv := driver.New(hostDom, machine, scheme, net, shards[machine.NumGPUs])
	s := &System{
		Cluster: cl,
		Machine: machine,
		Scheme:  scheme,
		Net:     net,
		Driver:  drv,
		Stats:   stats.NewSim(),
		shards:  shards,
	}
	gpus := make([]*gpu.GPU, machine.NumGPUs)
	ports := make([]driver.GPUPort, machine.NumGPUs)
	for i := range gpus {
		gpus[i] = gpu.New(gpuDom(i), i, machine, scheme, net, shards[i])
		gpus[i].SetHost(drv)
		gpus[i].SetHostDomain(hostDom)
		ports[i] = gpus[i]
	}
	for i := range gpus {
		gpus[i].SetPeers(gpus)
	}
	drv.AttachGPUs(ports)
	s.GPUs = gpus
	return s, nil
}

// MustNew is New that panics on configuration errors; for tests/examples.
func MustNew(machine config.Machine, scheme config.Scheme) *System {
	s, err := New(machine, scheme)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes the trace to completion and returns the collected stats. It
// panics if the simulation deadlocks (a blocked CU that never retires would
// otherwise silently truncate the run).
func (s *System) Run(trace *workload.Trace) (*stats.Sim, error) {
	return s.RunCtx(context.Background(), trace)
}

// RunCtx is Run with cooperative cancellation: the cluster stops at the
// next barrier (or event batch, single-domain) once ctx is done, returning
// ctx.Err(). Cancellation cannot perturb results — a run either completes
// with output identical to Run's, or returns an error.
func (s *System) RunCtx(ctx context.Context, trace *workload.Trace) (*stats.Sim, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.prepare(trace); err != nil {
		return nil, err
	}
	for i, g := range s.GPUs {
		g.Run(trace.Accesses[i], nil)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.drain(ctx); err != nil {
		return nil, err
	}
	return s.finalize()
}

// prepare validates the trace against the machine, installs the optional
// correctness probe, pre-places pages, and configures the per-GPU workload
// shape. Called once per run (twice is harmless: pre-placement maps the same
// pages to the same owners, shape setting is idempotent).
func (s *System) prepare(trace *workload.Trace) error {
	if trace.NumGPUs != s.Machine.NumGPUs {
		return fmt.Errorf("system: trace has %d GPUs, machine has %d",
			trace.NumGPUs, s.Machine.NumGPUs)
	}
	if s.CheckTranslations {
		s.installChecker()
	}
	if !s.ColdStart {
		s.preplace(trace)
	}
	s.setShape(trace)
	return nil
}

// setShape configures the issue gap, instruction scaling, and counter
// threshold on every GPU from the trace's workload parameters. These fields
// are derived from (machine, trace) rather than checkpointed, so a resumed
// system re-applies them before running the remainder.
func (s *System) setShape(trace *workload.Trace) {
	for _, g := range s.GPUs {
		g.SetWorkloadShape(trace.Params.ComputeGap, trace.Params.InstrPerAccess)
		if f := trace.Params.ThresholdFactor; f > 1 {
			g.SetCounterThreshold(s.Machine.AccessCounterThreshold * f)
		}
	}
}

// drain runs the cluster until every scheduled event has fired.
func (s *System) drain(ctx context.Context) error {
	workers := s.ParWorkers
	if s.CheckTranslations {
		// The probe reads driver state from GPU-domain callbacks; keep all
		// execution on the coordinator goroutine so those reads stay
		// race-free and deterministic.
		workers = 1
	}
	return s.Cluster.RunCtx(ctx, workers)
}

// finalize checks for deadlock and coherence violations, folds the
// per-component stats shards, and fills the run-level fields.
func (s *System) finalize() (*stats.Sim, error) {
	remaining := 0
	var execEnd, drainedAt sim.VTime
	for _, g := range s.GPUs {
		if !g.Finished() {
			remaining++
		} else if g.DoneAt() > execEnd {
			execEnd = g.DoneAt()
		}
	}
	for i := 0; i < s.Cluster.NumDomains(); i++ {
		if now := s.Cluster.Domain(i).Now(); now > drainedAt {
			drainedAt = now
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("system: deadlock — %d GPUs never finished (events drained at %d)",
			remaining, drainedAt)
	}
	if len(s.hardViolations) > 0 {
		return nil, fmt.Errorf("system: %d translation-coherence violations, first: %s",
			len(s.hardViolations), s.hardViolations[0])
	}
	// Fold the per-component shards in fixed order (GPU 0..N-1, host), then
	// fill the run-level fields computed from post-run component state.
	for _, sh := range s.shards {
		s.Stats.Merge(sh)
	}
	s.Stats.ExecCycles = execEnd
	s.Stats.NVLinkBytes, s.Stats.PCIeBytes = s.Net.TotalBytes()
	es := s.Cluster.EngineStats()
	s.Stats.EngineEvents = es.Fired
	s.Stats.EngineRingScheduled = es.RingScheduled
	s.Stats.EngineFarScheduled = es.FarScheduled
	s.Stats.EngineMigrated = es.Migrated
	s.Stats.EngineCancelled = es.Cancelled
	s.Stats.EnginePoolHits = es.PoolHits
	for _, g := range s.GPUs {
		if irmb := g.IRMB(); irmb != nil {
			_, merges, _, _, _, _ := irmb.Stats()
			s.Stats.IRMBMergeHits += merges
		}
	}
	if vm := s.Driver.VMDirectory(); vm != nil {
		s.Stats.VMCacheLookups = vm.Lookups()
		s.Stats.VMCacheHits = uint64(float64(vm.Lookups()) * vm.HitRate())
	}
	return s.Stats, nil
}

// preplace installs every page of the trace on the GPU that accesses it
// most (affinity placement), modelling the staged data distribution real
// multi-GPU applications perform before kernel launch. Runs then measure
// steady-state sharing behaviour: migrations happen only when access
// counters show a page is genuinely contended, which is the regime the
// paper studies.
func (s *System) preplace(trace *workload.Trace) {
	counts := make(map[memdef.VPN][]int)
	for g := range trace.Accesses {
		for _, cu := range trace.Accesses[g] {
			for _, a := range cu {
				vpn := memdef.PageNum(a.VA, s.Machine.PageSize)
				c := counts[vpn]
				if c == nil {
					c = make([]int, s.Machine.NumGPUs)
					counts[vpn] = c
				}
				c[g]++
			}
		}
	}
	vpns := make([]memdef.VPN, 0, len(counts))
	for vpn := range counts {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		c := counts[vpn]
		owner := 0
		for g := 1; g < len(c); g++ {
			if c[g] > c[owner] {
				owner = g
			}
		}
		pte := s.Driver.Preinstall(vpn, owner)
		s.GPUs[owner].Preinstall(vpn, pte)
	}
}

// installChecker wires the per-access coherence probe into each GPU.
func (s *System) installChecker() {
	for _, g := range s.GPUs {
		gg := g
		g.OnTranslated = func(gpuID int, vpn memdef.VPN, pfn memdef.PFN) {
			if s.Driver.Migrating(vpn) {
				// Page mid-migration: accesses may legitimately use the
				// outgoing mapping until the invalidation round lands.
				return
			}
			pte, ok := s.Driver.HostPageTable().Lookup(vpn)
			if !ok || !pte.Valid {
				// First-touch in flight: the faulting GPU's mapping reply
				// raced ahead of another GPU's view. Benign.
				return
			}
			if pfn.Device() == pte.PFN.Device() {
				return
			}
			// Replication maps read-only replicas to reader-local frames
			// while the host names the single owner — by design.
			if s.Scheme.Policy == config.Replication {
				return
			}
			// The reply that installed the current host mapping may still
			// be in flight to this GPU; accesses translated through the
			// previous mapping form the bounded in-flight window that
			// exists in real systems too. Count them; the caller asserts
			// the fraction stays negligible via StaleWindowFraction.
			s.staleWindow++
			_ = gg
		}
	}
}

// StaleWindowFraction reports the fraction of accesses that translated
// through an in-flight-stale mapping; expected to be ≪1%.
func (s *System) StaleWindowFraction() float64 {
	if s.Stats.Accesses == 0 {
		return 0
	}
	return float64(s.staleWindow) / float64(s.Stats.Accesses)
}

// RunOnce is the one-call convenience used by examples and benchmarks:
// build the system, generate the trace, run it.
func RunOnce(machine config.Machine, scheme config.Scheme, app workload.Params,
	cusPerGPU, accessesPerCU int, seed uint64) (*stats.Sim, error) {
	m := machine
	if cusPerGPU > 0 {
		m.CUsPerGPU = cusPerGPU
	}
	s, err := New(m, scheme)
	if err != nil {
		return nil, err
	}
	trace := workload.Generate(app, m.NumGPUs, m.CUsPerGPU, accessesPerCU, seed)
	return s.Run(trace)
}
