package system

import (
	"reflect"
	"testing"

	"idyll/internal/config"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// runPar runs one small system with the given parallel-engine worker count.
func runPar(t *testing.T, scheme config.Scheme, workers, accesses int) *stats.Sim {
	t.Helper()
	m := smallMachine(4)
	s := MustNew(m, scheme)
	s.ParWorkers = workers
	trace := workload.Generate(smallApp(), 4, m.CUsPerGPU, accesses, 42)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", scheme.Name, workers, err)
	}
	return st
}

// TestParWorkersByteIdentical is the system-level half of the PDES identity
// contract: the complete measurement set — every counter, histogram bucket,
// latency accumulator, and sharing record — must be deep-equal between the
// serial executor and the worker pool, for schemes covering all three domain
// regimes (multi-domain broadcast traffic, the IRMB drain path, and the
// single-domain zero-latency collapse). Run under -race in CI, this also
// proves the pool's memory ordering sound end-to-end.
func TestParWorkersByteIdentical(t *testing.T) {
	schemes := []config.Scheme{
		config.Baseline(), config.IDYLL(), config.ZeroLatency(),
		config.ReplicationScheme(), config.TransFWScheme(),
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			serial := runPar(t, sc, 0, 150)
			for _, workers := range []int{2, 8} {
				par := runPar(t, sc, workers, 150)
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("workers=%d stats diverge from serial:\nserial: %s\npar:    %s",
						workers, serial.Summary(), par.Summary())
				}
			}
		})
	}
}

// TestCheckTranslationsForcesSerial: the coherence probe reads driver state
// from GPU-domain callbacks, so it must pin execution to the coordinator
// goroutine — and still produce the same results.
func TestCheckTranslationsForcesSerial(t *testing.T) {
	m := smallMachine(4)
	s := MustNew(m, config.IDYLL())
	s.ParWorkers = 8
	s.CheckTranslations = true
	trace := workload.Generate(smallApp(), 4, m.CUsPerGPU, 150, 42)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	plain := runPar(t, config.IDYLL(), 0, 150)
	if st.ExecCycles != plain.ExecCycles || st.Migrations != plain.Migrations {
		t.Fatalf("checked run diverges: %d/%d cyc, %d/%d migrations",
			st.ExecCycles, plain.ExecCycles, st.Migrations, plain.Migrations)
	}
	if f := s.StaleWindowFraction(); f > 0.01 {
		t.Fatalf("stale-window fraction %.4f above 1%%", f)
	}
}

// TestZeroLatencySchemeCollapsesToOneDomain pins the degenerate layout: the
// synchronous-invalidation ideal cannot be expressed with conservative
// windows, so its cluster must be single-domain (and therefore barrier-free).
func TestZeroLatencySchemeCollapsesToOneDomain(t *testing.T) {
	s := MustNew(smallMachine(4), config.ZeroLatency())
	if s.Cluster.NumDomains() != 1 {
		t.Fatalf("zero-latency cluster has %d domains, want 1", s.Cluster.NumDomains())
	}
	s2 := MustNew(smallMachine(4), config.IDYLL())
	if s2.Cluster.NumDomains() != 5 {
		t.Fatalf("4-GPU cluster has %d domains, want 5 (GPUs + host)", s2.Cluster.NumDomains())
	}
	if s2.Cluster.Lookahead() != 101 {
		t.Fatalf("lookahead = %d, want 101 (min link propagation + 1)", s2.Cluster.Lookahead())
	}
}
