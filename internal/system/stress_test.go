package system

import (
	"testing"
	"testing/quick"

	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/memdef"
	"idyll/internal/workload"
)

// Stress: the whole machine must stay live — every access retires — under
// adversarial geometries: single walker threads, depth-1 walk queues, tiny
// TLBs, 1-entry IRMBs, hair-trigger migration thresholds, every scheme.
func TestSystemLivenessUnderAdversarialGeometry(t *testing.T) {
	schemes := []func() config.Scheme{
		config.Baseline, config.IDYLL, config.OnlyLazy, config.ZeroLatency,
		config.OnTouchScheme, config.ReplicationScheme, config.IDYLLTransFW,
	}
	prop := func(seed uint64, knobs [8]uint8) bool {
		m := config.Default()
		m.NumGPUs = int(knobs[0]%3) + 2 // 2..4
		m.CUsPerGPU = int(knobs[1]%3) + 1
		m.OutstandingPerCU = int(knobs[2]%4) + 1
		m.PTWThreads = int(knobs[3]%2) + 1
		m.WalkQueueDepth = int(knobs[4]%4) + 1
		m.L1TLBEntries = 2
		m.L2TLBEntries = 16
		m.L2TLBWays = 4
		m.L2MSHREntries = int(knobs[5]%3) + 2
		m.AccessCounterThreshold = int(knobs[6]%3) + 1
		m.MigrationBlockPages = 1 << (knobs[7] % 3)

		scheme := schemes[seed%uint64(len(schemes))]()
		if scheme.Lazy {
			scheme.IRMB = core.Geometry{Bases: 1, Offsets: 2}
		}

		app, _ := workload.App("PR")
		app.PagesPerGPU = 64
		app.HotPages = 8
		s, err := New(m, scheme)
		if err != nil {
			return false
		}
		s.CheckTranslations = true
		trace := workload.Generate(app, m.NumGPUs, m.CUsPerGPU, 60, seed)
		st, err := s.Run(trace)
		if err != nil {
			t.Logf("seed %d scheme %s: %v", seed, scheme.Name, err)
			return false
		}
		return st.Accesses == uint64(m.NumGPUs*m.CUsPerGPU*60)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Stress: 2 MB pages under every scheme with a tiny machine.
func TestSystemLiveness2MBPages(t *testing.T) {
	for _, mk := range []func() config.Scheme{config.Baseline, config.IDYLL, config.ReplicationScheme} {
		scheme := mk()
		m := smallMachine(2)
		m.PageSize = memdef.Page2M
		m.MigrationBlockPages = 1
		app := smallApp()
		app.PagesPerGPU = 64
		s := MustNew(m, scheme)
		s.CheckTranslations = true
		trace := workload.Generate(app, 2, m.CUsPerGPU, 80, 3)
		if _, err := s.Run(trace); err != nil {
			t.Fatalf("%s at 2MB: %v", scheme.Name, err)
		}
	}
}

// The shootdown fence: after any run, no GPU may hold a TLB entry for a
// page whose local PTE is invalid — stale fills must never outlive the
// invalidation they raced with.
func TestNoStaleTLBEntriesSurviveRun(t *testing.T) {
	for _, mk := range []func() config.Scheme{config.Baseline, config.IDYLL, config.ZeroLatency} {
		scheme := mk()
		s, _ := runSmall(t, scheme, 4, 250)
		_ = s
		// The invariant is enforced during the run by the coherence checker
		// (runSmall enables it); a hard failure would have surfaced as a
		// run error. Additionally require the stale-window fraction to be
		// negligible.
		if frac := s.StaleWindowFraction(); frac > 0.02 {
			t.Fatalf("%s: stale-window fraction %.4f", scheme.Name, frac)
		}
	}
}
