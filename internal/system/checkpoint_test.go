package system

import (
	"bytes"
	"reflect"
	"testing"

	"idyll/internal/config"
	"idyll/internal/workload"
)

// phasedRun executes warmup+remainder straight through on one system.
func phasedRun(t *testing.T, scheme config.Scheme, trace *workload.Trace, warmup int) *System {
	t.Helper()
	s := MustNew(smallMachine(trace.NumGPUs), scheme)
	if err := s.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatalf("%s: warmup: %v", scheme.Name, err)
	}
	if _, err := s.RunRemainderCtx(nil, trace, warmup); err != nil {
		t.Fatalf("%s: remainder: %v", scheme.Name, err)
	}
	return s
}

// forkedRun executes the warmup on one system, checkpoints it, and resumes
// the remainder on a second, freshly built one.
func forkedRun(t *testing.T, scheme config.Scheme, trace *workload.Trace, warmup int) *System {
	t.Helper()
	m := smallMachine(trace.NumGPUs)
	warm := MustNew(m, scheme)
	if err := warm.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatalf("%s: warmup: %v", scheme.Name, err)
	}
	blob, err := warm.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", scheme.Name, err)
	}
	fork := MustNew(m, scheme)
	if err := fork.Resume(blob); err != nil {
		t.Fatalf("%s: resume: %v", scheme.Name, err)
	}
	if _, err := fork.RunRemainderCtx(nil, trace, warmup); err != nil {
		t.Fatalf("%s: remainder after resume: %v", scheme.Name, err)
	}
	return fork
}

// Forking a run from a warmup checkpoint must be indistinguishable from
// running it straight through — for every scheme. The comparison is the
// strongest available: the final merged stats deep-equal, and a post-run
// checkpoint of the entire machine state is byte-identical.
func TestForkFromCheckpointMatchesStraightLine(t *testing.T) {
	const gpus, accesses, warmup = 4, 150, 60
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 42)
	for _, name := range config.SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			scheme, err := config.SchemeByName(name)
			if err != nil {
				t.Fatal(err)
			}
			straight := phasedRun(t, scheme, trace, warmup)
			forked := forkedRun(t, scheme, trace, warmup)
			if !reflect.DeepEqual(straight.Stats, forked.Stats) {
				t.Fatalf("forked stats diverge from straight-line:\nstraight: %+v\nforked:   %+v",
					straight.Stats, forked.Stats)
			}
			sb, err := straight.Checkpoint()
			if err != nil {
				t.Fatalf("post-run checkpoint (straight): %v", err)
			}
			fb, err := forked.Checkpoint()
			if err != nil {
				t.Fatalf("post-run checkpoint (forked): %v", err)
			}
			if !bytes.Equal(sb, fb) {
				t.Fatalf("post-run machine state diverges: %d vs %d bytes", len(sb), len(fb))
			}
		})
	}
}

// The phased run is itself deterministic across repetitions.
func TestPhasedRunDeterministic(t *testing.T) {
	const gpus, accesses, warmup = 4, 120, 40
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 7)
	a := phasedRun(t, config.IDYLL(), trace, warmup)
	b := phasedRun(t, config.IDYLL(), trace, warmup)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatal("phased run is nondeterministic")
	}
}

// Parallel execution of the phased run stays byte-identical to serial.
func TestForkedRunParallelIdentity(t *testing.T) {
	const gpus, accesses, warmup = 4, 120, 40
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 11)
	serial := phasedRun(t, config.IDYLL(), trace, warmup)

	par := MustNew(m, config.IDYLL())
	par.ParWorkers = 4
	if err := par.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatalf("parallel warmup: %v", err)
	}
	if _, err := par.RunRemainderCtx(nil, trace, warmup); err != nil {
		t.Fatalf("parallel remainder: %v", err)
	}
	if !reflect.DeepEqual(serial.Stats, par.Stats) {
		t.Fatal("parallel phased run diverges from serial")
	}
}

func TestResumeRejectsMismatchedSystem(t *testing.T) {
	const gpus, accesses, warmup = 2, 80, 30
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 3)
	warm := MustNew(m, config.Baseline())
	if err := warm.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatal(err)
	}
	blob, err := warm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := MustNew(m, config.IDYLL()).Resume(blob); err == nil {
		t.Fatal("resume into a different scheme succeeded")
	}
	m4 := smallMachine(4)
	if err := MustNew(m4, config.Baseline()).Resume(blob); err == nil {
		t.Fatal("resume into a different machine succeeded")
	}
}

// Corrupt or truncated checkpoints must fail with an error, never panic or
// silently half-restore.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	const gpus, accesses, warmup = 2, 80, 30
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 3)
	warm := MustNew(m, config.IDYLL())
	if err := warm.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatal(err)
	}
	blob, err := warm.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if err := MustNew(m, config.IDYLL()).Resume(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	garbled := append([]byte(nil), blob...)
	garbled[len(garbled)/2] ^= 0xff
	// A flipped byte may or may not be semantically detectable, but it must
	// not panic; recovering systems are discarded on error anyway.
	_ = MustNew(m, config.IDYLL()).Resume(garbled)
}

// Checkpointing with the correctness probe installed is refused: its
// closures bind to the probed instance.
func TestCheckpointRefusesChecker(t *testing.T) {
	const gpus, accesses, warmup = 2, 80, 30
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 3)
	s := MustNew(m, config.IDYLL())
	s.CheckTranslations = true
	if err := s.RunWarmupCtx(nil, trace, warmup); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint with CheckTranslations succeeded")
	}
}
