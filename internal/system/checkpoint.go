// Checkpointing: a System that has fully drained its event cluster is at a
// quiescent point — no event closure is pending anywhere — so its complete
// architectural state is plain data and can be serialized. Checkpoints are
// taken between a warmup phase and the remainder of the trace; forking N
// sweep cells from one warmup checkpoint replays byte-identically to running
// each cell straight through, because both paths execute the same phased run
// (warmup, drain barrier, remainder) on identical state.
//
// Events themselves (Go closures) are never serialized; that is why the
// two-phase run exists. The drain barrier between phases is part of the
// simulated schedule, so a warmup depth W is a *semantic* parameter: results
// at W>0 differ from W=0, and W therefore belongs to the experiment's
// canonical identity (see experiment.Options.WarmupAccessesPerCU).

package system

import (
	"context"
	"fmt"

	"idyll/internal/checkpoint"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// RunWarmupCtx executes the first warmupPerCU accesses of every CU and
// drains the cluster, leaving the system at a checkpointable quiescent
// point. The remainder of the trace runs via RunRemainderCtx.
func (s *System) RunWarmupCtx(ctx context.Context, trace *workload.Trace, warmupPerCU int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if warmupPerCU <= 0 {
		return fmt.Errorf("system: warmup of %d accesses per CU", warmupPerCU)
	}
	if err := s.prepare(trace); err != nil {
		return err
	}
	for i, g := range s.GPUs {
		g.Run(tracePrefix(trace.Accesses[i], warmupPerCU), nil)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.drain(ctx); err != nil {
		return err
	}
	for i, g := range s.GPUs {
		if !g.Finished() {
			return fmt.Errorf("system: deadlock — GPU %d never finished its warmup", i)
		}
	}
	// The drain leaves each domain's clock wherever its last event fired;
	// realign them so the remainder starts from one shared barrier cycle.
	s.Cluster.AlignClocks()
	return nil
}

// RunRemainderCtx executes the trace's post-warmup suffix to completion and
// returns the collected stats. The receiver must either have completed
// RunWarmupCtx with the same (trace, warmupPerCU) or have Resumed a
// checkpoint taken at that point — the two are byte-identical.
func (s *System) RunRemainderCtx(ctx context.Context, trace *workload.Trace, warmupPerCU int) (*stats.Sim, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace.NumGPUs != s.Machine.NumGPUs {
		return nil, fmt.Errorf("system: trace has %d GPUs, machine has %d",
			trace.NumGPUs, s.Machine.NumGPUs)
	}
	if s.CheckTranslations {
		s.installChecker()
	}
	// Workload shape is derived state, re-applied rather than checkpointed.
	s.setShape(trace)
	for i, g := range s.GPUs {
		g.Run(traceSuffix(trace.Accesses[i], warmupPerCU), nil)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.drain(ctx); err != nil {
		return nil, err
	}
	return s.finalize()
}

// tracePrefix clips every CU's stream to its first n accesses.
func tracePrefix(cus [][]workload.Access, n int) [][]workload.Access {
	out := make([][]workload.Access, len(cus))
	for i, cu := range cus {
		k := n
		if k > len(cu) {
			k = len(cu)
		}
		out[i] = cu[:k]
	}
	return out
}

// traceSuffix clips every CU's stream to what tracePrefix left out.
func traceSuffix(cus [][]workload.Access, n int) [][]workload.Access {
	out := make([][]workload.Access, len(cus))
	for i, cu := range cus {
		k := n
		if k > len(cu) {
			k = len(cu)
		}
		out[i] = cu[k:]
	}
	return out
}

// Checkpoint serializes the system's complete state. The cluster must be
// fully drained (every event fired); a system with the translation checker
// installed cannot be checkpointed, because the probe's closures reference
// this instance and would not survive a restore into another.
func (s *System) Checkpoint() ([]byte, error) {
	if n := s.Cluster.Pending(); n != 0 {
		return nil, fmt.Errorf("system: checkpoint with %d pending events", n)
	}
	if s.CheckTranslations {
		return nil, fmt.Errorf("system: cannot checkpoint with the translation checker enabled")
	}
	w := checkpoint.NewWriter()
	// Configuration fingerprint: enough to reject gross mismatches early.
	// Full configuration identity is the content-addressed store key's job.
	w.String(s.Scheme.Name)
	w.Int(s.Machine.NumGPUs)
	w.Int(s.Machine.CUsPerGPU)
	s.Cluster.SaveState(w)
	s.Net.SaveState(w)
	s.Driver.SaveState(w)
	for _, g := range s.GPUs {
		g.SaveState(w)
	}
	for _, sh := range s.shards {
		sh.SaveState(w)
	}
	w.U64(s.staleWindow)
	return w.Finish(), nil
}

// Resume restores a Checkpoint into s, which must be freshly constructed
// from the same machine and scheme and never run.
func (s *System) Resume(data []byte) error {
	r, err := checkpoint.NewReader(data)
	if err != nil {
		return err
	}
	name := r.String()
	numGPUs := r.Int()
	cus := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if name != s.Scheme.Name || numGPUs != s.Machine.NumGPUs || cus != s.Machine.CUsPerGPU {
		return fmt.Errorf("system: checkpoint of scheme %q (%d GPUs x %d CUs) cannot resume into %q (%d x %d)",
			name, numGPUs, cus, s.Scheme.Name, s.Machine.NumGPUs, s.Machine.CUsPerGPU)
	}
	s.Cluster.RestoreState(r)
	s.Net.RestoreState(r)
	s.Driver.RestoreState(r)
	for _, g := range s.GPUs {
		g.RestoreState(r)
	}
	for _, sh := range s.shards {
		sh.RestoreState(r)
	}
	s.staleWindow = r.U64()
	return r.Finish()
}
