package system

import (
	"testing"

	"idyll/internal/config"
	"idyll/internal/memdef"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// smallMachine returns a Table 2 machine scaled down for fast tests.
func smallMachine(gpus int) config.Machine {
	m := config.Default()
	m.NumGPUs = gpus
	m.CUsPerGPU = 4
	m.AccessCounterThreshold = 16 // short traces: keep migrations flowing
	return m
}

// smallApp returns a quick synthetic app with aggressive sharing so a short
// trace still triggers migrations.
func smallApp() workload.Params {
	p, _ := workload.App("PR")
	p.PagesPerGPU = 256
	p.HotPages = 16
	return p
}

func runSmall(t *testing.T, scheme config.Scheme, gpus, accesses int) (*System, *stats.Sim) {
	t.Helper()
	m := smallMachine(gpus)
	s := MustNew(m, scheme)
	s.CheckTranslations = true
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 42)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatalf("%s: %v", scheme.Name, err)
	}
	return s, st
}

// Every access issued must retire, under every scheme — the fundamental
// liveness check of the whole machine.
func TestAllSchemesCompleteAllAccesses(t *testing.T) {
	schemes := []config.Scheme{
		config.Baseline(), config.OnlyLazy(), config.OnlyInPTE(),
		config.IDYLL(), config.IDYLLInMem(), config.ZeroLatency(),
		config.FirstTouchScheme(), config.OnTouchScheme(),
		config.ReplicationScheme(), config.TransFWScheme(), config.IDYLLTransFW(),
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			_, st := runSmall(t, sc, 4, 150)
			want := uint64(4 * 4 * 150)
			if st.Accesses != want {
				t.Fatalf("issued %d accesses, want %d", st.Accesses, want)
			}
			if st.ExecCycles <= 0 {
				t.Fatal("no execution time recorded")
			}
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	_, a := runSmall(t, config.IDYLL(), 4, 120)
	_, b := runSmall(t, config.IDYLL(), 4, 120)
	if a.ExecCycles != b.ExecCycles || a.Migrations != b.Migrations ||
		a.FarFaults != b.FarFaults || a.InvalReceived != b.InvalReceived {
		t.Fatalf("nondeterministic: %d/%d cyc, %d/%d mig, %d/%d faults",
			a.ExecCycles, b.ExecCycles, a.Migrations, b.Migrations, a.FarFaults, b.FarFaults)
	}
}

func TestBaselineTriggersMigrationsAndInvalidation(t *testing.T) {
	_, st := runSmall(t, config.Baseline(), 4, 300)
	if st.Migrations == 0 {
		t.Fatal("hot shared workload produced no migrations")
	}
	if st.InvalReceived == 0 {
		t.Fatal("migrations produced no invalidation requests")
	}
	// Broadcast: every migration invalidates every GPU.
	if st.InvalReceived != st.Migrations*4 {
		t.Fatalf("invals=%d, want migrations×4=%d", st.InvalReceived, st.Migrations*4)
	}
	if st.InvalUnnecessary == 0 {
		t.Fatal("broadcast should hit GPUs without valid PTEs (unnecessary invals)")
	}
	if st.MigrationWait.Count != st.Migrations {
		t.Fatalf("wait samples=%d, migrations=%d", st.MigrationWait.Count, st.Migrations)
	}
}

func TestInPTEDirectoryFiltersInvalidations(t *testing.T) {
	_, base := runSmall(t, config.Baseline(), 4, 300)
	_, dir := runSmall(t, config.OnlyInPTE(), 4, 300)
	if dir.DirectoryFiltered == 0 {
		t.Fatal("directory never filtered an invalidation")
	}
	baseRate := float64(base.InvalReceived) / float64(maxU(base.Migrations, 1))
	dirRate := float64(dir.InvalReceived) / float64(maxU(dir.Migrations, 1))
	if dirRate >= baseRate {
		t.Fatalf("directory did not reduce invals per migration: %.2f vs %.2f", dirRate, baseRate)
	}
}

func TestIDYLLUsesIRMB(t *testing.T) {
	s, st := runSmall(t, config.IDYLL(), 4, 300)
	if st.IRMBInserts == 0 {
		t.Fatal("IRMB never used")
	}
	// Lazy invalidation must keep walker-side inval traffic near zero at
	// request time; write-backs happen in batches or drains.
	if st.IRMBWritebacks+uint64(totalPendingIRMB(s)) == 0 && st.IRMBInserts > 0 {
		// All inserted entries must either be written back, drained, or
		// removed by new mappings — accounted via stats.
		t.Log("all IRMB entries removed by new mappings (acceptable)")
	}
	if frac := s.StaleWindowFraction(); frac > 0.02 {
		t.Fatalf("stale-window accesses = %.4f of all accesses", frac)
	}
}

func totalPendingIRMB(s *System) int {
	n := 0
	for _, g := range s.GPUs {
		if g.IRMB() != nil {
			n += g.IRMB().PendingInvalidations()
		}
	}
	return n
}

func TestZeroLatencyWaitsOnlyForHostWalk(t *testing.T) {
	_, base := runSmall(t, config.Baseline(), 4, 300)
	_, zero := runSmall(t, config.ZeroLatency(), 4, 300)
	if zero.Migrations == 0 {
		t.Fatal("no migrations under zero-latency")
	}
	if zero.MigrationWait.Mean() >= base.MigrationWait.Mean() {
		t.Fatalf("zero-latency wait %.0f ≥ baseline %.0f",
			zero.MigrationWait.Mean(), base.MigrationWait.Mean())
	}
}

func TestFirstTouchNeverMigrates(t *testing.T) {
	_, st := runSmall(t, config.FirstTouchScheme(), 4, 200)
	if st.Migrations != 0 {
		t.Fatalf("first-touch migrated %d pages", st.Migrations)
	}
	if st.RemoteAccesses == 0 {
		t.Fatal("first-touch with sharing must produce remote accesses")
	}
}

func TestOnTouchMigratesAggressively(t *testing.T) {
	_, on := runSmall(t, config.OnTouchScheme(), 4, 200)
	_, counter := runSmall(t, config.Baseline(), 4, 200)
	if on.Migrations <= counter.Migrations {
		t.Fatalf("on-touch migrations %d ≤ counter-based %d", on.Migrations, counter.Migrations)
	}
}

func TestReplicationCreatesReplicasAndCollapses(t *testing.T) {
	_, st := runSmall(t, config.ReplicationScheme(), 4, 300)
	if st.Replications == 0 {
		t.Fatal("replication policy never replicated")
	}
	if st.WriteCollapses == 0 {
		t.Fatal("writes to replicated pages never collapsed")
	}
}

func TestTransFWForwardsFaults(t *testing.T) {
	_, st := runSmall(t, config.TransFWScheme(), 4, 300)
	if st.PRTLookups == 0 {
		t.Fatal("PRT never consulted")
	}
	if st.PRTHits == 0 {
		t.Fatal("PRT never predicted")
	}
}

func TestVMDirectoryServesIDYLLInMem(t *testing.T) {
	s, st := runSmall(t, config.IDYLLInMem(), 4, 300)
	vm := s.Driver.VMDirectory()
	if vm == nil {
		t.Fatal("IDYLL-InMem has no VM directory")
	}
	if vm.Lookups() == 0 {
		t.Fatal("VM-Cache never consulted")
	}
	if st.Migrations == 0 {
		t.Fatal("no migrations under IDYLL-InMem")
	}
}

func TestSingleGPUHasNoMigrations(t *testing.T) {
	m := smallMachine(1)
	s := MustNew(m, config.Baseline())
	s.CheckTranslations = true
	p := smallApp()
	trace := workload.Generate(p, 1, m.CUsPerGPU, 200, 7)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrations != 0 || st.RemoteAccesses != 0 {
		t.Fatalf("single GPU: migrations=%d remote=%d", st.Migrations, st.RemoteAccesses)
	}
	// Affinity pre-placement means a single GPU owns everything: no faults.
	if st.FarFaults != 0 {
		t.Fatalf("pre-placed single-GPU run faulted %d times", st.FarFaults)
	}
}

func TestColdStartFirstTouchFaults(t *testing.T) {
	m := smallMachine(1)
	s := MustNew(m, config.Baseline())
	s.ColdStart = true
	trace := workload.Generate(smallApp(), 1, m.CUsPerGPU, 200, 7)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.FarFaults == 0 {
		t.Fatal("cold start must first-touch fault")
	}
	if st.PCIeBytes == 0 {
		t.Fatal("cold start must page data in over PCIe")
	}
}

func TestTraceGPUMismatchErrors(t *testing.T) {
	s := MustNew(smallMachine(4), config.Baseline())
	trace := workload.Generate(smallApp(), 2, 2, 10, 1)
	if _, err := s.Run(trace); err == nil {
		t.Fatal("mismatched trace accepted")
	}
}

func TestSharingTrackerSeesMultiGPUSharing(t *testing.T) {
	_, st := runSmall(t, config.Baseline(), 4, 300)
	if st.Sharing().SharedAccessRatio() < 0.2 {
		t.Fatalf("PR-like workload shared ratio = %.2f", st.Sharing().SharedAccessRatio())
	}
	dist := st.Sharing().AccessDistribution(4)
	if dist[4] == 0 {
		t.Fatal("no 4-GPU-shared accesses in a PR-like workload")
	}
}

func TestLargePageMachineRuns(t *testing.T) {
	m := smallMachine(4)
	m.PageSize = memdef.Page2M
	s := MustNew(m, config.IDYLL())
	s.CheckTranslations = true
	p := smallApp()
	trace := workload.Generate(p, 4, m.CUsPerGPU, 150, 5)
	st, err := s.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses == 0 || st.ExecCycles == 0 {
		t.Fatal("2MB run produced nothing")
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
