package system

import (
	"testing"

	"idyll/internal/config"
	"idyll/internal/workload"
)

// FuzzResume feeds arbitrary bytes to the whole-machine checkpoint decoder.
// Resume must reject malformed input with an error — never panic, never
// over-allocate. The seed corpus is a real warmup checkpoint, so the fuzzer
// mutates from a deep, fully-populated state stream rather than from headers
// alone. (Semantic validity of an *accepted* stream is the identity tests'
// job — see TestForkFromCheckpointMatchesStraightLine; a mutated counter that
// decodes cleanly is beyond what a structural decoder can reject.)
func FuzzResume(f *testing.F) {
	const gpus, accesses, warmup = 2, 60, 30
	m := smallMachine(gpus)
	trace := workload.Generate(smallApp(), gpus, m.CUsPerGPU, accesses, 13)
	scheme := config.IDYLL()
	warm := MustNew(m, scheme)
	if err := warm.RunWarmupCtx(nil, trace, warmup); err != nil {
		f.Fatal(err)
	}
	blob, err := warm.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("IDYLLCKP\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := MustNew(m, scheme)
		_ = s.Resume(data) // error or success; panicking is the only failure
	})
}
