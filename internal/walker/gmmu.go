// Package walker models the GPU Memory Management Unit (GMMU) of §3.1: a
// bounded page-walk queue, a shared page-walk cache (PWC) over the non-leaf
// page-table levels, and a pool of page-table walker threads. Demand
// translation walks, PTE-invalidation walks, and PTE-update walks all share
// these resources — that sharing is precisely the contention the paper
// quantifies (§5.2) and IDYLL removes.
package walker

import (
	"idyll/internal/cache"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

// Config sets the GMMU's geometry and timing (Table 2 defaults: 8 walker
// threads, 100 cycles per level, 128-entry PWC, 64-entry walk queue).
type Config struct {
	Threads       int
	QueueCapacity int
	LevelLatency  sim.VTime // memory access for one page-table level
	PWCHitLatency sim.VTime // PWC lookup time on a hit
	PWCEntries    int
	PWCWays       int
	// RetryDelay is how long a rejected (queue-full) request waits before
	// re-attempting enqueue.
	RetryDelay sim.VTime
}

// DefaultConfig returns Table 2's GMMU configuration.
func DefaultConfig() Config {
	return Config{
		Threads:       8,
		QueueCapacity: 64,
		LevelLatency:  100,
		PWCHitLatency: 1,
		PWCEntries:    128,
		PWCWays:       8,
		RetryDelay:    8,
	}
}

// pwcKey identifies a cached page-table entry: its level and the VPN prefix
// that selects it within the level.
type pwcKey struct {
	level  int
	prefix uint64
}

// GMMU is one GPU's memory-management unit.
type GMMU struct {
	engine  *sim.Engine
	pt      *pagetable.Table
	cfg     Config
	pwc     *cache.SetAssoc[pwcKey, struct{}]
	walkers *sim.Resource
	st      *stats.Sim
	// scratch is the walk-visit buffer reused across walks: visits are
	// consumed synchronously by walkCost before any other walk can start,
	// so one buffer per GMMU suffices and the walk path never allocates.
	scratch []pagetable.Visit
}

// New builds a GMMU over the GPU's local page table. st may be shared with
// other components of the same system.
func New(engine *sim.Engine, pt *pagetable.Table, cfg Config, st *stats.Sim) *GMMU {
	sets := cfg.PWCEntries / cfg.PWCWays
	if sets < 1 {
		sets = 1
	}
	g := &GMMU{
		engine: engine,
		pt:     pt,
		cfg:    cfg,
		pwc: cache.New[pwcKey, struct{}](sets, cfg.PWCWays, func(k pwcKey) uint64 {
			return k.prefix*31 + uint64(k.level)
		}),
		walkers: sim.NewResource(engine, cfg.Threads, cfg.QueueCapacity),
		st:      st,
	}
	return g
}

// PageTable exposes the GPU's local page table.
func (g *GMMU) PageTable() *pagetable.Table { return g.pt }

// SetOnIdle installs a hook fired whenever a walker thread frees with an
// empty walk queue — IDYLL's trigger for draining the IRMB (§6.3).
func (g *GMMU) SetOnIdle(fn func()) { g.walkers.OnIdle = fn }

// Idle reports whether a walker is free and the queue is empty.
func (g *GMMU) Idle() bool { return g.walkers.Idle() }

// QueueLen reports the current walk-queue depth.
func (g *GMMU) QueueLen() int { return g.walkers.QueueLen() }

// walkCost charges PWC lookups/updates for one walk of vpn and returns the
// total walk latency. The PWC caches non-leaf levels only; the leaf PTE
// access always goes to memory, so a batch of invalidations sharing all
// non-leaf levels costs one full walk plus one leaf access per extra page —
// the amortization lazy invalidation exploits (§6.3).
func (g *GMMU) walkCost(visits []pagetable.Visit) sim.VTime {
	var total sim.VTime
	for _, v := range visits {
		g.st.WalkerLevelVisits++
		if v.Level == 1 {
			total += g.cfg.LevelLatency
			continue
		}
		key := pwcKey{level: v.Level, prefix: v.Prefix}
		g.st.PWCLookups++
		if _, ok := g.pwc.Lookup(key); ok {
			g.st.PWCHits++
			total += g.cfg.PWCHitLatency
		} else {
			total += g.cfg.LevelLatency
			g.pwc.Insert(key, struct{}{})
		}
	}
	return total
}

// fullWalkCost is walkCost for a walk that must touch every level (PTE
// updates create the radix path as they descend).
func (g *GMMU) fullWalkCost(vpn memdef.VPN) sim.VTime {
	levels := g.pt.Levels()
	visits := g.scratch[:0]
	for i := 0; i < levels; i++ {
		level := levels - i
		visits = append(visits, pagetable.Visit{Level: level, Prefix: memdef.LevelPrefix(vpn, level)})
	}
	g.scratch = visits
	return g.walkCost(visits)
}

// enqueue submits a job to the walk queue with automatic retry on
// backpressure.
func (g *GMMU) enqueue(job func(release func())) {
	if g.walkers.Acquire(job) {
		return
	}
	g.st.WalkQueueRejects++
	g.engine.Schedule(g.cfg.RetryDelay, func() { g.enqueue(job) })
}

// Demand performs a demand translation walk for vpn. done receives the PTE
// found (possibly invalid — stale entries still terminate a full walk) and
// whether any leaf entry existed at all.
func (g *GMMU) Demand(vpn memdef.VPN, done func(pte pagetable.PTE, ok bool)) {
	g.st.WalkerDemand++
	g.enqueue(func(release func()) {
		visits, pte, ok := g.pt.WalkInto(g.scratch, vpn)
		g.scratch = visits
		cost := g.walkCost(visits)
		g.engine.Schedule(cost, func() {
			release()
			done(pte, ok)
		})
	})
}

// Invalidate performs an invalidation walk for vpn (baseline behaviour: the
// GPU walks its table "even if [the PTE] were invalid to begin with", §2).
// done receives whether a valid PTE was actually invalidated.
func (g *GMMU) Invalidate(vpn memdef.VPN, done func(wasValid bool)) {
	g.st.WalkerInval++
	g.enqueue(func(release func()) {
		visits, _, _ := g.pt.WalkInto(g.scratch, vpn)
		g.scratch = visits
		cost := g.walkCost(visits)
		g.st.InvalBusy += cost
		g.engine.Schedule(cost, func() {
			wasValid := g.pt.Invalidate(vpn)
			if wasValid {
				g.st.InvalNecessary++
			} else {
				g.st.InvalUnnecessary++
			}
			release()
			done(wasValid)
		})
	})
}

// InvalidateBatch writes back a batch of buffered invalidations on a single
// walker thread, sequentially, so consecutive pages reuse the just-filled
// PWC entries (§6.3 "IRMB writeback"). done fires when the whole batch has
// been applied.
func (g *GMMU) InvalidateBatch(vpns []memdef.VPN, done func()) {
	g.InvalidateBatchFiltered(vpns, nil, nil, done)
}

// InvalidateBatchFiltered is InvalidateBatch with two hooks: skip (checked
// immediately before each page's walk) suppresses pages whose invalidation
// became obsolete — e.g. a fresh mapping arrived for them while the batch
// was queued, so invalidating would destroy the new translation (§6.3
// "update the PTE directly ... without invalidating it") — and each fires as
// every individual page's invalidation lands, so the caller can retire its
// stale-PTE marker at the precise cycle the page table becomes clean.
func (g *GMMU) InvalidateBatchFiltered(vpns []memdef.VPN, skip func(memdef.VPN) bool,
	each func(vpn memdef.VPN, wasValid bool), done func()) {
	if len(vpns) == 0 {
		if done != nil {
			g.engine.Schedule(0, done)
		}
		return
	}
	g.st.WalkerInval += uint64(len(vpns))
	g.enqueue(func(release func()) {
		g.batchStep(vpns, 0, skip, each, release, done)
	})
}

// batchStep applies the i'th invalidation of a batch and chains to the next.
func (g *GMMU) batchStep(vpns []memdef.VPN, i int, skip func(memdef.VPN) bool,
	each func(memdef.VPN, bool), release func(), done func()) {
	if i >= len(vpns) {
		release()
		if done != nil {
			done()
		}
		return
	}
	if skip != nil && skip(vpns[i]) {
		g.batchStep(vpns, i+1, skip, each, release, done)
		return
	}
	visits, _, _ := g.pt.WalkInto(g.scratch, vpns[i])
	g.scratch = visits
	cost := g.walkCost(visits)
	g.st.InvalBusy += cost
	g.engine.Schedule(cost, func() {
		wasValid := g.pt.Invalidate(vpns[i])
		if wasValid {
			g.st.InvalNecessary++
		} else {
			g.st.InvalUnnecessary++
		}
		if each != nil {
			each(vpns[i], wasValid)
		}
		g.batchStep(vpns, i+1, skip, each, release, done)
	})
}

// Update installs a translation via the walk queue — "the new mapping is
// directly inserted into the page table walk queue for PTE update" (§6.3).
func (g *GMMU) Update(vpn memdef.VPN, pte pagetable.PTE, done func()) {
	g.UpdateUnless(vpn, pte, nil, done)
}

// UpdateUnless is Update with a staleness guard: checked immediately before
// the mapping is written, a true result skips the install. The GPU uses it
// to cancel updates whose translation an invalidation has overtaken while
// the update sat in the walk queue — without the guard, a late update would
// resurrect a dead translation.
func (g *GMMU) UpdateUnless(vpn memdef.VPN, pte pagetable.PTE, stale func() bool, done func()) {
	g.st.WalkerUpdate++
	g.enqueue(func(release func()) {
		cost := g.fullWalkCost(vpn)
		g.engine.Schedule(cost, func() {
			if stale == nil || !stale() {
				g.pt.Map(vpn, pte)
			}
			release()
			if done != nil {
				done()
			}
		})
	})
}

// PWCHitRate reports the page-walk-cache hit rate.
func (g *GMMU) PWCHitRate() float64 { return g.pwc.HitRate() }

// QueueStats reports accepted, queued, and rejected walk requests.
func (g *GMMU) QueueStats() (total, queued, rejected uint64) {
	return g.walkers.TotalJobs(), g.walkers.QueuedJobs(), g.walkers.Rejected()
}
