package walker

import (
	"testing"

	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

func newGMMU(threads int) (*sim.Engine, *GMMU, *pagetable.Table, *stats.Sim) {
	e := sim.NewEngine()
	pt := pagetable.New(memdef.Page4K)
	st := stats.NewSim()
	cfg := DefaultConfig()
	cfg.Threads = threads
	g := New(e, pt, cfg, st)
	return e, g, pt, st
}

func TestDemandWalkColdCostsFourLevels(t *testing.T) {
	e, g, pt, _ := newGMMU(8)
	pt.Map(42, pagetable.PTE{PFN: 7, Valid: true})
	var at sim.VTime
	var got pagetable.PTE
	g.Demand(42, func(pte pagetable.PTE, ok bool) {
		if !ok {
			t.Error("walk missed mapped page")
		}
		got, at = pte, e.Now()
	})
	e.Run()
	// Cold PWC: 4 levels × 100 cycles.
	if at != 400 {
		t.Fatalf("cold walk finished at %d, want 400", at)
	}
	if got.PFN != 7 {
		t.Fatalf("walk returned PFN %d", got.PFN)
	}
}

func TestDemandWalkWarmUsesPWC(t *testing.T) {
	e, g, pt, st := newGMMU(8)
	pt.Map(100, pagetable.PTE{Valid: true})
	pt.Map(101, pagetable.PTE{Valid: true}) // same non-leaf path
	var first, second sim.VTime
	g.Demand(100, func(pagetable.PTE, bool) {
		first = e.Now()
		g.Demand(101, func(pagetable.PTE, bool) { second = e.Now() })
	})
	e.Run()
	if first != 400 {
		t.Fatalf("first walk at %d", first)
	}
	// Second walk: 3 PWC hits (1 cycle each) + leaf access (100).
	if second-first != 103 {
		t.Fatalf("warm walk took %d, want 103", second-first)
	}
	if st.PWCHits != 3 {
		t.Fatalf("PWC hits = %d, want 3", st.PWCHits)
	}
}

func TestDemandWalkAbsentSubtreeStopsEarly(t *testing.T) {
	e, g, _, _ := newGMMU(8)
	var at sim.VTime
	g.Demand(12345, func(pte pagetable.PTE, ok bool) {
		if ok {
			t.Error("walk found mapping in empty table")
		}
		at = e.Now()
	})
	e.Run()
	// Empty table: only the top level is inspected (100 cycles).
	if at != 100 {
		t.Fatalf("early-stop walk at %d, want 100", at)
	}
}

func TestWalkerThreadContention(t *testing.T) {
	e, g, pt, _ := newGMMU(1) // single walker: strictly serial
	pt.Map(1, pagetable.PTE{Valid: true})
	pt.Map(2, pagetable.PTE{Valid: true})
	var finish []sim.VTime
	g.Demand(1, func(pagetable.PTE, bool) { finish = append(finish, e.Now()) })
	g.Demand(2, func(pagetable.PTE, bool) { finish = append(finish, e.Now()) })
	e.Run()
	if len(finish) != 2 {
		t.Fatalf("completed %d walks", len(finish))
	}
	if finish[0] != 400 {
		t.Fatalf("first = %d", finish[0])
	}
	// Second waits for the first, then walks warm: 3×1 + 100.
	if finish[1] != 503 {
		t.Fatalf("second = %d, want 503", finish[1])
	}
}

func TestInvalidateReportsNecessity(t *testing.T) {
	e, g, pt, st := newGMMU(8)
	pt.Map(9, pagetable.PTE{Valid: true})
	necessary := -1
	g.Invalidate(9, func(wasValid bool) {
		if wasValid {
			necessary = 1
		} else {
			necessary = 0
		}
	})
	e.Run()
	if necessary != 1 || st.InvalNecessary != 1 {
		t.Fatal("invalidation of valid PTE should be necessary")
	}
	// Second invalidation: stale entry, unnecessary, but still a full walk.
	start := e.Now()
	var took sim.VTime
	g.Invalidate(9, func(wasValid bool) {
		if wasValid {
			t.Error("stale PTE reported valid")
		}
		took = e.Now() - start
	})
	e.Run()
	if st.InvalUnnecessary != 1 {
		t.Fatalf("unnecessary = %d", st.InvalUnnecessary)
	}
	if took != 103 { // warm PWC + leaf
		t.Fatalf("unnecessary walk took %d", took)
	}
	if pt.ValidCount() != 0 {
		t.Fatal("PTE still valid")
	}
}

func TestInvalidateAbsentPageWalksPartially(t *testing.T) {
	e, g, _, st := newGMMU(8)
	var took sim.VTime
	g.Invalidate(777, func(wasValid bool) {
		if wasValid {
			t.Error("absent PTE reported valid")
		}
		took = e.Now()
	})
	e.Run()
	if took != 100 { // stops at absent L4
		t.Fatalf("absent-page invalidation took %d", took)
	}
	if st.InvalUnnecessary != 1 {
		t.Fatal("absent-page invalidation must count as unnecessary")
	}
}

func TestInvalidateBatchAmortizesPWC(t *testing.T) {
	e, g, pt, _ := newGMMU(8)
	vpns := make([]memdef.VPN, 8)
	for i := range vpns {
		vpns[i] = memdef.VPN(0x4000 + i) // same base, offsets 0..7
		pt.Map(vpns[i], pagetable.PTE{Valid: true})
	}
	var took sim.VTime
	g.InvalidateBatch(vpns, func() { took = e.Now() })
	e.Run()
	// First page: 400 cold. Remaining 7: 3 PWC hits + leaf = 103 each.
	want := sim.VTime(400 + 7*103)
	if took != want {
		t.Fatalf("batch took %d, want %d", took, want)
	}
	if pt.ValidCount() != 0 {
		t.Fatal("batch left valid PTEs")
	}
}

func TestInvalidateBatchHoldsSingleThread(t *testing.T) {
	e, g, pt, _ := newGMMU(2)
	vpns := []memdef.VPN{1, 2, 3}
	for _, v := range vpns {
		pt.Map(v, pagetable.PTE{Valid: true})
	}
	pt.Map(1<<27, pagetable.PTE{Valid: true}) // different subtree
	var batchDone, demandDone sim.VTime
	g.InvalidateBatch(vpns, func() { batchDone = e.Now() })
	g.Demand(1<<27, func(pagetable.PTE, bool) { demandDone = e.Now() })
	e.Run()
	// With 2 threads the demand walk proceeds concurrently on thread 2 and
	// must not wait for the batch.
	if demandDone != 400 {
		t.Fatalf("demand finished at %d, want 400 (no batch interference)", demandDone)
	}
	if batchDone != 400+103+103 {
		t.Fatalf("batch finished at %d", batchDone)
	}
}

func TestUpdateInstallsMapping(t *testing.T) {
	e, g, pt, _ := newGMMU(8)
	var at sim.VTime
	g.Update(55, pagetable.PTE{PFN: 3, Valid: true}, func() { at = e.Now() })
	e.Run()
	if at != 400 {
		t.Fatalf("update took %d, want 400 (full path creation)", at)
	}
	pte, ok := pt.Lookup(55)
	if !ok || !pte.Valid || pte.PFN != 3 {
		t.Fatalf("mapping not installed: %+v %v", pte, ok)
	}
}

func TestQueueBackpressureRetries(t *testing.T) {
	e := sim.NewEngine()
	pt := pagetable.New(memdef.Page4K)
	st := stats.NewSim()
	cfg := DefaultConfig()
	cfg.Threads = 1
	cfg.QueueCapacity = 2
	g := New(e, pt, cfg, st)
	done := 0
	for i := 0; i < 10; i++ {
		g.Demand(memdef.VPN(i), func(pagetable.PTE, bool) { done++ })
	}
	e.Run()
	if done != 10 {
		t.Fatalf("only %d/10 walks completed under backpressure", done)
	}
	if st.WalkQueueRejects == 0 {
		t.Fatal("expected walk-queue rejections with capacity 2")
	}
}

func TestOnIdleFiresAfterDrain(t *testing.T) {
	e, g, pt, _ := newGMMU(2)
	pt.Map(1, pagetable.PTE{Valid: true})
	idle := 0
	g.SetOnIdle(func() { idle++ })
	g.Demand(1, func(pagetable.PTE, bool) {})
	e.Run()
	if idle == 0 {
		t.Fatal("OnIdle never fired after queue drained")
	}
	if !g.Idle() {
		t.Fatal("GMMU should be idle")
	}
}
