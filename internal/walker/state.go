package walker

import "idyll/internal/checkpoint"

// Checkpoint support. A GMMU at a quiescent point has no walk in flight
// (walkers idle, queue empty — asserted by the Resource's own SaveState), so
// its state is the local page table, the page-walk cache contents in recency
// order, and the walker-pool counters.

// SaveState writes the GMMU's state to w.
func (g *GMMU) SaveState(w *checkpoint.Writer) {
	g.pt.SaveState(w)
	g.pwc.SaveState(w, func(w *checkpoint.Writer, k pwcKey, _ struct{}) {
		w.Int(k.level)
		w.U64(k.prefix)
	})
	g.walkers.SaveState(w)
}

// RestoreState reads the state written by SaveState into g, which must be
// freshly constructed from the same configuration.
func (g *GMMU) RestoreState(r *checkpoint.Reader) {
	g.pt.RestoreState(r)
	g.pwc.RestoreState(r, func(r *checkpoint.Reader) (pwcKey, struct{}) {
		k := pwcKey{level: r.Int(), prefix: r.U64()}
		return k, struct{}{}
	})
	g.walkers.RestoreState(r)
}
