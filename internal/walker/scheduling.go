package walker

import (
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

// SchedPolicy selects how the walk queue orders demand walks against
// invalidation/update walks. The paper's baseline shares a single FIFO
// (§3.3: invalidations are "performed in a way similar to the conventional
// address translation procedure"); the page-walk-scheduling prior art it
// contrasts with in Table 1 ([61] Pratheek et al., [65] Shin et al.)
// prioritizes between request classes instead. These policies let the
// repo's ablations quantify how much of IDYLL's benefit a scheduler could
// recover on its own (the paper argues: not the invalidation volume).
type SchedPolicy int

const (
	// FIFO is the baseline single queue.
	FIFO SchedPolicy = iota
	// DemandFirst always serves demand translation walks before buffered
	// invalidation/update work.
	DemandFirst
	// RoundRobin alternates between the demand class and the maintenance
	// (invalidation/update) class when both are waiting.
	RoundRobin
)

func (p SchedPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case DemandFirst:
		return "demand-first"
	case RoundRobin:
		return "round-robin"
	}
	return "unknown"
}

// reqClass tags a queued walk for the scheduler.
type reqClass int

const (
	classDemand reqClass = iota
	classMaintenance
)

// schedJob is one queued walk.
type schedJob struct {
	class reqClass
	run   func(release func())
}

// scheduler wraps the walker thread pool with a two-class queue. It
// preserves FIFO order within a class.
type scheduler struct {
	engine   *sim.Engine
	policy   SchedPolicy
	servers  int
	busy     int
	capacity int
	demand   []schedJob
	maint    []schedJob
	lastPick reqClass
	onIdle   func()

	rejected uint64
}

func newScheduler(engine *sim.Engine, policy SchedPolicy, servers, capacity int) *scheduler {
	return &scheduler{engine: engine, policy: policy, servers: servers, capacity: capacity}
}

func (s *scheduler) queueLen() int { return len(s.demand) + len(s.maint) }

func (s *scheduler) idle() bool { return s.busy < s.servers && s.queueLen() == 0 }

// acquire submits a classed walk; reports false when the queue is full.
func (s *scheduler) acquire(class reqClass, run func(release func())) bool {
	if s.busy < s.servers && s.queueLen() == 0 {
		s.busy++
		run(s.release())
		return true
	}
	if s.capacity >= 0 && s.queueLen() >= s.capacity {
		s.rejected++
		return false
	}
	if class == classDemand {
		s.demand = append(s.demand, schedJob{class, run})
	} else {
		s.maint = append(s.maint, schedJob{class, run})
	}
	return true
}

func (s *scheduler) release() func() {
	done := false
	return func() {
		if done {
			panic("walker: double release")
		}
		done = true
		s.engine.Schedule(0, s.dispatch)
	}
}

// pick selects the next job according to the policy.
func (s *scheduler) pick() (schedJob, bool) {
	takeDemand := func() (schedJob, bool) {
		if len(s.demand) == 0 {
			return schedJob{}, false
		}
		j := s.demand[0]
		s.demand = s.demand[1:]
		return j, true
	}
	takeMaint := func() (schedJob, bool) {
		if len(s.maint) == 0 {
			return schedJob{}, false
		}
		j := s.maint[0]
		s.maint = s.maint[1:]
		return j, true
	}
	switch s.policy {
	case DemandFirst:
		if j, ok := takeDemand(); ok {
			return j, true
		}
		return takeMaint()
	case RoundRobin:
		if s.lastPick == classDemand {
			if j, ok := takeMaint(); ok {
				s.lastPick = classMaintenance
				return j, true
			}
			return takeDemand()
		}
		if j, ok := takeDemand(); ok {
			s.lastPick = classDemand
			return j, true
		}
		return takeMaint()
	default: // FIFO over both classes: approximate by demand-age... the
		// baseline enqueues into one list; emulate by draining whichever
		// class has the older head. Since jobs carry no timestamps, we
		// interleave fairly: demand first on ties (demand misses arrived
		// via the TLB path are latency-critical in both designs).
		if len(s.demand) > 0 && len(s.maint) > 0 {
			if s.lastPick == classDemand {
				s.lastPick = classMaintenance
				return takeMaint()
			}
			s.lastPick = classDemand
			return takeDemand()
		}
		if j, ok := takeDemand(); ok {
			return j, true
		}
		return takeMaint()
	}
}

func (s *scheduler) dispatch() {
	s.busy--
	if j, ok := s.pick(); ok {
		s.busy++
		j.run(s.release())
		return
	}
	if s.onIdle != nil && s.busy < s.servers {
		s.onIdle()
	}
}

// ---------------------------------------------------------------------------
// Scheduled GMMU variant.
// ---------------------------------------------------------------------------

// ScheduledGMMU is a GMMU whose walk queue applies a SchedPolicy between
// demand and maintenance walks. The plain GMMU remains the paper-faithful
// single-FIFO baseline; this variant exists for the scheduling ablation.
type ScheduledGMMU struct {
	*GMMU
	sched *scheduler
}

// NewScheduled builds a GMMU with a classed walk queue.
func NewScheduled(engine *sim.Engine, pt *pagetable.Table, cfg Config,
	policy SchedPolicy, st *stats.Sim) *ScheduledGMMU {
	inner := New(engine, pt, cfg, st)
	return &ScheduledGMMU{
		GMMU:  inner,
		sched: newScheduler(engine, policy, cfg.Threads, cfg.QueueCapacity),
	}
}

// DemandScheduled enqueues a demand walk through the scheduler.
func (sg *ScheduledGMMU) DemandScheduled(vpn memdef.VPN, done func(pagetable.PTE, bool)) {
	sg.st.WalkerDemand++
	sg.enqueueClassed(classDemand, func(release func()) {
		visits, pte, ok := sg.pt.Walk(vpn)
		cost := sg.walkCost(visits)
		sg.engine.Schedule(cost, func() {
			release()
			done(pte, ok)
		})
	})
}

// InvalidateScheduled enqueues an invalidation walk through the scheduler.
func (sg *ScheduledGMMU) InvalidateScheduled(vpn memdef.VPN, done func(bool)) {
	sg.st.WalkerInval++
	sg.enqueueClassed(classMaintenance, func(release func()) {
		visits, _, _ := sg.pt.Walk(vpn)
		cost := sg.walkCost(visits)
		sg.st.InvalBusy += cost
		sg.engine.Schedule(cost, func() {
			wasValid := sg.pt.Invalidate(vpn)
			if wasValid {
				sg.st.InvalNecessary++
			} else {
				sg.st.InvalUnnecessary++
			}
			release()
			done(wasValid)
		})
	})
}

func (sg *ScheduledGMMU) enqueueClassed(class reqClass, job func(release func())) {
	if sg.sched.acquire(class, job) {
		return
	}
	sg.st.WalkQueueRejects++
	sg.engine.Schedule(sg.cfg.RetryDelay, func() { sg.enqueueClassed(class, job) })
}

// Policy reports the scheduling policy.
func (sg *ScheduledGMMU) Policy() SchedPolicy { return sg.sched.policy }

// SchedulerIdle reports whether the classed queue is drained with a free
// walker, and SetSchedulerOnIdle installs the idle hook (mirrors GMMU's
// IRMB drain trigger for schemes that combine scheduling with lazy
// invalidation).
func (sg *ScheduledGMMU) SchedulerIdle() bool { return sg.sched.idle() }

// SetSchedulerOnIdle installs fn as the classed queue's idle hook.
func (sg *ScheduledGMMU) SetSchedulerOnIdle(fn func()) { sg.sched.onIdle = fn }

// Rejected reports walks refused due to a full classed queue.
func (sg *ScheduledGMMU) Rejected() uint64 { return sg.sched.rejected }
