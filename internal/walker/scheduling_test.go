package walker

import (
	"testing"

	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

func newScheduled(policy SchedPolicy, threads int) (*sim.Engine, *ScheduledGMMU, *pagetable.Table) {
	e := sim.NewEngine()
	pt := pagetable.New(memdef.Page4K)
	cfg := DefaultConfig()
	cfg.Threads = threads
	return e, NewScheduled(e, pt, cfg, policy, stats.NewSim()), pt
}

// Queue a maintenance burst then a demand walk with one walker thread: the
// demand-first policy must serve the demand walk before the rest of the
// burst; FIFO-ish interleave makes it wait longer.
func demandFinishAfterBurst(t *testing.T, policy SchedPolicy) sim.VTime {
	t.Helper()
	e, g, pt := newScheduled(policy, 1)
	for i := 0; i < 8; i++ {
		vpn := memdef.VPN(i * 1000)
		pt.Map(vpn, pagetable.PTE{Valid: true})
	}
	pt.Map(9999, pagetable.PTE{Valid: true})
	// First job occupies the walker; the rest queue as maintenance.
	for i := 0; i < 8; i++ {
		g.InvalidateScheduled(memdef.VPN(i*1000), func(bool) {})
	}
	var demandDone sim.VTime = -1
	g.DemandScheduled(9999, func(pte pagetable.PTE, ok bool) {
		if !ok || !pte.Valid {
			t.Error("demand walk failed")
		}
		demandDone = e.Now()
	})
	e.Run()
	if demandDone < 0 {
		t.Fatal("demand walk never finished")
	}
	return demandDone
}

func TestDemandFirstBeatsFIFOUnderInvalBurst(t *testing.T) {
	df := demandFinishAfterBurst(t, DemandFirst)
	fifo := demandFinishAfterBurst(t, FIFO)
	if df >= fifo {
		t.Fatalf("demand-first (%d) should finish the demand walk before FIFO (%d)", df, fifo)
	}
}

func TestRoundRobinBetweenClasses(t *testing.T) {
	rr := demandFinishAfterBurst(t, RoundRobin)
	fifo := demandFinishAfterBurst(t, FIFO)
	// Round-robin alternates classes, so a single demand walk behind a burst
	// is served after at most one maintenance job — not worse than FIFO.
	if rr > fifo {
		t.Fatalf("round-robin (%d) worse than FIFO (%d)", rr, fifo)
	}
}

func TestScheduledGMMUCompletesEverything(t *testing.T) {
	e, g, pt := newScheduled(DemandFirst, 2)
	const n = 30
	for i := 0; i < n; i++ {
		pt.Map(memdef.VPN(i), pagetable.PTE{Valid: true})
	}
	done := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			g.InvalidateScheduled(memdef.VPN(i), func(bool) { done++ })
		} else {
			g.DemandScheduled(memdef.VPN(i), func(pagetable.PTE, bool) { done++ })
		}
	}
	e.Run()
	if done != n {
		t.Fatalf("completed %d/%d scheduled walks", done, n)
	}
}

func TestScheduledBackpressureRetries(t *testing.T) {
	e := sim.NewEngine()
	pt := pagetable.New(memdef.Page4K)
	cfg := DefaultConfig()
	cfg.Threads = 1
	cfg.QueueCapacity = 2
	g := NewScheduled(e, pt, cfg, DemandFirst, stats.NewSim())
	done := 0
	for i := 0; i < 12; i++ {
		g.DemandScheduled(memdef.VPN(i), func(pagetable.PTE, bool) { done++ })
	}
	e.Run()
	if done != 12 {
		t.Fatalf("completed %d/12 under backpressure", done)
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "fifo" || DemandFirst.String() != "demand-first" ||
		RoundRobin.String() != "round-robin" {
		t.Fatal("policy names wrong")
	}
	if SchedPolicy(99).String() != "unknown" {
		t.Fatal("unknown policy name wrong")
	}
	if p := DemandFirst; NewScheduled(sim.NewEngine(), pagetable.New(memdef.Page4K),
		DefaultConfig(), p, stats.NewSim()).Policy() != p {
		t.Fatal("policy not stored")
	}
}

func TestSchedulerIdleAndRejectedAccessors(t *testing.T) {
	e, g, pt := newScheduled(DemandFirst, 1)
	if !g.SchedulerIdle() {
		t.Fatal("fresh scheduler not idle")
	}
	pt.Map(1, pagetable.PTE{Valid: true})
	idleFired := false
	g.SetSchedulerOnIdle(func() { idleFired = true })
	g.DemandScheduled(1, func(pagetable.PTE, bool) {})
	if g.SchedulerIdle() {
		t.Fatal("scheduler idle while a walk runs")
	}
	e.Run()
	if !g.SchedulerIdle() || !idleFired {
		t.Fatal("idle hook did not fire after drain")
	}
	if g.Rejected() != 0 {
		t.Fatal("phantom rejections")
	}
}
