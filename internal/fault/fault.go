// Package fault is a seeded, deterministic fault-injection layer for the
// idyll service stack. Production code names *injection sites* — stable
// strings like "cache.disk.read" or "peer.fill" — and calls the nil-safe
// hooks (Err, Mangle, Delay, Panic) at each site. A schedule parsed from a
// -fault-spec string decides, deterministically from its seed, which calls
// actually misbehave. With no schedule armed the *Injector is nil and every
// hook is a two-instruction nil check: zero overhead when disabled.
//
// Spec grammar (semicolon-separated fields, whitespace ignored):
//
//	spec  := field (';' field)*
//	field := "seed=" uint64 | rule
//	rule  := site ':' kind [':' params]
//	kind  := "error" | "bitflip" | "truncate" | "delay=" DURATION | "panic"
//	params:= param (',' param)*
//	param := "p=" FLOAT | "count=" INT | "after=" INT
//
// Example:
//
//	seed=7;cache.disk.read:bitflip:count=1;fleet.dispatch:delay=50ms:p=0.2
//
// flips one bit in the first result-cache disk read and delays ~20% of
// dispatch RPCs by 50ms. "count=N" caps how many times a rule fires,
// "after=N" skips the first N matching operations, and "p=F" fires each
// eligible operation with probability F (default 1). Each rule draws from
// its own splitmix64 stream seeded from (seed, site, rule index), so a
// given spec misbehaves identically on every run — a red chaos run is
// reproducible from the spec string alone.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is wrapped by every error the injector fabricates, so tests
// and callers can errors.Is-classify injected failures.
var ErrInjected = errors.New("injected fault")

// Kind enumerates what a rule does when it fires.
type Kind string

const (
	KindError    Kind = "error"    // Err returns a synthetic failure
	KindBitflip  Kind = "bitflip"  // Mangle flips one PRNG-chosen bit
	KindTruncate Kind = "truncate" // Mangle cuts the payload short (torn write)
	KindDelay    Kind = "delay"    // Delay sleeps for the configured duration
	KindPanic    Kind = "panic"    // Panic panics (worker crash)
)

// Rule is one parsed schedule entry.
type Rule struct {
	Site  string
	Kind  Kind
	Delay time.Duration // KindDelay only
	P     float64       // fire probability per eligible op (default 1)
	Count int           // max fires (0 = unlimited)
	After int           // skip the first N matching ops
}

type ruleState struct {
	Rule
	rng   uint64 // splitmix64 state, private to this rule
	seen  int
	fired int
}

// Injector holds an armed schedule. The zero value is not useful; obtain
// one from Parse. A nil *Injector is valid and inert — every method is
// nil-safe — so callers thread it unconditionally.
type Injector struct {
	mu    sync.Mutex
	spec  string
	seed  uint64
	sites map[string][]*ruleState
	total uint64
	sleep func(time.Duration) // test seam
}

// Parse builds an Injector from a -fault-spec string. An empty spec yields
// (nil, nil): injection disabled.
func Parse(spec string) (*Injector, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return nil, nil
	}
	inj := &Injector{
		spec:  trimmed,
		seed:  1,
		sites: make(map[string][]*ruleState),
		sleep: time.Sleep,
	}
	var rules []Rule
	for _, field := range strings.Split(trimmed, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if v, ok := strings.CutPrefix(field, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			inj.seed = n
			continue
		}
		r, err := parseRule(field)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: spec %q names no rules", trimmed)
	}
	for i, r := range rules {
		inj.sites[r.Site] = append(inj.sites[r.Site],
			&ruleState{Rule: r, rng: ruleSeed(inj.seed, r.Site, i)})
	}
	return inj, nil
}

func parseRule(s string) (Rule, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return Rule{}, fmt.Errorf("fault: rule %q, want site:kind[:params]", s)
	}
	r := Rule{Site: parts[0], P: 1}
	if v, ok := strings.CutPrefix(parts[1], "delay="); ok {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return Rule{}, fmt.Errorf("fault: bad delay %q in rule %q", v, s)
		}
		r.Kind, r.Delay = KindDelay, d
	} else {
		switch k := Kind(parts[1]); k {
		case KindError, KindBitflip, KindTruncate, KindPanic:
			r.Kind = k
		default:
			return Rule{}, fmt.Errorf("fault: unknown kind %q in rule %q", parts[1], s)
		}
	}
	if len(parts) == 3 {
		for _, p := range strings.Split(parts[2], ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok {
				return Rule{}, fmt.Errorf("fault: bad param %q in rule %q", p, s)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return Rule{}, fmt.Errorf("fault: p=%q out of [0,1] in rule %q", v, s)
				}
				r.P = f
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Rule{}, fmt.Errorf("fault: bad count=%q in rule %q", v, s)
				}
				r.Count = n
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Rule{}, fmt.Errorf("fault: bad after=%q in rule %q", v, s)
				}
				r.After = n
			default:
				return Rule{}, fmt.Errorf("fault: unknown param %q in rule %q", k, s)
			}
		}
	}
	return r, nil
}

// ruleSeed mixes (seed, site, index) into an independent splitmix64 stream.
func ruleSeed(seed uint64, site string, idx int) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * 0x100000001b3
	}
	return h ^ uint64(idx+1)*0x9e3779b97f4a7c15
}

func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fireLocked finds the first rule at site with one of the wanted kinds
// that elects to fire for this operation. Caller holds i.mu.
func (i *Injector) fireLocked(site string, want ...Kind) *ruleState {
	for _, st := range i.sites[site] {
		match := false
		for _, k := range want {
			if st.Kind == k {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		st.seen++
		if st.seen <= st.After {
			continue
		}
		if st.Count > 0 && st.fired >= st.Count {
			continue
		}
		if st.P < 1 && float64(next(&st.rng)>>11)/(1<<53) >= st.P {
			continue
		}
		st.fired++
		i.total++
		return st
	}
	return nil
}

// Err reports an injected failure for site, or nil. Call it where a real
// I/O or network error could surface.
func (i *Injector) Err(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if st := i.fireLocked(site, KindError); st != nil {
		return fmt.Errorf("%w: %s at %s (fire %d)", ErrInjected, st.Kind, site, st.fired)
	}
	return nil
}

// Mangle corrupts data per the site's bitflip/truncate rules, returning a
// fresh slice when it fires and the input untouched otherwise. Call it on
// bytes just read from (or about to be written to) an untrusted medium.
func (i *Injector) Mangle(site string, data []byte) []byte {
	if i == nil || len(data) == 0 {
		return data
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.fireLocked(site, KindBitflip, KindTruncate)
	if st == nil {
		return data
	}
	switch st.Kind {
	case KindBitflip:
		out := append([]byte(nil), data...)
		bit := int(next(&st.rng) % uint64(len(out)*8))
		out[bit/8] ^= 1 << (bit % 8)
		return out
	case KindTruncate:
		return append([]byte(nil), data[:next(&st.rng)%uint64(len(data))]...)
	}
	return data
}

// Delay sleeps for the site's configured delay when its rule fires.
func (i *Injector) Delay(site string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	st := i.fireLocked(site, KindDelay)
	var d time.Duration
	if st != nil {
		d = st.Rule.Delay
	}
	sleep := i.sleep
	i.mu.Unlock()
	if st != nil && d > 0 {
		sleep(d)
	}
}

// Panic crashes the goroutine when the site's panic rule fires, simulating
// a worker dying mid-job. The panic message names the site and ErrInjected.
func (i *Injector) Panic(site string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	st := i.fireLocked(site, KindPanic)
	i.mu.Unlock()
	if st != nil {
		panic(fmt.Sprintf("%v: panic at %s (fire %d)", ErrInjected, site, st.fired))
	}
}

// Fired returns how many times rules at site have fired.
func (i *Injector) Fired(site string) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, st := range i.sites[site] {
		n += st.fired
	}
	return n
}

// TotalFired returns the number of faults injected across all sites.
func (i *Injector) TotalFired() uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.total
}

// FiredBySite returns per-site fire counts, for /metrics export.
func (i *Injector) FiredBySite() map[string]uint64 {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.sites))
	for site, rules := range i.sites {
		var n uint64
		for _, st := range rules {
			n += uint64(st.fired)
		}
		if n > 0 {
			out[site] = n
		}
	}
	return out
}

// Schedule renders the armed schedule (for logging at daemon startup).
func (i *Injector) Schedule() string {
	if i == nil {
		return ""
	}
	return i.spec
}

// Sites returns the sorted site names the schedule arms. Handy for
// validating a spec against the set of sites a binary actually has.
func (i *Injector) Sites() []string {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, 0, len(i.sites))
	for s := range i.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
