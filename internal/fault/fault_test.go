package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Err("x"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello")
	if got := inj.Mangle("x", data); !bytes.Equal(got, data) {
		t.Fatalf("nil Mangle changed data: %q", got)
	}
	inj.Delay("x")
	inj.Panic("x")
	if inj.Fired("x") != 0 || inj.TotalFired() != 0 {
		t.Fatal("nil injector reports fires")
	}
	if inj.Schedule() != "" || inj.Sites() != nil || inj.FiredBySite() != nil {
		t.Fatal("nil injector reports a schedule")
	}
}

func TestParseEmptyIsDisabled(t *testing.T) {
	inj, err := Parse("  ")
	if err != nil || inj != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"seed=9",               // no rules
		"cache.disk.read",      // no kind
		"a:explode",            // unknown kind
		"a:error:p=2",          // p out of range
		"a:error:count=-1",     // negative count
		"a:error:bogus=1",      // unknown param
		"a:delay=notaduration", // bad duration
		"seed=abc;a:error",     // bad seed
		"a:error:p",            // param without value
		":error",               // empty site
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestErrFiresWithCountAndAfter(t *testing.T) {
	inj, err := Parse("seed=3;io:error:count=2,after=1")
	if err != nil {
		t.Fatal(err)
	}
	var errs int
	for i := 0; i < 10; i++ {
		if e := inj.Err("io"); e != nil {
			if !errors.Is(e, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", e)
			}
			if i == 0 {
				t.Fatal("after=1 did not skip the first op")
			}
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("count=2 fired %d times", errs)
	}
	if inj.Fired("io") != 2 || inj.TotalFired() != 2 {
		t.Fatalf("Fired=%d Total=%d, want 2/2", inj.Fired("io"), inj.TotalFired())
	}
	if inj.Err("other.site") != nil {
		t.Fatal("unarmed site fired")
	}
}

func TestMangleBitflipAndTruncate(t *testing.T) {
	inj, err := Parse("seed=5;flip:bitflip:count=1;cut:truncate:count=1")
	if err != nil {
		t.Fatal(err)
	}
	orig := bytes.Repeat([]byte{0xAA}, 64)
	flipped := inj.Mangle("flip", orig)
	if bytes.Equal(flipped, orig) {
		t.Fatal("bitflip left data intact")
	}
	diff := 0
	for i := range orig {
		diff += popcount(orig[i] ^ flipped[i])
	}
	if diff != 1 {
		t.Fatalf("bitflip changed %d bits, want exactly 1", diff)
	}
	if !bytes.Equal(bytes.Repeat([]byte{0xAA}, 64), orig) {
		t.Fatal("Mangle mutated the caller's slice")
	}
	// Count exhausted: second call is a no-op.
	if again := inj.Mangle("flip", orig); !bytes.Equal(again, orig) {
		t.Fatal("count=1 bitflip fired twice")
	}
	cut := inj.Mangle("cut", orig)
	if len(cut) >= len(orig) {
		t.Fatalf("truncate produced %d bytes from %d", len(cut), len(orig))
	}
	if !bytes.Equal(cut, orig[:len(cut)]) {
		t.Fatal("truncate is not a prefix")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	spec := "seed=42;net:error:p=0.3;data:bitflip:p=0.5"
	run := func() ([]bool, [][]byte) {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		var errs []bool
		var blobs [][]byte
		payload := []byte("the quick brown fox jumps over the lazy dog")
		for i := 0; i < 200; i++ {
			errs = append(errs, inj.Err("net") != nil)
			blobs = append(blobs, inj.Mangle("data", payload))
		}
		return errs, blobs
	}
	e1, b1 := run()
	e2, b2 := run()
	fired := 0
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("error schedule diverges at op %d", i)
		}
		if !bytes.Equal(b1[i], b2[i]) {
			t.Fatalf("mangle schedule diverges at op %d", i)
		}
		if e1[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(e1) {
		t.Fatalf("p=0.3 fired %d/%d times; schedule looks degenerate", fired, len(e1))
	}
}

func TestDelayUsesConfiguredDuration(t *testing.T) {
	inj, err := Parse("slow:delay=250ms:count=1")
	if err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	inj.Delay("slow")
	inj.Delay("slow")
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms once", slept)
	}
}

func TestPanicFires(t *testing.T) {
	inj, err := Parse("boom:panic:count=1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic rule did not panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic message %q does not name the site", r)
		}
	}()
	inj.Panic("boom")
}

func TestSitesAndSchedule(t *testing.T) {
	spec := "seed=1;b:error;a:bitflip"
	inj, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	sites := inj.Sites()
	if len(sites) != 2 || sites[0] != "a" || sites[1] != "b" {
		t.Fatalf("Sites = %v", sites)
	}
	if inj.Schedule() != spec {
		t.Fatalf("Schedule = %q", inj.Schedule())
	}
	if got := inj.FiredBySite(); len(got) != 0 {
		t.Fatalf("FiredBySite before any op = %v", got)
	}
	inj.Err("b")
	if got := inj.FiredBySite(); got["b"] != 1 {
		t.Fatalf("FiredBySite after fire = %v", got)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// FuzzParseSpec checks that arbitrary spec strings never panic the parser
// and that accepted schedules are safe to exercise.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=7;cache.disk.read:bitflip:count=1")
	f.Add("a:error:p=0.5,count=3,after=2;b:delay=10ms")
	f.Add("x:truncate")
	f.Add(";;;")
	f.Add("seed=18446744073709551615;s:panic")
	f.Fuzz(func(t *testing.T, spec string) {
		inj, err := Parse(spec)
		if err != nil {
			return
		}
		if inj == nil && strings.TrimSpace(spec) != "" {
			t.Fatalf("Parse(%q) = nil, nil for non-blank spec", spec)
		}
		if inj == nil {
			return
		}
		inj.sleep = func(time.Duration) {}
		for _, site := range inj.Sites() {
			func() {
				defer func() { recover() }() // panic rules may legitimately fire
				inj.Err(site)
				inj.Mangle(site, []byte("payload"))
				inj.Delay(site)
				inj.Panic(site)
			}()
		}
	})
}
