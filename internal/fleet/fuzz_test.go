package fleet

import (
	"strings"
	"testing"
)

// FuzzCheckVersion guards the join/probe version gate: no input panics it,
// and it accepts exactly the current protocol string or a minor revision of
// it ("idyll-fleet/1.x") — anything else, including prefixes like
// "idyll-fleet/10", must be rejected.
func FuzzCheckVersion(f *testing.F) {
	f.Add(VersionString)
	f.Add(VersionString + ".3")
	f.Add("idyll-fleet/10")
	f.Add("")
	f.Add("other/1")
	f.Add(VersionString + "x")
	f.Fuzz(func(t *testing.T, v string) {
		err := CheckVersion(v)
		compatible := v == VersionString || strings.HasPrefix(v, VersionString+".")
		if (err == nil) != compatible {
			t.Fatalf("CheckVersion(%q) = %v, want compatible=%v", v, err, compatible)
		}
	})
}
