package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"idyll/internal/service"
)

// testWorker is one fleet worker for coordinator tests: a real
// service.Server with a counting stub runner and the peer-fill hooks wired,
// served over httptest.
type testWorker struct {
	id     string
	srv    *service.Server
	hs     *httptest.Server
	filler *Filler
	runs   atomic.Int64
}

func newTestWorker(t *testing.T, id string) *testWorker {
	t.Helper()
	w := &testWorker{id: id, filler: NewFiller("", nil)}
	srv, err := service.NewServer(service.Config{
		Workers: 2,
		Runner: func(ctx context.Context, spec service.CanonicalSpec,
			progress func(int, int, string)) ([]byte, error) {
			w.runs.Add(1)
			h, err := spec.Hash()
			if err != nil {
				return nil, err
			}
			progress(1, 1, spec.App)
			// Deterministic bytes per spec, as the real runner guarantees.
			return []byte(fmt.Sprintf(`{"hash":%q,"seed":%d}`, h, spec.Options.Seed)), nil
		},
		PeerFill:     w.filler.ResultFill,
		OnPeers:      w.filler.UpdatePeers,
		FleetID:      id,
		FleetVersion: VersionString,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.srv = srv
	w.hs = httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		w.hs.Close()
	})
	return w
}

func newTestFleet(t *testing.T, cfg Config, n int) (*Coordinator, *service.Client, []*testWorker) {
	t.Helper()
	workers := make([]*testWorker, n)
	for i := range workers {
		workers[i] = newTestWorker(t, fmt.Sprintf("w%d", i+1))
		cfg.Workers = append(cfg.Workers, WorkerAddr{ID: workers[i].id, URL: workers[i].hs.URL})
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
		hs.Close()
	})
	return coord, service.NewClient(hs.URL), workers
}

func cellSpec(seed uint64) service.JobSpec {
	return service.JobSpec{
		Kind: "cell", App: "PR", Scheme: "idyll",
		Options: json.RawMessage(fmt.Sprintf(
			`{"cus_per_gpu":2,"accesses_per_cu":50,"seed":%d,"counter_threshold":1}`, seed)),
	}
}

func TestCoordinatorRelaysAndCaches(t *testing.T) {
	coord, c, workers := newTestFleet(t, Config{}, 2)
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, cellSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != service.StatusDone {
		t.Fatalf("status = %s (%s)", st.Status, st.Error)
	}
	if total := workers[0].runs.Load() + workers[1].runs.Load(); total != 1 {
		t.Fatalf("fleet ran the job %d times, want 1", total)
	}
	if len(st.Result) == 0 {
		t.Fatal("no result relayed")
	}
	// The coordinator tracked who holds the result; with Replicas=2 both
	// workers should hold it after replication.
	if got := len(coord.Copysets().Holders(st.Hash)); got != 2 {
		t.Fatalf("copyset size = %d, want 2 (computed + replica)", got)
	}

	// Resubmission: answered from the coordinator's own cache, no extra run.
	st2, err := c.SubmitAndWait(ctx, cellSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("resubmission not served from coordinator cache")
	}
	if string(st2.Result) != string(st.Result) {
		t.Fatal("cached bytes differ from computed bytes")
	}
	if total := workers[0].runs.Load() + workers[1].runs.Load(); total != 1 {
		t.Fatal("cache hit still reached a worker")
	}
}

func TestCoordinatorRoutingIsDeterministic(t *testing.T) {
	_, c, workers := newTestFleet(t, Config{Replicas: 1}, 3)
	ctx := context.Background()

	// The same spec must always land on the same worker; distinct specs
	// spread. Run a batch and compare against the rendezvous ranking.
	for seed := uint64(1); seed <= 6; seed++ {
		if _, err := c.SubmitAndWait(ctx, cellSpec(seed), nil); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, w := range workers {
		total += w.runs.Load()
	}
	if total != 6 {
		t.Fatalf("ran %d jobs, want 6 (no duplicate routing)", total)
	}
	// Replay the batch: every result is now coordinator-cached, so the
	// distribution must not move.
	before := []int64{workers[0].runs.Load(), workers[1].runs.Load(), workers[2].runs.Load()}
	for seed := uint64(1); seed <= 6; seed++ {
		if _, err := c.SubmitAndWait(ctx, cellSpec(seed), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range workers {
		if w.runs.Load() != before[i] {
			t.Fatalf("replay recomputed on %s", w.id)
		}
	}
}

func TestCoordinatorPeerFillAfterReplication(t *testing.T) {
	coord, c, workers := newTestFleet(t, Config{Replicas: 2}, 2)
	ctx := context.Background()

	st, err := c.SubmitAndWait(ctx, cellSpec(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replication pushed the result to the second-ranked worker via its
	// POST /v1/cache/fill, which exercises that worker's peer-fill client:
	// exactly one worker computed, and exactly one peer-filled.
	var computed, filled *testWorker
	for _, w := range workers {
		if w.runs.Load() == 1 {
			computed = w
		}
		if w.srv.Metrics().Counter("peer_fills") == 1 {
			filled = w
		}
	}
	if computed == nil || filled == nil || computed == filled {
		t.Fatalf("computed=%v filled=%v; want one of each",
			computed != nil, filled != nil)
	}
	// The replica genuinely holds the bytes: fetch straight from its cache.
	data, ok, err := service.NewClient(filled.hs.URL).CacheGet(ctx, st.Hash)
	if err != nil || !ok {
		t.Fatalf("replica cache miss: ok=%v err=%v", ok, err)
	}
	if string(data) != string(st.Result) {
		t.Fatal("replica bytes differ from the relayed result")
	}
	_ = coord
}

func TestCoordinatorReroutesOnWorkerDeath(t *testing.T) {
	coord, c, workers := newTestFleet(t, Config{Replicas: 1, FailLimit: 1}, 2)
	ctx := context.Background()

	// Find which worker seed 7 routes to, then kill it before submitting.
	hash := mustHash(t, cellSpec(7))
	first := Rank(hash, []string{"w1", "w2"})[0]
	for _, w := range workers {
		if w.id == first {
			w.hs.CloseClientConnections()
			w.hs.Close()
		}
	}

	st, err := c.SubmitAndWait(ctx, cellSpec(7), nil)
	if err != nil {
		t.Fatalf("job lost to worker death: %v", err)
	}
	if st.Status != service.StatusDone {
		t.Fatalf("status = %s (%s)", st.Status, st.Error)
	}
	if reroutes := coord.Server().Metrics().Counter("fleet_reroutes"); reroutes < 1 {
		t.Fatal("re-route not recorded")
	}
	// The dead worker was marked down via dispatch feedback (FailLimit 1).
	for _, wk := range coord.Members().Snapshot() {
		if wk.ID == first && wk.State == "alive" {
			t.Fatalf("dead worker still alive in membership: %+v", wk)
		}
	}
}

func TestCoordinatorDeterministicFailureDoesNotReroute(t *testing.T) {
	// A worker whose runner fails deterministically must fail the job once,
	// not burn through every worker.
	boom := errors.New("deterministic model error")
	var runs atomic.Int64
	cfg := Config{Replicas: 1}
	workers := make([]*testWorker, 0, 2)
	for i := 1; i <= 2; i++ {
		w := &testWorker{id: fmt.Sprintf("w%d", i), filler: NewFiller("", nil)}
		srv, err := service.NewServer(service.Config{
			Workers: 1,
			Runner: func(context.Context, service.CanonicalSpec,
				func(int, int, string)) ([]byte, error) {
				runs.Add(1)
				return nil, boom
			},
			FleetID:      w.id,
			FleetVersion: VersionString,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.srv = srv
		w.hs = httptest.NewServer(srv.Handler())
		t.Cleanup(w.hs.Close)
		workers = append(workers, w)
		cfg.Workers = append(cfg.Workers, WorkerAddr{ID: w.id, URL: w.hs.URL})
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
		hs.Close()
	})

	st, err := service.NewClient(hs.URL).SubmitAndWait(context.Background(), cellSpec(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != service.StatusFailed || !strings.Contains(st.Error, "deterministic model error") {
		t.Fatalf("status = %s (%s), want failed with the model error", st.Status, st.Error)
	}
	if runs.Load() != 1 {
		t.Fatalf("deterministic failure ran %d times, want 1 (no re-route)", runs.Load())
	}
}

func TestCoordinatorFleetEndpoints(t *testing.T) {
	coord, c, _ := newTestFleet(t, Config{}, 2)
	ctx := context.Background()

	// Wait for a probe round so states settle to alive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		coord.Members().ProbeOnce(ctx)
		snap := coord.Members().Snapshot()
		if len(snap) == 2 && snap[0].State == "alive" && snap[1].State == "alive" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never probed alive: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var status StatusResponse
	if err := getJSON(t, c.Base()+"/v1/fleet/status", &status); err != nil {
		t.Fatal(err)
	}
	if status.Version != VersionString || len(status.Workers) != 2 {
		t.Fatalf("status = %+v", status)
	}
	if status.Workers[0].ID != "w1" || status.Workers[1].ID != "w2" {
		t.Fatalf("workers not sorted by ID: %+v", status.Workers)
	}

	// Rollup metrics: run one job, then expect fleet_ sums and worker_
	// breakdown lines, stably ordered.
	if _, err := c.SubmitAndWait(ctx, cellSpec(3), nil); err != nil {
		t.Fatal(err)
	}
	text1, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet_workers_alive 2", "fleet_jobs_completed 1",
		`worker_jobs_completed{worker="w`, "idylld_jobs_completed 1"} {
		if !strings.Contains(text1, want) {
			t.Fatalf("rollup missing %q:\n%s", want, text1)
		}
	}
	text2, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lineOrder(text1) != lineOrder(text2) {
		t.Fatalf("rollup line order unstable:\n%s\nvs\n%s", text1, text2)
	}
}

func TestCoordinatorJoinVersionGate(t *testing.T) {
	coord, c, _ := newTestFleet(t, Config{}, 1)
	base := c.Base()

	// Incompatible version: refused.
	var rejected bool
	err := postJSON(t, base+"/v1/fleet/join",
		JoinRequest{ID: "wX", URL: "http://127.0.0.1:1", Version: "idyll-fleet/2"}, nil)
	if err != nil {
		rejected = true
	}
	if !rejected {
		t.Fatal("incompatible join accepted")
	}

	// Compatible version: joins and learns the peer set.
	var resp JoinResponse
	if err := postJSON(t, base+"/v1/fleet/join",
		JoinRequest{ID: "w9", URL: "http://127.0.0.1:1", Version: VersionString}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Peers) < 2 {
		t.Fatalf("join response = %+v", resp)
	}
	if _, ok := coord.Members().Get("w9"); !ok {
		t.Fatal("joined worker missing from membership")
	}
}

func TestCoordinatorTenantQuotaSheds(t *testing.T) {
	// A gated runner keeps jobs queued so the quota engages.
	gate := make(chan struct{})
	w := &testWorker{id: "w1", filler: NewFiller("", nil)}
	srv, err := service.NewServer(service.Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ service.CanonicalSpec,
			_ func(int, int, string)) ([]byte, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []byte(`{}`), nil
		},
		FleetID:      "w1",
		FleetVersion: VersionString,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.srv = srv
	w.hs = httptest.NewServer(srv.Handler())
	t.Cleanup(func() { close(gate); w.hs.Close() })

	coord, err := NewCoordinator(Config{
		Workers:     []WorkerAddr{{ID: "w1", URL: w.hs.URL}},
		TenantQuota: 1,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
		hs.Close()
	})

	ctx := context.Background()
	greedy := service.NewClient(hs.URL,
		service.WithTenant("greedy"), service.WithRetry(service.NoRetry()))
	// The first submission occupies the single dispatcher; wait for it to
	// leave the queue so the second deterministically lands in the one
	// quota'd slot. The third must then shed 429.
	if _, err := greedy.Submit(ctx, cellSpec(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.queue.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never picked up the first job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := greedy.Submit(ctx, cellSpec(2)); err != nil {
		t.Fatal(err)
	}
	_, last := greedy.Submit(ctx, cellSpec(3))
	var ae *service.APIError
	if !errors.As(last, &ae) || ae.Status != 429 {
		t.Fatalf("third submission error = %v, want 429", last)
	}
	// A different tenant still gets in.
	modest := service.NewClient(hs.URL,
		service.WithTenant("modest"), service.WithRetry(service.NoRetry()))
	if _, err := modest.Submit(ctx, cellSpec(4)); err != nil {
		t.Fatalf("unrelated tenant shed: %v", err)
	}
}

// With zero routable workers and a LocalRunner configured, the coordinator
// runs the job itself (degraded mode) instead of failing it, and counts the
// fallback in /metrics.
func TestCoordinatorDegradedLocalRun(t *testing.T) {
	var local atomic.Int64
	coord, err := NewCoordinator(Config{
		ProbeInterval: time.Hour, // keep the probe loop out of the way
		LocalRunner: func(ctx context.Context, spec service.CanonicalSpec,
			progress func(int, int, string)) ([]byte, error) {
			local.Add(1)
			h, err := spec.Hash()
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf(`{"hash":%q}`, h)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
		hs.Close()
	})

	st, err := service.NewClient(hs.URL).SubmitAndWait(context.Background(), cellSpec(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != service.StatusDone {
		t.Fatalf("status = %s (%s), want done via degraded-local", st.Status, st.Error)
	}
	if local.Load() != 1 {
		t.Fatalf("local runner ran %d times, want 1", local.Load())
	}
	if got := coord.Server().Metrics().Counter("fleet_degraded_local_runs"); got != 1 {
		t.Fatalf("fleet_degraded_local_runs = %d, want 1", got)
	}
}

// Without a LocalRunner the same situation still fails cleanly.
func TestCoordinatorNoWorkersNoLocalRunnerFails(t *testing.T) {
	coord, err := NewCoordinator(Config{ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
		hs.Close()
	})
	st, err := service.NewClient(hs.URL).SubmitAndWait(context.Background(), cellSpec(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != service.StatusFailed || !strings.Contains(st.Error, "no routable worker") {
		t.Fatalf("status = %s (%s), want failed with no routable worker", st.Status, st.Error)
	}
}

// An open breaker keeps a suspect worker out of routing until the cooldown
// elapses, then nextTarget releases exactly one half-open trial dispatch,
// and a success returns the worker to the routable pool.
func TestCoordinatorHalfOpenTrialDispatch(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Workers:         []WorkerAddr{{ID: "w1", URL: "http://127.0.0.1:1"}},
		FailLimit:       10,
		ProbeInterval:   time.Hour,
		BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		coord.Drain(ctx)
	})

	coord.Members().MarkFailed("w1") // suspect, breaker open
	hash := mustHash(t, cellSpec(7))
	if tgt := coord.nextTarget(hash, map[string]bool{}); tgt != nil {
		t.Fatalf("open breaker received traffic: %s", tgt.ID)
	}
	if got := coord.Server().Metrics().Counter("fleet_breaker_trips"); got != 1 {
		t.Fatalf("fleet_breaker_trips = %d, want 1", got)
	}

	// Let the cooldown elapse via the breaker's clock seam.
	mb, _ := coord.Members().Get("w1")
	mb.Breaker.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	tgt := coord.nextTarget(hash, map[string]bool{})
	if tgt == nil || tgt.ID != "w1" {
		t.Fatalf("half-open trial not released: %v", tgt)
	}
	// The single trial is reserved; a second concurrent job gets nothing.
	if coord.nextTarget(hash, map[string]bool{}) != nil {
		t.Fatal("second concurrent half-open trial released")
	}
	coord.Members().MarkSucceeded("w1")
	if len(coord.Members().Routable()) != 1 {
		t.Fatal("worker not routable after successful trial")
	}
}

// End to end: a worker killed mid-fleet trips its breaker (visible in
// /metrics and /v1/fleet/status) while the job completes elsewhere.
func TestCoordinatorBreakerTripOnWorkerDeath(t *testing.T) {
	coord, c, workers := newTestFleet(t, Config{Replicas: 1}, 2)

	hash := mustHash(t, cellSpec(7))
	first := Rank(hash, []string{"w1", "w2"})[0]
	for _, w := range workers {
		if w.id == first {
			w.hs.CloseClientConnections()
			w.hs.Close()
		}
	}
	st, err := c.SubmitAndWait(context.Background(), cellSpec(7), nil)
	if err != nil || st.Status != service.StatusDone {
		t.Fatalf("job lost to worker death: %v %+v", err, st)
	}
	if got := coord.Server().Metrics().Counter("fleet_breaker_trips"); got < 1 {
		t.Fatalf("fleet_breaker_trips = %d, want >= 1", got)
	}
	for _, wk := range coord.Members().Snapshot() {
		if wk.ID == first && wk.Breaker == "closed" {
			t.Fatalf("dead worker's breaker still closed: %+v", wk)
		}
	}
}

// ---- helpers ----

func mustHash(t *testing.T, spec service.JobSpec) string {
	t.Helper()
	canon, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	h, err := canon.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func lineOrder(text string) string {
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		name, _, _ := strings.Cut(line, " ")
		names = append(names, name)
	}
	return strings.Join(names, "|")
}

func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postJSON(t *testing.T, url string, in, out any) error {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
