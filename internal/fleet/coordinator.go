package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"idyll/internal/fault"
	"idyll/internal/service"
)

// WorkerAddr statically names one worker at coordinator startup.
type WorkerAddr struct {
	ID  string
	URL string
}

// Config tunes a Coordinator. The zero value of every field has a usable
// default except Workers, which may be empty only if workers join
// dynamically via POST /v1/fleet/join.
type Config struct {
	// Workers is the static member list (idylld -coordinator -workers ...).
	Workers []WorkerAddr
	// TenantWeights maps tenant name → fair-share weight (default 1 each).
	TenantWeights map[string]float64
	// TenantQuota caps one tenant's queued jobs (0 = no cap).
	TenantQuota int
	// QueueDepth bounds the fair-share backlog (default 256).
	QueueDepth int
	// Concurrency bounds simultaneous dispatches to workers (default
	// 4·workers, minimum 4): the coordinator's own "worker pool" is a set
	// of relay loops, so it should oversubscribe the fleet slightly to
	// keep worker queues fed.
	Concurrency int
	// Replicas is the copyset size replication drives toward (default 2):
	// after a job computes, the result is pushed to the next-ranked
	// workers until this many members hold it. 1 disables replication.
	Replicas int
	// RouteAttempts bounds how many distinct workers one job may be
	// relayed to before failing (default 3, clamped to the fleet size at
	// dispatch time).
	RouteAttempts int
	// ProbeInterval is the heartbeat cadence (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health check (default 2s).
	ProbeTimeout time.Duration
	// FailLimit is how many consecutive probe/dispatch failures declare a
	// worker dead (default 3).
	FailLimit int
	// CacheEntries/CacheDir configure the coordinator's own result cache,
	// which answers repeat submissions without touching the fleet.
	CacheEntries int
	CacheDir     string
	// CopysetEntries bounds the copyset tracker (default 4096).
	CopysetEntries int
	// BreakerThreshold is how many consecutive infrastructure failures trip
	// a worker's circuit breaker open (default 1: the first failure both
	// trips the breaker and marks the worker suspect).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// single half-open trial dispatch is allowed (default 15s).
	BreakerCooldown time.Duration
	// LocalRunner, when non-nil, is the degraded-mode fallback: if zero
	// workers are routable, the coordinator runs the job itself instead of
	// failing it. Availability over throughput — a coordinator alone is a
	// slow fleet, not a dead one.
	LocalRunner service.RunFunc
	// Faults arms deterministic fault injection (internal/fault) on the
	// coordinator's own disk tiers and on worker dispatch clients (sites
	// "fleet.dispatch" and "fleet.dispatch.payload"). Nil disables.
	Faults *fault.Injector
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4 * len(c.Workers)
		if c.Concurrency < 4 {
			c.Concurrency = 4
		}
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.RouteAttempts <= 0 {
		c.RouteAttempts = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailLimit <= 0 {
		c.FailLimit = 3
	}
	if c.CopysetEntries <= 0 {
		c.CopysetEntries = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator fronts a fleet of idylld workers behind the standard idylld
// API: clients submit jobs and fetch figures exactly as against a single
// daemon, and the coordinator routes each spec to a worker by rendezvous
// hashing over its content address, re-routing on worker failure. It is
// built ON a service.Server — the server's cache, singleflight, SSE
// streaming, drain sequence, and load shedding all apply unchanged; only
// the Runner (a dispatch relay instead of a simulation) and the queue (a
// weighted fair-share scheduler) differ.
type Coordinator struct {
	cfg      Config
	srv      *service.Server
	queue    *FairQueue
	members  *Membership
	copysets *Copysets

	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// NewCoordinator builds and starts a coordinator (heartbeat loop included).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		queue:     NewFairQueue(cfg.QueueDepth, cfg.TenantQuota, cfg.TenantWeights),
		copysets:  NewCopysets(cfg.CopysetEntries),
		probeDone: make(chan struct{}),
	}
	c.members = NewMembership(cfg.FailLimit, cfg.ProbeTimeout,
		func(id string) { c.copysets.DropWorker(id) }, cfg.Logf)
	c.members.SetBreakerConfig(cfg.BreakerThreshold, cfg.BreakerCooldown)
	c.members.SetFaults(cfg.Faults)
	// The closure runs only from MarkFailed, which nothing calls before
	// NewServer below assigns c.srv.
	c.members.OnTrip(func(id string) {
		c.srv.Metrics().Inc("fleet_breaker_trips", 1)
		c.srv.Metrics().IncLabeled("fleet_breaker_trips_worker", "worker", id, 1)
	})
	for _, w := range cfg.Workers {
		if w.ID == "" || w.URL == "" {
			return nil, fmt.Errorf("fleet: worker needs both id and url, got %+v", w)
		}
		c.members.Add(w.ID, strings.TrimRight(w.URL, "/"))
	}

	srv, err := service.NewServer(service.Config{
		Workers:      cfg.Concurrency,
		Queue:        c.queue,
		Runner:       c.dispatch,
		CacheEntries: cfg.CacheEntries,
		CacheDir:     cfg.CacheDir,
		FleetID:      "coordinator",
		FleetVersion: VersionString,
		Faults:       cfg.Faults,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	c.srv = srv

	ctx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	go func() {
		defer close(c.probeDone)
		c.members.Run(ctx, cfg.ProbeInterval)
	}()
	return c, nil
}

// Members exposes the membership table (for tests and embedding).
func (c *Coordinator) Members() *Membership { return c.members }

// Copysets exposes the copyset tracker (for tests and embedding).
func (c *Coordinator) Copysets() *Copysets { return c.copysets }

// Server exposes the underlying service server.
func (c *Coordinator) Server() *service.Server { return c.srv }

// Drain stops the heartbeat loop and drains the underlying server: queued
// and in-flight dispatches finish (bounded by ctx), new submissions shed
// with 503.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.probeCancel()
	<-c.probeDone
	return c.srv.Drain(ctx)
}

// hintURLs maps copyset holder IDs to base URLs, skipping dead members and
// optionally one excluded worker (the dispatch target itself — hinting a
// worker at its own cache would be a pointless self-probe).
func (c *Coordinator) hintURLs(hash, excludeID string) []string {
	hintable := make(map[string]string) // id → URL
	for _, mb := range c.members.Hintable() {
		hintable[mb.ID] = mb.URL
	}
	var urls []string
	for _, id := range c.copysets.Holders(hash) {
		if id == excludeID {
			continue
		}
		if url, ok := hintable[id]; ok {
			urls = append(urls, url)
		}
	}
	return urls
}

// peerURLs lists every non-dead member's base URL — the X-Idyll-Peers
// payload that teaches workers the current fleet shape.
func (c *Coordinator) peerURLs() []string {
	hintable := c.members.Hintable()
	urls := make([]string, 0, len(hintable))
	for _, mb := range hintable {
		urls = append(urls, mb.URL)
	}
	return urls
}

// dispatch is the coordinator's Runner: relay one canonical spec to the
// rendezvous-ranked worker, falling down the ranking on worker failure.
// Job idempotency (content addressing) makes blind re-submission to the
// next worker safe: the worst case is a duplicate computation, never a
// duplicate effect.
func (c *Coordinator) dispatch(ctx context.Context, spec service.CanonicalSpec, progress func(done, total int, cell string)) ([]byte, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	wire, err := spec.Wire()
	if err != nil {
		return nil, err
	}
	onEvent := func(ev service.Event) {
		if ev.Type == "progress" && progress != nil {
			progress(ev.Done, ev.Total, ev.Cell)
		}
	}

	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.RouteAttempts; attempt++ {
		target := c.nextTarget(hash, tried)
		if target == nil {
			break
		}
		tried[target.ID] = true

		opts := service.SubmitOpts{
			Hints: c.hintURLs(hash, target.ID),
			Peers: c.peerURLs(),
		}
		st, err := target.Dispatch.SubmitAndWaitWith(ctx, wire, opts, onEvent)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("worker %s: %w", target.ID, err)
			c.members.MarkFailed(target.ID)
			c.srv.Metrics().Inc("fleet_reroutes", 1)
			c.cfg.Logf("fleet: job %s on %s failed (%v), re-routing", hash[:12], target.ID, err)
			continue
		}
		// The worker answered over HTTP, whatever the job's outcome:
		// infrastructure is fine, so its breaker closes and a suspect
		// member returns to the routable pool.
		c.members.MarkSucceeded(target.ID)
		switch st.Status {
		case service.StatusDone:
			c.copysets.Add(hash, target.ID)
			c.srv.Metrics().IncLabeled("fleet_jobs_dispatched", "worker", target.ID, 1)
			if st.Source != "" {
				c.srv.Metrics().Inc("fleet_results_"+st.Source, 1)
			}
			c.replicate(ctx, hash, target)
			return st.Result, nil
		case service.StatusFailed:
			// Deterministic failure: every worker would fail identically,
			// so re-routing only multiplies the waste.
			return nil, errors.New(st.Error)
		default:
			// Cancelled worker-side (force-cancelled drain, worker-local
			// timeout): the job may succeed elsewhere.
			lastErr = fmt.Errorf("worker %s: job %s", target.ID, st.Status)
			c.srv.Metrics().Inc("fleet_reroutes", 1)
			c.cfg.Logf("fleet: job %s %s on %s, re-routing", hash[:12], st.Status, target.ID)
			continue
		}
	}
	// Degraded mode: with zero routable workers and an embedded runner, the
	// coordinator computes the job itself. Content addressing makes this
	// safe — a locally computed result is byte-identical to a worker's.
	if c.cfg.LocalRunner != nil && len(c.members.Routable()) == 0 {
		c.srv.Metrics().Inc("fleet_degraded_local_runs", 1)
		c.cfg.Logf("fleet: no routable worker for job %s, running degraded-local", hash[:12])
		return c.cfg.LocalRunner(ctx, spec, progress)
	}
	if lastErr == nil {
		lastErr = errors.New("no routable worker")
	}
	return nil, fmt.Errorf("fleet: job %s exhausted routing: %w", hash[:12], lastErr)
}

// nextTarget picks the highest-ranked routable worker not yet tried.
func (c *Coordinator) nextTarget(hash string, tried map[string]bool) *Member {
	routable := c.members.Routable()
	ids := make([]string, len(routable))
	byID := make(map[string]*Member, len(routable))
	for i, mb := range routable {
		ids[i] = mb.ID
		byID[mb.ID] = mb
	}
	for _, id := range Rank(hash, ids) {
		if !tried[id] {
			return byID[id]
		}
	}
	// No alive member can take the job: offer it to a suspect member whose
	// breaker cooldown has elapsed, as that breaker's single half-open
	// trial. The dispatch outcome lands in MarkSucceeded/MarkFailed, which
	// close or re-open the breaker.
	for _, mb := range c.members.HalfOpenCandidates() {
		if !tried[mb.ID] && mb.Breaker.TryProbe() {
			c.cfg.Logf("fleet: half-open trial dispatch to %s for %s", mb.ID, hash[:12])
			return mb
		}
	}
	return nil
}

// replicate pushes the freshly computed result down the rendezvous ranking
// until Replicas members hold it, so the bytes survive the computing
// worker's death. Synchronous and best-effort: a failed push costs
// availability, not correctness.
func (c *Coordinator) replicate(ctx context.Context, hash string, computed *Member) {
	if c.cfg.Replicas < 2 {
		return
	}
	routable := c.members.Routable()
	ids := make([]string, len(routable))
	byID := make(map[string]*Member, len(routable))
	for i, mb := range routable {
		ids[i] = mb.ID
		byID[mb.ID] = mb
	}
	for _, id := range Rank(hash, ids) {
		holders := c.copysets.Holders(hash)
		if len(holders) >= c.cfg.Replicas {
			return
		}
		already := false
		for _, h := range holders {
			if h == id {
				already = true
				break
			}
		}
		if already {
			continue
		}
		mb := byID[id]
		filled, present, err := mb.Dispatch.FillCache(ctx, hash, []string{computed.URL})
		if err != nil {
			c.cfg.Logf("fleet: replicate %s to %s: %v", hash[:12], id, err)
			continue
		}
		if filled || present {
			c.copysets.Add(hash, id)
			if filled {
				c.srv.Metrics().Inc("fleet_replications", 1)
			}
		}
	}
}

// ---- HTTP ----

// Handler returns the coordinator API: the full idylld surface (jobs,
// figures, events, healthz) plus the fleet endpoints, with /metrics
// replaced by the fleet-wide rollup.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", c.srv.Handler())
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/fleet/status", c.handleStatus)
	mux.HandleFunc("POST /v1/fleet/join", c.handleJoin)
	return mux
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatusResponse{
		Version:    VersionString,
		Workers:    c.members.Snapshot(),
		Copysets:   c.copysets.Len(),
		QueueDepth: c.queue.Len(),
	})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.ID == "" || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "join needs id and url"})
		return
	}
	if err := CheckVersion(req.Version); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	c.members.Add(req.ID, strings.TrimRight(req.URL, "/"))
	writeJSON(w, http.StatusOK, JoinResponse{OK: true, Peers: c.peerURLs()})
}

// handleMetrics is the fleet-wide rollup: the coordinator's own counters
// (idylld_ prefix, unchanged), fleet-level aggregates (fleet_ prefix:
// membership gauges plus every unlabeled worker counter summed across the
// fleet), and the per-worker breakdown (worker_ prefix with a worker
// label). Each section is rendered with the shared key-sorted renderer, so
// the whole document's line order is a pure function of the key set.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fleetVals := make(map[string]string)
	var alive, suspect, draining, dead, breakersOpen int
	for _, wk := range c.members.Snapshot() {
		switch wk.State {
		case "alive":
			alive++
		case "suspect":
			suspect++
		case "draining":
			draining++
		case "dead":
			dead++
		}
		if wk.Breaker == "open" || wk.Breaker == "half-open" {
			breakersOpen++
		}
	}
	fleetVals["workers_alive"] = fmt.Sprintf("%d", alive)
	fleetVals["workers_suspect"] = fmt.Sprintf("%d", suspect)
	fleetVals["workers_draining"] = fmt.Sprintf("%d", draining)
	fleetVals["workers_dead"] = fmt.Sprintf("%d", dead)
	fleetVals["breakers_open"] = fmt.Sprintf("%d", breakersOpen)
	fleetVals["copysets_tracked"] = fmt.Sprintf("%d", c.copysets.Len())

	workerVals := make(map[string]string)
	sums := make(map[string]float64)
	for _, mb := range c.members.Hintable() {
		sctx, cancel := context.WithTimeout(r.Context(), c.cfg.ProbeTimeout)
		text, err := mb.Probe.MetricsText(sctx)
		cancel()
		if err != nil {
			workerVals[service.LabelKey("scrape_error", "worker", mb.ID)] = "1"
			continue
		}
		parsed, err := service.ParseMetrics(text)
		if err != nil {
			workerVals[service.LabelKey("scrape_error", "worker", mb.ID)] = "1"
			continue
		}
		for name, v := range parsed {
			base := strings.TrimPrefix(name, "idylld_")
			if strings.Contains(base, "{") {
				// Already-labeled worker lines (per-tenant counters) are
				// not re-labeled; the coordinator's own tenant counters
				// carry the fleet-level tenant breakdown.
				continue
			}
			workerVals[service.LabelKey(base, "worker", mb.ID)] = fmt.Sprintf("%g", v)
			sums[base] += v
		}
	}
	for name, v := range sums {
		fleetVals[name] = fmt.Sprintf("%g", v)
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	var b strings.Builder
	b.WriteString(c.srv.Metrics().Render(map[string]int{
		"queue_depth": c.queue.Len(),
	}))
	b.WriteString(service.RenderMetricLines("fleet_", fleetVals))
	b.WriteString(service.RenderMetricLines("worker_", workerVals))
	_, _ = w.Write([]byte(b.String()))
}
