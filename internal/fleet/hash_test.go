package fleet

import (
	"fmt"
	"testing"
)

func TestRankDeterministic(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	first := Rank("somehash", ids)
	second := Rank("somehash", []string{"w4", "w2", "w1", "w3"}) // order-independent
	if len(first) != 4 {
		t.Fatalf("rank dropped ids: %v", first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("ranking depends on input order: %v vs %v", first, second)
		}
	}
}

func TestRankMinimalDisruption(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	const keys = 200
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		before := Rank(key, ids)[0]
		// Remove a worker that was NOT the key's first choice: the key's
		// routing must not move.
		var without []string
		removed := ""
		for _, id := range ids {
			if removed == "" && id != before {
				removed = id
				continue
			}
			without = append(without, id)
		}
		after := Rank(key, without)[0]
		if after != before {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d keys re-routed despite their preferred worker surviving", moved, keys)
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	counts := map[string]int{}
	for k := 0; k < 300; k++ {
		counts[Rank(fmt.Sprintf("key-%d", k), ids)[0]]++
	}
	for _, id := range ids {
		if counts[id] < 50 {
			t.Fatalf("badly skewed distribution: %v", counts)
		}
	}
}

func TestRankFailoverOrderExcludesFirst(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	order := Rank("h", ids)
	if order[0] == order[1] || order[1] == order[2] || order[0] == order[2] {
		t.Fatalf("ranking repeated an id: %v", order)
	}
}
