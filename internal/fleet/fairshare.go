package fleet

import (
	"context"
	"sync"

	"idyll/internal/service"
)

// FairQueue is a weighted fair-share job backlog implementing
// service.JobQueue — the scheduler the coordinator injects in place of the
// default FIFO. It runs stride scheduling over per-tenant FIFOs: each
// tenant carries a virtual time that advances by 1/weight per dispatched
// job, and Pop always serves the non-empty tenant with the smallest virtual
// time (ties break toward the lexically smaller tenant name, keeping the
// schedule deterministic). A tenant with weight 3 therefore gets three
// dispatch slots for every one a weight-1 tenant gets while both have work
// queued, and an idle tenant's unused share is redistributed rather than
// banked: on re-activation its virtual time is clamped forward to the
// queue's clock, so it cannot starve the others with accumulated credit.
//
// Admission control is two-level, shedding with errors that unwrap to
// service.ErrQueueFull (HTTP 429): a global depth bound, and an optional
// per-tenant quota that stops one tenant from occupying the whole backlog
// no matter its weight.
type FairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	max    int
	quota  int // per-tenant queued cap; 0 = none
	weight map[string]float64
	ten    map[string]*tenantQ
	size   int
	clock  float64 // virtual time of the most recent dispatch
	closed bool
}

type tenantQ struct {
	items []any
	vtime float64
}

// NewFairQueue returns a fair-share backlog holding at most max items
// (minimum 1) with at most quota items per tenant (0 disables the quota).
// weights maps tenant name → relative share; missing or non-positive
// entries default to 1.
func NewFairQueue(max, quota int, weights map[string]float64) *FairQueue {
	if max < 1 {
		max = 1
	}
	q := &FairQueue{
		max:    max,
		quota:  quota,
		weight: weights,
		ten:    make(map[string]*tenantQ),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *FairQueue) weightOf(tenant string) float64 {
	if w, ok := q.weight[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Push admits one item under tenant, shedding when the queue or the
// tenant's quota is full.
func (q *FairQueue) Push(tenant string, item any) error {
	if tenant == "" {
		tenant = service.DefaultTenant
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return service.ErrQueueFull
	}
	if q.size >= q.max {
		return service.ErrQueueFull
	}
	tq := q.ten[tenant]
	if tq == nil {
		tq = &tenantQ{}
		q.ten[tenant] = tq
	}
	if q.quota > 0 && len(tq.items) >= q.quota {
		return &service.TenantQuotaError{Tenant: tenant, Queued: len(tq.items)}
	}
	if len(tq.items) == 0 && tq.vtime < q.clock {
		// Re-activating after idleness: no banked credit.
		tq.vtime = q.clock
	}
	tq.items = append(tq.items, item)
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks for the next item under the fair-share schedule.
func (q *FairQueue) Pop(ctx context.Context) (any, bool) {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size > 0 {
			name, tq := q.pickLocked()
			item := tq.items[0]
			tq.items = tq.items[1:]
			q.size--
			q.clock = tq.vtime
			tq.vtime += 1 / q.weightOf(name)
			return item, true
		}
		if q.closed || ctx.Err() != nil {
			return nil, false
		}
		q.cond.Wait()
	}
}

// pickLocked selects the non-empty tenant with the smallest virtual time.
func (q *FairQueue) pickLocked() (string, *tenantQ) {
	var bestName string
	var best *tenantQ
	for name, tq := range q.ten {
		if len(tq.items) == 0 {
			continue
		}
		if best == nil || tq.vtime < best.vtime ||
			(tq.vtime == best.vtime && name < bestName) {
			bestName, best = name, tq
		}
	}
	return bestName, best
}

// Close stops admissions; queued items continue to drain through Pop.
func (q *FairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len reports the total queued item count.
func (q *FairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
