package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// Draining a coordinator while probes are in flight against a slow worker
// must not leave goroutines behind: the probe loop, the dispatch workers,
// and the gc loop all stop. Run with -race in CI.
func TestCoordinatorDrainMidProbeLeaksNoGoroutines(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(100 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","worker_id":"w1","fleet_version":"` + VersionString + `"}`))
	}))
	defer slow.Close()

	runtime.GC()
	before := runtime.NumGoroutine()

	coord, err := NewCoordinator(Config{
		Workers:       []WorkerAddr{{ID: "w1", URL: slow.URL}},
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one probe be mid-flight against the slow healthz.
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	slow.CloseClientConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
