package fleet

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"idyll/internal/fault"
	"idyll/internal/service"
)

// Filler is the worker-side peer cache client: it implements the
// service.Config hooks (PeerFill, CkptFill, OnPeers) that let a worker pull
// a result or a warmup checkpoint from a peer before recomputing it. The
// peer list is dynamic — the coordinator attaches X-Idyll-Peers to every
// dispatch, so workers started on ephemeral ports learn their peers from
// traffic, and a static -peers flag seeds the list for coordinator-less
// setups.
type Filler struct {
	mu      sync.Mutex
	self    string // this worker's own base URL, excluded from every probe
	peers   []string
	clients map[string]*service.Client
	timeout time.Duration
	faults  *fault.Injector
	metrics interface{ Inc(string, uint64) }
}

// NewFiller returns a filler for the worker reachable at self (may be
// empty when unknown), seeded with the given static peer URLs.
func NewFiller(self string, peers []string) *Filler {
	f := &Filler{
		self:    self,
		clients: make(map[string]*service.Client),
		timeout: 5 * time.Second,
	}
	f.UpdatePeers(peers)
	return f
}

// UpdatePeers replaces the peer list (the OnPeers hook). Self and
// duplicates are filtered; order is normalized so fills probe peers
// deterministically.
func (f *Filler) UpdatePeers(peers []string) {
	seen := make(map[string]bool)
	var next []string
	for _, p := range peers {
		if p == "" || p == f.self || seen[p] {
			continue
		}
		seen[p] = true
		next = append(next, p)
	}
	sort.Strings(next)
	f.mu.Lock()
	f.peers = next
	f.mu.Unlock()
}

// SetFaults arms deterministic fault injection (sites "peer.fill" and
// "peer.fill.payload") on peer clients created after the call; call it
// before the first fill.
func (f *Filler) SetFaults(inj *fault.Injector) {
	f.mu.Lock()
	f.faults = inj
	f.mu.Unlock()
}

// SetMetrics wires the verify-failure counters (peer_verify_failures,
// ckpt_peer_verify_failures) into the worker's metric set.
func (f *Filler) SetMetrics(m interface{ Inc(string, uint64) }) {
	f.mu.Lock()
	f.metrics = m
	f.mu.Unlock()
}

func (f *Filler) inc(name string) {
	f.mu.Lock()
	m := f.metrics
	f.mu.Unlock()
	if m != nil {
		m.Inc(name, 1)
	}
}

// Peers returns the current peer list.
func (f *Filler) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.peers...)
}

// client returns a cached non-retrying client for url. Fills never retry
// one peer — a miss or error falls through to the next candidate.
func (f *Filler) client(url string) *service.Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.clients[url]
	if !ok {
		opts := []service.ClientOption{service.WithRetry(service.NoRetry())}
		if f.faults != nil {
			opts = append(opts, service.WithFaults(f.faults, "peer.fill"))
		}
		c = service.NewClient(url, opts...)
		f.clients[url] = c
	}
	return c
}

// ResultFill is the service.Config.PeerFill hook: fetch the result bytes
// for hash from the hinted peers (copyset hint), first hit wins.
func (f *Filler) ResultFill(ctx context.Context, hash string, hints []string) ([]byte, bool) {
	for _, url := range hints {
		if url == "" || url == f.self {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, f.timeout)
		data, ok, err := f.client(url).CacheGet(pctx, hash)
		cancel()
		if err == nil && ok {
			return data, true
		}
		// A fill whose bytes fail checksum verification is dropped like a
		// miss — the next candidate (or a recompute) supplies good bytes.
		var ce *service.ChecksumError
		if errors.As(err, &ce) {
			f.inc("peer_verify_failures")
		}
	}
	return nil, false
}

// CkptFill is the service.Config.CkptFill hook: fetch a warmup checkpoint
// from any current peer. Unlike results, checkpoints carry no copyset
// hints (they are produced as a side effect of jobs, invisible to the
// coordinator), so the filler asks every peer in order.
func (f *Filler) CkptFill(key string) ([]byte, bool) {
	for _, url := range f.Peers() {
		ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
		data, ok, err := f.client(url).CkptGet(ctx, key)
		cancel()
		if err == nil && ok {
			return data, true
		}
		var ce *service.ChecksumError
		if errors.As(err, &ce) {
			f.inc("ckpt_peer_verify_failures")
		}
	}
	return nil, false
}
