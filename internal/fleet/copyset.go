package fleet

import (
	"container/list"
	"sync"
)

// Copysets tracks which workers are believed to hold the result for each
// spec hash — the coordinator's memory of where bytes live, maintained from
// dispatch outcomes and replication pushes. Hints derived from it ride on
// X-Idyll-Copyset so a worker seeing a hash for the first time can pull the
// result from a peer instead of recomputing. The tracker is advisory by
// design: a stale entry costs one failed peer probe before the worker falls
// back to computing, so bounded LRU truncation is safe.
type Copysets struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently touched
}

type csEntry struct {
	hash    string
	holders []string // worker IDs, insertion order
}

// NewCopysets returns a tracker remembering at most maxEntries hashes
// (minimum 1).
func NewCopysets(maxEntries int) *Copysets {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Copysets{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Add records that worker id holds the result for hash.
func (c *Copysets) Add(hash, id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		e := el.Value.(*csEntry)
		for _, h := range e.holders {
			if h == id {
				c.order.MoveToFront(el)
				return
			}
		}
		e.holders = append(e.holders, id)
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&csEntry{hash: hash, holders: []string{id}})
	for c.order.Len() > c.max {
		last := c.order.Back()
		delete(c.entries, last.Value.(*csEntry).hash)
		c.order.Remove(last)
	}
}

// Holders returns the worker IDs believed to hold hash, in insertion order
// (the computing worker first, replicas after).
func (c *Copysets) Holders(hash string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return append([]string(nil), el.Value.(*csEntry).holders...)
}

// DropWorker removes a dead worker from every copyset — its cache is gone,
// so hinting peers at it would only waste their fill probes.
func (c *Copysets) DropWorker(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var empty []*list.Element
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*csEntry)
		kept := e.holders[:0]
		for _, h := range e.holders {
			if h != id {
				kept = append(kept, h)
			}
		}
		e.holders = kept
		if len(kept) == 0 {
			empty = append(empty, el)
		}
	}
	for _, el := range empty {
		delete(c.entries, el.Value.(*csEntry).hash)
		c.order.Remove(el)
	}
}

// Len reports how many hashes are tracked.
func (c *Copysets) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
