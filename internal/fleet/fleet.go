// Package fleet shards the idylld simulation service across machines: a
// coordinator routes content-addressed job specs to workers by rendezvous
// hashing, tracks which workers hold which results (copysets), and lets a
// worker that misses its cache pull the bytes from a peer instead of
// recomputing. The whole design leans on one property the rest of the repo
// machine-checks: results are byte-identical for a given spec hash, so any
// peer's bytes for a hash are THE bytes, and replication is merely an
// availability optimization, never a correctness question.
//
// The layering keeps internal/service fleet-agnostic: service exposes
// generic extension points (JobQueue, PeerFill/CkptFill hooks, the
// X-Idyll-* headers) and fleet plugs into them. The coordinator itself IS a
// service.Server — it reuses the cache, singleflight, SSE streaming, drain,
// and shedding machinery, with a dispatching Runner and a weighted
// fair-share queue injected.
package fleet

import (
	"fmt"
	"strings"
)

// VersionString identifies the fleet wire protocol. Versioning rules
// (docs/API.md): the major number after the slash must match exactly for a
// coordinator and worker to interoperate; additions within a major version
// must be backward compatible (new headers and response fields are ignored
// by older peers, never required).
const VersionString = "idyll-fleet/1"

// CheckVersion reports whether a peer advertising version v can
// interoperate with this build. An empty v is rejected: fleet members must
// be started with an explicit fleet identity (idylld -worker).
func CheckVersion(v string) error {
	if v == VersionString || strings.HasPrefix(v, VersionString+".") {
		return nil
	}
	return fmt.Errorf("fleet: incompatible protocol %q, need %s", v, VersionString)
}

// JoinRequest is the body of POST /v1/fleet/join: a worker announcing
// itself to the coordinator.
type JoinRequest struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Version string `json:"version"`
}

// JoinResponse acknowledges a join and teaches the newcomer the current
// peer set.
type JoinResponse struct {
	OK    bool     `json:"ok"`
	Peers []string `json:"peers"`
}

// WorkerInfo is one fleet member's externally visible state
// (GET /v1/fleet/status).
type WorkerInfo struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	State   string `json:"state"`
	Fails   int    `json:"fails,omitempty"`
	Breaker string `json:"breaker,omitempty"`
}

// StatusResponse is the GET /v1/fleet/status payload.
type StatusResponse struct {
	Version    string       `json:"version"`
	Workers    []WorkerInfo `json:"workers"`
	Copysets   int          `json:"copysets"`
	QueueDepth int          `json:"queue_depth"`
}
