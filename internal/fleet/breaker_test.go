package fleet

import (
	"testing"
	"time"
)

// Full breaker lifecycle with an injected clock: trip at the threshold,
// refuse traffic while open, release exactly one half-open trial per
// cooldown expiry, and distinguish a failed trial (re-open, no new trip)
// from a successful one (close, streak reset).
func TestBreakerTripHalfOpenRecovery(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker is not closed")
	}
	if b.Fail() {
		t.Fatal("tripped below threshold")
	}
	if !b.Fail() {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() || b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("after trip: allow=%v state=%s trips=%d", b.Allow(), b.State(), b.Trips())
	}

	// Cooldown gates the half-open trial, and exactly one is released.
	if b.TryProbe() {
		t.Fatal("trial released before cooldown")
	}
	now = now.Add(time.Minute)
	if !b.TryProbe() {
		t.Fatal("trial refused after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.TryProbe() {
		t.Fatal("second concurrent trial released")
	}

	// A failed trial re-opens the breaker without counting a new trip.
	if b.Fail() {
		t.Fatal("failed trial reported as a fresh trip")
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("after failed trial: state=%s trips=%d", b.State(), b.Trips())
	}
	// ... and restarts the cooldown from the failure.
	if b.TryProbe() {
		t.Fatal("trial released without a fresh cooldown")
	}
	now = now.Add(time.Minute)
	if !b.TryProbe() {
		t.Fatal("trial refused after second cooldown")
	}

	// A successful trial closes the breaker and resets the streak: the next
	// single failure (threshold 2) must not trip it.
	b.Success()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("success did not close the breaker")
	}
	if b.Fail() {
		t.Fatal("tripped on first failure after recovery")
	}
}

func TestBreakerDefaultsClamp(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != 1 || b.cooldown != 15*time.Second {
		t.Fatalf("defaults: threshold=%d cooldown=%s", b.threshold, b.cooldown)
	}
	if !b.Fail() {
		t.Fatal("threshold 1 did not trip on the first failure")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Fatalf("State(%d) = %q, want %q", state, got, want)
		}
	}
}
