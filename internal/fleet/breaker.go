package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive infrastructure failures tripped the breaker;
	// no dispatches until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one trial dispatch
	// has been reserved; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-worker circuit breaker over *infrastructure* failures
// (connection refused, relay errors, probe timeouts — never deterministic
// job failures, which re-routing would only duplicate). It trips open after
// threshold consecutive failures; after cooldown, TryProbe releases a single
// half-open trial dispatch whose outcome decides between closing and
// re-opening. Safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	state    BreakerState
	consec   int // consecutive failures while closed
	openedAt time.Time
	trips    uint64
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures (minimum 1) and staying open for cooldown (default 15s) before a
// half-open trial.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Fail records one infrastructure failure and reports whether this call
// tripped the breaker open. A failed half-open trial re-opens the breaker
// (restarting the cooldown) without counting as a new trip.
func (b *Breaker) Fail() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
	case BreakerClosed:
		if b.consec >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
			return true
		}
	}
	return false
}

// Success records a successful dispatch or probe: the breaker closes and the
// failure streak resets, whatever state it was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.consec = 0
	b.state = BreakerClosed
	b.mu.Unlock()
}

// TryProbe reserves the single half-open trial: it returns true exactly once
// per cooldown expiry, moving the breaker open → half-open. Callers that get
// true must follow with a dispatch whose outcome lands in Fail or Success.
func (b *Breaker) TryProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// Allow reports whether normal (non-trial) traffic may flow.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped closed → open.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
