package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"idyll/internal/service"
)

func TestFairQueueWeightedShares(t *testing.T) {
	q := NewFairQueue(100, 0, map[string]float64{"alice": 3, "bob": 1})
	for i := 0; i < 20; i++ {
		if err := q.Push("alice", "a"); err != nil {
			t.Fatal(err)
		}
		if err := q.Push("bob", "b"); err != nil {
			t.Fatal(err)
		}
	}
	// While both tenants have work queued, a 3:1 weight ratio must yield a
	// 3:1 dispatch ratio over any window that is a multiple of 4.
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		item, ok := q.Pop(context.Background())
		if !ok {
			t.Fatal("queue closed early")
		}
		counts[item.(string)]++
	}
	if counts["a"] != 12 || counts["b"] != 4 {
		t.Fatalf("dispatch split = %v, want a:12 b:4", counts)
	}
}

func TestFairQueueEqualWeightsAlternate(t *testing.T) {
	q := NewFairQueue(100, 0, nil)
	for i := 0; i < 6; i++ {
		q.Push("x", "x")
		q.Push("y", "y")
	}
	var seq string
	for i := 0; i < 12; i++ {
		item, _ := q.Pop(context.Background())
		seq += item.(string)
	}
	if seq != "xyxyxyxyxyxy" {
		t.Fatalf("equal-weight schedule = %q, want strict alternation", seq)
	}
}

func TestFairQueueNoBankedCredit(t *testing.T) {
	q := NewFairQueue(100, 0, nil)
	// bob works alone for a while, advancing his virtual time.
	for i := 0; i < 8; i++ {
		q.Push("bob", "b")
		q.Pop(context.Background())
	}
	// alice arrives late: she must NOT get 8 consecutive slots of "credit"
	// for her idle period — her vtime clamps forward to the queue clock.
	for i := 0; i < 4; i++ {
		q.Push("alice", "a")
		q.Push("bob", "b")
	}
	var seq string
	for i := 0; i < 8; i++ {
		item, _ := q.Pop(context.Background())
		seq += item.(string)
	}
	// alice's clamped vtime lands mid-stride, giving her exactly one extra
	// leading slot before strict alternation (the trailing b drains bob's
	// last item after alice's four are spent) — crucially NOT an 8-slot
	// burst of banked credit.
	if seq != "aabababb" {
		t.Fatalf("late-arriving tenant schedule = %q, want aabababb", seq)
	}
}

func TestFairQueueGlobalBoundSheds(t *testing.T) {
	q := NewFairQueue(2, 0, nil)
	q.Push("t", 1)
	q.Push("t", 2)
	err := q.Push("t", 3)
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestFairQueueTenantQuotaSheds(t *testing.T) {
	q := NewFairQueue(100, 2, nil)
	q.Push("greedy", 1)
	q.Push("greedy", 2)
	err := q.Push("greedy", 3)
	var qe *service.TenantQuotaError
	if !errors.As(err, &qe) || qe.Tenant != "greedy" {
		t.Fatalf("err = %v, want TenantQuotaError for greedy", err)
	}
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatal("quota error must unwrap to ErrQueueFull (429 mapping)")
	}
	// Other tenants are unaffected by one tenant's quota.
	if err := q.Push("modest", 1); err != nil {
		t.Fatalf("unrelated tenant shed: %v", err)
	}
}

func TestFairQueueCloseDrains(t *testing.T) {
	q := NewFairQueue(10, 0, nil)
	q.Push("t", "queued-before-close")
	q.Close()
	if err := q.Push("t", "late"); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("push after close = %v, want ErrQueueFull", err)
	}
	item, ok := q.Pop(context.Background())
	if !ok || item != "queued-before-close" {
		t.Fatalf("queued item lost on close: %v %v", item, ok)
	}
	if _, ok := q.Pop(context.Background()); ok {
		t.Fatal("Pop returned an item from a drained closed queue")
	}
}

func TestFairQueuePopRespectsContext(t *testing.T) {
	q := NewFairQueue(10, 0, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := q.Pop(ctx); ok {
		t.Fatal("Pop fabricated an item")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Pop ignored context cancellation")
	}
}
