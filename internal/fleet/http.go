package fleet

import (
	"encoding/json"
	"io"
	"net/http"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
