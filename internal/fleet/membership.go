package fleet

import (
	"context"
	"sort"
	"sync"
	"time"

	"idyll/internal/fault"
	"idyll/internal/service"
)

// State is a fleet member's liveness as seen by the coordinator.
type State int

const (
	// StateAlive workers receive new dispatches.
	StateAlive State = iota
	// StateSuspect workers missed at least one probe but are not yet
	// declared dead; they receive no new dispatches, but their caches are
	// still listed in copyset hints — the common case is a worker busy
	// enough to miss a probe deadline, not a dead one.
	StateSuspect
	// StateDraining workers answered a probe but report drain in progress
	// (SIGTERM received): no new dispatches, but their peer endpoints keep
	// serving, which is exactly what lets the rest of the fleet absorb
	// their cached results before the process exits.
	StateDraining
	// StateDead workers failed FailLimit consecutive probes: removed from
	// routing and from every copyset.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Member is one worker as tracked by Membership. The exported fields are
// immutable after Add; liveness lives behind the Membership lock.
type Member struct {
	ID  string
	URL string
	// Dispatch is the retrying client used to relay jobs.
	Dispatch *service.Client
	// Probe is the non-retrying client used for health checks and metric
	// scrapes — a prober supplies its own cadence and failure accounting.
	Probe *service.Client
	// Breaker is this worker's circuit breaker over infrastructure
	// failures; it has its own lock and may be used without Membership's.
	Breaker *Breaker

	state State
	fails int
}

// Membership tracks the worker set: static members given at construction
// plus dynamic joiners, probed for liveness on a fixed cadence. Safe for
// concurrent use.
type Membership struct {
	mu        sync.Mutex
	members   map[string]*Member
	failLimit int
	timeout   time.Duration
	onDeath   func(id string) // called outside the lock
	onTrip    func(id string) // called outside the lock when a breaker trips
	logf      func(format string, args ...any)

	brThreshold int             // breaker trip threshold for new members
	brCooldown  time.Duration   // breaker cooldown for new members
	faults      *fault.Injector // armed on each member's dispatch client
}

// NewMembership returns an empty member set. failLimit consecutive probe
// failures declare a worker dead (minimum 1); onDeath, when non-nil, fires
// once per death (and is how the coordinator scrubs copysets). probeTimeout
// bounds one health check.
func NewMembership(failLimit int, probeTimeout time.Duration, onDeath func(id string), logf func(string, ...any)) *Membership {
	if failLimit < 1 {
		failLimit = 3
	}
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Membership{
		members:     make(map[string]*Member),
		failLimit:   failLimit,
		timeout:     probeTimeout,
		onDeath:     onDeath,
		logf:        logf,
		brThreshold: 1,
	}
}

// SetBreakerConfig tunes the circuit breakers given to members added after
// the call (threshold minimum 1; cooldown default 15s). The default
// threshold of 1 matches the membership escalation — the first dispatch
// failure both trips the breaker and marks the worker suspect. Thresholds
// above 1 tolerate that many consecutive failures before either happens.
func (m *Membership) SetBreakerConfig(threshold int, cooldown time.Duration) {
	m.mu.Lock()
	m.brThreshold = threshold
	m.brCooldown = cooldown
	m.mu.Unlock()
}

// OnTrip installs the hook fired (outside the lock) each time a member's
// breaker trips open — the coordinator's breaker-trip metric feed.
func (m *Membership) OnTrip(fn func(id string)) {
	m.mu.Lock()
	m.onTrip = fn
	m.mu.Unlock()
}

// SetFaults arms deterministic fault injection (site "fleet.dispatch") on
// the dispatch clients of members added after the call.
func (m *Membership) SetFaults(inj *fault.Injector) {
	m.mu.Lock()
	m.faults = inj
	m.mu.Unlock()
}

// Add registers a worker (idempotent for an identical id+url; a re-join
// with a new URL replaces the member and resets its liveness — the worker
// restarted somewhere else).
func (m *Membership) Add(id, url string) *Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mb, ok := m.members[id]; ok && mb.URL == url {
		// Re-join of a known member: treat as a liveness signal.
		mb.state = StateAlive
		mb.fails = 0
		mb.Breaker.Success()
		return mb
	}
	dispatchOpts := []service.ClientOption{}
	if m.faults != nil {
		dispatchOpts = append(dispatchOpts, service.WithFaults(m.faults, "fleet.dispatch"))
	}
	mb := &Member{
		ID:       id,
		URL:      url,
		Dispatch: service.NewClient(url, dispatchOpts...),
		Probe:    service.NewClient(url, service.WithRetry(service.NoRetry())),
		Breaker:  NewBreaker(m.brThreshold, m.brCooldown),
	}
	m.members[id] = mb
	m.logf("fleet: member %s joined at %s", id, url)
	return mb
}

// Get returns the member with the given ID.
func (m *Membership) Get(id string) (*Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	return mb, ok
}

// Routable returns the members eligible for new dispatches (alive only),
// sorted by ID for deterministic iteration.
func (m *Membership) Routable() []*Member {
	return m.selectByState(func(s State) bool { return s == StateAlive })
}

// Hintable returns the members whose caches may be consulted for peer
// fills: everyone not declared dead. A draining or suspect worker's peer
// endpoints still serve.
func (m *Membership) Hintable() []*Member {
	return m.selectByState(func(s State) bool { return s != StateDead })
}

func (m *Membership) selectByState(keep func(State) bool) []*Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Member
	for _, mb := range m.members {
		if keep(mb.state) {
			out = append(out, mb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot reports every member's state for /v1/fleet/status.
func (m *Membership) Snapshot() []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerInfo, 0, len(m.members))
	for _, mb := range m.members {
		out = append(out, WorkerInfo{ID: mb.ID, URL: mb.URL, State: mb.state.String(), Fails: mb.fails, Breaker: mb.Breaker.State().String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkFailed records a dispatch-side failure (connection refused, relay
// error) as a probe failure would be — the fast path to Suspect/Dead when
// a worker dies between probes. The member's circuit breaker accumulates
// the same failure; with the default threshold of 1 the breaker trips the
// moment the member leaves Alive, and higher thresholds delay both (a
// member stays routable until its breaker trips).
func (m *Membership) MarkFailed(id string) {
	m.mu.Lock()
	mb, ok := m.members[id]
	var died, tripped bool
	if ok && mb.state != StateDead {
		mb.fails++
		tripped = mb.Breaker.Fail()
		if mb.fails >= m.failLimit {
			mb.state = StateDead
			died = true
		} else if mb.state == StateAlive && (tripped || mb.Breaker.State() != BreakerClosed) {
			mb.state = StateSuspect
		}
	}
	m.mu.Unlock()
	if tripped {
		m.logf("fleet: member %s breaker tripped open", id)
		if m.onTrip != nil {
			m.onTrip(id)
		}
	}
	if died {
		m.logf("fleet: member %s declared dead after %d failures", id, m.failLimit)
		if m.onDeath != nil {
			m.onDeath(id)
		}
	}
}

// MarkSucceeded records a successful dispatch: the failure streak resets,
// the breaker closes, and a suspect member returns to Alive — a worker that
// just answered a relay is not missing.
func (m *Membership) MarkSucceeded(id string) {
	m.mu.Lock()
	if mb, ok := m.members[id]; ok {
		mb.fails = 0
		mb.Breaker.Success()
		if mb.state == StateSuspect {
			mb.state = StateAlive
		}
	}
	m.mu.Unlock()
}

// HalfOpenCandidates returns the suspect members, sorted by ID — the pool a
// dispatcher may draw half-open trial dispatches from (via each member's
// Breaker.TryProbe) when no alive member can take a job. Draining and dead
// members are excluded: draining asked not to receive work, dead comes back
// only through a successful probe.
func (m *Membership) HalfOpenCandidates() []*Member {
	return m.selectByState(func(s State) bool { return s == StateSuspect })
}

// ProbeOnce health-checks every member once, sequentially (fleet sizes
// here are single digits; sequential probes keep the logic trivially
// deterministic). A successful probe resurrects even a Dead member — if a
// worker comes back with its disk caches intact, there is no reason to
// shun it.
func (m *Membership) ProbeOnce(ctx context.Context) {
	m.mu.Lock()
	ids := make([]string, 0, len(m.members))
	for id := range m.members {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)

	for _, id := range ids {
		mb, ok := m.Get(id)
		if !ok {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, m.timeout)
		h, err := mb.Probe.Healthz(pctx)
		cancel()
		if err == nil && h.FleetVersion != "" {
			err = CheckVersion(h.FleetVersion)
		}
		if err != nil {
			m.MarkFailed(id)
			continue
		}
		m.mu.Lock()
		if h.Draining {
			if mb.state != StateDraining {
				m.logf("fleet: member %s draining", id)
			}
			mb.state = StateDraining
		} else {
			mb.state = StateAlive
		}
		mb.fails = 0
		mb.Breaker.Success()
		m.mu.Unlock()
	}
}

// Run probes on a fixed cadence until ctx ends.
func (m *Membership) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.ProbeOnce(ctx)
		}
	}
}
