package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// healthStub serves a configurable /healthz.
type healthStub struct {
	draining atomic.Bool
	version  atomic.Value // string
	down     atomic.Bool
}

func (h *healthStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if h.down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		v, _ := h.version.Load().(string)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","draining":` +
			map[bool]string{true: "true", false: "false"}[h.draining.Load()] +
			`,"worker_id":"w","fleet_version":"` + v + `"}`))
	})
	return mux
}

func newMembers(t *testing.T, onDeath func(string)) (*Membership, *healthStub, string) {
	t.Helper()
	stub := &healthStub{}
	stub.version.Store(VersionString)
	srv := httptest.NewServer(stub.handler())
	t.Cleanup(srv.Close)
	m := NewMembership(3, time.Second, onDeath, nil)
	return m, stub, srv.URL
}

func TestProbeLifecycle(t *testing.T) {
	var died atomic.Value
	m, stub, url := newMembers(t, func(id string) { died.Store(id) })
	m.Add("w1", url)

	m.ProbeOnce(context.Background())
	if got := m.Snapshot()[0].State; got != "alive" {
		t.Fatalf("state after healthy probe = %s", got)
	}
	if len(m.Routable()) != 1 {
		t.Fatal("healthy worker not routable")
	}

	// Drain: no dispatches, still hintable.
	stub.draining.Store(true)
	m.ProbeOnce(context.Background())
	if got := m.Snapshot()[0].State; got != "draining" {
		t.Fatalf("state = %s, want draining", got)
	}
	if len(m.Routable()) != 0 || len(m.Hintable()) != 1 {
		t.Fatal("draining worker must be hintable but not routable")
	}

	// Death after three failed probes.
	stub.down.Store(true)
	for i := 0; i < 3; i++ {
		m.ProbeOnce(context.Background())
	}
	if got := m.Snapshot()[0].State; got != "dead" {
		t.Fatalf("state = %s, want dead", got)
	}
	if died.Load() != "w1" {
		t.Fatal("onDeath hook did not fire")
	}
	if len(m.Hintable()) != 0 {
		t.Fatal("dead worker still hintable")
	}

	// Resurrection: a worker back with intact disk caches rejoins routing.
	stub.down.Store(false)
	stub.draining.Store(false)
	m.ProbeOnce(context.Background())
	if got := m.Snapshot()[0].State; got != "alive" {
		t.Fatalf("state after recovery = %s, want alive", got)
	}
}

func TestProbeRejectsIncompatibleVersion(t *testing.T) {
	m, stub, url := newMembers(t, nil)
	stub.version.Store("idyll-fleet/2")
	m.Add("w1", url)
	for i := 0; i < 3; i++ {
		m.ProbeOnce(context.Background())
	}
	if got := m.Snapshot()[0].State; got != "dead" {
		t.Fatalf("incompatible worker state = %s, want dead", got)
	}
}

func TestMarkFailedEscalates(t *testing.T) {
	var died atomic.Value
	m := NewMembership(3, time.Second, func(id string) { died.Store(id) }, nil)
	m.Add("w1", "http://127.0.0.1:1") // never contacted
	m.MarkFailed("w1")
	if got := m.Snapshot()[0].State; got != "suspect" {
		t.Fatalf("state after one failure = %s, want suspect", got)
	}
	if len(m.Hintable()) != 1 {
		t.Fatal("suspect worker must stay hintable")
	}
	m.MarkFailed("w1")
	m.MarkFailed("w1")
	if got := m.Snapshot()[0].State; got != "dead" {
		t.Fatalf("state after three failures = %s, want dead", got)
	}
	if died.Load() != "w1" {
		t.Fatal("onDeath hook did not fire")
	}
	// Further failures on a dead member must not re-fire the hook.
	died.Store("")
	m.MarkFailed("w1")
	if died.Load() != "" {
		t.Fatal("onDeath re-fired for an already-dead member")
	}
}

// A dispatch failure trips the member's breaker (threshold 1) exactly once,
// fires the OnTrip hook once, and MarkSucceeded both closes the breaker and
// returns a suspect member to routing.
func TestBreakerFollowsDispatchFeedback(t *testing.T) {
	var trips []string
	m := NewMembership(10, time.Second, nil, nil)
	m.OnTrip(func(id string) { trips = append(trips, id) })
	m.SetBreakerConfig(1, time.Hour)
	mb := m.Add("w1", "http://127.0.0.1:1")

	m.MarkFailed("w1")
	if mb.Breaker.State() != BreakerOpen {
		t.Fatalf("breaker = %s after failure, want open", mb.Breaker.State())
	}
	snap := m.Snapshot()[0]
	if snap.State != "suspect" || snap.Breaker != "open" {
		t.Fatalf("snapshot = %+v, want suspect/open", snap)
	}
	// Failures while already open never re-trip.
	m.MarkFailed("w1")
	m.MarkFailed("w1")
	if len(trips) != 1 || trips[0] != "w1" {
		t.Fatalf("trips = %v, want exactly one for w1", trips)
	}

	m.MarkSucceeded("w1")
	if mb.Breaker.State() != BreakerClosed {
		t.Fatalf("breaker = %s after success, want closed", mb.Breaker.State())
	}
	snap = m.Snapshot()[0]
	if snap.State != "alive" || snap.Fails != 0 {
		t.Fatalf("snapshot after success = %+v, want alive with 0 fails", snap)
	}
	if len(m.Routable()) != 1 {
		t.Fatal("recovered member not routable")
	}
}

// A healthy probe closes the breaker too: probe-path and dispatch-path
// recovery are equivalent.
func TestProbeSuccessClosesBreaker(t *testing.T) {
	m, _, url := newMembers(t, nil)
	mb := m.Add("w1", url)
	m.MarkFailed("w1")
	if mb.Breaker.State() != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	m.ProbeOnce(context.Background())
	if mb.Breaker.State() != BreakerClosed {
		t.Fatalf("breaker = %s after healthy probe, want closed", mb.Breaker.State())
	}
}

func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(VersionString); err != nil {
		t.Fatalf("exact version rejected: %v", err)
	}
	if err := CheckVersion(VersionString + ".3"); err != nil {
		t.Fatalf("minor revision rejected: %v", err)
	}
	for _, bad := range []string{"", "idyll-fleet/2", "idyll-fleet/10", "other/1"} {
		if CheckVersion(bad) == nil {
			t.Fatalf("incompatible version %q accepted", bad)
		}
	}
}

func TestCopysetsTrackAndDrop(t *testing.T) {
	cs := NewCopysets(2)
	cs.Add("h1", "w1")
	cs.Add("h1", "w2")
	cs.Add("h1", "w1") // duplicate: no-op
	if got := cs.Holders("h1"); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("holders = %v", got)
	}
	cs.Add("h2", "w1")
	cs.Holders("h1")   // touch: h2 becomes the LRU hash
	cs.Add("h3", "w1") // evicts h2
	if cs.Holders("h2") != nil {
		t.Fatal("LRU hash survived eviction")
	}
	if cs.Holders("h1") == nil {
		t.Fatal("recently touched hash evicted")
	}
	cs.DropWorker("w1")
	if got := cs.Holders("h1"); len(got) != 1 || got[0] != "w2" {
		t.Fatalf("holders after drop = %v", got)
	}
	if cs.Holders("h3") != nil {
		t.Fatal("hash with no remaining holders must vanish")
	}
}
