package fleet

import (
	"bytes"
	"crypto/sha256"
	"sort"
)

// Rank orders worker IDs by preference for the given content-address key
// using rendezvous (highest-random-weight) hashing: each worker scores
// sha256(id NUL key) and the ranking is the descending score order. The
// properties the fleet needs all fall out of this one function:
//
//   - deterministic: every coordinator replica computes the same ranking
//     for the same key and member set, with no shared routing table;
//   - minimal disruption: removing a worker only re-routes the keys that
//     ranked it first — every other key keeps its preferred worker, so
//     warm caches stay warm across membership churn;
//   - a built-in fail-over order: the second-ranked worker is the natural
//     re-route target and the first replication target.
//
// The input slice is not modified; ties (impossible in practice for
// distinct IDs) break toward the lexically smaller ID for determinism.
func Rank(key string, ids []string) []string {
	type scored struct {
		id    string
		score [sha256.Size]byte
	}
	s := make([]scored, len(ids))
	for i, id := range ids {
		s[i] = scored{id, sha256.Sum256([]byte(id + "\x00" + key))}
	}
	sort.Slice(s, func(i, j int) bool {
		if c := bytes.Compare(s[i].score[:], s[j].score[:]); c != 0 {
			return c > 0
		}
		return s[i].id < s[j].id
	})
	out := make([]string, len(s))
	for i := range s {
		out[i] = s[i].id
	}
	return out
}
