package workload

import (
	"math/bits"
	"testing"

	"idyll/internal/memdef"
)

func TestGenerateDeterministic(t *testing.T) {
	p, _ := App("PR")
	a := Generate(p, 4, 2, 100, 7)
	b := Generate(p, 4, 2, 100, 7)
	for g := range a.Accesses {
		for c := range a.Accesses[g] {
			for i := range a.Accesses[g][c] {
				if a.Accesses[g][c][i] != b.Accesses[g][c][i] {
					t.Fatalf("trace diverged at gpu%d cu%d i%d", g, c, i)
				}
			}
		}
	}
}

func TestGenerateDiffersAcrossSeeds(t *testing.T) {
	p, _ := App("PR")
	a := Generate(p, 2, 1, 200, 1)
	b := Generate(p, 2, 1, 200, 2)
	same := 0
	for i := range a.Accesses[0][0] {
		if a.Accesses[0][0][i].VA == b.Accesses[0][0][i].VA {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("seeds produced %d/200 identical accesses", same)
	}
}

func TestGenerateShape(t *testing.T) {
	p, _ := App("KM")
	tr := Generate(p, 4, 8, 50, 3)
	if len(tr.Accesses) != 4 {
		t.Fatalf("GPUs = %d", len(tr.Accesses))
	}
	for g := range tr.Accesses {
		if len(tr.Accesses[g]) != 8 {
			t.Fatalf("gpu%d CUs = %d", g, len(tr.Accesses[g]))
		}
		for c := range tr.Accesses[g] {
			if len(tr.Accesses[g][c]) != 50 {
				t.Fatalf("gpu%d cu%d accesses = %d", g, c, len(tr.Accesses[g][c]))
			}
		}
	}
	if tr.TotalAccesses() != 4*8*50 {
		t.Fatalf("total = %d", tr.TotalAccesses())
	}
}

func TestAccessesStayInFootprint(t *testing.T) {
	for _, p := range Apps() {
		tr := Generate(p, 4, 4, 200, 11)
		limit := memdef.VPN(tr.FootprintPages())
		for g := range tr.Accesses {
			for c := range tr.Accesses[g] {
				for _, a := range tr.Accesses[g][c] {
					vpn := memdef.PageNum(a.VA, memdef.Page4K)
					if vpn >= limit {
						t.Fatalf("%s: access %#x outside footprint (%d pages)", p.Abbr, a.VA, limit)
					}
				}
			}
		}
	}
}

// sharingProfile computes the fraction of accesses to pages touched by >1 GPU
// and the fraction touched by all GPUs.
func sharingProfile(tr *Trace, numGPUs int) (shared, byAll float64) {
	mask := map[memdef.VPN]uint64{}
	count := map[memdef.VPN]int{}
	total := 0
	for g := range tr.Accesses {
		for c := range tr.Accesses[g] {
			for _, a := range tr.Accesses[g][c] {
				vpn := memdef.PageNum(a.VA, memdef.Page4K)
				mask[vpn] |= 1 << uint(g)
				count[vpn]++
				total++
			}
		}
	}
	for vpn, m := range mask {
		k := bits.OnesCount64(m)
		if k > 1 {
			shared += float64(count[vpn])
		}
		if k == numGPUs {
			byAll += float64(count[vpn])
		}
	}
	return shared / float64(total), byAll / float64(total)
}

// Figure 4 regimes: PR/MM/KM dominated by all-GPU sharing; MT mostly
// pairwise (little all-GPU but substantially shared).
func TestSharingRegimesMatchFigure4(t *testing.T) {
	for _, abbr := range []string{"PR", "MM", "KM"} {
		p, _ := App(abbr)
		tr := Generate(p, 4, 8, 500, 5)
		_, byAll := sharingProfile(tr, 4)
		if byAll < 0.30 {
			t.Errorf("%s: all-GPU-shared access fraction = %.2f, want ≥0.30", abbr, byAll)
		}
	}
	p, _ := App("MT")
	tr := Generate(p, 4, 8, 500, 5)
	shared, byAll := sharingProfile(tr, 4)
	if shared < 0.22 {
		t.Errorf("MT: shared fraction = %.2f, want ≥0.22", shared)
	}
	if byAll > shared/2 {
		t.Errorf("MT: all-GPU share %.2f should be well below total shared %.2f (pairwise app)", byAll, shared)
	}
}

func TestWriteRatiosOrdering(t *testing.T) {
	ratio := func(abbr string) float64 {
		p, _ := App(abbr)
		tr := Generate(p, 4, 4, 500, 9)
		w, n := 0, 0
		for g := range tr.Accesses {
			for c := range tr.Accesses[g] {
				for _, a := range tr.Accesses[g][c] {
					if a.Write {
						w++
					}
					n++
				}
			}
		}
		return float64(w) / float64(n)
	}
	// §7.4: IM and C2D write-intensive; PR read-intensive.
	if ratio("IM") <= ratio("PR") || ratio("C2D") <= ratio("PR") {
		t.Fatalf("write-intensity ordering broken: IM=%.2f C2D=%.2f PR=%.2f",
			ratio("IM"), ratio("C2D"), ratio("PR"))
	}
}

func TestAppLookup(t *testing.T) {
	if _, err := App("MT"); err != nil {
		t.Fatal(err)
	}
	if _, err := App("VGG16"); err != nil {
		t.Fatal(err)
	}
	if _, err := App("nope"); err == nil {
		t.Fatal("unknown app did not error")
	}
	if len(AppAbbrs()) != 9 {
		t.Fatal("Table 3 has nine applications")
	}
	if len(Fig1Abbrs()) != 6 {
		t.Fatal("Figure 1 uses six applications")
	}
}

func TestDNNTraceSharesActivations(t *testing.T) {
	apps := DNNApps()
	if len(apps) != 2 {
		t.Fatal("want VGG16 and ResNet18")
	}
	for _, p := range apps {
		tr := Generate(p, 4, 4, 400, 13)
		shared, _ := sharingProfile(tr, 4)
		if shared < 0.1 {
			t.Errorf("%s: shared access fraction = %.2f, want some pipeline sharing", p.Abbr, shared)
		}
		if tr.FootprintPages() <= 0 {
			t.Errorf("%s: bad footprint", p.Abbr)
		}
	}
}

func TestEnlargeScalesFootprint(t *testing.T) {
	p, _ := App("SC")
	big := Enlarge(p, 8)
	if big.PagesPerGPU != p.PagesPerGPU*8 {
		t.Fatal("footprint not scaled")
	}
	if big.HotPages != p.HotPages*8 {
		t.Fatal("hot pool not scaled")
	}
}

func TestSingleGPUTraceStaysInFootprint(t *testing.T) {
	p, _ := App("ST")
	tr := Generate(p, 1, 2, 200, 3)
	limit := memdef.VPN(tr.FootprintPages())
	for _, cu := range tr.Accesses[0] {
		for _, a := range cu {
			if memdef.PageNum(a.VA, memdef.Page4K) >= limit {
				t.Fatalf("single-GPU access %#x outside the footprint", a.VA)
			}
		}
	}
}

func TestParamsStringMentionsTable3Fields(t *testing.T) {
	p, _ := App("PR")
	s := p.String()
	for _, want := range []string{"PR", "PageRank", "Hetero-Mark", "Random"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFromAccessesWrapsCustomTrace(t *testing.T) {
	streams := [][][]Access{
		{{{VA: 0x1000}, {VA: 0x2000, Write: true}}}, // GPU0, 1 CU
		{{{VA: 0x1000}}}, // GPU1, 1 CU
	}
	tr := FromAccesses("replay", streams, 5, 2)
	if tr.NumGPUs != 2 || tr.TotalAccesses() != 3 {
		t.Fatalf("custom trace shape: gpus=%d accesses=%d", tr.NumGPUs, tr.TotalAccesses())
	}
	if tr.Params.ComputeGap != 5 || tr.Params.InstrPerAccess != 2 {
		t.Fatal("issue shape lost")
	}
}

func TestFromAccessesRunsOnSystem(t *testing.T) {
	// The custom trace must be runnable end to end; exercised indirectly
	// via FootprintPages not being needed (pre-placement scans the trace).
	defer func() {
		if recover() == nil {
			t.Fatal("empty custom trace accepted")
		}
	}()
	FromAccesses("bad", nil, 1, 1)
}
