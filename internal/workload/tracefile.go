package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"idyll/internal/memdef"
)

// Trace file format: a compact binary encoding so generated workloads can
// be saved once and replayed across experiments or shared with other tools
// (cmd/idylltrace). Layout, little-endian:
//
//	magic "IDYT" | version u32 | gap u32 | instrPerAccess u32 |
//	nameLen u32 | name bytes | numGPUs u32 |
//	per GPU: numCUs u32 | per CU: numAccesses u32 |
//	    per access: va u64 with bit 63 carrying the write flag
//
// Virtual addresses use at most 57 bits (48-bit VA space), so bit 63 is
// free for the write flag.

const (
	traceMagic   = "IDYT"
	traceVersion = 1
	writeBit     = 1 << 63
)

// Save serializes the trace.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	u32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	u64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := u32(traceVersion); err != nil {
		return err
	}
	if err := u32(uint32(t.Params.ComputeGap)); err != nil {
		return err
	}
	if err := u32(uint32(t.Params.InstrPerAccess)); err != nil {
		return err
	}
	name := t.Params.Abbr
	if err := u32(uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := u32(uint32(t.NumGPUs)); err != nil {
		return err
	}
	for _, gpu := range t.Accesses {
		if err := u32(uint32(len(gpu))); err != nil {
			return err
		}
		for _, cu := range gpu {
			if err := u32(uint32(len(cu))); err != nil {
				return err
			}
			for _, a := range cu {
				v := uint64(a.VA)
				if a.Write {
					v |= writeBit
				}
				if err := u64(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by Save.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad magic %q", magic)
	}
	var u32 func() (uint32, error)
	u32 = func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	version, err := u32()
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", version)
	}
	gap, err := u32()
	if err != nil {
		return nil, err
	}
	instr, err := u32()
	if err != nil {
		return nil, err
	}
	nameLen, err := u32()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("workload: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	numGPUs, err := u32()
	if err != nil {
		return nil, err
	}
	if numGPUs == 0 || numGPUs > 1024 {
		return nil, fmt.Errorf("workload: implausible GPU count %d", numGPUs)
	}
	t := &Trace{
		Params: Params{
			Abbr: string(name), Name: string(name), Suite: "replay",
			ComputeGap: int(gap), InstrPerAccess: int(instr),
		},
		NumGPUs:  int(numGPUs),
		Accesses: make([][][]Access, numGPUs),
	}
	for g := range t.Accesses {
		numCUs, err := u32()
		if err != nil {
			return nil, err
		}
		if numCUs > 1<<16 {
			return nil, fmt.Errorf("workload: implausible CU count %d", numCUs)
		}
		t.Accesses[g] = make([][]Access, numCUs)
		for c := range t.Accesses[g] {
			n, err := u32()
			if err != nil {
				return nil, err
			}
			if n > 1<<28 {
				return nil, fmt.Errorf("workload: implausible access count %d", n)
			}
			// Grow incrementally rather than pre-allocating n entries: a
			// corrupt count field passing the plausibility check could
			// otherwise demand gigabytes before the stream runs dry.
			cu := make([]Access, 0, min(int(n), 4096))
			for i := 0; i < int(n); i++ {
				var v uint64
				if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
					return nil, err
				}
				cu = append(cu, Access{VA: memdef.VAddr(v &^ writeBit), Write: v&writeBit != 0})
			}
			t.Accesses[g][c] = cu
		}
	}
	return t, nil
}
