package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"idyll/internal/memdef"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := App("KM")
	orig := Generate(p, 2, 3, 40, 9)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGPUs != orig.NumGPUs {
		t.Fatalf("gpus = %d", got.NumGPUs)
	}
	if got.Params.Abbr != "KM" || got.Params.ComputeGap != p.ComputeGap ||
		got.Params.InstrPerAccess != p.InstrPerAccess {
		t.Fatalf("params lost: %+v", got.Params)
	}
	for g := range orig.Accesses {
		for c := range orig.Accesses[g] {
			for i, a := range orig.Accesses[g][c] {
				if got.Accesses[g][c][i] != a {
					t.Fatalf("access gpu%d cu%d i%d diverged", g, c, i)
				}
			}
		}
	}
}

func TestTraceRoundTripPreservesWrites(t *testing.T) {
	prop := func(vas []uint32, writes []bool) bool {
		if len(vas) == 0 {
			return true
		}
		cu := make([]Access, len(vas))
		for i, va := range vas {
			w := i < len(writes) && writes[i]
			cu[i] = Access{VA: memdef.VAddr(va), Write: w}
		}
		orig := FromAccesses("prop", [][][]Access{{cu}}, 1, 1)
		var buf bytes.Buffer
		if orig.Save(&buf) != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		for i := range cu {
			if got.Accesses[0][0][i] != cu[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	p, _ := App("KM")
	orig := Generate(p, 1, 1, 10, 1)
	var buf bytes.Buffer
	orig.Save(&buf)
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceBadVersion(t *testing.T) {
	raw := []byte("IDYT\xff\xff\xff\xff")
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
}
