// Package workload generates the memory-access traces that drive the
// simulator. The paper (Table 3) evaluates nine multi-GPU applications with
// three page-sharing patterns — adjacent (KM, SC, ST, C2D), random (PR, BS)
// and scatter-gather (MM, MT, IM) — plus two layer-parallel DNNs (§7.6).
//
// We cannot replay the authors' GCN3 instruction traces, so each app is
// modelled by a parameterized generator that reproduces what the paper's
// experiments actually depend on: the page-level access pattern, the
// inter-GPU sharing structure (Figure 4), memory intensity (Table 3's MPKI
// ordering), the read/write mix, and hot-page concentration (which drives
// access-counter migrations). See DESIGN.md "Substitutions".
package workload

import (
	"fmt"

	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Access is one memory operation of a compute unit.
type Access struct {
	VA    memdef.VAddr
	Write bool
}

// Pattern is the inter-GPU sharing structure of an application.
type Pattern int

const (
	// Adjacent: input is batched and shared with neighbouring GPUs (halo
	// exchange); most sharing is between 2 GPUs at partition boundaries.
	Adjacent Pattern = iota
	// Random: every GPU reads/writes anywhere in the address space; hot
	// pages are shared by all GPUs.
	Random
	// ScatterGather: each GPU holds a slice of the input/output matrices
	// and reads/writes strided slices of the other GPUs' partitions.
	ScatterGather
	// LayerParallel: DNN layers are partitioned across GPUs; activations
	// and shared weights ping-pong between pipeline neighbours (§7.6).
	LayerParallel
)

func (p Pattern) String() string {
	switch p {
	case Adjacent:
		return "Adjacent"
	case Random:
		return "Random"
	case ScatterGather:
		return "Scatter-Gather"
	case LayerParallel:
		return "Layer-Parallel"
	}
	return "Unknown"
}

// Params describes one application's generator.
type Params struct {
	Abbr    string
	Name    string
	Suite   string
	Pattern Pattern

	// PaperMPKI is Table 3's reported L2 TLB MPKI, kept for reference and
	// for ordering checks; the generator is calibrated to reproduce the
	// ordering, not the absolute value.
	PaperMPKI float64

	// PagesPerGPU is the per-GPU partition of the footprint, in pages.
	PagesPerGPU int
	// RunLength is how many consecutive accesses stay within one page
	// before moving on — the page-level locality knob (low run length ⇒
	// high MPKI, e.g. MT; high ⇒ low MPKI, e.g. BS).
	RunLength int
	// PrivateScatter makes private-region accesses jump to random pages of
	// the partition instead of streaming it — the irregular access shape of
	// the scatter-gather and random apps, which is what keeps the page-walk
	// cache under pressure (column walks of MT touch a new page-table
	// subtree almost every access).
	PrivateScatter bool
	// SharedFraction is the probability an access goes to the shared
	// region instead of the GPU's private streaming region.
	SharedFraction float64
	// GlobalFrac, PairFrac and NeighbourFrac split shared accesses between
	// an all-GPU hot pool (KMeans centroids, PageRank hubs, MM's broadcast
	// operand), a fixed-partner pool (matrix-transpose pairs, bitonic
	// exchange partners) and the neighbour halo (stencil boundaries). They
	// are normalized internally; together with the pattern they reproduce
	// Figure 4's per-app sharing distribution.
	GlobalFrac    float64
	PairFrac      float64
	NeighbourFrac float64
	// HotPages is the size of each hot shared pool and HotZipf its skew;
	// hot pages are what accumulate enough remote accesses to cross the
	// access-counter migration threshold.
	HotPages int
	HotZipf  float64
	// WriteRatio is the store fraction (drives the replication comparison:
	// IM and C2D are write-intensive, PR/ST/SC read-intensive, §7.4).
	WriteRatio float64
	// ComputeGap is the issue gap in cycles between a CU slot retiring one
	// access and issuing the next — the latency-hiding knob (§7.1: IM has
	// little computation to hide translation latency).
	ComputeGap int
	// InstrPerAccess scales accesses to dynamic instructions for MPKI.
	InstrPerAccess int
	// Phased enables phase-sticky shared sampling: all CUs of a GPU
	// concentrate on one focus window of a pool for phaseLen accesses (the
	// behaviour a CTA scheduler produces). It gives migration an
	// amortization horizon at the cost of diluting concurrent sharing; the
	// calibrated Table 3 apps leave it off (see EXPERIMENTS.md
	// "Known deviations").
	Phased bool
	// ThresholdFactor multiplies the machine's access-counter threshold for
	// this workload. Compute-dominated traces (the DNNs) compress far more
	// work into each memory access than the memory-bound apps, so the
	// trace-scaled threshold must scale back up to keep the migrations-per
	// unit-of-work rate in the paper's regime (default 1).
	ThresholdFactor int
	// DNNLayers holds per-layer weight page counts for LayerParallel apps.
	DNNLayers []int
}

// Trace is a fully generated workload: per-GPU, per-CU access streams.
type Trace struct {
	Params  Params
	NumGPUs int
	// Accesses[gpu][cu] is the ordered access stream of one CU.
	Accesses [][][]Access
}

// TotalAccesses reports the number of accesses across all CUs.
func (t *Trace) TotalAccesses() int {
	n := 0
	for _, gpu := range t.Accesses {
		for _, cu := range gpu {
			n += len(cu)
		}
	}
	return n
}

// Address-space layout for the pattern apps. Shared data structures are
// allocated as contiguous segments after the private partitions — as real
// applications allocate shared arrays (PageRank's rank vector, KMeans'
// centroids, a matrix operand read by everyone) — so block migrations and
// IRMB base-merging see the same contiguity they would on real traces:
//
//	[0, n·part)                        per-GPU private partitions
//	[n·part, n·part+hot)               global hot pool (shared by all)
//	then one hot segment per GPU pair  pair pools (transpose/exchange)
//
// The neighbour halo lives at partition boundaries inside the private range.

// globalPoolBase returns the first page of the all-GPU hot pool.
func globalPoolBase(p Params, numGPUs int) int { return p.PagesPerGPU * numGPUs }

// pairPoolBase returns the first page of pair pool k (k = min(g, partner)).
func pairPoolBase(p Params, numGPUs, k int) int {
	return globalPoolBase(p, numGPUs) + p.HotPages + k*p.HotPages
}

// FootprintPages reports the size of the virtual footprint in pages.
func (t *Trace) FootprintPages() int {
	if t.Params.Pattern == LayerParallel {
		total := 0
		for _, l := range t.Params.DNNLayers {
			total += l + activationPagesPerLayer
		}
		return total + activationPagesPerLayer
	}
	// One pair segment per canonical pair id; ids can reach NumGPUs-1 when
	// the GPU count is odd, so reserve a segment per GPU.
	return t.Params.PagesPerGPU*t.NumGPUs + t.Params.HotPages*(1+t.NumGPUs)
}

// Generate builds a trace for numGPUs GPUs with cusPerGPU CUs each, with
// accessesPerCU accesses per CU, deterministically from seed.
func Generate(p Params, numGPUs, cusPerGPU, accessesPerCU int, seed uint64) *Trace {
	if numGPUs < 1 || cusPerGPU < 1 || accessesPerCU < 1 {
		panic("workload: non-positive trace geometry")
	}
	t := &Trace{Params: p, NumGPUs: numGPUs}
	t.Accesses = make([][][]Access, numGPUs)
	for g := 0; g < numGPUs; g++ {
		t.Accesses[g] = make([][]Access, cusPerGPU)
		for c := 0; c < cusPerGPU; c++ {
			r := sim.NewRand(seed ^ uint64(g)<<32 ^ uint64(c)<<16 ^ 0x51f0)
			t.Accesses[g][c] = generateCU(p, numGPUs, g, c, accessesPerCU, r)
		}
	}
	return t
}

// FromAccesses wraps externally produced per-GPU, per-CU access streams —
// e.g. replayed from a real application trace — into a Trace the system can
// run. computeGap and instrPerAccess set the issue shape (see Params).
func FromAccesses(name string, accesses [][][]Access, computeGap, instrPerAccess int) *Trace {
	if len(accesses) == 0 {
		panic("workload: empty custom trace")
	}
	return &Trace{
		Params: Params{
			Abbr:           name,
			Name:           name,
			Suite:          "custom",
			ComputeGap:     computeGap,
			InstrPerAccess: instrPerAccess,
		},
		NumGPUs:  len(accesses),
		Accesses: accesses,
	}
}

// activationPagesPerLayer is the modelled activation buffer per DNN layer.
const activationPagesPerLayer = 64

// generateCU produces one CU's stream.
func generateCU(p Params, numGPUs, gpu, cu, n int, r *sim.Rand) []Access {
	if p.Pattern == LayerParallel {
		return generateDNNCU(p, numGPUs, gpu, cu, n, r)
	}
	out := make([]Access, 0, n)
	partPages := p.PagesPerGPU
	base := memdef.VPN(gpu * partPages)
	// Private streaming position: CUs start spread across the partition so
	// a GPU's CUs collectively stream it (inter-CTA locality).
	pos := (cu * partPages) / maxInt(1, 16)
	var hot *sim.Zipf
	if p.HotPages > 0 {
		hot = sim.NewZipf(r, p.HotPages, p.HotZipf)
	}

	for len(out) < n {
		var vpn memdef.VPN
		if p.SharedFraction > 0 && r.Bool(p.SharedFraction) {
			epoch := len(out) / phaseLen(p)
			vpn = sharedPage(p, numGPUs, gpu, epoch, r, hot)
		} else {
			if p.PrivateScatter {
				pos = r.Intn(partPages)
			} else {
				pos = (pos + 1 + r.Intn(2)) % partPages
			}
			vpn = base + memdef.VPN(pos)
		}
		run := 1 + r.Intn(maxInt(1, p.RunLength))
		for k := 0; k < run && len(out) < n; k++ {
			off := uint64(r.Intn(4096/64)) * 64
			out = append(out, Access{
				VA:    vpn.Addr(memdef.Page4K) + memdef.VAddr(off),
				Write: r.Bool(p.WriteRatio),
			})
		}
	}
	return out
}

// phaseLen is the per-CU access count of one sharing phase (see sharedPage).
func phaseLen(p Params) int {
	if p.RunLength >= 8 {
		return 96 // locality-rich apps have longer phases
	}
	return 64
}

// phaseMix deterministically mixes (gpu, epoch) for phase-sticky choices.
func phaseMix(gpu, epoch int) uint64 {
	x := uint64(gpu)<<32 ^ uint64(epoch) ^ 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sharedPage picks a page from one of the shared pools. The pool choice is
// weighted by GlobalFrac/PairFrac/NeighbourFrac; within a pool, hot ranks
// follow the app's Zipf skew. Pool page sets are deterministic functions of
// rank (not of the accessing GPU), so the same hot pages are hit from every
// participating GPU — which is what makes them shared and what drives their
// access counters over the migration threshold.
//
// Sharing is *phased*: within an epoch of phaseLen accesses, every CU of a
// GPU concentrates on the same small focus window of its chosen pool. Real
// multi-GPU kernels behave this way — the CTA scheduler keeps a GPU's CUs
// on adjacent work items, so a GPU hammers a shared region for a stretch
// before another GPU takes it over. This is what gives counter-based
// migration its amortization horizon (Figure 2): a migrated page serves
// many local accesses before the next GPU's counters reclaim it. A
// background fraction of unphased accesses keeps the pools concurrently
// shared.
func sharedPage(p Params, numGPUs, gpu, epoch int, r *sim.Rand, hot *sim.Zipf) memdef.VPN {
	part := p.PagesPerGPU
	footprint := part * numGPUs
	rank := 0
	if hot != nil {
		rank = hot.Rank()
	}
	total := p.GlobalFrac + p.PairFrac + p.NeighbourFrac
	if total <= 0 {
		total = 1 // all weights zero: fall through to the neighbour halo
	}
	u := r.Float64() * total
	if p.Phased && !r.Bool(0.25) {
		// Phase-sticky choice: pool and focus window fixed for this epoch.
		h := phaseMix(gpu, epoch)
		u = float64(h%1024) / 1024 * total
		window := 4 // an aligned group of pages, matching migration blocks
		lo := int(h>>10) % maxInt(1, p.HotPages-window)
		rank = lo + r.Intn(window)
	}
	switch {
	case u < p.GlobalFrac:
		// All-GPU hot pool: a contiguous shared segment (rank 0 hottest),
		// identical for every GPU.
		return memdef.VPN(globalPoolBase(p, numGPUs) + rank%maxInt(1, p.HotPages))
	case u < p.GlobalFrac+p.PairFrac:
		// Fixed-partner pool: the contiguous exchange buffer of this GPU
		// pair (matrix transpose / bitonic partners). Both ends use the
		// same segment, so its pages see exactly two sharers.
		partner := numGPUs - 1 - gpu
		if partner == gpu {
			partner = (gpu + 1) % numGPUs
		}
		pair := gpu
		if partner < gpu {
			pair = partner // canonical pair id
		}
		return memdef.VPN(pairPoolBase(p, numGPUs, pair) + rank%maxInt(1, p.HotPages))
	default:
		// Neighbour halo: the boundary region between this partition and a
		// randomly chosen adjacent one.
		neighbour := gpu
		if r.Bool(0.5) && gpu+1 < numGPUs {
			neighbour = gpu + 1
		} else if gpu > 0 {
			neighbour = gpu - 1
		} else if gpu+1 < numGPUs {
			neighbour = gpu + 1
		}
		halo := maxInt(2, p.HotPages)
		var boundary int
		if neighbour > gpu {
			boundary = (gpu + 1) * part
		} else if neighbour < gpu {
			boundary = gpu * part
		} else { // single GPU: no halo, stay local
			return memdef.VPN(gpu*part + rank%part)
		}
		lo := boundary - halo/2
		if lo < 0 {
			lo = 0
		}
		if lo+halo > footprint {
			lo = footprint - halo
		}
		return memdef.VPN(lo + rank%halo)
	}
}

// generateDNNCU models layer-parallel DNN execution (§7.6): GPU g owns the
// layers l with l % numGPUs == g. Per microbatch it streams input
// activations written by the previous stage (2-GPU sharing), repeatedly
// reads its layer weights, reads a slice of the *shared* classifier/embedding
// weights (all-GPU sharing), and writes its output activations.
func generateDNNCU(p Params, numGPUs, gpu, cu, n int, r *sim.Rand) []Access {
	// Lay out the address space: weights per layer, then activations.
	layerWeightBase := make([]memdef.VPN, len(p.DNNLayers))
	next := memdef.VPN(0)
	for i, pages := range p.DNNLayers {
		layerWeightBase[i] = next
		next += memdef.VPN(pages)
	}
	actBase := make([]memdef.VPN, len(p.DNNLayers)+1)
	for i := range actBase {
		actBase[i] = next
		next += activationPagesPerLayer
	}

	myLayers := []int{}
	for l := range p.DNNLayers {
		if l%numGPUs == gpu {
			myLayers = append(myLayers, l)
		}
	}
	if len(myLayers) == 0 {
		myLayers = []int{gpu % len(p.DNNLayers)}
	}

	out := make([]Access, 0, n)
	zipf := sim.NewZipf(r, 64, 0.8)
	for len(out) < n {
		l := myLayers[r.Intn(len(myLayers))]
		wbase := layerWeightBase[l]
		wpages := p.DNNLayers[l]
		emit := func(vpn memdef.VPN, write bool) {
			if len(out) >= n {
				return
			}
			off := uint64(r.Intn(4096/64)) * 64
			out = append(out, Access{VA: vpn.Addr(memdef.Page4K) + memdef.VAddr(off), Write: write})
		}
		// Weight reads dominate (GEMM operand reuse); the layer's weights
		// live on this GPU, so these are local streaming reads.
		for k := 0; k < 12; k++ {
			emit(wbase+memdef.VPN(r.Intn(maxInt(1, wpages))), false)
		}
		// Read input activations (written by the previous stage's GPU) —
		// the cross-stage sharing that triggers migrations.
		for k := 0; k < 2; k++ {
			emit(actBase[l]+memdef.VPN(zipf.Rank()%activationPagesPerLayer), false)
		}
		// Occasionally touch the shared trunk weights (first layers are read
		// by every stage for skip/normalization paths).
		if r.Bool(0.1) {
			emit(layerWeightBase[0]+memdef.VPN(zipf.Rank()%maxInt(1, p.DNNLayers[0])), false)
		}
		// Write output activations for the next stage.
		emit(actBase[l+1]+memdef.VPN(zipf.Rank()%activationPagesPerLayer), true)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the app line as in Table 3.
func (p Params) String() string {
	return fmt.Sprintf("%-4s %-24s %-12s MPKI %-7.2f %s",
		p.Abbr, p.Name, p.Suite, p.PaperMPKI, p.Pattern)
}
