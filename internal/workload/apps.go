package workload

import (
	"fmt"
	"strings"
)

// Apps returns the nine applications of Table 3 with generator parameters
// calibrated to reproduce the paper's regimes:
//
//   - MPKI ordering (Table 3): MT ≫ PR > KM > ST > C2D > IM ≈ SC > MM > BS,
//     controlled by footprint size and page-run length;
//   - sharing distribution (Figure 4): MM/PR/KM dominated by 4-GPU sharing,
//     MT/C2D/BS by 2-GPU sharing, stencils by neighbour halos;
//   - read/write mix (§7.4): IM and C2D write-intensive; PR, ST, SC
//     read-intensive;
//   - memory intensity (§7.1): IM has little compute to hide translation
//     latency (small ComputeGap); BS is compute-rich.
func Apps() []Params {
	return []Params{
		{
			Abbr: "MT", Name: "Matrix Transpose", Suite: "AMDAPPSDK",
			Pattern: ScatterGather, PaperMPKI: 185.52,
			PagesPerGPU: 65536, RunLength: 1, PrivateScatter: true,
			SharedFraction: 0.35, GlobalFrac: 0.05, PairFrac: 0.90, NeighbourFrac: 0.05,
			HotPages: 96, HotZipf: 1.05, WriteRatio: 0.50,
			ComputeGap: 6, InstrPerAccess: 4,
		},
		{
			Abbr: "MM", Name: "Matrix Multiplication", Suite: "AMDAPPSDK",
			Pattern: ScatterGather, PaperMPKI: 11.21,
			PagesPerGPU: 16384, RunLength: 10, PrivateScatter: true,
			SharedFraction: 0.60, GlobalFrac: 0.85, PairFrac: 0.10, NeighbourFrac: 0.05,
			HotPages: 64, HotZipf: 1.10, WriteRatio: 0.30,
			ComputeGap: 12, InstrPerAccess: 8,
		},
		{
			Abbr: "PR", Name: "PageRank", Suite: "Hetero-Mark",
			Pattern: Random, PaperMPKI: 78.21,
			PagesPerGPU: 49152, RunLength: 1, PrivateScatter: true,
			SharedFraction: 0.85, GlobalFrac: 0.90, PairFrac: 0.05, NeighbourFrac: 0.05,
			HotPages: 128, HotZipf: 1.20, WriteRatio: 0.10,
			ComputeGap: 4, InstrPerAccess: 4,
		},
		{
			Abbr: "ST", Name: "Stencil 2D", Suite: "SHOC",
			Pattern: Adjacent, PaperMPKI: 36.24,
			PagesPerGPU: 3072, RunLength: 3,
			SharedFraction: 0.50, GlobalFrac: 0.10, PairFrac: 0.10, NeighbourFrac: 0.80,
			HotPages: 48, HotZipf: 1.00, WriteRatio: 0.15,
			ComputeGap: 8, InstrPerAccess: 6,
		},
		{
			Abbr: "SC", Name: "Simple Convolution", Suite: "AMDAPPSDK",
			Pattern: Adjacent, PaperMPKI: 15.76,
			PagesPerGPU: 2048, RunLength: 5,
			SharedFraction: 0.45, GlobalFrac: 0.10, PairFrac: 0.10, NeighbourFrac: 0.80,
			HotPages: 48, HotZipf: 1.00, WriteRatio: 0.15,
			ComputeGap: 10, InstrPerAccess: 8,
		},
		{
			Abbr: "KM", Name: "KMeans", Suite: "Hetero-Mark",
			Pattern: Adjacent, PaperMPKI: 50.67,
			PagesPerGPU: 4096, RunLength: 2,
			SharedFraction: 0.60, GlobalFrac: 0.85, PairFrac: 0.05, NeighbourFrac: 0.10,
			HotPages: 48, HotZipf: 1.10, WriteRatio: 0.10,
			ComputeGap: 8, InstrPerAccess: 6,
		},
		{
			Abbr: "IM", Name: "Image to Column", Suite: "DNN-Mark",
			Pattern: ScatterGather, PaperMPKI: 18.31,
			PagesPerGPU: 16384, RunLength: 4, PrivateScatter: true,
			SharedFraction: 0.50, GlobalFrac: 0.35, PairFrac: 0.55, NeighbourFrac: 0.10,
			HotPages: 64, HotZipf: 1.00, WriteRatio: 0.45,
			ComputeGap: 2, InstrPerAccess: 3,
		},
		{
			Abbr: "C2D", Name: "Convolution 2D", Suite: "DNN-Mark",
			Pattern: Adjacent, PaperMPKI: 21.42,
			PagesPerGPU: 2048, RunLength: 4,
			SharedFraction: 0.50, GlobalFrac: 0.15, PairFrac: 0.70, NeighbourFrac: 0.15,
			HotPages: 64, HotZipf: 1.00, WriteRatio: 0.40,
			ComputeGap: 8, InstrPerAccess: 6,
		},
		{
			Abbr: "BS", Name: "Bitonic Sort", Suite: "AMDAPPSDK",
			Pattern: Random, PaperMPKI: 3.42,
			PagesPerGPU: 8192, RunLength: 20, PrivateScatter: true,
			SharedFraction: 0.35, GlobalFrac: 0.15, PairFrac: 0.70, NeighbourFrac: 0.15,
			HotPages: 48, HotZipf: 0.90, WriteRatio: 0.50,
			ComputeGap: 30, InstrPerAccess: 10,
		},
	}
}

// App returns the Table 3 (or §7.6 DNN) application with the given
// abbreviation, matched case-insensitively; Params.Abbr carries the
// canonical spelling. The error lists every known abbreviation.
func App(abbr string) (Params, error) {
	all := append(Apps(), DNNApps()...)
	for _, p := range all {
		if strings.EqualFold(p.Abbr, abbr) {
			return p, nil
		}
	}
	known := make([]string, len(all))
	for i, p := range all {
		known[i] = p.Abbr
	}
	return Params{}, fmt.Errorf("workload: unknown application %q (known: %s)",
		abbr, strings.Join(known, ", "))
}

// AppAbbrs returns the Table 3 abbreviations in the paper's figure order.
func AppAbbrs() []string {
	return []string{"MT", "MM", "PR", "ST", "SC", "KM", "IM", "C2D", "BS"}
}

// Fig1Abbrs returns the subset of applications used in Figure 1's real-
// hardware motivation study (the multi-GPU-ready, uvm-eval-compatible ones).
func Fig1Abbrs() []string { return []string{"MT", "MM", "PR", "ST", "SC", "KM"} }

// DNNApps returns the §7.6 DNN workloads. Layer weight page counts follow
// the real architectures at 4 KB pages, scaled 1/16 to keep simulated runs
// tractable (the experiments depend on the *relative* layer sizes and the
// layer-parallel sharing structure, not the absolute footprint).
func DNNApps() []Params {
	// VGG16 conv/fc parameter counts (weights, fp32) in pages/16.
	vgg := []int{
		2, 5, 10, 19, 38, 75, 75, 150, 300, 300, 300, 300, 300, // conv1..13
		512, 84, 21, // fc6, fc7, fc8 (25088×4096 truncated by the 1/16 scale)
	}
	// ResNet18 basic blocks.
	resnet := []int{
		3, 10, 10, 10, 10, 19, 38, 38, 38, 75, 150, 150, 150, 300, 600, 600, 600, 13,
	}
	// DNN training is compute-dominated (GEMM/conv kernels): the large
	// issue gap models the MAC work per loaded operand, which is why the
	// paper's gains on DNNs (12-16%) are far below the memory-bound apps.
	common := Params{
		Pattern:         LayerParallel,
		RunLength:       6,
		SharedFraction:  0.30,
		HotPages:        32,
		HotZipf:         1.0,
		WriteRatio:      0.2,
		ComputeGap:      220,
		InstrPerAccess:  40,
		ThresholdFactor: 8,
	}
	v := common
	v.Abbr, v.Name, v.Suite = "VGG16", "VGG16 (Tiny-ImageNet)", "DNN"
	v.DNNLayers = vgg
	r := common
	r.Abbr, r.Name, r.Suite = "ResNet18", "ResNet18 (Tiny-ImageNet)", "DNN"
	r.DNNLayers = resnet
	return []Params{v, r}
}

// Enlarge scales an application's footprint by factor, used by §7.3's 2 MB
// page study ("we enlarge the input sizes for each application").
func Enlarge(p Params, factor int) Params {
	p.PagesPerGPU *= factor
	p.HotPages *= factor
	return p
}
