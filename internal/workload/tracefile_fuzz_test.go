package workload

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadTrace drives the trace decoder with arbitrary bytes: it must
// reject or accept without panicking or over-allocating, and anything it
// accepts must re-encode canonically (save → read → save is a fixed point).
func FuzzReadTrace(f *testing.F) {
	p, err := App("KM")
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(p, 2, 2, 30, 7).Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])           // truncated mid-record
	f.Add([]byte("NOPE...."))             // wrong magic
	f.Add([]byte("IDYT\xff\xff\xff\xff")) // unsupported version
	f.Add(overflowHeader())               // huge access count, no data behind it

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var first bytes.Buffer
		if err := tr.Save(&first); err != nil {
			t.Fatalf("accepted trace fails to save: %v", err)
		}
		back, err := ReadTrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of saved trace fails: %v", err)
		}
		var second bytes.Buffer
		if err := back.Save(&second); err != nil {
			t.Fatalf("second save fails: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("save → read → save is not a fixed point")
		}
	})
}

// overflowHeader builds a syntactically valid header whose single CU claims
// an enormous access count with no data behind it — the length-field
// overflow shape the decoder must fail on without a giant allocation.
func overflowHeader() []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	u32 := func(v uint32) { binary.Write(&b, binary.LittleEndian, v) }
	u32(traceVersion)
	u32(100)     // gap
	u32(4)       // instr/access
	u32(0)       // name length
	u32(1)       // GPUs
	u32(1)       // CUs
	u32(1 << 27) // accesses: plausible-looking, nothing follows
	return b.Bytes()
}

// A generated trace of any app and shape must survive Save → ReadTrace with
// its access stream and issue-shape parameters intact, and re-saving must
// reproduce the bytes exactly.
func TestTraceSaveReadRoundTripAllApps(t *testing.T) {
	shapes := []struct{ gpus, cus, accesses int }{
		{1, 1, 5}, {2, 3, 40}, {4, 2, 17},
	}
	for _, abbr := range AppAbbrs() {
		p, err := App(abbr)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			orig := Generate(p, sh.gpus, sh.cus, sh.accesses, 11)
			var saved bytes.Buffer
			if err := orig.Save(&saved); err != nil {
				t.Fatalf("%s %+v: save: %v", abbr, sh, err)
			}
			got, err := ReadTrace(bytes.NewReader(saved.Bytes()))
			if err != nil {
				t.Fatalf("%s %+v: read: %v", abbr, sh, err)
			}
			if got.NumGPUs != orig.NumGPUs ||
				got.Params.Abbr != orig.Params.Abbr ||
				got.Params.ComputeGap != orig.Params.ComputeGap ||
				got.Params.InstrPerAccess != orig.Params.InstrPerAccess {
				t.Fatalf("%s %+v: header diverged: %+v", abbr, sh, got.Params)
			}
			for g := range orig.Accesses {
				for c := range orig.Accesses[g] {
					for i, a := range orig.Accesses[g][c] {
						if got.Accesses[g][c][i] != a {
							t.Fatalf("%s %+v: access gpu%d cu%d i%d diverged", abbr, sh, g, c, i)
						}
					}
				}
			}
			var again bytes.Buffer
			if err := got.Save(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(saved.Bytes(), again.Bytes()) {
				t.Fatalf("%s %+v: re-save not byte-identical", abbr, sh)
			}
		}
	}
}
