// Package gpu models one GPU of the multi-GPU system (§3.1, Figure 3): the
// compute units issuing memory accesses, the per-CU L1 TLBs, the shared L2
// TLB with its MSHR, the GMMU (walk queue / PWC / walker threads), the fault
// buffer path to the UVM driver, remote-mapping data accesses over NVLink,
// access counters for counter-based migration, and the GPU half of the
// IDYLL mechanisms: the IRMB with its parallel lookup, lazy write-back, and
// drain-on-idle, plus the Trans-FW PRT.
package gpu

import (
	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/datapath"
	"idyll/internal/interconnect"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
	"idyll/internal/stats"
	"idyll/internal/tlb"
	"idyll/internal/transfw"
	"idyll/internal/walker"
	"idyll/internal/workload"
)

// Host is the GPU's view of the UVM driver; methods are invoked after
// GPU→CPU network delivery. *driver.Driver satisfies it.
type Host interface {
	FarFault(gpu int, vpn memdef.VPN, write bool)
	RequestMigration(gpu int, vpn memdef.VPN)
	RecordResidency(gpu int, vpn memdef.VPN)
}

// waiter is one access blocked on an outstanding translation.
type waiter struct {
	cu        int
	write     bool
	va        memdef.VAddr
	missStart sim.VTime
	done      func()
}

// GPU is one device. Every piece of its state — TLBs, GMMU, IRMB, counters,
// the stats shard — belongs to its synchronization domain and is touched
// only by events on that domain's engine; peers and the driver reach it
// exclusively through network deliveries.
type GPU struct {
	ID      int
	dom     *pdes.Domain
	engine  *sim.Engine // dom's engine, cached for the hot local paths
	hostDom *pdes.Domain
	machine config.Machine
	scheme  config.Scheme
	net     *interconnect.Network
	host    Host
	peers   []*GPU
	st      *stats.Sim

	l1tlbs []*tlb.TLB
	l2tlb  *tlb.TLB
	mshr   *tlb.MSHR[waiter]
	gmmu   *walker.GMMU
	data   *datapath.Hierarchy
	irmb   *core.IRMB
	prt    *transfw.PRT
	// remoteService is this GPU's remote-access transaction engine pool:
	// incoming fine-grained reads from peers serialize here (see
	// config.RemoteEnginePorts).
	remoteService *sim.Resource

	counters    map[memdef.VPN]int
	irmbReceipt map[memdef.VPN]sim.VTime
	// pendingWB marks VPNs whose buffered invalidation left the IRMB for a
	// write-back walk that has not yet reached them: the local PTE is still
	// stale, so demand misses must keep treating them as IRMB hits.
	pendingWB map[memdef.VPN]bool
	// shotDown is the shootdown fence: VPNs whose TLB shootdown has been
	// performed but whose PTE invalidation has not yet retired. In-flight
	// demand walks must not refill the TLBs for these pages — real
	// shootdowns fence new fills until the invalidation completes.
	shotDown map[memdef.VPN]bool
	// invalEpoch counts invalidations received per page; queued PTE
	// updates carry the epoch they were issued under and abort if a newer
	// invalidation arrived while they waited in the walk queue.
	invalEpoch map[memdef.VPN]uint32

	trace          [][]workload.Access
	cuNext         []int
	running        int // CU slots still live
	finished       bool
	doneAt         sim.VTime
	onDone         func()
	computeGap     int
	instrPerAccess int
	// issueFns / retireFns are per-CU continuations, built once in Run so the
	// issue→access→retire cycle schedules them without a fresh closure per
	// access.
	issueFns  []func()
	retireFns []func()

	// OnTranslated, if set, is called whenever a translation is handed to a
	// data access — the hook for the system-level correctness checker.
	OnTranslated func(gpu int, vpn memdef.VPN, pfn memdef.PFN)
}

// New builds a GPU on its synchronization domain. The host domain defaults
// to the GPU's own (the single-domain layout); SetHostDomain overrides it.
func New(dom *pdes.Domain, id int, machine config.Machine, scheme config.Scheme,
	net *interconnect.Network, st *stats.Sim) *GPU {
	engine := dom.Engine()
	g := &GPU{
		ID:          id,
		dom:         dom,
		engine:      engine,
		hostDom:     dom,
		machine:     machine,
		scheme:      scheme,
		net:         net,
		st:          st,
		counters:    make(map[memdef.VPN]int),
		irmbReceipt: make(map[memdef.VPN]sim.VTime),
		pendingWB:   make(map[memdef.VPN]bool),
		shotDown:    make(map[memdef.VPN]bool),
		invalEpoch:  make(map[memdef.VPN]uint32),
	}
	g.l1tlbs = make([]*tlb.TLB, machine.CUsPerGPU)
	for i := range g.l1tlbs {
		g.l1tlbs[i] = tlb.New(tlb.Config{
			Entries: machine.L1TLBEntries, Ways: machine.L1TLBEntries,
			Latency: machine.L1TLBLatency,
		})
	}
	g.l2tlb = tlb.New(tlb.Config{
		Entries: machine.L2TLBEntries, Ways: machine.L2TLBWays,
		Latency: machine.L2TLBLatency,
	})
	g.mshr = tlb.NewMSHR[waiter](machine.L2MSHREntries)
	g.gmmu = walker.New(engine, pagetable.New(machine.PageSize), walker.Config{
		Threads:       machine.PTWThreads,
		QueueCapacity: machine.WalkQueueDepth,
		LevelLatency:  machine.PTWLevelLatency,
		PWCHitLatency: 1,
		PWCEntries:    machine.PWCEntries,
		PWCWays:       machine.PWCWays,
		RetryDelay:    8,
	}, st)
	g.data = datapath.New(engine, machine.CUsPerGPU, datapath.Config{
		L1Bytes: machine.L1CacheBytes, L1Ways: machine.L1CacheWays, L1HitLatency: machine.L1CacheLatency,
		L2Bytes: machine.L2CacheBytes, L2Ways: machine.L2CacheWays, L2HitLatency: machine.L2CacheLatency,
		DRAMLatency: machine.DRAMLatency,
		LineBytes:   memdef.CachelineBytes,
	}, st)
	if scheme.Lazy {
		geom := scheme.IRMB
		if geom.Bases == 0 {
			geom = core.DefaultGeometry
		}
		g.irmb = core.NewIRMB(geom)
		if !scheme.NoIdleDrain {
			g.gmmu.SetOnIdle(g.drainIRMB)
		}
	}
	if scheme.TransFW {
		g.prt = transfw.New(scheme.PRTCapacity)
	}
	if machine.RemoteEnginePorts > 0 {
		g.remoteService = sim.NewResource(engine, machine.RemoteEnginePorts, -1)
	}
	return g
}

// SetHost attaches the UVM driver.
func (g *GPU) SetHost(h Host) { g.host = h }

// SetHostDomain names the domain the UVM driver executes in, so host-side
// continuations (e.g. the CPU's DRAM read on a CPU-resident access) are
// scheduled on the host's engine, not this GPU's.
func (g *GPU) SetHostDomain(d *pdes.Domain) {
	if d != nil {
		g.hostDom = d
	}
}

// Domain reports the GPU's synchronization domain.
func (g *GPU) Domain() *pdes.Domain { return g.dom }

// SetPeers attaches the other GPUs (for Trans-FW remote forwarding).
func (g *GPU) SetPeers(peers []*GPU) { g.peers = peers }

// GMMU exposes the GPU's MMU (tests, experiment probes).
func (g *GPU) GMMU() *walker.GMMU { return g.gmmu }

// IRMB exposes the IRMB, or nil when lazy invalidation is off.
func (g *GPU) IRMB() *core.IRMB { return g.irmb }

// PRT exposes the Trans-FW table, or nil.
func (g *GPU) PRT() *transfw.PRT { return g.prt }

// device is this GPU's memory device ID.
func (g *GPU) device() memdef.DeviceID { return memdef.GPUDevice(g.ID) }

// ---------------------------------------------------------------------------
// CU issue model.
// ---------------------------------------------------------------------------

// Run starts executing a per-CU trace; onDone fires when every CU has
// retired its last access.
func (g *GPU) Run(trace [][]workload.Access, onDone func()) {
	g.running, g.finished = 0, false
	g.trace = trace
	g.cuNext = make([]int, len(trace))
	g.onDone = onDone
	g.issueFns = make([]func(), len(trace))
	g.retireFns = make([]func(), len(trace))
	for cu := range trace {
		cu := cu
		g.issueFns[cu] = func() { g.issueNext(cu) }
		g.retireFns[cu] = func() {
			g.engine.Schedule(sim.VTime(g.traceComputeGap()), g.issueFns[cu])
		}
	}
	slots := g.machine.OutstandingPerCU
	for cu := range trace {
		for s := 0; s < slots; s++ {
			g.running++
			g.issueNext(cu)
		}
	}
	if g.running == 0 {
		g.finishSlot()
	}
}

// DoneAt reports the cycle the last access retired.
func (g *GPU) DoneAt() sim.VTime { return g.doneAt }

// Finished reports whether every CU slot has retired its last access. Read
// it after the run completes: during a parallel run it belongs to the GPU's
// domain like the rest of the GPU's state.
func (g *GPU) Finished() bool { return g.finished }

// issueNext pulls the CU's next trace entry into this slot, or retires the
// slot when the stream is exhausted.
func (g *GPU) issueNext(cu int) {
	idx := g.cuNext[cu]
	if idx >= len(g.trace[cu]) {
		g.finishSlot()
		return
	}
	g.cuNext[cu] = idx + 1
	acc := g.trace[cu][idx]
	g.st.Accesses++
	g.st.Instructions += uint64(maxInt(1, g.traceInstrPerAccess()))
	g.st.Sharing().Record(memdef.PageNum(acc.VA, g.machine.PageSize), g.ID)
	g.access(cu, acc, g.retireFns[cu])
}

func (g *GPU) finishSlot() {
	g.running--
	if g.running <= 0 {
		g.finished = true
		g.doneAt = g.engine.Now()
		if g.onDone != nil {
			g.onDone()
		}
	}
}

// traceComputeGap and traceInstrPerAccess come from the workload params,
// injected via SetWorkloadShape.
func (g *GPU) traceComputeGap() int     { return g.computeGap }
func (g *GPU) traceInstrPerAccess() int { return g.instrPerAccess }

// SetWorkloadShape configures the issue gap and instruction scaling.
func (g *GPU) SetWorkloadShape(computeGap, instrPerAccess int) {
	g.computeGap, g.instrPerAccess = computeGap, instrPerAccess
}

// SetCounterThreshold overrides the access-counter threshold, applied by
// the system when a workload declares a ThresholdFactor.
func (g *GPU) SetCounterThreshold(t int) {
	if t > 0 {
		g.machine.AccessCounterThreshold = t
	}
}

// ---------------------------------------------------------------------------
// Translation path (§3.2, Figure 3 ❶→❻; Figure 9 Ⓐ Ⓑ Ⓒ).
// ---------------------------------------------------------------------------

// access translates and performs one memory access, then calls done.
func (g *GPU) access(cu int, acc workload.Access, done func()) {
	vpn := memdef.PageNum(acc.VA, g.machine.PageSize)
	g.st.L1TLBLookups++
	g.engine.Schedule(g.l1tlbs[cu].Latency(), func() {
		if e, ok := g.l1tlbs[cu].Lookup(vpn); ok && (!acc.Write || e.Writable) {
			g.st.L1TLBHits++
			g.dataAccess(cu, vpn, acc, e, done)
			return
		}
		g.lookupL2(cu, vpn, acc, done)
	})
}

// lookupL2 probes the shared L2 TLB; on a miss the IRMB is probed in
// parallel (Figure 9 Ⓐ/Ⓑ) and the demand miss enters the MSHR.
func (g *GPU) lookupL2(cu int, vpn memdef.VPN, acc workload.Access, done func()) {
	g.engine.Schedule(g.l2tlb.Latency(), func() {
		g.st.L2TLBLookups++
		if e, ok := g.l2tlb.Lookup(vpn); ok && (!acc.Write || e.Writable) {
			g.st.L2TLBHits++
			g.l1tlbs[cu].Fill(vpn, e)
			g.dataAccess(cu, vpn, acc, e, done)
			return
		}
		w := waiter{cu: cu, write: acc.Write, va: acc.VA, missStart: g.engine.Now(), done: done}
		switch g.mshr.Add(vpn, w) {
		case tlb.Merged:
			g.st.MSHRMerges++
		case tlb.Full:
			g.engine.Schedule(8, func() { g.lookupL2(cu, vpn, acc, done) })
		case tlb.Allocated:
			g.launchTranslation(vpn, acc.Write)
		}
	})
}

// launchTranslation resolves a demand miss: IRMB hit bypasses the local
// walk straight to a far fault (Figure 9 Ⓒ); otherwise the GMMU walks the
// local page table.
func (g *GPU) launchTranslation(vpn memdef.VPN, write bool) {
	if g.irmb != nil {
		g.st.IRMBLookups++
		if g.irmb.Lookup(vpn) || g.pendingWB[vpn] {
			// The local PTE is stale (buffered in the IRMB, or evicted from
			// it into a write-back walk that has not landed yet); walking
			// it would read a dead translation. Raise the far fault now.
			g.st.IRMBLookupHits++
			g.farFault(vpn, write)
			return
		}
	}
	g.gmmu.Demand(vpn, func(pagetable.PTE, bool) {
		// Use the PTE as of walk *completion*: an invalidation walk may
		// have retired while this walk was in flight.
		pte, ok := g.gmmu.PageTable().Lookup(vpn)
		if ok && pte.Valid {
			// Shootdown fence and IRMB staleness: a pending invalidation
			// for this page means the walked translation must not be used
			// or refilled into the TLBs.
			if g.shotDown[vpn] ||
				(g.irmb != nil && (g.irmb.Lookup(vpn) || g.pendingWB[vpn])) {
				g.farFault(vpn, write)
				return
			}
			g.translationReady(vpn, tlb.Entry{PFN: pte.PFN, Writable: pte.Writable})
			return
		}
		g.farFault(vpn, write)
	})
}

// farFault notifies the UVM driver (Figure 3 ❻). With Trans-FW, the fault
// is simultaneously forwarded to the PRT-predicted remote GPU; whichever
// translation arrives first unblocks the MSHR.
func (g *GPU) farFault(vpn memdef.VPN, write bool) {
	g.st.FarFaults++
	if g.prt != nil {
		g.st.PRTLookups++
		if holder, ok := g.prt.Lookup(vpn); ok && holder != g.ID && holder < len(g.peers) {
			g.st.PRTHits++
			g.forwardToPeer(vpn, holder)
		}
	}
	g.net.GPUToCPU(g.ID, memdef.ControlMsgBytes, func() {
		g.host.FarFault(g.ID, vpn, write)
	}, nil)
}

// forwardToPeer asks a remote GPU for its translation of vpn (Trans-FW).
// Trans-FW provisions a dedicated remote-lookup port at each GMMU, so the
// forwarded query reads the remote page table at a fixed cost instead of
// queueing behind the remote GPU's own demand walks.
func (g *GPU) forwardToPeer(vpn memdef.VPN, holder int) {
	peer := g.peers[holder]
	// Remote PT read: PWC-assisted, roughly one memory access plus port
	// overhead.
	const remoteLookupLatency = 150
	g.net.GPUToGPU(g.ID, holder, memdef.ControlMsgBytes, func() {
		// Executing in the holder's domain now: the lookup delay and the
		// page-table read belong to the holder's engine and state.
		peer.engine.Schedule(remoteLookupLatency, func() {
			pte, ok := peer.gmmu.PageTable().Lookup(vpn)
			if ok && peer.irmb != nil && (peer.irmb.Lookup(vpn) || peer.pendingWB[vpn]) {
				ok = false // the holder's own copy is pending invalidation
			}
			g.net.GPUToGPU(holder, g.ID, memdef.ControlMsgBytes, func() {
				if !ok || !pte.Valid {
					g.st.PRTFalsePositives++
					return // host path still in flight; it will resolve
				}
				if !g.mshr.Pending(vpn) {
					return // host path won already
				}
				// Install the forwarded translation and tell the driver so
				// the directory stays a superset of holders.
				epoch := g.invalEpoch[vpn]
				g.gmmu.UpdateUnless(vpn, pte, func() bool { return g.invalEpoch[vpn] != epoch }, nil)
				g.net.GPUToCPU(g.ID, memdef.ControlMsgBytes, func() {
					g.host.RecordResidency(g.ID, vpn)
				}, nil)
				g.translationReady(vpn, tlb.Entry{PFN: pte.PFN, Writable: pte.Writable})
			}, nil)
		})
	}, nil)
}

// translationReady fills the TLBs and releases every waiter merged on vpn.
func (g *GPU) translationReady(vpn memdef.VPN, e tlb.Entry) {
	waiters := g.mshr.Complete(vpn)
	g.l2tlb.Fill(vpn, e)
	for _, w := range waiters {
		g.st.DemandMiss.Add(g.engine.Now() - w.missStart)
		g.st.DemandMissHist.Add(g.engine.Now() - w.missStart)
		if w.write && !e.Writable {
			// Write to a read-only mapping (a replica): permission fault.
			w := w
			if g.mshr.Add(vpn, w) == tlb.Allocated {
				g.farFault(vpn, true)
			}
			continue
		}
		g.l1tlbs[w.cu].Fill(vpn, e)
		g.dataAccess(w.cu, vpn, workload.Access{VA: w.va, Write: w.write}, e, w.done)
	}
	// All waiters are dispatched (by value); the slice can go back to the
	// MSHR's free list. A permission-fault re-Add above draws a fresh slice,
	// never this one.
	g.mshr.Recycle(waiters)
}

// ---------------------------------------------------------------------------
// Data path: local hierarchy or remote mapping over NVLink (§3.2).
// ---------------------------------------------------------------------------

// dataAccess performs the memory access once translated.
func (g *GPU) dataAccess(cu int, vpn memdef.VPN, acc workload.Access, e tlb.Entry, done func()) {
	if g.OnTranslated != nil {
		g.OnTranslated(g.ID, vpn, e.PFN)
	}
	dev := e.PFN.Device()
	pa := memdef.PAddr(uint64(e.PFN)<<g.machine.PageSize.OffsetBits() |
		memdef.PageOffset(acc.VA, g.machine.PageSize))
	if dev == g.device() {
		g.st.LocalAccesses++
		g.data.Access(cu, pa, acc.Write, done)
		return
	}
	g.st.RemoteAccesses++
	g.countRemote(vpn)
	if dev.IsCPU() {
		g.net.GPUToCPU(g.ID, memdef.ControlMsgBytes, func() {
			// Host domain: the CPU's DRAM read and the reply send run there.
			g.hostDom.Schedule(g.machine.DRAMLatency, func() {
				g.net.CPUToGPU(g.ID, 2*memdef.CachelineBytes, done, nil)
			})
		}, nil)
		return
	}
	owner := dev.GPUIndex()
	// Request goes out on NVLink; the owner's remote-access engine serves
	// it from DRAM (remote data is not cached locally, §3.2). The engine
	// pool serializes fine-grained remote reads — the NUMA throughput
	// penalty that makes page migration worthwhile.
	peer := g
	if g.peers != nil && owner < len(g.peers) && g.peers[owner] != nil {
		peer = g.peers[owner]
	}
	occupancy := g.machine.RemoteEngineOccupancy
	g.net.GPUToGPU(g.ID, owner, memdef.ControlMsgBytes, func() {
		// Executing in the owner's domain: its DRAM timing, its remote-access
		// engine pool, and the reply send all belong to the owner's engine.
		respond := func() {
			peer.engine.Schedule(g.machine.DRAMLatency+g.machine.RemoteDRAMExtra, func() {
				g.net.GPUToGPU(owner, g.ID, 2*memdef.CachelineBytes, done, nil)
			})
		}
		if peer.remoteService == nil {
			respond()
			return
		}
		peer.remoteService.Acquire(func(release func()) {
			peer.engine.Schedule(occupancy, release)
			respond()
		})
	}, nil)
}

// countRemote advances the access counter and fires a migration request at
// the threshold (§3.3, access-counter policy only). Counters track aligned
// regions of MigrationBlockPages pages, matching the region-granular access
// counters of Volta-class GPUs; the request names the accessed page and the
// driver migrates its whole block.
func (g *GPU) region(vpn memdef.VPN) memdef.VPN {
	if g.machine.MigrationBlockPages > 1 {
		return vpn / memdef.VPN(g.machine.MigrationBlockPages)
	}
	return vpn
}

func (g *GPU) countRemote(vpn memdef.VPN) {
	if g.scheme.Policy != config.AccessCounter {
		return
	}
	region := g.region(vpn)
	g.counters[region]++
	if g.counters[region] < g.machine.AccessCounterThreshold {
		return
	}
	g.counters[region] = 0
	g.net.GPUToCPU(g.ID, memdef.ControlMsgBytes, func() {
		g.host.RequestMigration(g.ID, vpn)
	}, nil)
}

// ---------------------------------------------------------------------------
// Driver-facing port (driver.GPUPort).
// ---------------------------------------------------------------------------

// ReceiveInvalidation handles a PTE-invalidation request per the active
// scheme: TLB shootdown is always immediate (§6.3); the PTE path is a full
// walk (baseline), an IRMB insert (lazy), or free (zero-latency).
func (g *GPU) ReceiveInvalidation(vpn memdef.VPN, ack func()) {
	g.st.InvalReceived++
	receipt := g.engine.Now()
	g.shootdown(vpn)
	g.shotDown[vpn] = true
	g.invalEpoch[vpn]++
	delete(g.counters, g.region(vpn))
	if g.prt != nil {
		g.prt.InvalidateVPN(vpn)
	}
	g.invalidateDataCache(vpn)

	switch {
	case g.scheme.ZeroLatencyInval:
		if g.gmmu.PageTable().Invalidate(vpn) {
			g.st.InvalNecessary++
		} else {
			g.st.InvalUnnecessary++
		}
		// The PTE is already invalid; in-flight walks re-read it at
		// completion, so the fence can drop immediately.
		delete(g.shotDown, vpn)
		g.st.Inval.Add(0)
		ack()
	case g.irmb != nil:
		delete(g.shotDown, vpn) // the IRMB entry itself marks staleness
		g.irmbReceipt[vpn] = receipt
		wb := g.irmb.Insert(vpn)
		g.st.IRMBInserts++
		if len(wb) > 0 {
			g.st.IRMBEvictions++
			g.writebackBatch(wb)
		} else if !g.scheme.NoIdleDrain && g.gmmu.Idle() {
			// The walker is already idle; without this kick the entry would
			// sit buffered until some other walk's completion fires the
			// idle hook.
			g.engine.Schedule(1, g.drainIRMB)
		}
		// Buffered: the invalidation is out of the walker's way. Ack now.
		g.engine.Schedule(1, ack)
	default:
		g.gmmu.Invalidate(vpn, func(bool) {
			delete(g.shotDown, vpn) // invalidation retired; fence drops
			g.st.Inval.Add(g.engine.Now() - receipt)
			g.st.InvalHist.Add(g.engine.Now() - receipt)
			ack()
		})
	}
}

// shootdown removes vpn from every TLB level.
func (g *GPU) shootdown(vpn memdef.VPN) {
	g.l2tlb.Shootdown(vpn)
	for _, l1 := range g.l1tlbs {
		l1.Shootdown(vpn)
	}
}

// invalidateDataCache flushes locally cached lines of a page this GPU owns,
// since its bytes are about to move.
func (g *GPU) invalidateDataCache(vpn memdef.VPN) {
	pte, ok := g.gmmu.PageTable().Lookup(vpn)
	if !ok || !pte.Valid || pte.PFN.Device() != g.device() {
		return
	}
	base := memdef.PAddr(uint64(pte.PFN) << g.machine.PageSize.OffsetBits())
	g.data.InvalidatePage(base, g.machine.PageSize.Bytes())
}

// writebackBatch sends an evicted merged entry to the walker as one batch.
// Each VPN stays marked stale (pendingWB) until its own invalidation lands;
// a fresh mapping arriving meanwhile cancels that VPN's write-back entirely.
func (g *GPU) writebackBatch(vpns []memdef.VPN) {
	g.st.IRMBWritebacks += uint64(len(vpns))
	for _, v := range vpns {
		g.pendingWB[v] = true
	}
	g.gmmu.InvalidateBatchFiltered(vpns,
		func(v memdef.VPN) bool { return !g.pendingWB[v] },
		func(v memdef.VPN, _ bool) {
			delete(g.pendingWB, v)
			if t, ok := g.irmbReceipt[v]; ok {
				g.st.Inval.Add(g.engine.Now() - t)
				g.st.InvalHist.Add(g.engine.Now() - t)
				delete(g.irmbReceipt, v)
			}
		},
		nil)
}

// drainIRMB is the GMMU idle hook: push the LRU merged entry to the page
// table while the walker has nothing better to do (§6.3 "IRMB writeback").
func (g *GPU) drainIRMB() {
	if g.irmb == nil || g.irmb.Empty() || !g.gmmu.Idle() {
		return
	}
	batch := g.irmb.DrainLRU()
	g.st.IRMBDrains++
	g.writebackBatch(batch)
}

// ReceiveMapping installs a driver-provided translation: the IRMB entry (if
// any) is dropped — the PTE is about to be overwritten, no invalidation walk
// needed (§6.3) — the PTE update rides the walk queue, and blocked waiters
// release immediately since the translation itself is now known.
func (g *GPU) ReceiveMapping(vpn memdef.VPN, pte pagetable.PTE) {
	if g.irmb != nil {
		annihilated := g.irmb.Remove(vpn)
		if g.pendingWB[vpn] {
			// Cancel the in-flight write-back: the incoming update will
			// overwrite the stale PTE anyway.
			delete(g.pendingWB, vpn)
			annihilated = true
		}
		if annihilated {
			if t, ok := g.irmbReceipt[vpn]; ok {
				// The buffered invalidation was annihilated by the new
				// mapping: its whole cost was the IRMB insert.
				g.st.Inval.Add(g.engine.Now() - t)
				g.st.InvalHist.Add(g.engine.Now() - t)
				delete(g.irmbReceipt, vpn)
			}
		}
	}
	g.shootdown(vpn) // replace any stale cached translation (e.g. downgrades)
	delete(g.shotDown, vpn)
	delete(g.counters, g.region(vpn))
	epoch := g.invalEpoch[vpn]
	g.gmmu.UpdateUnless(vpn, pte, func() bool { return g.invalEpoch[vpn] != epoch }, nil)
	if g.mshr.Pending(vpn) {
		g.translationReady(vpn, tlb.Entry{PFN: pte.PFN, Writable: pte.Writable})
	}
}

// ReceivePRTInsert records a Trans-FW fingerprint update.
func (g *GPU) ReceivePRTInsert(vpn memdef.VPN, holder int) {
	if g.prt != nil && holder != g.ID {
		g.prt.Insert(vpn, holder)
	}
}

// Preinstall writes a pre-placed mapping into the local page table before
// simulation begins (see driver.Preinstall). TLBs stay cold.
func (g *GPU) Preinstall(vpn memdef.VPN, pte pagetable.PTE) {
	g.gmmu.PageTable().Map(vpn, pte)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
