package gpu

import (
	"testing"

	"idyll/internal/config"
	"idyll/internal/interconnect"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// fakeHost records GPU→driver traffic.
type fakeHost struct {
	faults     []memdef.VPN
	faultGPUs  []int
	writes     []bool
	migrations []memdef.VPN
	residency  []memdef.VPN
}

func (h *fakeHost) FarFault(gpu int, vpn memdef.VPN, write bool) {
	h.faults = append(h.faults, vpn)
	h.faultGPUs = append(h.faultGPUs, gpu)
	h.writes = append(h.writes, write)
}

func (h *fakeHost) RequestMigration(gpu int, vpn memdef.VPN) {
	h.migrations = append(h.migrations, vpn)
}

func (h *fakeHost) RecordResidency(gpu int, vpn memdef.VPN) {
	h.residency = append(h.residency, vpn)
}

// rig builds one GPU with a fake host on a single-domain cluster, where the
// domain plumbing degenerates to the plain engine the assertions drive.
func rig(t *testing.T, scheme config.Scheme) (*sim.Engine, *GPU, *fakeHost, *stats.Sim) {
	t.Helper()
	cl := pdes.NewCluster(1, 1)
	dom := cl.Domain(0)
	e := dom.Engine()
	m := config.Default()
	m.CUsPerGPU = 2
	m.OutstandingPerCU = 2
	m.AccessCounterThreshold = 4
	m.MigrationBlockPages = 1
	st := stats.NewSim()
	net := interconnect.NewNetwork(cl, interconnect.Config{
		NumGPUs: m.NumGPUs, NVLinkBytesPerCycle: 300, NVLinkLatency: 100,
		PCIeBytesPerCycle: 32, PCIeLatency: 300,
	})
	g := New(dom, 0, m, scheme, net, st)
	h := &fakeHost{}
	g.SetHost(h)
	g.SetWorkloadShape(4, 1)
	return e, g, h, st
}

// accessesTo builds a per-CU trace of repeated accesses to the given pages.
func accessesTo(cus int, pages []memdef.VPN, repeats int, write bool) [][]workload.Access {
	trace := make([][]workload.Access, cus)
	for c := range trace {
		for r := 0; r < repeats; r++ {
			for _, p := range pages {
				trace[c] = append(trace[c], workload.Access{VA: p.Addr(memdef.Page4K), Write: write})
			}
		}
	}
	return trace
}

func TestLocalAccessNeedsNoHost(t *testing.T) {
	e, g, h, st := rig(t, config.Baseline())
	g.Preinstall(5, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	done := false
	g.Run(accessesTo(1, []memdef.VPN{5}, 3, false), func() { done = true })
	e.Run()
	if !done {
		t.Fatal("GPU never finished")
	}
	if len(h.faults) != 0 {
		t.Fatalf("local access faulted: %v", h.faults)
	}
	if st.LocalAccesses != 3 {
		t.Fatalf("local accesses = %d", st.LocalAccesses)
	}
}

func TestUnmappedAccessFarFaults(t *testing.T) {
	e, g, h, _ := rig(t, config.Baseline())
	g.Run(accessesTo(1, []memdef.VPN{9}, 1, false), nil)
	e.RunUntil(5000)
	if len(h.faults) != 1 || h.faults[0] != 9 {
		t.Fatalf("faults = %v", h.faults)
	}
	// Reply unblocks the stalled access.
	g.ReceiveMapping(9, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 2), Valid: true, Writable: true})
	e.Run()
	if g.DoneAt() == 0 {
		t.Fatal("access never completed after mapping reply")
	}
}

func TestMSHRBlocksDuplicateFaults(t *testing.T) {
	e, g, h, st := rig(t, config.Baseline())
	// Both CUs, both slots, hammer the same unmapped page.
	g.Run(accessesTo(2, []memdef.VPN{3}, 2, false), nil)
	e.RunUntil(20000)
	if len(h.faults) != 1 {
		t.Fatalf("same-page faults = %d, want 1 (MSHR merging)", len(h.faults))
	}
	if st.MSHRMerges == 0 {
		t.Fatal("no MSHR merges recorded")
	}
	g.ReceiveMapping(3, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	e.Run()
	if st.Accesses != 4 {
		t.Fatalf("accesses = %d, want 4 (2 CUs x 2 accesses)", st.Accesses)
	}
}

func TestRemoteAccessCountsTowardMigration(t *testing.T) {
	e, g, h, st := rig(t, config.Baseline())
	// Map page 7 to remote GPU1 memory; threshold is 4.
	g.Preinstall(7, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(1), 1), Valid: true, Writable: true})
	g.Run(accessesTo(1, []memdef.VPN{7}, 6, false), nil)
	e.Run()
	if st.RemoteAccesses != 6 {
		t.Fatalf("remote accesses = %d", st.RemoteAccesses)
	}
	if len(h.migrations) != 1 || h.migrations[0] != 7 {
		t.Fatalf("migration requests = %v, want one for page 7", h.migrations)
	}
}

func TestFirstTouchPolicyNeverRequestsMigration(t *testing.T) {
	e, g, h, _ := rig(t, config.FirstTouchScheme())
	g.Preinstall(7, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(1), 1), Valid: true, Writable: true})
	g.Run(accessesTo(1, []memdef.VPN{7}, 10, false), nil)
	e.Run()
	if len(h.migrations) != 0 {
		t.Fatalf("first-touch requested migrations: %v", h.migrations)
	}
}

func TestBaselineInvalidationWalksAndAcks(t *testing.T) {
	e, g, _, st := rig(t, config.Baseline())
	g.Preinstall(11, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	acked := sim.VTime(-1)
	g.ReceiveInvalidation(11, func() { acked = e.Now() })
	e.Run()
	if acked < 400 {
		t.Fatalf("baseline ack at %d; must wait for the full PT walk", acked)
	}
	if st.InvalNecessary != 1 {
		t.Fatalf("necessary invals = %d", st.InvalNecessary)
	}
	if pte, _ := g.GMMU().PageTable().Lookup(11); pte.Valid {
		t.Fatal("PTE still valid")
	}
}

func TestLazyInvalidationAcksImmediately(t *testing.T) {
	e, g, _, st := rig(t, config.IDYLL())
	g.Preinstall(11, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	acked := sim.VTime(-1)
	g.ReceiveInvalidation(11, func() { acked = e.Now() })
	if acked != -1 {
		t.Fatal("ack before any simulated time")
	}
	e.RunUntil(2)
	if acked != 1 {
		t.Fatalf("lazy ack at %d, want 1 (buffered, not walked)", acked)
	}
	if st.IRMBInserts != 1 {
		t.Fatalf("IRMB inserts = %d", st.IRMBInserts)
	}
	// The drain-on-idle hook eventually writes the invalidation back.
	e.Run()
	if pte, _ := g.GMMU().PageTable().Lookup(11); pte.Valid {
		t.Fatal("drained invalidation never reached the PTE")
	}
}

func TestZeroLatencyInvalidationIsFree(t *testing.T) {
	e, g, _, st := rig(t, config.ZeroLatency())
	g.Preinstall(11, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	acked := false
	g.ReceiveInvalidation(11, func() { acked = true })
	if !acked {
		t.Fatal("zero-latency ack not immediate")
	}
	if pte, _ := g.GMMU().PageTable().Lookup(11); pte.Valid {
		t.Fatal("zero-latency PTE not invalidated instantly")
	}
	if st.WalkerInval != 0 {
		t.Fatal("zero-latency used the walker")
	}
	_ = e
}

func TestInvalidationShootsDownTLBs(t *testing.T) {
	e, g, h, _ := rig(t, config.Baseline())
	g.Preinstall(5, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	g.Run(accessesTo(1, []memdef.VPN{5}, 2, false), nil) // warms TLBs
	e.Run()
	g.ReceiveInvalidation(5, func() {})
	e.Run()
	// Next access to the page must miss the TLBs and walk → the PTE is now
	// invalid → far fault.
	g2 := g // continue on same GPU with a fresh access
	g2.access(0, workload.Access{VA: memdef.VPN(5).Addr(memdef.Page4K)}, func() {})
	e.RunUntil(e.Now() + 5000)
	if len(h.faults) == 0 {
		t.Fatal("post-shootdown access did not fault")
	}
}

// The heart of lazy invalidation: a demand miss that hits the IRMB must
// bypass the local walk and fault directly, never seeing the stale PTE.
func TestIRMBHitBypassesWalk(t *testing.T) {
	e, g, h, st := rig(t, config.IDYLL())
	g.Preinstall(13, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(1), 1), Valid: true, Writable: true})
	// Saturate the walker so the IRMB cannot drain before our access.
	for i := 0; i < 64; i++ {
		g.GMMU().Demand(memdef.VPN(1000+i), func(pagetable.PTE, bool) {})
	}
	g.ReceiveInvalidation(13, func() {})
	walksBefore := st.WalkerDemand
	g.access(0, workload.Access{VA: memdef.VPN(13).Addr(memdef.Page4K)}, func() {})
	e.RunUntil(e.Now() + 1500) // covers the PCIe delivery of the fault
	if st.IRMBLookupHits == 0 {
		t.Fatal("demand miss did not hit the IRMB")
	}
	if len(h.faults) != 1 || h.faults[0] != 13 {
		t.Fatalf("faults = %v, want direct far fault for 13", h.faults)
	}
	if st.WalkerDemand != walksBefore {
		t.Fatal("IRMB hit still launched a demand walk")
	}
	e.Run()
}

func TestReceiveMappingAnnihilatesBufferedInvalidation(t *testing.T) {
	e, g, _, _ := rig(t, config.IDYLL())
	g.Preinstall(17, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(1), 1), Valid: true, Writable: true})
	// Saturate walkers so the entry stays buffered.
	for i := 0; i < 32; i++ {
		g.GMMU().Demand(memdef.VPN(2000+i), func(pagetable.PTE, bool) {})
	}
	g.ReceiveInvalidation(17, func() {})
	if !g.IRMB().Lookup(17) {
		t.Fatal("invalidation not buffered")
	}
	newPTE := pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 9), Valid: true, Writable: true}
	g.ReceiveMapping(17, newPTE)
	if g.IRMB().Lookup(17) {
		t.Fatal("new mapping did not remove the buffered invalidation")
	}
	e.Run()
	// The fresh mapping must survive (no stale write-back destroyed it).
	pte, ok := g.GMMU().PageTable().Lookup(17)
	if !ok || !pte.Valid || pte.PFN != newPTE.PFN {
		t.Fatalf("fresh mapping lost: %+v,%v", pte, ok)
	}
}

func TestWriteToReadOnlyMappingFaultsAsWrite(t *testing.T) {
	e, g, h, _ := rig(t, config.ReplicationScheme())
	g.Preinstall(19, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: false})
	g.Run(accessesTo(1, []memdef.VPN{19}, 1, true), nil)
	e.RunUntil(20000)
	if len(h.faults) == 0 {
		t.Fatal("write to read-only mapping did not fault")
	}
	if !h.writes[len(h.writes)-1] {
		t.Fatal("permission fault not flagged as a write")
	}
}

func TestPRTInsertAndInvalidate(t *testing.T) {
	_, g, _, _ := rig(t, config.TransFWScheme())
	g.ReceivePRTInsert(23, 2)
	if holder, ok := g.PRT().Lookup(23); !ok || holder != 2 {
		t.Fatalf("PRT lookup = %d,%v", holder, ok)
	}
	g.ReceiveInvalidation(23, func() {})
	if _, ok := g.PRT().Lookup(23); ok {
		t.Fatal("invalidation did not clear the PRT fingerprint")
	}
}

func TestSharingRecorded(t *testing.T) {
	e, g, _, st := rig(t, config.Baseline())
	g.Preinstall(2, pagetable.PTE{PFN: memdef.MakePFN(memdef.GPUDevice(0), 1), Valid: true, Writable: true})
	g.Run(accessesTo(1, []memdef.VPN{2}, 4, false), nil)
	e.Run()
	if st.Sharing().Pages() != 1 {
		t.Fatalf("sharing tracker pages = %d", st.Sharing().Pages())
	}
}
