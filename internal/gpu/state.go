package gpu

import (
	"sort"

	"idyll/internal/checkpoint"
	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Checkpoint support. A GPU at a quiescent point has no access in flight
// (the MSHR's own SaveState asserts it), so its state is the translation and
// data structures plus the per-page bookkeeping maps. Maps are serialized in
// ascending VPN order so the byte stream is deterministic. Optional
// components (IRMB, PRT, remote-access engine) are presence-gated: the flag
// in the stream must agree with the scheme the restoring system was built
// from, which the content-addressed checkpoint key guarantees.

func sortedVPNs[V any](m map[memdef.VPN]V) []memdef.VPN {
	vpns := make([]memdef.VPN, 0, len(m))
	for vpn := range m {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// SaveState writes the GPU's full architectural state to w.
func (g *GPU) SaveState(w *checkpoint.Writer) {
	w.Int(len(g.l1tlbs))
	for _, t := range g.l1tlbs {
		t.SaveState(w)
	}
	g.l2tlb.SaveState(w)
	g.mshr.SaveState(w)
	g.gmmu.SaveState(w)
	g.data.SaveState(w)

	w.Bool(g.irmb != nil)
	if g.irmb != nil {
		g.irmb.SaveState(w)
	}
	w.Bool(g.prt != nil)
	if g.prt != nil {
		g.prt.SaveState(w)
	}
	w.Bool(g.remoteService != nil)
	if g.remoteService != nil {
		g.remoteService.SaveState(w)
	}

	w.U32(uint32(len(g.counters)))
	for _, vpn := range sortedVPNs(g.counters) {
		w.U64(uint64(vpn))
		w.Int(g.counters[vpn])
	}
	w.U32(uint32(len(g.irmbReceipt)))
	for _, vpn := range sortedVPNs(g.irmbReceipt) {
		w.U64(uint64(vpn))
		w.I64(int64(g.irmbReceipt[vpn]))
	}
	w.U32(uint32(len(g.pendingWB)))
	for _, vpn := range sortedVPNs(g.pendingWB) {
		w.U64(uint64(vpn))
	}
	w.U32(uint32(len(g.shotDown)))
	for _, vpn := range sortedVPNs(g.shotDown) {
		w.U64(uint64(vpn))
	}
	w.U32(uint32(len(g.invalEpoch)))
	for _, vpn := range sortedVPNs(g.invalEpoch) {
		w.U64(uint64(vpn))
		w.U32(g.invalEpoch[vpn])
	}
	w.I64(int64(g.doneAt))
}

// RestoreState reads the state written by SaveState into g, which must be
// freshly constructed from the same machine and scheme.
func (g *GPU) RestoreState(r *checkpoint.Reader) {
	if n := r.Int(); n != len(g.l1tlbs) {
		r.Failf("gpu: %d L1 TLBs in checkpoint, %d configured", n, len(g.l1tlbs))
		return
	}
	for _, t := range g.l1tlbs {
		t.RestoreState(r)
	}
	g.l2tlb.RestoreState(r)
	g.mshr.RestoreState(r)
	g.gmmu.RestoreState(r)
	g.data.RestoreState(r)

	if has := r.Bool(); has != (g.irmb != nil) {
		r.Failf("gpu: IRMB presence %v in checkpoint, %v configured", has, g.irmb != nil)
		return
	}
	if g.irmb != nil {
		g.irmb.RestoreState(r)
	}
	if has := r.Bool(); has != (g.prt != nil) {
		r.Failf("gpu: PRT presence %v in checkpoint, %v configured", has, g.prt != nil)
		return
	}
	if g.prt != nil {
		g.prt.RestoreState(r)
	}
	if has := r.Bool(); has != (g.remoteService != nil) {
		r.Failf("gpu: remote-engine presence %v in checkpoint, %v configured",
			has, g.remoteService != nil)
		return
	}
	if g.remoteService != nil {
		g.remoteService.RestoreState(r)
	}

	clear(g.counters)
	for i, n := 0, r.Count(16); i < n && r.Err() == nil; i++ {
		vpn := memdef.VPN(r.U64())
		g.counters[vpn] = r.Int()
	}
	clear(g.irmbReceipt)
	for i, n := 0, r.Count(16); i < n && r.Err() == nil; i++ {
		vpn := memdef.VPN(r.U64())
		g.irmbReceipt[vpn] = sim.VTime(r.I64())
	}
	clear(g.pendingWB)
	for i, n := 0, r.Count(8); i < n && r.Err() == nil; i++ {
		g.pendingWB[memdef.VPN(r.U64())] = true
	}
	clear(g.shotDown)
	for i, n := 0, r.Count(8); i < n && r.Err() == nil; i++ {
		g.shotDown[memdef.VPN(r.U64())] = true
	}
	clear(g.invalEpoch)
	for i, n := 0, r.Count(12); i < n && r.Err() == nil; i++ {
		vpn := memdef.VPN(r.U64())
		g.invalEpoch[vpn] = r.U32()
	}
	g.doneAt = sim.VTime(r.I64())
}
