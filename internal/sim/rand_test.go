package sim

import (
	"math"
	"testing"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestZipfRankZeroHottest(t *testing.T) {
	r := NewRand(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
	// With s=1 over 100 ranks, rank 0 should carry roughly 1/H_100 ≈ 19%.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 mass = %v, want ~0.19", frac)
	}
}

func TestZipfAllRanksReachable(t *testing.T) {
	r := NewRand(13)
	z := NewZipf(r, 5, 0.5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		rank := z.Rank()
		if rank < 0 || rank >= 5 {
			t.Fatalf("rank %d out of range", rank)
		}
		seen[rank] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d/5 ranks sampled", len(seen))
	}
}
