package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []VTime
	for _, d := range []VTime{30, 10, 20, 10, 0} {
		d := d
		e.Schedule(d, func() { order = append(order, e.Now()) })
	}
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []VTime{0, 10, 10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, order[i], want[i])
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle order %v not FIFO", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []VTime
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() {
			hits = append(hits, e.Now())
			e.Schedule(0, func() { hits = append(hits, e.Now()) })
		})
	})
	e.Run()
	want := []VTime{1, 3, 3}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestEngineZeroDelayRunsAfterCurrentCycleEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(0, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.Schedule(0, func() { order = append(order, "b") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for _, d := range []VTime{5, 10, 15, 20} {
		e.Schedule(d, func() { count++ })
	}
	e.RunUntil(12)
	if count != 2 {
		t.Fatalf("ran %d events by t=12, want 2", count)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 4 {
		t.Fatalf("ran %d events total, want 4", count)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(10, func() { ran = true })
	e.Cancel(id)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Fired() != 0 {
		t.Fatalf("fired = %d, want 0", e.Fired())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("after one step n = %d, want 1", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after two steps n = %d, want 2", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

// RunBatch must fire events in exactly the order Run would — batching is a
// cancellation point, never a semantic change.
func TestEngineRunBatchMatchesRun(t *testing.T) {
	build := func() (*Engine, *[]VTime) {
		e := NewEngine()
		order := &[]VTime{}
		var chain func()
		chain = func() {
			*order = append(*order, e.Now())
			if len(*order) < 20 {
				e.Schedule(VTime(len(*order)%3), chain)
			}
		}
		for _, d := range []VTime{30, 10, 20, 10, 0} {
			e.Schedule(d, chain)
		}
		return e, order
	}

	ref, refOrder := build()
	ref.Run()

	for _, batch := range []int{1, 3, 7, 1000} {
		e, order := build()
		steps := 0
		for e.RunBatch(batch) {
			steps++
			if steps > 10000 {
				t.Fatalf("RunBatch(%d) did not terminate", batch)
			}
		}
		if len(*order) != len(*refOrder) {
			t.Fatalf("RunBatch(%d) fired %d events, Run fired %d",
				batch, len(*order), len(*refOrder))
		}
		for i := range *refOrder {
			if (*order)[i] != (*refOrder)[i] {
				t.Fatalf("RunBatch(%d) event %d at t=%d, Run had t=%d",
					batch, i, (*order)[i], (*refOrder)[i])
			}
		}
		if e.Now() != ref.Now() || e.Fired() != ref.Fired() {
			t.Fatalf("RunBatch(%d) end state (now=%d fired=%d) != Run (now=%d fired=%d)",
				batch, e.Now(), e.Fired(), ref.Now(), ref.Fired())
		}
	}
}

func TestEngineRunBatchReportsPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(VTime(i), func() {})
	}
	if !e.RunBatch(3) {
		t.Fatal("RunBatch(3) with 2 events left reported drained")
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if e.RunBatch(3) {
		t.Fatal("RunBatch reported more work after draining the queue")
	}
	if e.RunBatch(3) {
		t.Fatal("RunBatch on an empty queue reported work")
	}
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and all of them fire.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []VTime
		for _, d := range delays {
			e.Schedule(VTime(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("empty engine reported a next event")
	}
	e.Schedule(ringWindow+50, func() {}) // far heap only
	if at, ok := e.NextAt(); !ok || at != ringWindow+50 {
		t.Fatalf("NextAt = %d,%v; want far event at %d", at, ok, ringWindow+50)
	}
	e.Schedule(7, func() {}) // ring beats far
	if at, ok := e.NextAt(); !ok || at != 7 {
		t.Fatalf("NextAt = %d,%v; want ring event at 7", at, ok)
	}
	e.RunUntil(7)
	if at, ok := e.NextAt(); !ok || at != ringWindow+50 {
		t.Fatalf("NextAt after drain = %d,%v; want %d", at, ok, ringWindow+50)
	}
	e.Run()
	if _, ok := e.NextAt(); ok {
		t.Fatal("drained engine reported a next event")
	}
}

func TestEngineNextAtSkipsCancelled(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(3, func() {})
	e.Schedule(9, func() {})
	e.Cancel(id)
	if at, ok := e.NextAt(); !ok || at != 9 {
		t.Fatalf("NextAt = %d,%v; want 9 (cancelled slot skipped)", at, ok)
	}
}

// TestEngineRunUntilThenScheduleJustPast is the cursor-clamp regression: a
// RunUntil cut used to leave the ring cursor up to 63 cycles past the limit
// (bitmap word skipping), so an event scheduled into that overshoot span —
// exactly what the parallel engine's barrier injection does at window edges —
// landed behind the cursor and was silently dropped a full ring lap later.
func TestEngineRunUntilThenScheduleJustPast(t *testing.T) {
	for gap := VTime(1); gap <= 70; gap++ {
		e := NewEngine()
		e.Schedule(5, func() {}) // something to drain before the cut
		const limit = 100
		e.RunUntil(limit)
		fired := false
		e.ScheduleAt(limit+gap, func() { fired = true })
		e.RunUntil(limit + gap)
		if !fired {
			t.Fatalf("event at limit+%d never fired after a RunUntil(%d) cut", gap, limit)
		}
		if e.Now() != limit+gap {
			t.Fatalf("clock at %d, want %d", e.Now(), limit+gap)
		}
	}
}
