package sim

import (
	"container/heap"
	"math/rand"
	"runtime"
	"testing"
)

// refEvent / refHeap / refEngine are the pre-calendar-queue engine: a single
// binary heap ordered by (time, seq) with dead-marking Cancel. It is the
// ordering oracle for the differential tests — any divergence between it and
// Engine is a determinism bug in the two-tier queue.
type refEvent struct {
	at   VTime
	seq  uint64
	fn   func()
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now   VTime
	seq   uint64
	queue refHeap
}

func (e *refEngine) Schedule(delay VTime, fn func()) *refEvent {
	ev := &refEvent{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) RunUntil(limit VTime) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if limit >= 0 && next.at > limit {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		next.fn()
	}
}

// diffOp is one step of a randomized schedule script, interpreted identically
// against both engines.
type diffOp struct {
	delay  VTime // scheduling delay for this op's event
	nested VTime // if >= 0, the fired event schedules a child at this delay
	cancel int   // if >= 0, cancel the id recorded under this op index
}

// genOps builds a script whose delays straddle the bucket/heap horizon:
// mostly small (bucket path), some just around ringWindow (the migration
// edge), some far beyond it (heap path).
func genOps(r *rand.Rand, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		ops[i] = diffOp{delay: diffDelay(r), nested: -1, cancel: -1}
		if r.Intn(4) == 0 {
			ops[i].nested = diffDelay(r)
		}
		if i > 0 && r.Intn(5) == 0 {
			ops[i].cancel = r.Intn(i)
		}
	}
	return ops
}

func diffDelay(r *rand.Rand) VTime {
	switch r.Intn(10) {
	case 0, 1, 2, 3, 4: // dense near-future: the bucket fast path
		return VTime(r.Intn(64))
	case 5, 6: // mid-window
		return VTime(r.Intn(ringWindow))
	case 7, 8: // the horizon edge, both sides
		return ringWindow - 8 + VTime(r.Intn(16))
	default: // far future: heap path, exercises migration
		return ringWindow + VTime(r.Intn(4*ringWindow))
	}
}

// runDiff replays ops through both engines, interleaving RunUntil segments,
// and returns the two firing-order traces. Each fired event records (op
// index, time); nested children record (parent index + offset, time).
func runDiff(t *testing.T, seed int64, nOps int) (got, want [][2]int64) {
	ops := genOps(rand.New(rand.NewSource(seed)), nOps)

	{
		e := NewEngine()
		ids := make([]EventID, len(ops))
		for i, op := range ops {
			i, op := i, op
			ids[i] = e.Schedule(op.delay, func() {
				got = append(got, [2]int64{int64(i), int64(e.Now())})
				if op.nested >= 0 {
					e.Schedule(op.nested, func() {
						got = append(got, [2]int64{int64(i) + 1_000_000, int64(e.Now())})
					})
				}
			})
			if op.cancel >= 0 {
				e.Cancel(ids[op.cancel])
			}
		}
		// Run in limit segments so the horizon is crossed mid-run.
		for limit := VTime(ringWindow / 2); e.Pending() > 0; limit += ringWindow / 2 {
			e.RunUntil(limit)
		}
	}

	{
		e := &refEngine{}
		ids := make([]*refEvent, len(ops))
		for i, op := range ops {
			i, op := i, op
			ids[i] = e.Schedule(op.delay, func() {
				want = append(want, [2]int64{int64(i), int64(e.now)})
				if op.nested >= 0 {
					e.Schedule(op.nested, func() {
						want = append(want, [2]int64{int64(i) + 1_000_000, int64(e.now)})
					})
				}
			})
			if op.cancel >= 0 {
				ids[op.cancel].dead = true
			}
		}
		for limit := VTime(ringWindow / 2); len(e.queue) > 0; limit += ringWindow / 2 {
			e.RunUntil(limit)
		}
	}
	return got, want
}

// TestEngineDifferentialVsHeap replays randomized schedule scripts — nested
// schedules, cancels, delays straddling the bucket/heap horizon, segmented
// RunUntil — through the calendar queue and the reference heap and requires
// identical firing orders.
func TestEngineDifferentialVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		got, want := runDiff(t, seed, 400)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at firing %d: got (op %d, t=%d), want (op %d, t=%d)",
					seed, i, got[i][0], got[i][1], want[i][0], want[i][1])
			}
		}
	}
}

// TestEngineHorizonBoundary pins the bucket↔heap boundary cases: an event
// exactly at now+ringWindow goes to the heap and must still interleave
// correctly with ring events, including same-cycle FIFO after migration.
func TestEngineHorizonBoundary(t *testing.T) {
	e := NewEngine()
	var order []int
	// Beyond horizon: heap path (seq 0).
	e.Schedule(ringWindow, func() { order = append(order, 0) })
	// In-window event that advances the clock so the horizon slides and the
	// heap event migrates into a bucket.
	e.Schedule(10, func() {
		// Now ringWindow is inside the new window [10, 10+ringWindow):
		// this schedule appends to the same bucket the migrated event is in,
		// and must fire after it (lower seq first).
		e.ScheduleAt(ringWindow, func() { order = append(order, 1) })
	})
	e.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("horizon interleave order = %v, want [0 1]", order)
	}
	if e.Now() != ringWindow {
		t.Fatalf("final time = %d, want %d", e.Now(), ringWindow)
	}
}

// TestEngineRunUntilAtHorizon checks that a limit cut between the window and
// a far-future event leaves the far event intact and the clock unmoved.
func TestEngineRunUntilAtHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(2*ringWindow, func() { fired++ })
	e.RunUntil(ringWindow)
	if fired != 1 || e.Pending() != 1 {
		t.Fatalf("after limited run: fired=%d pending=%d, want 1/1", fired, e.Pending())
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %d, want 5 (last executed event)", e.Now())
	}
	e.Run()
	if fired != 2 || e.Pending() != 0 {
		t.Fatalf("after full run: fired=%d pending=%d, want 2/0", fired, e.Pending())
	}
}

// TestEngineStepAcrossHorizon drives Step one event at a time across a
// window jump.
func TestEngineStepAcrossHorizon(t *testing.T) {
	e := NewEngine()
	var times []VTime
	e.Schedule(1, func() { times = append(times, e.Now()) })
	e.Schedule(3*ringWindow, func() { times = append(times, e.Now()) })
	for e.Step() {
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3*ringWindow {
		t.Fatalf("step times = %v, want [1 %d]", times, 3*ringWindow)
	}
}

// TestEngineCancelFarEvent cancels an event on the heap tier and one on the
// ring tier; neither may fire and both nodes recycle eagerly.
func TestEngineCancelFarEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	near := e.Schedule(4, func() { ran = true })
	far := e.Schedule(10*ringWindow, func() { ran = true })
	e.Cancel(near)
	e.Cancel(far)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after cancelling both, want 0", e.Pending())
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if st := e.Stats(); st.Cancelled != 2 || st.Recycled != 2 {
		t.Fatalf("stats = %+v, want 2 cancelled, 2 recycled", st)
	}
}

// TestEngineStaleCancelAfterReuse holds an EventID across its node's fire
// and reuse: the stale Cancel must be a no-op and the node's new occupant
// must still fire. This is the generation-check contract that makes eager
// pooling safe.
func TestEngineStaleCancelAfterReuse(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1, func() {})
	e.Run() // fires; node recycled to the pool

	ran := false
	fresh := e.Schedule(1, func() { ran = true }) // reuses the pooled node
	if fresh.n != stale.n {
		t.Skip("pool did not reuse the node; generation check not exercised")
	}
	e.Cancel(stale) // stale generation: must not touch the new occupant
	e.Run()
	if !ran {
		t.Fatal("stale Cancel killed a reused node's new event")
	}
	if e.Stats().Cancelled != 0 {
		t.Fatalf("stale cancel was counted: %+v", e.Stats())
	}
}

// TestEngineDoubleCancel checks Cancel idempotence under pooling: the second
// Cancel of the same id sees a bumped generation and is a no-op.
func TestEngineDoubleCancel(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(5, func() {})
	other := e.Schedule(5, func() {})
	e.Cancel(id)
	e.Cancel(id) // node is back in the pool; must not corrupt it
	_ = other
	e.Run()
	if got := e.Stats().Cancelled; got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1 (the uncancelled event)", e.Fired())
	}
}

// TestEngineMassCancelReleasesMemory schedules a large batch of events whose
// closures pin big buffers, cancels them all, and checks the heap shrinks
// back before their cycle ever arrives — the eager-recycle contract.
func TestEngineMassCancelReleasesMemory(t *testing.T) {
	e := NewEngine()
	const n = 2000
	ids := make([]EventID, n)
	for i := range ids {
		buf := make([]byte, 64<<10)
		ids[i] = e.Schedule(VTime(100+i%32), func() { _ = buf[0] })
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, id := range ids {
		e.Cancel(id)
	}
	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after mass cancel, want 0", e.Pending())
	}
	// The ~125 MB of closure-captured buffers must be gone without the
	// clock having advanced at all.
	if freed := int64(before.HeapInuse) - int64(after.HeapInuse); freed < int64(n)*(64<<10)/2 {
		t.Fatalf("mass cancel released only %d bytes of ~%d buffered", freed, n*(64<<10))
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %d during cancel", e.Now())
	}
}

// TestEnginePendingIsLive checks the O(1) pending counter against schedule /
// fire / cancel transitions on both tiers.
func TestEnginePendingIsLive(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func() {})
	b := e.Schedule(2*ringWindow, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(b)
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after far cancel, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", e.Pending())
	}
	_ = a
}

// TestEngineWindowLapReusesBuckets walks the clock through several full
// window laps so ring slots are reused for new cycles, checking order and
// count the whole way.
func TestEngineWindowLapReusesBuckets(t *testing.T) {
	e := NewEngine()
	fired := 0
	var last VTime = -1
	var step func()
	step = func() {
		if e.Now() < last {
			t.Fatalf("time went backwards: %d after %d", e.Now(), last)
		}
		last = e.Now()
		fired++
		if fired < 3000 {
			// 37 and 4096 are coprime, so successive events sweep every slot.
			e.Schedule(37, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if fired != 3000 {
		t.Fatalf("fired %d, want 3000", fired)
	}
	if want := VTime(2999 * 37); e.Now() != want {
		t.Fatalf("final time %d, want %d", e.Now(), want)
	}
}

// TestEnginePoolRoundTrip checks the pool counters: after a burst of
// schedule/fire cycles every node but the first few comes from the free
// list.
func TestEnginePoolRoundTrip(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Schedule(VTime(i%8), func() {})
		if i%16 == 15 {
			e.Run()
		}
	}
	e.Run()
	st := e.Stats()
	if st.Fired != 1000 {
		t.Fatalf("fired = %d, want 1000", st.Fired)
	}
	if st.PoolHits < 900 {
		t.Fatalf("pool hits = %d of 1000 schedules; pooling is not engaging", st.PoolHits)
	}
	if st.Recycled != 1000 {
		t.Fatalf("recycled = %d, want 1000", st.Recycled)
	}
}
