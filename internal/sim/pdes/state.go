package pdes

import (
	"idyll/internal/checkpoint"
	"idyll/internal/sim"
)

// Checkpoint support. A full drain is the strongest barrier there is: every
// engine's queue and every outbox is empty, so a quiescent cluster reduces
// to its per-domain clocks and counters plus the synchronization statistics.
// That is why system-level checkpoints land only at drain points — a
// mid-window snapshot would have to serialize staged message closures, which
// is impossible (see DESIGN.md "Checkpoint format & forking").

// AlignClocks advances every domain's engine to the cluster-wide maximum
// clock and returns it. A drained cluster leaves each domain's clock
// wherever its last event fired; before relaunching work (the phase barrier
// of a two-phase run) the clocks must agree, or a slow domain would post
// messages into a peer's past. Panics if anything is still pending.
func (c *Cluster) AlignClocks() sim.VTime {
	if c.Pending() != 0 {
		panic("pdes: AlignClocks with pending work")
	}
	var max sim.VTime
	for _, d := range c.domains {
		if now := d.eng.Now(); now > max {
			max = now
		}
	}
	for _, d := range c.domains {
		d.eng.AdvanceTo(max)
	}
	return max
}

// SaveState writes the cluster's quiescent state to w. It panics if any
// domain still has pending events or staged messages.
func (c *Cluster) SaveState(w *checkpoint.Writer) {
	if c.Pending() != 0 {
		panic("pdes: SaveState with pending events")
	}
	w.Int(len(c.domains))
	w.I64(int64(c.lookahead))
	for _, d := range c.domains {
		d.eng.SaveState(w)
		w.U64(d.outSeq)
	}
	w.U64(c.st.Windows)
	w.U64(c.st.Messages)
	w.Int(c.st.MaxBatch)
}

// RestoreState rebuilds the state written by SaveState into c, which must
// have the same domain layout (normally a freshly built cluster from the
// same machine and scheme — the domain count and lookahead derive from
// those, so matching configuration implies matching layout).
func (c *Cluster) RestoreState(r *checkpoint.Reader) {
	if n := r.Int(); n != len(c.domains) {
		r.Failf("pdes: %d domains in checkpoint, %d configured", n, len(c.domains))
		return
	}
	if la := r.I64(); la != int64(c.lookahead) {
		r.Failf("pdes: lookahead %d in checkpoint, %d configured", la, c.lookahead)
		return
	}
	for _, d := range c.domains {
		d.eng.RestoreState(r)
		d.outSeq = r.U64()
	}
	c.st.Windows = r.U64()
	c.st.Messages = r.U64()
	c.st.MaxBatch = r.Int()
}
