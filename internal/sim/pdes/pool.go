package pdes

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"idyll/internal/sim"
)

// workerPool runs one window's domains concurrently. Worker w owns the
// domain stripe w, w+workers, w+2*workers, ...; stripes are disjoint, so no
// two goroutines ever touch the same engine. The pool synchronizes with two
// atomic counters forming a sense-style barrier:
//
//   - round is bumped by the coordinator to release the workers into a
//     window (its limit published in limit beforehand);
//   - arrived is bumped by each worker when its stripe is done; the
//     coordinator waits for all of them before touching any engine.
//
// Both bumps are release/acquire edges under the Go memory model, so the
// plain fields (limit, stopped, the engines themselves) are data-race-free:
// everything a worker reads was written before the round bump, and
// everything the coordinator reads was written before the arrived bump.
// Workers spin with runtime.Gosched between polls — windows are short
// (microseconds), so parking on a channel would cost more than it saves.
type workerPool struct {
	c       *Cluster
	workers int

	limit   sim.VTime // window limit for the current round
	stopped bool      // set before the final round bump

	round   atomic.Uint64
	arrived atomic.Uint64

	// panics collects one recovered value per worker. A model panic inside
	// a worker must surface to the caller of Run — as it does under the
	// serial executor — not kill the process from an anonymous goroutine.
	panics []any
	wg     sync.WaitGroup
}

func newWorkerPool(c *Cluster, workers int) *workerPool {
	p := &workerPool{c: c, workers: workers, panics: make([]any, workers)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.run(w)
	}
	return p
}

// runWindow executes one window on the pool and re-raises any worker panic
// once every worker has parked again.
func (p *workerPool) runWindow(limit sim.VTime) {
	p.limit = limit
	p.arrived.Store(0)
	p.round.Add(1)
	for p.arrived.Load() != uint64(p.workers) {
		runtime.Gosched()
	}
	for w, r := range p.panics {
		if r != nil {
			p.stop()
			panic(fmt.Sprintf("pdes: domain worker %d: %v", w, r))
		}
	}
}

// stop releases the workers one final time with the stopped flag set and
// waits for them to exit. Idempotent.
func (p *workerPool) stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.round.Add(1)
	p.wg.Wait()
}

// run is one worker goroutine: wait for a round, run the stripe, report.
func (p *workerPool) run(w int) {
	defer p.wg.Done()
	var seen uint64
	for {
		for p.round.Load() == seen {
			runtime.Gosched()
		}
		seen++
		if p.stopped {
			return
		}
		p.runStripe(w)
		p.arrived.Add(1)
	}
}

// runStripe drains the worker's domains up to the window limit, converting
// a panic into a recorded value for the coordinator to re-raise.
func (p *workerPool) runStripe(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[w] = r
		}
	}()
	for i := w; i < len(p.c.domains); i += p.workers {
		p.c.domains[i].eng.RunUntil(p.limit)
	}
}
