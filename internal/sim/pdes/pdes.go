// Package pdes runs several sim.Engine instances as conservative parallel
// discrete-event simulation domains while keeping results byte-identical to
// a serial execution.
//
// # Model
//
// A Cluster owns a fixed set of Domains. Each Domain wraps one ordinary
// single-threaded sim.Engine plus per-destination outboxes; all concurrency
// lives in this package — the engines, and every model component scheduled
// on them, stay pure and single-threaded per domain.
//
// Execution proceeds in windows. At each barrier the coordinator computes
// the globally earliest pending event time t (Engine.NextAt across domains)
// and opens the window [t, t+lookahead): every domain may execute its own
// events in that span with no knowledge of the others, because a message
// sent at time s carries a delivery time >= s + lookahead, which lies at or
// beyond the window's end. This is the classical conservative
// (bounded-lag/BTB) synchronization argument; the lookahead comes from the
// interconnect — no cross-domain interaction is faster than the cheapest
// link (propagation plus at least one serialization cycle).
//
// # Byte identity
//
// Results are byte-identical between the serial executor (workers <= 1: the
// coordinator runs the domains of each window itself, in domain order) and
// the parallel executor (a worker pool runs them concurrently) because each
// domain's engine observes the identical schedule sequence either way:
//
//   - Within a window a domain touches only its own engine and state, so
//     its execution is independent of when sibling domains run.
//   - Cross-domain sends go through Post, which stamps each message with
//     (deliverAt, source domain, per-source sequence number) and stages it
//     in the sender's outbox; nothing reaches another domain mid-window.
//   - At the barrier the single-threaded coordinator drains all outboxes
//     and injects each destination's batch in sorted (deliverAt, source,
//     sequence) order — a total order independent of worker scheduling.
//
// Post panics if a message's delivery time lands inside the current window:
// such a message could not have been exchanged at the previous barrier, so
// the conservative premise would be broken (and results would depend on the
// executor). Domain layouts with genuinely zero-lookahead interactions must
// place the interacting components in one domain; a single-domain cluster
// degenerates to the plain serial engine with no barriers at all.
package pdes

import (
	"context"
	"fmt"

	"idyll/internal/sim"
)

// DomainID names a synchronization domain within its cluster.
type DomainID int

// message is one staged cross-domain event. src and seq implement the
// deterministic merge order; fn runs on the destination's engine.
type message struct {
	at  sim.VTime
	src DomainID
	seq uint64
	fn  func()
}

// Domain is one synchronization domain: a single-threaded engine plus
// outboxes for cross-domain sends. All of a domain's model state must be
// touched only by closures executing on its engine.
type Domain struct {
	id  DomainID
	cl  *Cluster
	eng *sim.Engine
	// out stages messages per destination domain until the next barrier.
	// Only this domain appends (during its own window); only the
	// coordinator drains (between windows).
	out    [][]message
	outSeq uint64
}

// ID reports the domain's identity.
func (d *Domain) ID() DomainID { return d.id }

// Cluster reports the cluster the domain belongs to.
func (d *Domain) Cluster() *Cluster { return d.cl }

// Engine exposes the domain's event engine for local scheduling.
func (d *Domain) Engine() *sim.Engine { return d.eng }

// Now reports the domain's local clock.
func (d *Domain) Now() sim.VTime { return d.eng.Now() }

// Schedule runs fn on this domain's engine delay cycles from its local now.
func (d *Domain) Schedule(delay sim.VTime, fn func()) sim.EventID {
	return d.eng.Schedule(delay, fn)
}

// ScheduleAt runs fn on this domain's engine at absolute local time t.
func (d *Domain) ScheduleAt(t sim.VTime, fn func()) sim.EventID {
	return d.eng.ScheduleAt(t, fn)
}

// Post schedules fn to run at absolute time at on domain dst. The delivery
// time must not land inside the current window (see the package comment);
// violating that panics, because it would make results executor-dependent.
// In a single-domain cluster Post degenerates to ScheduleAt.
func (d *Domain) Post(dst DomainID, at sim.VTime, fn func()) {
	c := d.cl
	if fn == nil {
		panic("pdes: nil message function")
	}
	if len(c.domains) == 1 {
		if dst != d.id {
			panic(fmt.Sprintf("pdes: post to domain %d of a single-domain cluster", dst))
		}
		d.eng.ScheduleAt(at, fn)
		return
	}
	if dst == d.id {
		// Same-domain traffic needs no mailbox and must not wait for a
		// barrier (it may be due before the window ends).
		d.eng.ScheduleAt(at, fn)
		return
	}
	if c.running && at < c.windowEnd {
		panic(fmt.Sprintf(
			"pdes: message from domain %d to %d delivers at %d inside the current window ending %d; "+
				"cross-domain latency below the cluster lookahead %d breaks conservative synchronization",
			d.id, dst, at, c.windowEnd, c.lookahead))
	}
	d.outSeq++
	d.out[dst] = append(d.out[dst], message{at: at, src: d.id, seq: d.outSeq, fn: fn})
}

// ClusterStats counts the synchronization work a run performed.
type ClusterStats struct {
	// Windows is how many barrier-to-barrier windows executed.
	Windows uint64
	// Messages is how many cross-domain messages were exchanged.
	Messages uint64
	// MaxBatch is the largest single-destination injection batch.
	MaxBatch int
}

// Cluster is a fixed set of domains advancing in conservative lockstep.
// Build with NewCluster, wire the model onto the domains, then Run once.
type Cluster struct {
	lookahead sim.VTime
	domains   []*Domain
	// stage is the coordinator's scratch for one destination's merge batch,
	// reused across barriers so exchanges do not allocate.
	stage []message
	// windowEnd is the exclusive end of the window being executed. Written
	// by the coordinator between windows; read by domains (possibly on
	// worker goroutines) during the window — the barrier's release edge
	// orders the write before every read.
	windowEnd sim.VTime
	running   bool
	st        ClusterStats
}

// NewCluster builds n domains with the given lookahead (cycles). With more
// than one domain the lookahead must be positive: zero lookahead means
// domains may interact within the same cycle, which conservative windows
// cannot express — merge such components into one domain instead.
func NewCluster(n int, lookahead sim.VTime) *Cluster {
	if n < 1 {
		panic("pdes: cluster needs at least one domain")
	}
	if n > 1 && lookahead < 1 {
		panic(fmt.Sprintf("pdes: lookahead %d with %d domains; conservative windows need lookahead >= 1", lookahead, n))
	}
	c := &Cluster{lookahead: lookahead}
	c.domains = make([]*Domain, n)
	for i := range c.domains {
		c.domains[i] = &Domain{
			id:  DomainID(i),
			cl:  c,
			eng: sim.NewEngine(),
			out: make([][]message, n),
		}
	}
	return c
}

// NumDomains reports the cluster's domain count.
func (c *Cluster) NumDomains() int { return len(c.domains) }

// Lookahead reports the cluster's synchronization lookahead.
func (c *Cluster) Lookahead() sim.VTime { return c.lookahead }

// Domain returns domain i.
func (c *Cluster) Domain(i int) *Domain { return c.domains[i] }

// Pending reports scheduled-but-unexecuted events across all domains,
// including messages still staged in outboxes.
func (c *Cluster) Pending() int {
	n := 0
	for _, d := range c.domains {
		n += d.eng.Pending()
		for _, out := range d.out {
			n += len(out)
		}
	}
	return n
}

// Stats returns a snapshot of the cluster's synchronization counters.
func (c *Cluster) Stats() ClusterStats { return c.st }

// EngineStats sums the engine-internal counters across all domains.
func (c *Cluster) EngineStats() sim.EngineStats {
	var t sim.EngineStats
	for _, d := range c.domains {
		es := d.eng.Stats()
		t.Fired += es.Fired
		t.RingScheduled += es.RingScheduled
		t.FarScheduled += es.FarScheduled
		t.Migrated += es.Migrated
		t.Cancelled += es.Cancelled
		t.Recycled += es.Recycled
		t.PoolHits += es.PoolHits
	}
	return t
}

// Run executes every domain to completion using the given number of worker
// goroutines (values below 2 select the serial executor). Results do not
// depend on workers; see the package comment.
func (c *Cluster) Run(workers int) {
	if err := c.RunCtx(context.Background(), workers); err != nil {
		panic("pdes: background context cancelled: " + err.Error())
	}
}

// serialBatchEvents is how many events the single-domain fast path fires
// between cancellation checks (mirrors the pre-PDES system loop).
const serialBatchEvents = 8192

// RunCtx is Run with cooperative cancellation: execution stops at the next
// barrier (or batch boundary, single-domain) once ctx is done, returning
// ctx.Err(). Cancellation cannot perturb results — a run either completes
// with output identical to an uncancelled run's, or returns an error.
func (c *Cluster) RunCtx(ctx context.Context, workers int) error {
	if c.running {
		panic("pdes: re-entrant cluster run")
	}
	c.running = true
	defer func() { c.running = false }()
	if ctx == nil {
		ctx = context.Background()
	}
	if len(c.domains) == 1 {
		eng := c.domains[0].eng
		for eng.RunBatch(serialBatchEvents) {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	var pool *workerPool
	if workers > len(c.domains) {
		workers = len(c.domains)
	}
	if workers > 1 {
		pool = newWorkerPool(c, workers)
		defer pool.stop()
	}
	// Messages posted during model setup (before any window) are staged in
	// outboxes; inject them now so they participate in window placement.
	c.exchange()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		next, ok := c.nextEventTime()
		if !ok {
			return nil
		}
		// The window start jumps straight to the earliest pending event, so
		// idle stretches cost one barrier regardless of their length.
		end := next + c.lookahead
		c.windowEnd = end
		c.st.Windows++
		if pool != nil {
			pool.runWindow(end - 1)
		} else {
			for _, d := range c.domains {
				d.eng.RunUntil(end - 1)
			}
		}
		c.exchange()
	}
}

// nextEventTime reports the earliest pending event time across all domains.
// Outboxes are always empty here (exchange drains them every barrier).
func (c *Cluster) nextEventTime() (sim.VTime, bool) {
	var min sim.VTime
	found := false
	for _, d := range c.domains {
		if t, ok := d.eng.NextAt(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// exchange drains every outbox and injects each destination's messages in
// sorted (deliverAt, source, sequence) order. It runs single-threaded
// between windows; iteration order over domains is fixed, so the injection
// sequence — and with it each engine's internal event numbering — is a pure
// function of the messages, not of the executor.
func (c *Cluster) exchange() {
	for dstID, dst := range c.domains {
		batch := c.stage[:0]
		for _, src := range c.domains {
			if out := src.out[dstID]; len(out) > 0 {
				batch = append(batch, out...)
				src.out[dstID] = out[:0]
			}
		}
		if len(batch) == 0 {
			continue
		}
		sortMessages(batch)
		for i := range batch {
			dst.eng.ScheduleAt(batch[i].at, batch[i].fn)
			batch[i].fn = nil
		}
		c.st.Messages += uint64(len(batch))
		if len(batch) > c.st.MaxBatch {
			c.st.MaxBatch = len(batch)
		}
		c.stage = batch[:0]
	}
}

// sortMessages orders a batch by (deliverAt, source domain, sequence).
// Insertion sort: batches are small (one window's traffic toward one
// domain), keys are strict-totally ordered — (src, seq) never repeats — and
// the hand-rolled loop avoids sort.Slice's closure and interface
// allocations on the per-window hot path.
func sortMessages(ms []message) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && messageAfter(ms[j], m) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// messageAfter reports whether a orders strictly after b.
func messageAfter(a, b message) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
