package pdes

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"idyll/internal/sim"
)

// traceEntry is one observed event firing, the unit of the differential
// tests: two runs are equivalent iff every domain logged the same sequence.
type traceEntry struct {
	At  sim.VTime
	Tag string
}

// script builds a randomized cross-domain workload on a fresh cluster and
// returns the per-domain logs (append-only, each written only by its own
// domain, so logging is race-free under any worker count).
//
// Each domain gets its own seeded PRNG consumed only inside its events:
// within a domain events fire in a deterministic order, so the stream of
// draws — and with it the whole generated event tree — is a pure function of
// (seed, domains, lookahead), independent of the executor.
func script(seed int64, domains int, lookahead sim.VTime, events int) (*Cluster, [][]traceEntry) {
	cl := NewCluster(domains, lookahead)
	logs := make([][]traceEntry, domains)
	rngs := make([]*rand.Rand, domains)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	var spawn func(d *Domain, depth int, tag string)
	spawn = func(d *Domain, depth int, tag string) {
		id := int(d.ID())
		logs[id] = append(logs[id], traceEntry{At: d.Now(), Tag: tag})
		if depth <= 0 {
			return
		}
		rng := rngs[id]
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			child := fmt.Sprintf("%s.%d", tag, i)
			if domains > 1 && rng.Intn(3) == 0 {
				// Cross-domain: the +rng skew lands deliveries exactly on,
				// just after, and well past barrier cycles.
				dst := DomainID(rng.Intn(domains))
				if dst == d.ID() {
					dst = (dst + 1) % DomainID(domains)
				}
				at := d.Now() + lookahead + sim.VTime(rng.Intn(3))
				dd := cl.Domain(int(dst))
				d.Post(dst, at, func() { spawn(dd, depth-1, child) })
			} else {
				delay := sim.VTime(rng.Intn(int(lookahead) + 5))
				d.Schedule(delay, func() { spawn(d, depth-1, child) })
			}
		}
	}
	for i := 0; i < domains; i++ {
		d := cl.Domain(i)
		for j := 0; j < events; j++ {
			tag := fmt.Sprintf("d%d/root%d", i, j)
			at := sim.VTime(rngs[i].Intn(50))
			d.ScheduleAt(at, func() { spawn(d, 4, tag) })
		}
	}
	return cl, logs
}

// TestParallelMatchesSerial is the core differential test: the same
// randomized script under the serial executor and under every worker count
// must produce identical per-domain event sequences. Run with -race to also
// exercise the pool's memory ordering.
func TestParallelMatchesSerial(t *testing.T) {
	for _, domains := range []int{2, 3, 5, 9} {
		for _, lookahead := range []sim.VTime{1, 7, 101} {
			for seed := int64(0); seed < 5; seed++ {
				clRef, ref := script(seed, domains, lookahead, 3)
				clRef.Run(1)
				refWindows := clRef.Stats().Windows
				for _, workers := range []int{2, 4, 8} {
					cl, got := script(seed, domains, lookahead, 3)
					cl.Run(workers)
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("domains=%d lookahead=%d seed=%d workers=%d: event sequences diverge from serial",
							domains, lookahead, seed, workers)
					}
					if cl.Stats().Windows != refWindows {
						t.Fatalf("domains=%d lookahead=%d seed=%d workers=%d: %d windows, serial ran %d",
							domains, lookahead, seed, workers, cl.Stats().Windows, refWindows)
					}
				}
			}
		}
	}
}

// TestBarrierMergeOrder pins the injection order at a barrier: messages for
// one destination sort by (deliverAt, source domain, per-source sequence),
// regardless of the order the sends happened in.
func TestBarrierMergeOrder(t *testing.T) {
	const L = 10
	cl := NewCluster(3, L)
	var order []string
	note := func(s string) func() { return func() { order = append(order, s) } }
	d0, d1, d2 := cl.Domain(0), cl.Domain(1), cl.Domain(2)
	// All sends target domain 0 with deliveries at L and L+1. Sources post
	// from their t=0 events; the higher-source, earlier-time message must
	// still beat the lower-source, later-time one.
	d2.ScheduleAt(0, func() {
		cl.Domain(2).Post(0, L, note("src2-seq1@L"))
		cl.Domain(2).Post(0, L, note("src2-seq2@L"))
	})
	d1.ScheduleAt(0, func() {
		cl.Domain(1).Post(0, L+1, note("src1@L+1"))
		cl.Domain(1).Post(0, L, note("src1@L"))
	})
	d0.ScheduleAt(0, func() {})
	cl.Run(1)
	want := []string{"src1@L", "src2-seq1@L", "src2-seq2@L", "src1@L+1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("merge order = %v, want %v", order, want)
	}
}

// TestBarrierBoundaryDeliveries walks deliveries across a window edge: a
// message at exactly now+lookahead (the earliest legal slot, landing exactly
// on the next window's opening cycle) and ones just after must all fire at
// their exact times.
func TestBarrierBoundaryDeliveries(t *testing.T) {
	const L = 10
	cl := NewCluster(2, L)
	arrivals := map[string]sim.VTime{}
	d0, d1 := cl.Domain(0), cl.Domain(1)
	d0.ScheduleAt(5, func() {
		d0.Post(1, 5+L, func() { arrivals["exact"] = d1.Now() })
		d0.Post(1, 5+L+1, func() { arrivals["after"] = d1.Now() })
		d0.Post(1, 5+3*L, func() { arrivals["far"] = d1.Now() })
	})
	cl.Run(1)
	want := map[string]sim.VTime{"exact": 15, "after": 16, "far": 35}
	if !reflect.DeepEqual(arrivals, want) {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
}

// TestPostInsideWindowPanics pins the conservatism guard: a cross-domain
// delivery inside the currently executing window breaks the premise that all
// of a window's inputs were known at its opening barrier.
func TestPostInsideWindowPanics(t *testing.T) {
	const L = 10
	cl := NewCluster(2, L)
	d0 := cl.Domain(0)
	var recovered any
	d0.ScheduleAt(5, func() {
		defer func() { recovered = recover() }()
		// Window is [5, 15); delivery at 14 lands inside it.
		d0.Post(1, 14, func() {})
	})
	cl.Run(1)
	if recovered == nil {
		t.Fatal("sub-lookahead post did not panic")
	}
	if !strings.Contains(fmt.Sprint(recovered), "conservative synchronization") {
		t.Fatalf("wrong panic: %v", recovered)
	}
}

// TestSameDomainPostBypassesBarrier: a Post to the sending domain is plain
// local scheduling and may land inside the window.
func TestSameDomainPostBypassesBarrier(t *testing.T) {
	cl := NewCluster(2, 10)
	d0 := cl.Domain(0)
	var at sim.VTime = -1
	d0.ScheduleAt(5, func() {
		d0.Post(0, 6, func() { at = d0.Now() })
	})
	cl.Domain(1).ScheduleAt(0, func() {})
	cl.Run(1)
	if at != 6 {
		t.Fatalf("same-domain post fired at %d, want 6", at)
	}
}

// TestZeroLookaheadRejected: conservative windows cannot express
// same-cycle cross-domain interaction.
func TestZeroLookaheadRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(4, 0) did not panic")
		}
	}()
	NewCluster(4, 0)
}

// TestSingleDomainDegenerate: one domain needs no barriers, allows any
// lookahead >= 0 semantics via plain scheduling, and rejects cross-domain
// posts outright.
func TestSingleDomainDegenerate(t *testing.T) {
	cl := NewCluster(1, 1)
	d := cl.Domain(0)
	var order []string
	d.ScheduleAt(3, func() { order = append(order, "a") })
	d.Post(0, 1, func() { order = append(order, "b") })
	cl.Run(8) // worker count is irrelevant with one domain
	if !reflect.DeepEqual(order, []string{"b", "a"}) {
		t.Fatalf("order = %v", order)
	}
	if cl.Stats().Windows != 0 {
		t.Fatalf("single-domain run counted %d windows", cl.Stats().Windows)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-domain post in a single-domain cluster did not panic")
		}
	}()
	d.Post(1, 5, func() {})
}

// TestWorkerPanicPropagates: a panic inside a domain event on a worker
// goroutine must surface as a panic of the coordinator's Run, with the
// domain worker identified — idylld's per-job recover depends on this.
func TestWorkerPanicPropagates(t *testing.T) {
	cl := NewCluster(4, 5)
	for i := 0; i < 4; i++ {
		d := cl.Domain(i)
		d.ScheduleAt(1, func() {})
	}
	cl.Domain(2).ScheduleAt(2, func() { panic("boom in domain 2") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "boom in domain 2") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	cl.Run(4)
}

// TestRunCtxCancellation: cancellation between windows stops the run with
// ctx.Err() without corrupting cluster state.
func TestRunCtxCancellation(t *testing.T) {
	cl := NewCluster(2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	d0 := cl.Domain(0)
	// An endless ping-pong so the run can only end by cancellation.
	var ping func()
	n := 0
	ping = func() {
		n++
		if n == 100 {
			cancel()
		}
		d0.Schedule(1, ping)
	}
	d0.ScheduleAt(0, ping)
	cl.Domain(1).ScheduleAt(0, func() {})
	if err := cl.RunCtx(ctx, 2); err != context.Canceled {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if cl.Pending() == 0 {
		t.Fatal("cancelled run drained everything; ping-pong should still be pending")
	}
}

// TestPreRunPostsDelivered: messages staged before Run (model setup) are
// exchanged before the first window opens.
func TestPreRunPostsDelivered(t *testing.T) {
	cl := NewCluster(2, 10)
	d1 := cl.Domain(1)
	var at sim.VTime = -1
	cl.Domain(0).Post(1, 3, func() { at = d1.Now() })
	cl.Run(1)
	if at != 3 {
		t.Fatalf("pre-run post fired at %d, want 3", at)
	}
}

// TestPendingCountsOutboxes: Pending must see staged messages, or a
// drained-engines-plus-staged-work state would look finished.
func TestPendingCountsOutboxes(t *testing.T) {
	cl := NewCluster(2, 10)
	cl.Domain(0).Post(1, 3, func() {})
	if got := cl.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1 (staged message)", got)
	}
}

// TestNilPostRejected: a nil fn would vanish silently at injection.
func TestNilPostRejected(t *testing.T) {
	cl := NewCluster(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("nil post did not panic")
		}
	}()
	cl.Domain(0).Post(1, 3, nil)
}

// TestReentrantRunPanics: the cluster is single-use at a time.
func TestReentrantRunPanics(t *testing.T) {
	cl := NewCluster(2, 5)
	d0 := cl.Domain(0)
	var recovered any
	d0.ScheduleAt(0, func() {
		defer func() { recovered = recover() }()
		cl.Run(1)
	})
	cl.Domain(1).ScheduleAt(0, func() {})
	cl.Run(1)
	if recovered == nil {
		t.Fatal("re-entrant run did not panic")
	}
}

// TestEngineStatsSum: cluster-level engine stats are the sum over domains.
func TestEngineStatsSum(t *testing.T) {
	cl := NewCluster(3, 5)
	for i := 0; i < 3; i++ {
		d := cl.Domain(i)
		for j := 0; j < 4; j++ {
			d.ScheduleAt(sim.VTime(j), func() {})
		}
	}
	cl.Run(1)
	if got := cl.EngineStats().Fired; got != 12 {
		t.Fatalf("EngineStats.Fired = %d, want 12", got)
	}
	if cl.Stats().Messages != 0 {
		t.Fatalf("no cross-domain traffic, but Messages = %d", cl.Stats().Messages)
	}
}

// BenchmarkExchange measures the per-window barrier cost with light traffic:
// the gate for "PDES allocations per event" in CI runs on this path.
func BenchmarkExchange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl := NewCluster(4, 10)
		for d := 0; d < 4; d++ {
			dom := cl.Domain(d)
			next := DomainID((d + 1) % 4)
			var hop func()
			n := 0
			hop = func() {
				n++
				if n < 64 {
					dom.Post(next, dom.Now()+10, func() {})
					dom.Schedule(10, hop)
				}
			}
			dom.ScheduleAt(0, hop)
		}
		cl.Run(1)
	}
}
