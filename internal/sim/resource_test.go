package sim

import (
	"testing"
	"testing/quick"
)

// holdFor acquires the resource and holds a server for d cycles.
func holdFor(e *Engine, r *Resource, d VTime, done func()) bool {
	return r.Acquire(func(release func()) {
		e.Schedule(d, func() {
			release()
			if done != nil {
				done()
			}
		})
	})
}

func TestResourceServesUpToCapacityConcurrently(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2, -1)
	var finish []VTime
	for i := 0; i < 4; i++ {
		holdFor(e, r, 10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	// 2 servers, 4 jobs of 10 cycles: first two finish at 10, next two at 20.
	want := []VTime{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1, -1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func(release func()) {
			order = append(order, i)
			e.Schedule(1, release)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order %v not FIFO", order)
		}
	}
}

func TestResourceBoundedQueueRejects(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1, 2)
	accepted := 0
	for i := 0; i < 5; i++ {
		if holdFor(e, r, 10, nil) {
			accepted++
		}
	}
	// 1 running + 2 queued = 3 accepted, 2 rejected.
	if accepted != 3 {
		t.Fatalf("accepted %d jobs, want 3", accepted)
	}
	if r.Rejected() != 2 {
		t.Fatalf("rejected = %d, want 2", r.Rejected())
	}
	e.Run()
	if r.Busy() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not drained: busy=%d queue=%d", r.Busy(), r.QueueLen())
	}
}

func TestResourceOnIdleFiresWhenDrained(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2, -1)
	idleCalls := 0
	r.OnIdle = func() { idleCalls++ }
	for i := 0; i < 3; i++ {
		holdFor(e, r, 5, nil)
	}
	e.Run()
	// OnIdle fires on each release that leaves the queue empty: the releases
	// at t=5 (one of them drains the queue into the free server; the other
	// finds the queue empty) and the final release at t=10.
	if idleCalls == 0 {
		t.Fatal("OnIdle never fired")
	}
	if !r.Idle() {
		t.Fatal("resource should be idle after drain")
	}
}

func TestResourceDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1, -1)
	r.Acquire(func(release func()) {
		e.Schedule(1, func() {
			release()
			defer func() {
				if recover() == nil {
					t.Error("no panic on double release")
				}
			}()
			release()
		})
	})
	e.Run()
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1, -1)
	for i := 0; i < 3; i++ {
		holdFor(e, r, 2, nil)
	}
	e.Run()
	if r.TotalJobs() != 3 {
		t.Fatalf("total = %d, want 3", r.TotalJobs())
	}
	if r.QueuedJobs() != 2 {
		t.Fatalf("queued = %d, want 2", r.QueuedJobs())
	}
	if r.PeakQueueLen() != 2 {
		t.Fatalf("peak queue = %d, want 2", r.PeakQueueLen())
	}
}

// Property: with any job durations, every accepted job eventually completes
// and the number of simultaneously held servers never exceeds the pool size.
func TestResourceNeverOversubscribedProperty(t *testing.T) {
	prop := func(durations []uint8, servers8 uint8) bool {
		servers := int(servers8%4) + 1
		e := NewEngine()
		r := NewResource(e, servers, -1)
		completed := 0
		inFlight, peak := 0, 0
		for _, d := range durations {
			d := VTime(d % 20)
			r.Acquire(func(release func()) {
				inFlight++
				if inFlight > peak {
					peak = inFlight
				}
				e.Schedule(d, func() {
					inFlight--
					completed++
					release()
				})
			})
		}
		e.Run()
		return completed == len(durations) && peak <= servers
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
