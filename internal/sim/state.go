package sim

import "idyll/internal/checkpoint"

// Checkpoint support. Events are Go closures and cannot be serialized, so
// engine state is only checkpointable at quiescent points — Pending() == 0 —
// where the whole queue is empty and the engine reduces to a clock, a
// sequence counter, and its statistics. The system layer guarantees
// quiescence by draining the run to completion before checkpointing (see
// system.Checkpoint); these methods enforce it again locally so a misuse
// fails loudly instead of silently dropping events.

// SaveState writes the engine's quiescent state to w. It panics if events
// are still pending: a checkpoint that dropped them could never replay
// byte-identically.
func (e *Engine) SaveState(w *checkpoint.Writer) {
	if e.Pending() != 0 {
		panic("sim: SaveState with pending events")
	}
	w.I64(int64(e.now))
	w.U64(e.seq)
	// The free-list length travels so a restored engine reproduces the same
	// pool-hit sequence; the nodes themselves are interchangeable blanks.
	w.U32(uint32(len(e.pool)))
	w.U64(e.st.Fired)
	w.U64(e.st.RingScheduled)
	w.U64(e.st.FarScheduled)
	w.U64(e.st.Migrated)
	w.U64(e.st.Cancelled)
	w.U64(e.st.Recycled)
	w.U64(e.st.PoolHits)
}

// RestoreState rebuilds the state written by SaveState into e, which must be
// quiescent (normally a freshly constructed engine). The clock resumes at
// the checkpointed time: the ring window and cursor realign to it, and any
// stale occupancy bits self-reclaim on the first drain (popRing's
// bucket-cycle check), exactly as they do after a normal window lap.
func (e *Engine) RestoreState(r *checkpoint.Reader) {
	if e.Pending() != 0 {
		r.Failf("sim: RestoreState into an engine with pending events")
		return
	}
	now := VTime(r.I64())
	if now < e.now {
		r.Failf("sim: checkpoint clock %d behind engine clock %d", now, e.now)
		return
	}
	e.now = now
	e.winStart = now
	e.cursor = now
	e.seq = r.U64()
	poolLen := int(r.U32())
	if poolLen > 1<<22 {
		r.Failf("sim: implausible free-list length %d", poolLen)
		return
	}
	for len(e.pool) < poolLen {
		e.pool = append(e.pool, &eventNode{})
	}
	e.st.Fired = r.U64()
	e.st.RingScheduled = r.U64()
	e.st.FarScheduled = r.U64()
	e.st.Migrated = r.U64()
	e.st.Cancelled = r.U64()
	e.st.Recycled = r.U64()
	e.st.PoolHits = r.U64()
}

// AdvanceTo moves an idle engine's clock forward to t without firing
// anything — the phase barrier between a warmup drain and the remainder of a
// run, where every domain must resume from the same cycle. Panics if events
// are pending (they would be skipped) or t is in the past.
func (e *Engine) AdvanceTo(t VTime) {
	if e.Pending() != 0 {
		panic("sim: AdvanceTo with pending events")
	}
	if t < e.now {
		panic("sim: AdvanceTo into the past")
	}
	e.now = t
	e.winStart = t
	e.cursor = t
}

// SaveState writes the resource's statistics to w. At a quiescent point no
// server is held and nothing waits in the queue, so the counters are the
// entire state; both conditions are asserted into the stream so a
// non-quiescent save is caught at restore time.
func (r *Resource) SaveState(w *checkpoint.Writer) {
	w.Int(r.busy)
	w.Int(len(r.queue))
	w.Int(r.peakQueue)
	w.U64(r.totalJobs)
	w.U64(r.queuedJobs)
	w.U64(r.rejected)
}

// RestoreState rebuilds the statistics written by SaveState.
func (r *Resource) RestoreState(rd *checkpoint.Reader) {
	if busy := rd.Int(); busy != 0 {
		rd.Failf("sim: resource checkpointed with %d busy servers", busy)
		return
	}
	if queued := rd.Int(); queued != 0 {
		rd.Failf("sim: resource checkpointed with %d queued jobs", queued)
		return
	}
	r.peakQueue = rd.Int()
	r.totalJobs = rd.U64()
	r.queuedJobs = rd.U64()
	r.rejected = rd.U64()
}
