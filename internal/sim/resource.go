package sim

// Resource models a pool of identical servers fronted by a bounded FIFO
// queue — the shape of the GMMU's page-table walker (8 threads behind a
// 64-entry page-walk queue) and of the host-side walker.
//
// A job acquires a server by calling Acquire with a closure; the closure
// receives a release function that must be called exactly once when the job's
// (possibly multi-event) work is done. If all servers are busy the job waits
// in the FIFO. If the FIFO is full Acquire reports false and the caller must
// retry later (backpressure).
type Resource struct {
	engine   *Engine
	servers  int
	busy     int
	capacity int // queue capacity; <0 means unbounded
	queue    []func(release func())

	// dispatchFn is the Schedule target for every release, bound once so
	// releasing never allocates a method-value closure.
	dispatchFn func()
	// relFree recycles release states (and their bound closures) between
	// jobs; see makeRelease.
	relFree []*releaseState

	// OnIdle, if non-nil, is invoked whenever a server frees and the queue is
	// empty — i.e. the resource has spare capacity. The IRMB uses this hook to
	// drain merged invalidation entries "when the page table walker is
	// available" (§6.3).
	OnIdle func()

	// Stats
	peakQueue  int
	totalJobs  uint64
	queuedJobs uint64
	rejected   uint64
}

// releaseState is one pooled release callback. fn is built once, bound to
// the state, and handed to every job the state serves.
type releaseState struct {
	r        *Resource
	released bool
	fn       func()
}

// NewResource returns a resource with the given number of servers and queue
// capacity (queueCap < 0 means unbounded).
func NewResource(engine *Engine, servers, queueCap int) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	r := &Resource{engine: engine, servers: servers, capacity: queueCap}
	r.dispatchFn = r.dispatch
	if queueCap > 0 {
		r.queue = make([]func(release func()), 0, queueCap)
	}
	return r
}

// Servers reports the number of servers in the pool.
func (r *Resource) Servers() int { return r.servers }

// Busy reports how many servers are currently held.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports the number of jobs waiting for a server.
func (r *Resource) QueueLen() int { return len(r.queue) }

// PeakQueueLen reports the maximum queue length observed.
func (r *Resource) PeakQueueLen() int { return r.peakQueue }

// TotalJobs reports how many jobs have been accepted.
func (r *Resource) TotalJobs() uint64 { return r.totalJobs }

// QueuedJobs reports how many accepted jobs had to wait in the queue.
func (r *Resource) QueuedJobs() uint64 { return r.queuedJobs }

// Rejected reports how many Acquire calls were refused due to a full queue.
func (r *Resource) Rejected() uint64 { return r.rejected }

// Idle reports whether at least one server is free and nothing is queued.
func (r *Resource) Idle() bool { return r.busy < r.servers && len(r.queue) == 0 }

// Acquire requests a server for job. It reports false (and does not retain
// job) if the wait queue is full. Otherwise job will eventually run with a
// release function that must be called exactly once.
func (r *Resource) Acquire(job func(release func())) bool {
	if job == nil {
		panic("sim: nil resource job")
	}
	r.totalJobs++
	if r.busy < r.servers && len(r.queue) == 0 {
		r.busy++
		job(r.makeRelease())
		return true
	}
	if r.capacity >= 0 && len(r.queue) >= r.capacity {
		r.totalJobs--
		r.rejected++
		return false
	}
	r.queuedJobs++
	r.queue = append(r.queue, job)
	if len(r.queue) > r.peakQueue {
		r.peakQueue = len(r.queue)
	}
	return true
}

// makeRelease hands out the single-use release callback for a running job,
// drawing from the state pool. A state returns to the pool when released, so
// a double release is detected for as long as the state has not been handed
// to a later job (which covers the realistic bug: calling release twice in
// the same completion path).
func (r *Resource) makeRelease() func() {
	var s *releaseState
	if n := len(r.relFree); n > 0 {
		s = r.relFree[n-1]
		r.relFree[n-1] = nil
		r.relFree = r.relFree[:n-1]
		s.released = false
	} else {
		s = &releaseState{r: r}
		s.fn = func() {
			if s.released {
				panic("sim: double release of resource server")
			}
			s.released = true
			s.r.relFree = append(s.r.relFree, s)
			// Releasing and redispatching happens as a fresh event so that the
			// releasing job's stack unwinds first; this keeps call chains
			// shallow and ordering intuitive (same-cycle FIFO).
			s.r.engine.Schedule(0, s.r.dispatchFn)
		}
	}
	return s.fn
}

// dispatch hands a freed server to the next queued job, or fires OnIdle.
func (r *Resource) dispatch() {
	r.busy--
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue[len(r.queue)-1] = nil
		r.queue = r.queue[:len(r.queue)-1]
		r.busy++
		next(r.makeRelease())
		return
	}
	if r.OnIdle != nil && r.busy < r.servers {
		r.OnIdle()
	}
}
