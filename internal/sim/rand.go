package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (xoshiro256**) used by the workload generators. We avoid math/rand so that
// trace generation is identical across Go releases and so each generator can
// be seeded independently and cheaply.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed nonzero state even for small seeds.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It uses the alias-free inverse-CDF method over a
// precomputed cumulative table, which is exact and fast for the table sizes
// used by the workload generators (up to a few hundred thousand pages).
type Zipf struct {
	r   *Rand
	cum []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	inv := 1.0 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1.0
	return &Zipf{r: r, cum: cum}
}

// Rank samples a rank in [0, n), rank 0 being the hottest.
func (z *Zipf) Rank() int {
	u := z.r.Float64()
	// Binary search the cumulative table for the first entry >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
