// Package sim provides the deterministic discrete-event simulation engine
// that drives every timed component in the IDYLL reproduction: a binary-heap
// event queue with stable FIFO ordering among same-cycle events, a
// multi-server resource with a bounded FIFO queue (used for walker threads
// and host walkers), and a deterministic random number generator with a Zipf
// sampler for workload generation.
//
// All simulated time is expressed in VTime cycles of the 1 GHz GPU clock.
// The engine is strictly single-threaded: events are closures executed in
// (time, insertion) order, so a run with a fixed seed is bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// VTime is a point in simulated time, in cycles of the 1 GHz GPU clock.
type VTime int64

// event is a scheduled closure. seq breaks ties so that events scheduled
// earlier at the same cycle run first (stable FIFO within a cycle).
type event struct {
	at   VTime
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Engine is the discrete-event simulation core. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     VTime
	seq     uint64
	queue   eventHeap
	fired   uint64
	running bool
}

// NewEngine returns an engine positioned at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() VTime { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle, after all previously scheduled same-cycle events. It panics
// on negative delays, which always indicate a modelling bug.
func (e *Engine) Schedule(delay VTime, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t, which must not be in the past.
func (e *Engine) ScheduleAt(t VTime, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}
}

// Cancel marks a scheduled event dead so it will be skipped. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() VTime {
	return e.RunUntil(-1)
}

// RunUntil executes events with time <= limit (limit < 0 means no limit) and
// returns the time of the last executed event, or the current time if none
// executed. The engine's clock is left at the last executed event's time.
func (e *Engine) RunUntil(limit VTime) VTime {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if limit >= 0 && next.at > limit {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	return e.now
}

// Step executes the single earliest live event, if any, and reports whether
// one was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
