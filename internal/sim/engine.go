// Package sim provides the deterministic discrete-event simulation engine
// that drives every timed component in the IDYLL reproduction: a two-tier
// calendar event queue with stable FIFO ordering among same-cycle events, a
// multi-server resource with a bounded FIFO queue (used for walker threads
// and host walkers), and a deterministic random number generator with a Zipf
// sampler for workload generation.
//
// All simulated time is expressed in VTime cycles of the 1 GHz GPU clock.
// The engine is strictly single-threaded: events are closures executed in
// (time, insertion) order, so a run with a fixed seed is bit-reproducible.
//
// # Queue structure
//
// The queue is split by distance from the clock. Events within ringWindow
// cycles of the current time land in a ring of per-cycle FIFO buckets —
// the overwhelmingly common Schedule(0..k) case is an O(1) append, and
// firing is an O(1) pop off the current cycle's bucket. Events beyond the
// ring horizon wait in a binary heap and migrate into buckets as the clock
// advances past their admission point; each event migrates at most once.
// A per-slot occupancy bitmap lets the drain loop skip runs of empty
// cycles 64 at a time, so sparse stretches cost a few word tests rather
// than a per-cycle scan.
//
// Event nodes are pooled on a free list and recycled as soon as they fire
// or are cancelled. EventIDs carry a generation counter that is bumped on
// every recycle, so a stale EventID held across a node's reuse can never
// cancel the node's next occupant.
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// VTime is a point in simulated time, in cycles of the 1 GHz GPU clock.
type VTime int64

// ringWindow is the span of the per-cycle bucket ring, in cycles. Must be a
// power of two and a multiple of 64 (the occupancy bitmap word size). 4096
// covers every latency constant in the model (full page walks ~400 cycles,
// DRAM + interconnect round trips ~10^3); only long-tail timeouts take the
// heap path.
const ringWindow = 4096

// eventNode is a scheduled closure. seq breaks ties so that events scheduled
// earlier at the same cycle run first (stable FIFO within a cycle). Nodes
// live on the engine's free list between uses; gen distinguishes a node's
// successive occupants so stale EventIDs cannot cancel a reused node.
type eventNode struct {
	at  VTime
	seq uint64
	fn  func()
	gen uint64
	pos int  // index within its bucket slice or the far heap
	loc int8 // locNone, locRing, locFar
}

const (
	locNone int8 = iota
	locRing
	locFar
)

// eventHeap orders far-future events by (time, sequence).
type eventHeap []*eventNode

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (h *eventHeap) Push(x any) {
	n := x.(*eventNode)
	n.pos = len(*h)
	*h = append(*h, n)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// bucket is one cycle's FIFO of events. cycle tags which cycle the contents
// belong to, so a slot can detect leftovers from an earlier window lap (which
// are always fully consumed or cancelled, i.e. nil) and reclaim itself.
type bucket struct {
	cycle VTime
	ev    []*eventNode
	head  int
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// value is inert. An EventID whose event has fired (or been cancelled) is
// also inert: the generation check makes Cancel a no-op even if the
// underlying node has been recycled for a different event.
type EventID struct {
	n   *eventNode
	gen uint64
}

// EngineStats are the engine's internal counters, exposed for profiling the
// event path (see Engine.Stats).
type EngineStats struct {
	// Fired is how many events have executed.
	Fired uint64
	// RingScheduled / FarScheduled split schedules by which tier admitted
	// them: the O(1) bucket ring vs the far-future heap.
	RingScheduled uint64
	FarScheduled  uint64
	// Migrated counts heap events moved into the ring as the clock advanced.
	Migrated uint64
	// Cancelled counts events removed by Cancel before firing.
	Cancelled uint64
	// Recycled counts event nodes returned to the free list; PoolHits counts
	// schedules served from it (allocations avoided).
	Recycled uint64
	PoolHits uint64
}

// Engine is the discrete-event simulation core. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now VTime
	seq uint64

	// The ring covers cycles [winStart, winStart+ringWindow); slot is
	// cycle & (ringWindow-1). cursor is the lowest cycle that may still hold
	// undrained events; it never trails winStart. occ has one bit per slot.
	winStart VTime
	cursor   VTime
	ring     []bucket
	occ      []uint64
	ringLive int

	far eventHeap // events at >= winStart+ringWindow, live only

	pool    []*eventNode
	st      EngineStats
	running bool
}

// bucketSeedCap is each bucket's pre-sized capacity. Buckets holding more
// same-cycle events than this grow individually (and keep the grown storage
// across window laps, since drains reslice to length 0).
const bucketSeedCap = 8

// NewEngine returns an engine positioned at cycle 0 with an empty queue.
func NewEngine() *Engine {
	e := &Engine{
		ring: make([]bucket, ringWindow),
		occ:  make([]uint64, ringWindow/64),
	}
	// One arena backs every bucket's initial storage, so filling the ring
	// the first time costs zero allocations for cycles with up to
	// bucketSeedCap events.
	arena := make([]*eventNode, ringWindow*bucketSeedCap)
	for i := range e.ring {
		e.ring[i].ev = arena[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
	}
	return e
}

// Now reports the current simulated time.
func (e *Engine) Now() VTime { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.st.Fired }

// Stats returns a snapshot of the engine's internal counters.
func (e *Engine) Stats() EngineStats { return e.st }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return e.ringLive + len(e.far) }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle, after all previously scheduled same-cycle events. It panics
// on negative delays, which always indicate a modelling bug.
func (e *Engine) Schedule(delay VTime, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t, which must not be in the past.
func (e *Engine) ScheduleAt(t VTime, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	n := e.get()
	n.at = t
	n.seq = e.seq
	n.fn = fn
	e.seq++
	if t < e.winStart+ringWindow {
		e.st.RingScheduled++
		e.pushRing(n)
	} else {
		e.st.FarScheduled++
		n.loc = locFar
		heap.Push(&e.far, n)
	}
	return EventID{n: n, gen: n.gen}
}

// get takes a node from the free list, or allocates one.
func (e *Engine) get() *eventNode {
	if len(e.pool) > 0 {
		n := e.pool[len(e.pool)-1]
		e.pool[len(e.pool)-1] = nil
		e.pool = e.pool[:len(e.pool)-1]
		e.st.PoolHits++
		return n
	}
	return &eventNode{}
}

// recycle returns a node to the free list, bumping its generation so any
// outstanding EventID for the old occupant goes inert, and dropping fn so
// its captured state is immediately collectable.
func (e *Engine) recycle(n *eventNode) {
	n.fn = nil
	n.loc = locNone
	n.gen++
	e.pool = append(e.pool, n)
	e.st.Recycled++
}

// pushRing appends n to its cycle's bucket. Only cycles inside the current
// window reach here, so the slot's previous occupants (if from an earlier
// lap) are guaranteed consumed or cancelled.
func (e *Engine) pushRing(n *eventNode) {
	s := int(uint64(n.at) & (ringWindow - 1))
	b := &e.ring[s]
	if b.cycle != n.at {
		b.ev = b.ev[:0]
		b.head = 0
		b.cycle = n.at
	}
	n.loc = locRing
	n.pos = len(b.ev)
	b.ev = append(b.ev, n)
	e.occ[s>>6] |= 1 << (uint(s) & 63)
	e.ringLive++
}

// Cancel removes a scheduled event. The node is recycled immediately and its
// closure released, so a cancelled event holds no memory while waiting for
// its cycle to pass. Cancelling an already-fired or already-cancelled event
// (or the zero EventID) is a no-op.
func (e *Engine) Cancel(id EventID) {
	n := id.n
	if n == nil || n.gen != id.gen {
		return
	}
	switch n.loc {
	case locRing:
		s := int(uint64(n.at) & (ringWindow - 1))
		e.ring[s].ev[n.pos] = nil
		e.ringLive--
	case locFar:
		heap.Remove(&e.far, n.pos)
	default:
		return
	}
	e.st.Cancelled++
	e.recycle(n)
}

// advanceWindow slides the ring window forward to start at t and migrates
// newly admitted heap events into their buckets. Migration pops in (time,
// seq) order and bucket appends preserve it, so FIFO-within-cycle survives;
// any event scheduled into these cycles afterwards has a higher seq and
// lands behind the migrated ones.
func (e *Engine) advanceWindow(t VTime) {
	if t <= e.winStart {
		return
	}
	e.winStart = t
	if e.cursor < t {
		e.cursor = t
	}
	horizon := t + ringWindow
	for len(e.far) > 0 && e.far[0].at < horizon {
		n := heap.Pop(&e.far).(*eventNode)
		e.pushRing(n)
		e.st.Migrated++
	}
}

// popRing removes and returns the earliest live ring event at time <= limit
// (limit < 0 means no limit), or nil if the ring has none. It advances
// cursor past drained cycles, clearing their occupancy bits.
func (e *Engine) popRing(limit VTime) *eventNode {
	end := e.winStart + ringWindow
	for e.ringLive > 0 && e.cursor < end {
		if limit >= 0 && e.cursor > limit {
			// Word skips below may have overshot the limit by up to 63
			// cycles. Pull the cursor back to the first unexamined cycle:
			// events scheduled into (limit, cursor) after this cut — the
			// PDES barrier-injection pattern — must not be stranded behind
			// it. Cycles at or below limit were drained, so limit+1 is
			// exact, never lossy.
			e.cursor = limit + 1
			return nil
		}
		s := int(uint64(e.cursor) & (ringWindow - 1))
		w := e.occ[s>>6] >> (uint(s) & 63)
		if w == 0 {
			// Nothing in this bitmap word at or after cursor: skip to the
			// next word boundary.
			e.cursor += VTime(64 - (s & 63))
			continue
		}
		if d := bits.TrailingZeros64(w); d > 0 {
			e.cursor += VTime(d)
			continue // re-check limit at the new cycle
		}
		b := &e.ring[s]
		if b.cycle != e.cursor {
			// Stale occupancy from an earlier lap; the contents are all
			// consumed or cancelled. Reclaim and move on.
			b.ev, b.head = b.ev[:0], 0
			e.occ[s>>6] &^= 1 << (uint(s) & 63)
			e.cursor++
			continue
		}
		for b.head < len(b.ev) {
			n := b.ev[b.head]
			b.ev[b.head] = nil
			b.head++
			if n != nil {
				e.ringLive--
				n.loc = locNone
				return n
			}
		}
		b.ev, b.head = b.ev[:0], 0
		e.occ[s>>6] &^= 1 << (uint(s) & 63)
		e.cursor++
	}
	return nil
}

// popNext removes and returns the earliest live event at time <= limit, or
// nil. Ring events always precede heap events (the heap holds only times
// beyond the window), so the ring is authoritative while it has any.
func (e *Engine) popNext(limit VTime) *eventNode {
	for {
		if e.ringLive > 0 {
			if n := e.popRing(limit); n != nil {
				return n
			}
			if e.ringLive > 0 {
				return nil // limit cut inside the window
			}
			continue // ring went empty while scanning; consult the heap
		}
		if len(e.far) == 0 {
			return nil
		}
		t := e.far[0].at
		if limit >= 0 && t > limit {
			return nil
		}
		// Jump the window to the heap's minimum; its events migrate into
		// buckets and the next loop pass drains them in order.
		e.advanceWindow(t)
	}
}

// fireNext executes the earliest live event with time <= limit and reports
// whether one ran. The window slides before the closure runs, so anything
// the closure schedules sees a fully migrated ring.
func (e *Engine) fireNext(limit VTime) bool {
	n := e.popNext(limit)
	if n == nil {
		return false
	}
	if n.at != e.now {
		e.now = n.at
		e.advanceWindow(n.at)
	}
	fn := n.fn
	e.recycle(n)
	e.st.Fired++
	fn()
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() VTime {
	return e.RunUntil(-1)
}

// RunUntil executes events with time <= limit (limit < 0 means no limit) and
// returns the time of the last executed event, or the current time if none
// executed. The engine's clock is left at the last executed event's time.
func (e *Engine) RunUntil(limit VTime) VTime {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.fireNext(limit) {
	}
	return e.now
}

// Step executes the single earliest live event, if any, and reports whether
// one was executed.
func (e *Engine) Step() bool {
	return e.fireNext(-1)
}

// NextAt reports the time of the earliest scheduled event without executing
// or removing anything — the peek a conservative parallel coordinator needs
// to place the next synchronization window. It scans the ring from the
// cursor using the occupancy bitmap, skipping cancelled entries and stale
// buckets, and falls back to the far heap's minimum.
func (e *Engine) NextAt() (VTime, bool) {
	if e.ringLive > 0 {
		end := e.winStart + ringWindow
		for c := e.cursor; c < end; {
			s := int(uint64(c) & (ringWindow - 1))
			w := e.occ[s>>6] >> (uint(s) & 63)
			if w == 0 {
				c += VTime(64 - (s & 63))
				continue
			}
			if d := bits.TrailingZeros64(w); d > 0 {
				c += VTime(d)
				continue
			}
			b := &e.ring[s]
			if b.cycle == c {
				for i := b.head; i < len(b.ev); i++ {
					if b.ev[i] != nil {
						return c, true
					}
				}
			}
			c++
		}
		// ringLive > 0 guarantees a live event inside [cursor, end), so the
		// scan above cannot fall through; this is unreachable.
		panic("sim: ring accounting out of sync")
	}
	if len(e.far) > 0 {
		return e.far[0].at, true
	}
	return 0, false
}

// RunBatch executes up to n events and reports whether live events remain.
// Events fire in exactly the order Run would fire them — batch boundaries
// cannot reorder anything — so callers can interleave work (cancellation
// checks, progress) between batches without perturbing determinism.
func (e *Engine) RunBatch(n int) bool {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for i := 0; i < n; i++ {
		if !e.fireNext(-1) {
			return false
		}
	}
	return e.Pending() > 0
}
