// Package experiment regenerates every table and figure of the paper's
// evaluation (§2, §5, §7). Each FigureNN function runs the required
// (scheme × application) matrix on the simulator and returns a Table whose
// rows mirror the paper's plots: one row per application plus the "Ave."
// column the paper reports.
//
// Scale: the paper simulates full application runs on MGPUSim; we run
// calibrated synthetic traces (see internal/workload). Every figure is a
// ratio normalized to a baseline run of the same trace, which is robust to
// trace length. Scale (CUs per GPU, accesses per CU) is set by Options.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"idyll/internal/checkpoint/store"
	"idyll/internal/config"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// Options sets the execution scale of the experiment suite.
type Options struct {
	// CUsPerGPU scales each GPU's compute (Table 2 machine: 64; the default
	// experiment scale uses fewer so the full suite regenerates quickly —
	// contention ratios are preserved because walker/TLB geometry is
	// unchanged and trace pressure is set per CU).
	CUsPerGPU int
	// AccessesPerCU is the trace length per CU.
	AccessesPerCU int
	// Seed makes the whole suite deterministic.
	Seed uint64
	// Apps restricts the application list (nil = all of Table 3).
	Apps []string
	// CounterThreshold is the access-counter threshold applied during the
	// suite, expressed in the paper's units scaled by TraceScaleFactor:
	// the paper's 256 divided by the factor. Our traces are ~128× shorter
	// per hot page than the full application runs the paper simulates, so
	// a threshold of 2 reproduces the paper's migrations-per-kiloaccess
	// regime at default scale (see EXPERIMENTS.md "Calibration").
	CounterThreshold int
	// Jobs bounds how many simulation cells run concurrently
	// (0 = runtime.GOMAXPROCS(0)). Results are independent of Jobs: every
	// cell seeds its trace from (Seed, figure, app) alone — see CellSeed —
	// so Jobs=1 and Jobs=N render byte-identical tables.
	Jobs int
	// Par selects the parallel event engine inside each cell: the number of
	// goroutines executing a system's synchronization domains (values below
	// 2 run the serial executor). Like Jobs it is a pure execution knob —
	// results are byte-identical at any setting (CI enforces this) — so it is
	// excluded from Canonical and never part of result identity. Jobs and Par
	// compose: Jobs spreads cells across cores, Par spreads one cell's GPUs;
	// prefer Jobs when a pass has many cells, Par when a single large cell
	// dominates wall-clock.
	Par int
	// WarmupAccessesPerCU, when positive, splits every run into two phases:
	// each CU executes its first WarmupAccessesPerCU accesses, the system
	// drains to a barrier, and the remainder runs from there. The drain
	// barrier is part of the simulated schedule, so this is a *semantic*
	// parameter — results at W>0 differ from W=0 — and it is part of result
	// identity (canonical field warmup_accesses_per_cu). Its payoff: the
	// post-warmup state is checkpointable, so sweep cells sharing a warmup
	// prefix can fork from one cached checkpoint (see CheckpointStore).
	WarmupAccessesPerCU int
	// CheckpointStore, when non-nil and WarmupAccessesPerCU is positive,
	// caches warmup checkpoints content-addressed by WarmupKey, so repeated
	// or concurrent runs sharing a warmup prefix compute it once. Forking
	// from the store is byte-identical to running straight through
	// (CI-enforced), so like Jobs/Par it is an execution knob, never part of
	// result identity.
	CheckpointStore *store.Store
	// Progress, when non-nil, is called after each cell a runner pass
	// completes, with the finished count, the pass total, and a
	// "figure app/scheme" label. Calls are serialized, never concurrent.
	Progress func(done, total int, cell string)

	// ctx, when non-nil, cancels runs cooperatively: the event loop stops
	// between batches and RunCells stops dispatching cells. Set through
	// WithContext so the zero Options value stays valid.
	ctx context.Context
}

// WithContext returns a copy of o whose runs are cancellable through ctx:
// Run, RunParams, and RunCells all return ctx.Err() once it is done, and
// in-flight cells stop at the next event-loop batch boundary. Cancellation
// never perturbs results — a run either completes identically or errors.
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

// Context returns the options' cancellation context (never nil).
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// TraceScaleFactor is the trace-length scaling between the paper's full
// application runs and this suite's calibrated traces; the access-counter
// threshold is divided by it so migration *rates* match the paper's regime.
const TraceScaleFactor = 128

// DefaultOptions is the scale used by cmd/idyllbench and the benchmarks.
func DefaultOptions() Options {
	return Options{CUsPerGPU: 16, AccessesPerCU: 600, Seed: 20231028,
		CounterThreshold: 256 / TraceScaleFactor}
}

// QuickOptions is a reduced scale for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.CUsPerGPU, o.AccessesPerCU = 4, 200
	return o
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.AppAbbrs()
}

// Run executes one (machine, scheme, app) cell and returns its stats.
func Run(machine config.Machine, scheme config.Scheme, appAbbr string, o Options) (*stats.Sim, error) {
	app, err := workload.App(appAbbr)
	if err != nil {
		return nil, err
	}
	return RunParams(machine, scheme, app, o)
}

// RunParams is Run with explicit workload parameters.
func RunParams(machine config.Machine, scheme config.Scheme, app workload.Params, o Options) (*stats.Sim, error) {
	m := machine
	if o.CUsPerGPU > 0 {
		m.CUsPerGPU = o.CUsPerGPU
	}
	if o.CounterThreshold > 0 {
		m.AccessCounterThreshold = o.CounterThreshold
	}
	trace := workload.Generate(app, m.NumGPUs, m.CUsPerGPU, o.AccessesPerCU, o.Seed)
	return runSystem(o, m, scheme, trace)
}

// Table is a named grid of results: one row per series (scheme), one column
// per application, plus a geometric-mean "Ave." column (the paper reports
// averages over normalized performance).
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    []Row
}

// Row is one series of a table.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a series.
func (t *Table) AddRow(label string, values []float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Mean returns the arithmetic mean of a row's values (the paper's "Ave.").
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Get returns the value at (rowLabel, column), or an error.
func (t *Table) Get(rowLabel, column string) (float64, error) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("experiment: no column %q in %s", column, t.Title)
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			if col >= len(r.Values) {
				return 0, fmt.Errorf("experiment: row %q too short", rowLabel)
			}
			return r.Values[col], nil
		}
	}
	return 0, fmt.Errorf("experiment: no row %q in %s", rowLabel, t.Title)
}

// Render prints the table in the paper's row/column layout.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	width := 12
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%16.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
