package experiment

import (
	"fmt"

	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/memdef"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// appColumns builds the paper's column list with a trailing "Ave.".
func appColumns(apps []string) []string {
	return append(append([]string{}, apps...), "Ave.")
}

// withMean appends the arithmetic mean to a value row.
func withMean(values []float64) []float64 {
	return append(values, Mean(values))
}

// runPair runs baseline and one scheme for an app, returning both.
func runPair(m config.Machine, scheme config.Scheme, abbr string, o Options) (base, opt *stats.Sim, err error) {
	base, err = Run(m, config.Baseline(), abbr, o)
	if err != nil {
		return nil, nil, err
	}
	opt, err = Run(m, scheme, abbr, o)
	return base, opt, err
}

// Figure1 reproduces the motivation study: the fraction of execution time
// attributable to page-table invalidation handling on a 2-GPU system
// (measured as the execution time eliminated by zero-latency invalidation,
// the simulator equivalent of the uvm-eval profile).
func Figure1(o Options) (*Table, error) {
	m := config.Default()
	m.NumGPUs = 2
	apps := workload.Fig1Abbrs()
	t := &Table{
		Title:   "Figure 1: Page table invalidation overhead (2-GPU)",
		Caption: "fraction of execution time spent handling PTE invalidations",
		Columns: appColumns(apps),
	}
	var row []float64
	for _, abbr := range apps {
		base, zero, err := runPair(m, config.ZeroLatency(), abbr, o)
		if err != nil {
			return nil, err
		}
		overhead := 1 - float64(zero.ExecCycles)/float64(base.ExecCycles)
		if overhead < 0 {
			overhead = 0
		}
		row = append(row, overhead)
	}
	t.AddRow("Invalidation overhead", withMean(row))
	return t, nil
}

// Figure2 compares migration policies against access-counter migration:
// first-touch, on-touch, and the zero-latency-invalidation ideal.
func Figure2(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 2: Migration policies relative to access counter-based",
		Caption: "normalized performance (higher is better)",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.FirstTouchScheme(), config.OnTouchScheme(), config.ZeroLatency(),
	}
	rows := make([][]float64, len(schemes))
	for _, abbr := range apps {
		base, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		for i, s := range schemes {
			st, err := Run(m, s, abbr, o)
			if err != nil {
				return nil, err
			}
			rows[i] = append(rows[i], st.Speedup(base))
		}
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Table3 reports the application list with *measured* MPKI next to the
// paper's reported values.
func Table3(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Table 3: Applications (measured vs paper MPKI)",
		Columns: appColumns(apps),
	}
	var measured, paper []float64
	for _, abbr := range apps {
		st, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		app, _ := workload.App(abbr)
		measured = append(measured, st.MPKI())
		paper = append(paper, app.PaperMPKI)
	}
	t.AddRow("Measured MPKI", withMean(measured))
	t.AddRow("Paper MPKI", withMean(paper))
	return t, nil
}

// Figure4 reports the distribution of accesses to pages shared by k GPUs.
func Figure4(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 4: Distribution of accesses referencing shared pages",
		Caption: "fraction of accesses to pages accessed by k GPUs",
		Columns: appColumns(apps),
	}
	rows := make([][]float64, m.NumGPUs)
	for _, abbr := range apps {
		st, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		dist := st.Sharing().AccessDistribution(m.NumGPUs)
		for k := 1; k <= m.NumGPUs; k++ {
			rows[k-1] = append(rows[k-1], dist[k])
		}
	}
	labels := []string{"One GPU", "Shared by 2", "Shared by 3", "Shared by 4"}
	for k := 0; k < m.NumGPUs && k < len(labels); k++ {
		t.AddRow(labels[k], withMean(rows[k]))
	}
	return t, nil
}

// Figure5 reports the page-walker request mix: demand TLB misses vs
// necessary and unnecessary invalidation requests.
func Figure5(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 5: Walker request mix (baseline)",
		Caption: "fractions of all page-walker requests",
		Columns: appColumns(apps),
	}
	var demand, necessary, unnecessary []float64
	for _, abbr := range apps {
		st, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		total := float64(st.WalkerDemand + st.WalkerInval + st.WalkerUpdate)
		demand = append(demand, float64(st.WalkerDemand+st.WalkerUpdate)/total)
		necessary = append(necessary, float64(st.InvalNecessary)/total)
		unnecessary = append(unnecessary, float64(st.InvalUnnecessary)/total)
	}
	t.AddRow("TLB miss requests", withMean(demand))
	t.AddRow("Necessary invalidation", withMean(necessary))
	t.AddRow("Unnecessary invalidation", withMean(unnecessary))
	return t, nil
}

// Figure6 reports demand TLB-miss latency with invalidation contention
// removed (zero-latency invalidation), normalized to baseline, plus the
// actual baseline cycles the paper plots on the right axis.
func Figure6(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 6: Demand TLB miss latency without invalidation contention",
		Caption: "normalized latency (row 1), actual baseline/ideal cycles (rows 2-3)",
		Columns: appColumns(apps),
	}
	var rel, baseCyc, idealCyc []float64
	for _, abbr := range apps {
		base, zero, err := runPair(m, config.ZeroLatency(), abbr, o)
		if err != nil {
			return nil, err
		}
		rel = append(rel, zero.DemandMiss.Mean()/base.DemandMiss.Mean())
		baseCyc = append(baseCyc, base.DemandMiss.Mean())
		idealCyc = append(idealCyc, zero.DemandMiss.Mean())
	}
	t.AddRow("Eliminating invalidation (rel.)", withMean(rel))
	t.AddRow("Baseline actual cycles", withMean(baseCyc))
	t.AddRow("Ideal actual cycles", withMean(idealCyc))
	return t, nil
}

// Figure7 reports the migration waiting latency as a fraction of total
// migration latency, plus the actual mean cycles.
func Figure7(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 7: Page migration latency vs waiting latency",
		Caption: "waiting fraction of total migration latency; actual mean cycles",
		Columns: appColumns(apps),
	}
	var frac, total, wait []float64
	for _, abbr := range apps {
		st, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		frac = append(frac, st.MigrationWait.Mean()/st.MigrationTotal.Mean())
		total = append(total, st.MigrationTotal.Mean())
		wait = append(wait, st.MigrationWait.Mean())
	}
	t.AddRow("Waiting fraction", withMean(frac))
	t.AddRow("Migration latency (cycles)", withMean(total))
	t.AddRow("Waiting latency (cycles)", withMean(wait))
	return t, nil
}

// Figure11 is the headline result: normalized performance of Only Lazy,
// Only In-PTE Directory, IDYLL-InMem, IDYLL, and Zero-Latency Invalidation.
func Figure11(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 11: Performance of each scheme relative to baseline",
		Caption: "normalized performance (higher is better)",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.OnlyLazy(), config.OnlyInPTE(), config.IDYLLInMem(),
		config.IDYLL(), config.ZeroLatency(),
	}
	rows := make([][]float64, len(schemes))
	for _, abbr := range apps {
		base, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		for i, s := range schemes {
			st, err := Run(m, s, abbr, o)
			if err != nil {
				return nil, err
			}
			rows[i] = append(rows[i], st.Speedup(base))
		}
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Figure12 reports IDYLL's demand TLB-miss latency relative to baseline.
func Figure12(o Options) (*Table, error) {
	return relativeMetric(o, "Figure 12: Demand TLB miss request latency (IDYLL/baseline)",
		func(st *stats.Sim) float64 { return float64(st.DemandMiss.Sum) })
}

// Figure13 reports IDYLL's invalidation request latency and count relative
// to baseline.
func Figure13(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 13: Invalidation requests under IDYLL (relative to baseline)",
		Caption: "total latency and total number of invalidation requests",
		Columns: appColumns(apps),
	}
	var lat, num []float64
	for _, abbr := range apps {
		base, idyll, err := runPair(m, config.IDYLL(), abbr, o)
		if err != nil {
			return nil, err
		}
		lat = append(lat, float64(idyll.Inval.Sum)/float64(maxU64(uint64(base.Inval.Sum), 1)))
		num = append(num, float64(idyll.InvalReceived)/float64(maxU64(base.InvalReceived, 1)))
	}
	t.AddRow("Total latency", withMean(lat))
	t.AddRow("Total number", withMean(num))
	return t, nil
}

// Figure14 reports IDYLL's page-migration waiting latency vs baseline.
func Figure14(o Options) (*Table, error) {
	return relativeMetric(o, "Figure 14: Page migration waiting latency (IDYLL/baseline)",
		func(st *stats.Sim) float64 { return float64(st.MigrationWait.Sum) })
}

// relativeMetric builds a one-row table of IDYLL/baseline ratios of metric.
func relativeMetric(o Options, title string, metric func(*stats.Sim) float64) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{Title: title, Caption: "lower is better", Columns: appColumns(apps)}
	var row []float64
	for _, abbr := range apps {
		base, idyll, err := runPair(m, config.IDYLL(), abbr, o)
		if err != nil {
			return nil, err
		}
		b := metric(base)
		if b == 0 {
			b = 1
		}
		row = append(row, metric(idyll)/b)
	}
	t.AddRow("Relative", withMean(row))
	return t, nil
}

// Figure15 sweeps the IRMB geometry: (bases, offsets) of (16,8), (16,16),
// (32,8), (64,16) plus the default (32,16).
func Figure15(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 15: IDYLL with different IRMB sizes",
		Caption: "normalized performance; (bases, offsets)",
		Columns: appColumns(apps),
	}
	geoms := []core.Geometry{
		{Bases: 16, Offsets: 8}, {Bases: 16, Offsets: 16},
		{Bases: 32, Offsets: 8}, {Bases: 32, Offsets: 16}, {Bases: 64, Offsets: 16},
	}
	rows := make([][]float64, len(geoms))
	for _, abbr := range apps {
		base, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		for i, g := range geoms {
			s := config.IDYLL()
			s.IRMB = g
			st, err := Run(m, s, abbr, o)
			if err != nil {
				return nil, err
			}
			rows[i] = append(rows[i], st.Speedup(base))
		}
	}
	for i, g := range geoms {
		t.AddRow(fmt.Sprintf("(%d,%d)", g.Bases, g.Offsets), withMean(rows[i]))
	}
	return t, nil
}

// Figure16 evaluates IDYLL with 16 and 32 page-table-walker threads,
// normalized to a baseline with the same thread count.
func Figure16(o Options) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title:   "Figure 16: IDYLL with 16- and 32-threaded page table walk",
		Caption: "normalized to baseline with the same walker count",
		Columns: appColumns(apps),
	}
	for _, threads := range []int{16, 32} {
		m := config.Default()
		m.PTWThreads = threads
		var row []float64
		for _, abbr := range apps {
			base, idyll, err := runPair(m, config.IDYLL(), abbr, o)
			if err != nil {
				return nil, err
			}
			row = append(row, idyll.Speedup(base))
		}
		t.AddRow(fmt.Sprintf("%d threads", threads), withMean(row))
	}
	return t, nil
}

// Figure17 evaluates IDYLL with a 2048-entry, 64-way L2 TLB.
func Figure17(o Options) (*Table, error) {
	m := config.Default()
	m.L2TLBEntries = 2048
	m.L2TLBWays = 64
	apps := o.apps()
	t := &Table{
		Title:   "Figure 17: IDYLL with 2048-entry L2 TLB",
		Caption: "normalized to baseline with the same L2 TLB",
		Columns: appColumns(apps),
	}
	var row []float64
	for _, abbr := range apps {
		base, idyll, err := runPair(m, config.IDYLL(), abbr, o)
		if err != nil {
			return nil, err
		}
		row = append(row, idyll.Speedup(base))
	}
	t.AddRow("IDYLL", withMean(row))
	return t, nil
}

// scaleAppToGPUs keeps the input dataset constant as GPU count grows
// (§7.2: "we only increase the number of GPUs without changing the
// application's input dataset sizes").
func scaleAppToGPUs(app workload.Params, numGPUs int) workload.Params {
	app.PagesPerGPU = maxInt(256, app.PagesPerGPU*4/numGPUs)
	return app
}

// Figure18 evaluates IDYLL on 8- and 16-GPU systems.
func Figure18(o Options) (*Table, error) {
	return gpuCountStudy(o, "Figure 18: IDYLL with 8 and 16 GPUs",
		[]int{8, 16}, 11)
}

// Figure19 evaluates IDYLL with only 4 unused PTE bits on 8/16/32 GPUs,
// stressing the in-PTE directory's modular hash.
func Figure19(o Options) (*Table, error) {
	return gpuCountStudy(o, "Figure 19: IDYLL with 4 unused bits",
		[]int{8, 16, 32}, 4)
}

// gpuCountStudy runs IDYLL vs baseline at several GPU counts.
func gpuCountStudy(o Options, title string, gpuCounts []int, unusedBits int) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title:   title,
		Caption: "normalized to baseline with the same GPU count",
		Columns: appColumns(apps),
	}
	for _, n := range gpuCounts {
		m := config.Default()
		m.NumGPUs = n
		var row []float64
		for _, abbr := range apps {
			app, err := workload.App(abbr)
			if err != nil {
				return nil, err
			}
			app = scaleAppToGPUs(app, n)
			base, err := RunParams(m, config.Baseline(), app, o)
			if err != nil {
				return nil, err
			}
			s := config.IDYLL()
			s.UnusedBits = unusedBits
			st, err := RunParams(m, s, app, o)
			if err != nil {
				return nil, err
			}
			row = append(row, st.Speedup(base))
		}
		t.AddRow(fmt.Sprintf("%d-GPU", n), withMean(row))
	}
	return t, nil
}

// Figure20 studies the access-counter threshold: baseline and IDYLL at the
// paper's 256 and 512 (scaled by TraceScaleFactor), all normalized to the
// 256-scaled baseline.
func Figure20(o Options) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title: "Figure 20: IDYLL with 512 access counter threshold",
		Caption: fmt.Sprintf("thresholds are the paper's 256/512 divided by the trace scale factor %d",
			TraceScaleFactor),
		Columns: appColumns(apps),
	}
	thr256 := maxInt(1, 256/TraceScaleFactor)
	thr512 := maxInt(1, 512/TraceScaleFactor)
	m := config.Default()

	var base256Rows []*stats.Sim
	for _, abbr := range apps {
		o256 := o
		o256.CounterThreshold = thr256
		base, err := Run(m, config.Baseline(), abbr, o256)
		if err != nil {
			return nil, err
		}
		base256Rows = append(base256Rows, base)
	}
	addScheme := func(label string, scheme config.Scheme, thr int) error {
		var row []float64
		for i, abbr := range apps {
			oT := o
			oT.CounterThreshold = thr
			st, err := Run(m, scheme, abbr, oT)
			if err != nil {
				return err
			}
			row = append(row, st.Speedup(base256Rows[i]))
		}
		t.AddRow(label, withMean(row))
		return nil
	}
	if err := addScheme("256 IDYLL", config.IDYLL(), thr256); err != nil {
		return nil, err
	}
	if err := addScheme("512 baseline", config.Baseline(), thr512); err != nil {
		return nil, err
	}
	if err := addScheme("512 IDYLL", config.IDYLL(), thr512); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure21 evaluates IDYLL with 2 MB pages on enlarged inputs (§7.3).
//
// At 2 MB the UVM va_block is a single page, so the migration block is 1;
// and because one large page absorbs the access traffic of 512 small ones,
// the trace-scaled counter threshold rises accordingly. The generators'
// page-unit parameters are re-expressed in 2 MB pages with the enlarged
// input the paper uses (large footprint, false sharing within big pages
// arises naturally from the pools spanning fewer, bigger pages).
func Figure21(o Options) (*Table, error) {
	m := config.Default()
	m.PageSize = memdef.Page2M
	m.MigrationBlockPages = 1
	o2 := o
	// A 2 MB page absorbs the access traffic of 512 small pages, so the
	// trace-scaled threshold scales back up (×16 ≈ the paper's relative
	// conservativeness for big-page migration).
	o2.CounterThreshold = maxInt(1, o.CounterThreshold*16)
	apps := o.apps()
	t := &Table{
		Title:   "Figure 21: IDYLL with 2MB pages",
		Caption: "enlarged inputs; normalized to 2MB-page baseline",
		Columns: appColumns(apps),
	}
	var row []float64
	for _, abbr := range apps {
		app, err := workload.App(abbr)
		if err != nil {
			return nil, err
		}
		// Re-express footprints in 2 MB pages on an enlarged (16×) input:
		// 4 KB pages / 512 × 16 = /32. Hot pools shrink less (shared arrays
		// span fewer large pages — the false-sharing effect).
		app.PagesPerGPU = maxInt(64, app.PagesPerGPU/32)
		app.HotPages = maxInt(8, app.HotPages/2)
		base, err := RunParams(m, config.Baseline(), app, o2)
		if err != nil {
			return nil, err
		}
		st, err := RunParams(m, config.IDYLL(), app, o2)
		if err != nil {
			return nil, err
		}
		row = append(row, st.Speedup(base))
	}
	t.AddRow("IDYLL (2MB pages)", withMean(row))
	return t, nil
}

// Figure22 compares IDYLL against page replication.
func Figure22(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 22: IDYLL relative to page replication",
		Caption: "IDYLL performance normalized to the replication policy",
		Columns: appColumns(apps),
	}
	var row []float64
	for _, abbr := range apps {
		repl, err := Run(m, config.ReplicationScheme(), abbr, o)
		if err != nil {
			return nil, err
		}
		idyll, err := Run(m, config.IDYLL(), abbr, o)
		if err != nil {
			return nil, err
		}
		row = append(row, idyll.Speedup(repl))
	}
	t.AddRow("IDYLL vs replication", withMean(row))
	return t, nil
}

// Figure23 compares Trans-FW, IDYLL, and the combination.
func Figure23(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 23: Comparison to Trans-FW",
		Caption: "normalized to baseline",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.TransFWScheme(), config.IDYLL(), config.IDYLLTransFW(),
	}
	rows := make([][]float64, len(schemes))
	for _, abbr := range apps {
		base, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		for i, s := range schemes {
			st, err := Run(m, s, abbr, o)
			if err != nil {
				return nil, err
			}
			rows[i] = append(rows[i], st.Speedup(base))
		}
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Figure24 evaluates IDYLL on the layer-parallel DNN workloads.
func Figure24(o Options) (*Table, error) {
	m := config.Default()
	apps := workload.DNNApps()
	cols := make([]string, 0, len(apps)+1)
	for _, a := range apps {
		cols = append(cols, a.Abbr)
	}
	t := &Table{
		Title:   "Figure 24: IDYLL with DNN workloads",
		Caption: "normalized to baseline",
		Columns: append(cols, "Ave."),
	}
	var row []float64
	for _, app := range apps {
		base, err := RunParams(m, config.Baseline(), app, o)
		if err != nil {
			return nil, err
		}
		st, err := RunParams(m, config.IDYLL(), app, o)
		if err != nil {
			return nil, err
		}
		row = append(row, st.Speedup(base))
	}
	t.AddRow("IDYLL", withMean(row))
	return t, nil
}

// AblationDrainOnIdle quantifies the IRMB drain-on-idle design choice:
// IDYLL with idle-time write-back vs write-back only on eviction.
func AblationDrainOnIdle(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Ablation: IRMB drain-on-idle vs eviction-only write-back",
		Caption: "normalized to baseline",
		Columns: appColumns(apps),
	}
	var drain, noDrain []float64
	for _, abbr := range apps {
		base, err := Run(m, config.Baseline(), abbr, o)
		if err != nil {
			return nil, err
		}
		st, err := Run(m, config.IDYLL(), abbr, o)
		if err != nil {
			return nil, err
		}
		drain = append(drain, st.Speedup(base))
		s := config.IDYLL()
		s.NoIdleDrain = true
		st, err = Run(m, s, abbr, o)
		if err != nil {
			return nil, err
		}
		noDrain = append(noDrain, st.Speedup(base))
	}
	t.AddRow("Drain on idle (default)", withMean(drain))
	t.AddRow("Eviction-only", withMean(noDrain))
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
