package experiment

import (
	"fmt"

	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/memdef"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// Every FigureNN builds the figure's (scheme × application) matrix as cell
// specs, fans them out on the suite runner (see runner.go), and assembles
// the table from the results in registry order — so regeneration scales
// with cores while rendering byte-identical output at any -jobs width.

// appColumns builds the paper's column list with a trailing "Ave.".
func appColumns(apps []string) []string {
	return append(append([]string{}, apps...), "Ave.")
}

// withMean appends the arithmetic mean to a value row.
func withMean(values []float64) []float64 {
	return append(values, Mean(values))
}

// Figure1 reproduces the motivation study: the fraction of execution time
// attributable to page-table invalidation handling on a 2-GPU system
// (measured as the execution time eliminated by zero-latency invalidation,
// the simulator equivalent of the uvm-eval profile).
func Figure1(o Options) (*Table, error) {
	m := config.Default()
	m.NumGPUs = 2
	apps := workload.Fig1Abbrs()
	t := &Table{
		Title:   "Figure 1: Page table invalidation overhead (2-GPU)",
		Caption: "fraction of execution time spent handling PTE invalidations",
		Columns: appColumns(apps),
	}
	base, zero, err := pairRuns("fig1", o, m, config.ZeroLatency(), apps)
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		overhead := 1 - float64(zero[j].ExecCycles)/float64(base[j].ExecCycles)
		if overhead < 0 {
			overhead = 0
		}
		row = append(row, overhead)
	}
	t.AddRow("Invalidation overhead", withMean(row))
	return t, nil
}

// Figure2 compares migration policies against access-counter migration:
// first-touch, on-touch, and the zero-latency-invalidation ideal.
func Figure2(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 2: Migration policies relative to access counter-based",
		Caption: "normalized performance (higher is better)",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.FirstTouchScheme(), config.OnTouchScheme(), config.ZeroLatency(),
	}
	rows, err := schemeMatrix("fig2", o, m, apps, schemes)
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Table3 reports the application list with *measured* MPKI next to the
// paper's reported values.
func Table3(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Table 3: Applications (measured vs paper MPKI)",
		Columns: appColumns(apps),
	}
	res, err := baselineRuns("table3", o, m, apps)
	if err != nil {
		return nil, err
	}
	var measured, paper []float64
	for j, abbr := range apps {
		app, _ := workload.App(abbr)
		measured = append(measured, res[j].MPKI())
		paper = append(paper, app.PaperMPKI)
	}
	t.AddRow("Measured MPKI", withMean(measured))
	t.AddRow("Paper MPKI", withMean(paper))
	return t, nil
}

// Figure4 reports the distribution of accesses to pages shared by k GPUs.
func Figure4(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 4: Distribution of accesses referencing shared pages",
		Caption: "fraction of accesses to pages accessed by k GPUs",
		Columns: appColumns(apps),
	}
	res, err := baselineRuns("fig4", o, m, apps)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, m.NumGPUs)
	for j := range apps {
		dist := res[j].Sharing().AccessDistribution(m.NumGPUs)
		for k := 1; k <= m.NumGPUs; k++ {
			rows[k-1] = append(rows[k-1], dist[k])
		}
	}
	labels := []string{"One GPU", "Shared by 2", "Shared by 3", "Shared by 4"}
	for k := 0; k < m.NumGPUs && k < len(labels); k++ {
		t.AddRow(labels[k], withMean(rows[k]))
	}
	return t, nil
}

// Figure5 reports the page-walker request mix: demand TLB misses vs
// necessary and unnecessary invalidation requests.
func Figure5(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 5: Walker request mix (baseline)",
		Caption: "fractions of all page-walker requests",
		Columns: appColumns(apps),
	}
	res, err := baselineRuns("fig5", o, m, apps)
	if err != nil {
		return nil, err
	}
	var demand, necessary, unnecessary []float64
	for j := range apps {
		st := res[j]
		total := float64(st.WalkerDemand + st.WalkerInval + st.WalkerUpdate)
		demand = append(demand, float64(st.WalkerDemand+st.WalkerUpdate)/total)
		necessary = append(necessary, float64(st.InvalNecessary)/total)
		unnecessary = append(unnecessary, float64(st.InvalUnnecessary)/total)
	}
	t.AddRow("TLB miss requests", withMean(demand))
	t.AddRow("Necessary invalidation", withMean(necessary))
	t.AddRow("Unnecessary invalidation", withMean(unnecessary))
	return t, nil
}

// Figure6 reports demand TLB-miss latency with invalidation contention
// removed (zero-latency invalidation), normalized to baseline, plus the
// actual baseline cycles the paper plots on the right axis.
func Figure6(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 6: Demand TLB miss latency without invalidation contention",
		Caption: "normalized latency (row 1), actual baseline/ideal cycles (rows 2-3)",
		Columns: appColumns(apps),
	}
	base, zero, err := pairRuns("fig6", o, m, config.ZeroLatency(), apps)
	if err != nil {
		return nil, err
	}
	var rel, baseCyc, idealCyc []float64
	for j := range apps {
		rel = append(rel, zero[j].DemandMiss.Mean()/base[j].DemandMiss.Mean())
		baseCyc = append(baseCyc, base[j].DemandMiss.Mean())
		idealCyc = append(idealCyc, zero[j].DemandMiss.Mean())
	}
	t.AddRow("Eliminating invalidation (rel.)", withMean(rel))
	t.AddRow("Baseline actual cycles", withMean(baseCyc))
	t.AddRow("Ideal actual cycles", withMean(idealCyc))
	return t, nil
}

// Figure7 reports the migration waiting latency as a fraction of total
// migration latency, plus the actual mean cycles.
func Figure7(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 7: Page migration latency vs waiting latency",
		Caption: "waiting fraction of total migration latency; actual mean cycles",
		Columns: appColumns(apps),
	}
	res, err := baselineRuns("fig7", o, m, apps)
	if err != nil {
		return nil, err
	}
	var frac, total, wait []float64
	for j := range apps {
		st := res[j]
		frac = append(frac, st.MigrationWait.Mean()/st.MigrationTotal.Mean())
		total = append(total, st.MigrationTotal.Mean())
		wait = append(wait, st.MigrationWait.Mean())
	}
	t.AddRow("Waiting fraction", withMean(frac))
	t.AddRow("Migration latency (cycles)", withMean(total))
	t.AddRow("Waiting latency (cycles)", withMean(wait))
	return t, nil
}

// Figure11 is the headline result: normalized performance of Only Lazy,
// Only In-PTE Directory, IDYLL-InMem, IDYLL, and Zero-Latency Invalidation.
func Figure11(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 11: Performance of each scheme relative to baseline",
		Caption: "normalized performance (higher is better)",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.OnlyLazy(), config.OnlyInPTE(), config.IDYLLInMem(),
		config.IDYLL(), config.ZeroLatency(),
	}
	rows, err := schemeMatrix("fig11", o, m, apps, schemes)
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Figure12 reports IDYLL's demand TLB-miss latency relative to baseline.
func Figure12(o Options) (*Table, error) {
	return relativeMetric(o, "fig12",
		"Figure 12: Demand TLB miss request latency (IDYLL/baseline)",
		func(st *stats.Sim) float64 { return float64(st.DemandMiss.Sum) })
}

// Figure13 reports IDYLL's invalidation request latency and count relative
// to baseline.
func Figure13(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 13: Invalidation requests under IDYLL (relative to baseline)",
		Caption: "total latency and total number of invalidation requests",
		Columns: appColumns(apps),
	}
	base, idyll, err := pairRuns("fig13", o, m, config.IDYLL(), apps)
	if err != nil {
		return nil, err
	}
	var lat, num []float64
	for j := range apps {
		lat = append(lat, float64(idyll[j].Inval.Sum)/float64(maxU64(uint64(base[j].Inval.Sum), 1)))
		num = append(num, float64(idyll[j].InvalReceived)/float64(maxU64(base[j].InvalReceived, 1)))
	}
	t.AddRow("Total latency", withMean(lat))
	t.AddRow("Total number", withMean(num))
	return t, nil
}

// Figure14 reports IDYLL's page-migration waiting latency vs baseline.
func Figure14(o Options) (*Table, error) {
	return relativeMetric(o, "fig14",
		"Figure 14: Page migration waiting latency (IDYLL/baseline)",
		func(st *stats.Sim) float64 { return float64(st.MigrationWait.Sum) })
}

// relativeMetric builds a one-row table of IDYLL/baseline ratios of metric.
func relativeMetric(o Options, fig, title string, metric func(*stats.Sim) float64) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{Title: title, Caption: "lower is better", Columns: appColumns(apps)}
	base, idyll, err := pairRuns(fig, o, m, config.IDYLL(), apps)
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		b := metric(base[j])
		if b == 0 {
			b = 1
		}
		row = append(row, metric(idyll[j])/b)
	}
	t.AddRow("Relative", withMean(row))
	return t, nil
}

// Figure15 sweeps the IRMB geometry: (bases, offsets) of (16,8), (16,16),
// (32,8), (64,16) plus the default (32,16).
func Figure15(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 15: IDYLL with different IRMB sizes",
		Caption: "normalized performance; (bases, offsets)",
		Columns: appColumns(apps),
	}
	geoms := []core.Geometry{
		{Bases: 16, Offsets: 8}, {Bases: 16, Offsets: 16},
		{Bases: 32, Offsets: 8}, {Bases: 32, Offsets: 16}, {Bases: 64, Offsets: 16},
	}
	schemes := make([]config.Scheme, len(geoms))
	for i, g := range geoms {
		s := config.IDYLL()
		s.IRMB = g
		schemes[i] = s
	}
	rows, err := schemeMatrix("fig15", o, m, apps, schemes)
	if err != nil {
		return nil, err
	}
	for i, g := range geoms {
		t.AddRow(fmt.Sprintf("(%d,%d)", g.Bases, g.Offsets), withMean(rows[i]))
	}
	return t, nil
}

// Figure16 evaluates IDYLL with 16 and 32 page-table-walker threads,
// normalized to a baseline with the same thread count.
func Figure16(o Options) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title:   "Figure 16: IDYLL with 16- and 32-threaded page table walk",
		Caption: "normalized to baseline with the same walker count",
		Columns: appColumns(apps),
	}
	threadCounts := []int{16, 32}
	cs := newCells("fig16", o)
	idx := make([][][2]int, len(threadCounts)) // [threads][app](base, idyll)
	for k, threads := range threadCounts {
		m := config.Default()
		m.PTWThreads = threads
		for _, abbr := range apps {
			idx[k] = append(idx[k], [2]int{
				cs.add(m, config.Baseline(), abbr),
				cs.add(m, config.IDYLL(), abbr),
			})
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	for k, threads := range threadCounts {
		var row []float64
		for j := range apps {
			row = append(row, res[idx[k][j][1]].Speedup(res[idx[k][j][0]]))
		}
		t.AddRow(fmt.Sprintf("%d threads", threads), withMean(row))
	}
	return t, nil
}

// Figure17 evaluates IDYLL with a 2048-entry, 64-way L2 TLB.
func Figure17(o Options) (*Table, error) {
	m := config.Default()
	m.L2TLBEntries = 2048
	m.L2TLBWays = 64
	apps := o.apps()
	t := &Table{
		Title:   "Figure 17: IDYLL with 2048-entry L2 TLB",
		Caption: "normalized to baseline with the same L2 TLB",
		Columns: appColumns(apps),
	}
	base, idyll, err := pairRuns("fig17", o, m, config.IDYLL(), apps)
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		row = append(row, idyll[j].Speedup(base[j]))
	}
	t.AddRow("IDYLL", withMean(row))
	return t, nil
}

// scaleAppToGPUs keeps the input dataset constant as GPU count grows
// (§7.2: "we only increase the number of GPUs without changing the
// application's input dataset sizes").
func scaleAppToGPUs(app workload.Params, numGPUs int) workload.Params {
	app.PagesPerGPU = maxInt(256, app.PagesPerGPU*4/numGPUs)
	return app
}

// Figure18 evaluates IDYLL on 8- and 16-GPU systems.
func Figure18(o Options) (*Table, error) {
	return gpuCountStudy(o, "fig18", "Figure 18: IDYLL with 8 and 16 GPUs",
		[]int{8, 16}, 11)
}

// Figure19 evaluates IDYLL with only 4 unused PTE bits on 8/16/32 GPUs,
// stressing the in-PTE directory's modular hash.
func Figure19(o Options) (*Table, error) {
	return gpuCountStudy(o, "fig19", "Figure 19: IDYLL with 4 unused bits",
		[]int{8, 16, 32}, 4)
}

// gpuCountStudy runs IDYLL vs baseline at several GPU counts.
func gpuCountStudy(o Options, fig, title string, gpuCounts []int, unusedBits int) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title:   title,
		Caption: "normalized to baseline with the same GPU count",
		Columns: appColumns(apps),
	}
	cs := newCells(fig, o)
	idx := make([][][2]int, len(gpuCounts)) // [gpuCount][app](base, idyll)
	for k, n := range gpuCounts {
		m := config.Default()
		m.NumGPUs = n
		for _, abbr := range apps {
			app, err := workload.App(abbr)
			if err != nil {
				return nil, err
			}
			app = scaleAppToGPUs(app, n)
			s := config.IDYLL()
			s.UnusedBits = unusedBits
			idx[k] = append(idx[k], [2]int{
				cs.addParams(m, config.Baseline(), app),
				cs.addParams(m, s, app),
			})
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	for k, n := range gpuCounts {
		var row []float64
		for j := range apps {
			row = append(row, res[idx[k][j][1]].Speedup(res[idx[k][j][0]]))
		}
		t.AddRow(fmt.Sprintf("%d-GPU", n), withMean(row))
	}
	return t, nil
}

// Figure20 studies the access-counter threshold: baseline and IDYLL at the
// paper's 256 and 512 (scaled by TraceScaleFactor), all normalized to the
// 256-scaled baseline.
func Figure20(o Options) (*Table, error) {
	apps := o.apps()
	t := &Table{
		Title: "Figure 20: IDYLL with 512 access counter threshold",
		Caption: fmt.Sprintf("thresholds are the paper's 256/512 divided by the trace scale factor %d",
			TraceScaleFactor),
		Columns: appColumns(apps),
	}
	o256 := o
	o256.CounterThreshold = maxInt(1, 256/TraceScaleFactor)
	o512 := o
	o512.CounterThreshold = maxInt(1, 512/TraceScaleFactor)
	m := config.Default()

	// All four (scheme, threshold) runs of an app share its cell seed, so
	// the thresholds compare on the byte-identical trace.
	cs := newCells("fig20", o)
	type appCells struct{ base256, idyll256, base512, idyll512 int }
	idx := make([]appCells, len(apps))
	for j, abbr := range apps {
		idx[j] = appCells{
			base256:  cs.addOpts(m, config.Baseline(), abbr, o256),
			idyll256: cs.addOpts(m, config.IDYLL(), abbr, o256),
			base512:  cs.addOpts(m, config.Baseline(), abbr, o512),
			idyll512: cs.addOpts(m, config.IDYLL(), abbr, o512),
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	addRow := func(label string, cell func(appCells) int) {
		var row []float64
		for j := range apps {
			row = append(row, res[cell(idx[j])].Speedup(res[idx[j].base256]))
		}
		t.AddRow(label, withMean(row))
	}
	addRow("256 IDYLL", func(c appCells) int { return c.idyll256 })
	addRow("512 baseline", func(c appCells) int { return c.base512 })
	addRow("512 IDYLL", func(c appCells) int { return c.idyll512 })
	return t, nil
}

// Figure21 evaluates IDYLL with 2 MB pages on enlarged inputs (§7.3).
//
// At 2 MB the UVM va_block is a single page, so the migration block is 1;
// and because one large page absorbs the access traffic of 512 small ones,
// the trace-scaled counter threshold rises accordingly. The generators'
// page-unit parameters are re-expressed in 2 MB pages with the enlarged
// input the paper uses (large footprint, false sharing within big pages
// arises naturally from the pools spanning fewer, bigger pages).
func Figure21(o Options) (*Table, error) {
	m := config.Default()
	m.PageSize = memdef.Page2M
	m.MigrationBlockPages = 1
	o2 := o
	// A 2 MB page absorbs the access traffic of 512 small pages, so the
	// trace-scaled threshold scales back up (×16 ≈ the paper's relative
	// conservativeness for big-page migration).
	o2.CounterThreshold = maxInt(1, o.CounterThreshold*16)
	apps := o.apps()
	t := &Table{
		Title:   "Figure 21: IDYLL with 2MB pages",
		Caption: "enlarged inputs; normalized to 2MB-page baseline",
		Columns: appColumns(apps),
	}
	cs := newCells("fig21", o)
	idx := make([][2]int, len(apps))
	for j, abbr := range apps {
		app, err := workload.App(abbr)
		if err != nil {
			return nil, err
		}
		// Re-express footprints in 2 MB pages on an enlarged (16×) input:
		// 4 KB pages / 512 × 16 = /32. Hot pools shrink less (shared arrays
		// span fewer large pages — the false-sharing effect).
		app.PagesPerGPU = maxInt(64, app.PagesPerGPU/32)
		app.HotPages = maxInt(8, app.HotPages/2)
		idx[j] = [2]int{
			cs.addParamsOpts(m, config.Baseline(), app, o2),
			cs.addParamsOpts(m, config.IDYLL(), app, o2),
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		row = append(row, res[idx[j][1]].Speedup(res[idx[j][0]]))
	}
	t.AddRow("IDYLL (2MB pages)", withMean(row))
	return t, nil
}

// Figure22 compares IDYLL against page replication.
func Figure22(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 22: IDYLL relative to page replication",
		Caption: "IDYLL performance normalized to the replication policy",
		Columns: appColumns(apps),
	}
	repl, idyll, err := pairSchemes("fig22", o, m, config.ReplicationScheme(), config.IDYLL(), apps)
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		row = append(row, idyll[j].Speedup(repl[j]))
	}
	t.AddRow("IDYLL vs replication", withMean(row))
	return t, nil
}

// pairSchemes runs two arbitrary schemes for every app in one pool pass.
func pairSchemes(fig string, o Options, m config.Machine, a, b config.Scheme, apps []string) (ra, rb []*stats.Sim, err error) {
	cs := newCells(fig, o)
	for _, abbr := range apps {
		cs.add(m, a, abbr)
		cs.add(m, b, abbr)
	}
	res, err := cs.run()
	if err != nil {
		return nil, nil, err
	}
	ra = make([]*stats.Sim, len(apps))
	rb = make([]*stats.Sim, len(apps))
	for j := range apps {
		ra[j], rb[j] = res[2*j], res[2*j+1]
	}
	return ra, rb, nil
}

// Figure23 compares Trans-FW, IDYLL, and the combination.
func Figure23(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Figure 23: Comparison to Trans-FW",
		Caption: "normalized to baseline",
		Columns: appColumns(apps),
	}
	schemes := []config.Scheme{
		config.TransFWScheme(), config.IDYLL(), config.IDYLLTransFW(),
	}
	rows, err := schemeMatrix("fig23", o, m, apps, schemes)
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		t.AddRow(s.Name, withMean(rows[i]))
	}
	return t, nil
}

// Figure24 evaluates IDYLL on the layer-parallel DNN workloads.
func Figure24(o Options) (*Table, error) {
	m := config.Default()
	apps := workload.DNNApps()
	cols := make([]string, 0, len(apps)+1)
	for _, a := range apps {
		cols = append(cols, a.Abbr)
	}
	t := &Table{
		Title:   "Figure 24: IDYLL with DNN workloads",
		Caption: "normalized to baseline",
		Columns: append(cols, "Ave."),
	}
	cs := newCells("fig24", o)
	idx := make([][2]int, len(apps))
	for j, app := range apps {
		idx[j] = [2]int{
			cs.addParams(m, config.Baseline(), app),
			cs.addParams(m, config.IDYLL(), app),
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	var row []float64
	for j := range apps {
		row = append(row, res[idx[j][1]].Speedup(res[idx[j][0]]))
	}
	t.AddRow("IDYLL", withMean(row))
	return t, nil
}

// AblationDrainOnIdle quantifies the IRMB drain-on-idle design choice:
// IDYLL with idle-time write-back vs write-back only on eviction.
func AblationDrainOnIdle(o Options) (*Table, error) {
	m := config.Default()
	apps := o.apps()
	t := &Table{
		Title:   "Ablation: IRMB drain-on-idle vs eviction-only write-back",
		Caption: "normalized to baseline",
		Columns: appColumns(apps),
	}
	noDrainScheme := config.IDYLL()
	noDrainScheme.NoIdleDrain = true
	schemes := []config.Scheme{config.IDYLL(), noDrainScheme}
	rows, err := schemeMatrix("ablation-drain", o, m, apps, schemes)
	if err != nil {
		return nil, err
	}
	t.AddRow("Drain on idle (default)", withMean(rows[0]))
	t.AddRow("Eviction-only", withMean(rows[1]))
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
