package experiment

import (
	"fmt"
	"io"
	"time"
)

// ProgressPrinter returns an Options.Progress callback that renders a
// throttled single-line cell counter with throughput and ETA to w
// (typically os.Stderr), clearing the line when a pass completes so table
// output on stdout stays clean. One printer survives multiple runner passes
// of the same figure (Figure 16 runs one pass per walker count): the rate
// window resets whenever the done counter restarts.
func ProgressPrinter(w io.Writer, label string) func(done, total int, cell string) {
	passStart := time.Now()
	var lastPrint time.Time
	lastDone := 0
	return func(done, total int, cell string) {
		now := time.Now()
		if done <= lastDone { // a new runner pass began
			passStart = now
		}
		lastDone = done
		if done < total && now.Sub(lastPrint) < 100*time.Millisecond {
			return
		}
		lastPrint = now
		elapsed := now.Sub(passStart).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		rate := float64(done) / elapsed
		eta := float64(total-done) / rate
		fmt.Fprintf(w, "\r%-10s %3d/%3d cells  %5.1f cells/s  ETA %4.0fs  %-32s",
			label, done, total, rate, eta, cell)
		if done == total {
			// Clear the line: the pass is done, tables follow on stdout.
			fmt.Fprintf(w, "\r%-90s\r", "")
		}
	}
}
