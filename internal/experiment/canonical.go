package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"idyll/internal/workload"
)

// canonicalOptions is the result-identity subset of Options in a fixed field
// order. Jobs, Par, Progress, and the context are deliberately excluded: they
// steer execution, never results (the determinism guarantee — see runner.go
// and internal/sim/pdes), so two submissions differing only in them must hash
// identically.
type canonicalOptions struct {
	CUsPerGPU        int      `json:"cus_per_gpu"`
	AccessesPerCU    int      `json:"accesses_per_cu"`
	Seed             uint64   `json:"seed"`
	Apps             []string `json:"apps,omitempty"`
	CounterThreshold int      `json:"counter_threshold"`
	// omitempty: the default (no warmup phase) encodes to the same bytes as
	// before the field existed, so all pre-existing canonical hashes — and
	// the result caches keyed by them — remain valid.
	WarmupAccessesPerCU int `json:"warmup_accesses_per_cu,omitempty"`
}

// Canonical validates o and returns a normalized copy suitable for hashing:
// every zero-valued scale field is filled from DefaultOptions, so all
// spellings of "the default" collapse to one representation, and negative or
// non-finite values — which Run would silently ignore or misbehave on — are
// rejected. App order is preserved (it is part of result identity: it sets
// table column order), but every app must resolve through the Table 3 / DNN
// registry. Jobs/Par/Progress/context are zeroed: execution knobs, not
// identity.
func (o Options) Canonical() (Options, error) {
	if err := o.validateFinite(); err != nil {
		return Options{}, err
	}
	def := DefaultOptions()
	c := Options{
		CUsPerGPU:           o.CUsPerGPU,
		AccessesPerCU:       o.AccessesPerCU,
		Seed:                o.Seed,
		CounterThreshold:    o.CounterThreshold,
		WarmupAccessesPerCU: o.WarmupAccessesPerCU,
	}
	if c.CUsPerGPU == 0 {
		c.CUsPerGPU = def.CUsPerGPU
	}
	if c.AccessesPerCU == 0 {
		c.AccessesPerCU = def.AccessesPerCU
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.CounterThreshold == 0 {
		c.CounterThreshold = def.CounterThreshold
	}
	if len(o.Apps) > 0 {
		c.Apps = make([]string, len(o.Apps))
		for i, abbr := range o.Apps {
			p, err := workload.App(abbr)
			if err != nil {
				return Options{}, fmt.Errorf("experiment: options: %w", err)
			}
			c.Apps[i] = p.Abbr // canonical spelling from the registry
		}
	}
	return c, nil
}

// validateFinite rejects values Canonical must never normalize away.
func (o Options) validateFinite() error {
	checkInt := func(name string, v int) error {
		if v < 0 {
			return fmt.Errorf("experiment: options: %s = %d is negative", name, v)
		}
		// Guard the float64 round-trip canonical JSON performs: beyond 2^53
		// encode(decode(x)) would no longer be byte-stable.
		if float64(v) > math.MaxInt32 {
			return fmt.Errorf("experiment: options: %s = %d is implausibly large", name, v)
		}
		return nil
	}
	if err := checkInt("CUsPerGPU", o.CUsPerGPU); err != nil {
		return err
	}
	if err := checkInt("AccessesPerCU", o.AccessesPerCU); err != nil {
		return err
	}
	if err := checkInt("CounterThreshold", o.CounterThreshold); err != nil {
		return err
	}
	if err := checkInt("WarmupAccessesPerCU", o.WarmupAccessesPerCU); err != nil {
		return err
	}
	if err := checkInt("Jobs", o.Jobs); err != nil {
		return err
	}
	if err := checkInt("Par", o.Par); err != nil {
		return err
	}
	return nil
}

// CanonicalJSON returns the byte-stable encoding of o's canonical form:
// fixed field order, no insignificant whitespace, default-filled values.
// Equal result-identities encode to equal bytes, so the encoding can key a
// content-addressed cache. decode(encode(x)) then encode again is the
// identity on bytes (see TestCanonicalJSONByteStable).
func (o Options) CanonicalJSON() ([]byte, error) {
	c, err := o.Canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalOptions{
		CUsPerGPU:           c.CUsPerGPU,
		AccessesPerCU:       c.AccessesPerCU,
		Seed:                c.Seed,
		Apps:                c.Apps,
		CounterThreshold:    c.CounterThreshold,
		WarmupAccessesPerCU: c.WarmupAccessesPerCU,
	})
}

// OptionsFromCanonicalJSON decodes a CanonicalJSON payload back into
// Options. Unknown fields are rejected — a spec naming a knob this version
// does not understand must not silently hash to an existing result.
func OptionsFromCanonicalJSON(raw []byte) (Options, error) {
	var c canonicalOptions
	if err := strictUnmarshal(raw, &c); err != nil {
		return Options{}, fmt.Errorf("experiment: options JSON: %w", err)
	}
	o := Options{
		CUsPerGPU:           c.CUsPerGPU,
		AccessesPerCU:       c.AccessesPerCU,
		Seed:                c.Seed,
		Apps:                c.Apps,
		CounterThreshold:    c.CounterThreshold,
		WarmupAccessesPerCU: c.WarmupAccessesPerCU,
	}
	return o.Canonical()
}

// strictUnmarshal is json.Unmarshal with unknown fields disallowed.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
