package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"idyll/internal/checkpoint"
	"idyll/internal/config"
	"idyll/internal/stats"
	"idyll/internal/system"
	"idyll/internal/workload"
)

// Warmup sharing: sweep cells that agree on (machine, scheme, warmup depth,
// trace) execute an identical warmup phase, so its end state — a system
// checkpoint — can be computed once and forked into every cell. The key is
// content-addressed over everything the warmup's execution depends on:
// the checkpoint format version, the machine and scheme (every field), the
// warmup depth, the trace's parameters, and the trace's full access stream —
// full, not just the warmup prefix, because pre-placement computes page
// affinity from the whole trace (system.preplace). Identical keys therefore
// guarantee bit-identical warmup state, and fork-from-checkpoint replays
// byte-identically to a straight-line run (CI-enforced; see
// internal/system/checkpoint_test.go).

// WarmupKey returns the content-addressed store key (64 hex chars) for the
// warmup checkpoint of (machine, scheme, warmup, trace).
func WarmupKey(m config.Machine, scheme config.Scheme, warmup int, trace *workload.Trace) string {
	h := sha256.New()
	fmt.Fprintf(h, "ckpt-v%d\n", checkpoint.Version)
	// %#v, not %+v: it ignores String() methods (workload.Params has one
	// that prints only a display label) and includes every field.
	fmt.Fprintf(h, "machine %#v\n", m)
	fmt.Fprintf(h, "scheme %#v\n", scheme)
	fmt.Fprintf(h, "warmup %d\n", warmup)
	// Trace params include fields Save does not carry (e.g. ThresholdFactor,
	// which scales the counter threshold at run time), so hash them
	// explicitly before the access stream.
	fmt.Fprintf(h, "params %#v\n", trace.Params)
	if err := trace.Save(h); err != nil {
		// Hash writers never fail; a Save error here means the trace itself
		// is malformed, which Generate cannot produce.
		panic(fmt.Sprintf("experiment: hashing trace: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runSystem executes one cell's trace under o's warmup policy:
//
//   - no warmup: the straight single-phase run (every pre-existing output is
//     byte-for-byte unchanged);
//   - warmup, no store: two-phase run on one system;
//   - warmup + store: fetch or compute the warmup checkpoint, fork a fresh
//     system from it, and run only the remainder.
func runSystem(o Options, m config.Machine, scheme config.Scheme, trace *workload.Trace) (*stats.Sim, error) {
	newSystem := func() (*system.System, error) {
		s, err := system.New(m, scheme)
		if err != nil {
			return nil, err
		}
		s.ParWorkers = o.Par
		return s, nil
	}
	warmup := o.WarmupAccessesPerCU
	if warmup <= 0 {
		s, err := newSystem()
		if err != nil {
			return nil, err
		}
		return s.RunCtx(o.Context(), trace)
	}
	if o.CheckpointStore == nil {
		s, err := newSystem()
		if err != nil {
			return nil, err
		}
		if err := s.RunWarmupCtx(o.Context(), trace, warmup); err != nil {
			return nil, err
		}
		return s.RunRemainderCtx(o.Context(), trace, warmup)
	}
	key := WarmupKey(m, scheme, warmup, trace)
	compute := func() ([]byte, error) {
		scratch, err := newSystem()
		if err != nil {
			return nil, err
		}
		if err := scratch.RunWarmupCtx(o.Context(), trace, warmup); err != nil {
			return nil, err
		}
		return scratch.Checkpoint()
	}
	// A stored checkpoint that fails to decode must cost a recompute, never
	// the job: quarantine it and retry once (the store recomputes on the
	// retry because the bad entry is gone). If even freshly computed bytes
	// fail to resume, fall through to the straight two-phase run.
	for attempt := 0; attempt < 2; attempt++ {
		blob, _, err := o.CheckpointStore.GetOrCompute(key, compute)
		if err != nil {
			return nil, err
		}
		s, err := newSystem()
		if err != nil {
			return nil, err
		}
		if err := s.Resume(blob); err == nil {
			return s.RunRemainderCtx(o.Context(), trace, warmup)
		}
		o.CheckpointStore.Quarantine(key)
	}
	s, err := newSystem()
	if err != nil {
		return nil, err
	}
	if err := s.RunWarmupCtx(o.Context(), trace, warmup); err != nil {
		return nil, err
	}
	return s.RunRemainderCtx(o.Context(), trace, warmup)
}
