package experiment

import (
	"strings"
	"testing"

	"idyll/internal/config"
	"idyll/internal/workload"
)

// quick returns test-scale options over a reduced app set so the whole
// figure suite smoke-tests in seconds.
func quick() Options {
	o := QuickOptions()
	o.Apps = []string{"PR", "KM"}
	return o
}

func TestRunProducesStats(t *testing.T) {
	st, err := Run(config.Default(), config.Baseline(), "PR", quick())
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles == 0 || st.Accesses == 0 {
		t.Fatal("empty run")
	}
}

func TestRunUnknownApp(t *testing.T) {
	if _, err := Run(config.Default(), config.Baseline(), "nope", quick()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTableGetAndRender(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"A", "B"}}
	tab.AddRow("row", []float64{1.5, 2.5})
	v, err := tab.Get("row", "B")
	if err != nil || v != 2.5 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if _, err := tab.Get("row", "C"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := tab.Get("nope", "A"); err == nil {
		t.Fatal("missing row accepted")
	}
	out := tab.Render()
	for _, want := range []string{"T", "row", "1.500", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render %q missing %q", out, want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean wrong")
	}
}

func TestRegistryCoversEveryEvaluationFigure(t *testing.T) {
	want := []string{
		"fig1", "fig2", "table2", "table3", "fig4", "fig5", "fig6", "fig7",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
	}
	have := map[string]bool{}
	for _, e := range Registry() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := Find("fig11"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// Run every registry entry at quick scale and assert a non-empty,
// well-formed table: the exact row count the paper's plot has, one column
// per application plus "Ave." (or the entry's documented exception), every
// row exactly as wide as the column list, every value finite and
// non-negative. Subtests run in parallel with a 2-wide cell pool each, so
// under -race this doubles as the shared-state regression test for the
// concurrent runner.
func TestRegistryEveryEntryWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	o := quick()
	o.Jobs = 2
	nApps := len(o.Apps)
	// Rows per entry (the series count of the paper's plot); columns default
	// to one per app plus "Ave.".
	wantRows := map[string]int{
		"fig1": 1, "fig2": 3, "table2": 15, "table3": 2, "fig4": 4,
		"fig5": 3, "fig6": 3, "fig7": 3, "fig11": 5, "fig12": 1,
		"fig13": 2, "fig14": 1, "fig15": 5, "fig16": 2, "fig17": 1,
		"fig18": 2, "fig19": 3, "fig20": 3, "fig21": 1, "fig22": 1,
		"fig23": 3, "fig24": 1, "ablation-drain": 2,
	}
	wantCols := map[string]int{
		"fig1":   len(workload.Fig1Abbrs()) + 1, // fixed motivation-study app set
		"table2": 1,                             // single "value" column
		"fig24":  len(workload.DNNApps()) + 1,   // DNN workloads, not Table 3 apps
	}
	entries := Registry()
	if len(entries) != len(wantRows) {
		t.Fatalf("registry has %d entries, shape table has %d — update the test",
			len(entries), len(wantRows))
	}
	for _, e := range entries {
		e := e
		rows, ok := wantRows[e.ID]
		if !ok {
			t.Fatalf("no expected shape for %s — update the test", e.ID)
		}
		cols := nApps + 1
		if c, ok := wantCols[e.ID]; ok {
			cols = c
		}
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) != rows {
				t.Errorf("%s: %d rows, want %d", e.ID, len(tab.Rows), rows)
			}
			if len(tab.Columns) != cols {
				t.Errorf("%s: %d columns, want %d", e.ID, len(tab.Columns), cols)
			}
			if tab.Title == "" {
				t.Errorf("%s: empty title", e.ID)
			}
			for _, r := range tab.Rows {
				if len(r.Values) != len(tab.Columns) {
					t.Errorf("%s row %q: %d values for %d columns",
						e.ID, r.Label, len(r.Values), len(tab.Columns))
				}
				for _, v := range r.Values {
					if v != v || v < 0 { // NaN or negative
						t.Errorf("%s row %q: bad value %v", e.ID, r.Label, v)
					}
				}
			}
		})
	}
}

// The headline number: IDYLL must beat baseline on average, and the full
// design must beat each mechanism alone (complementarity, §7.1).
func TestFigure11HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline check in -short mode")
	}
	o := DefaultOptions()
	o.Apps = []string{"PR", "KM", "IM"}
	o.CUsPerGPU = 8
	o.AccessesPerCU = 400
	tab, err := Figure11(o)
	if err != nil {
		t.Fatal(err)
	}
	idyll, _ := tab.Get("IDYLL", "Ave.")
	lazy, _ := tab.Get("Only Lazy", "Ave.")
	inpte, _ := tab.Get("Only In-PTE Directory", "Ave.")
	if idyll < 1.2 {
		t.Fatalf("IDYLL average speedup %.2f, want ≥1.2", idyll)
	}
	if idyll <= lazy || idyll <= inpte {
		t.Fatalf("IDYLL (%.2f) should beat Only Lazy (%.2f) and Only In-PTE (%.2f)",
			idyll, lazy, inpte)
	}
	// The paper observes the combined gain is *roughly* the parts' gains
	// overlapping (complementarity); at reduced scale the exact inequality
	// is noisy, so only log it.
	t.Logf("gains: IDYLL %.2f, Only Lazy %.2f, Only In-PTE %.2f", idyll-1, lazy-1, inpte-1)
}

func TestFigure20ThresholdRelationship(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold study in -short mode")
	}
	o := DefaultOptions()
	o.Apps = []string{"PR", "KM"}
	o.CUsPerGPU = 8
	o.AccessesPerCU = 400
	tab, err := Figure20(o)
	if err != nil {
		t.Fatal(err)
	}
	i256, _ := tab.Get("256 IDYLL", "Ave.")
	b512, _ := tab.Get("512 baseline", "Ave.")
	i512, _ := tab.Get("512 IDYLL", "Ave.")
	if i512 <= b512 {
		t.Fatalf("IDYLL-512 (%.2f) should beat baseline-512 (%.2f)", i512, b512)
	}
	// §7.2: the improvement at 512 is smaller than at 256.
	if i512/b512 >= i256 {
		t.Logf("note: 512 improvement %.2f not below 256 improvement %.2f (scale-sensitive)",
			i512/b512, i256)
	}
}
