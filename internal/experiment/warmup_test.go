package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"idyll/internal/checkpoint/store"
	"idyll/internal/config"
	"idyll/internal/workload"
)

// A warmup run forked from the checkpoint store must produce results
// identical to the same run executed straight through.
func TestWarmupStoreMatchesStraightLine(t *testing.T) {
	o := QuickOptions()
	o.WarmupAccessesPerCU = 50
	o.Apps = []string{"PR"}
	m := config.Default()

	straight, err := Run(m, config.IDYLL(), "PR", o)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(8, "")
	o.CheckpointStore = st
	forked, err := Run(m, config.IDYLL(), "PR", o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(straight, forked) {
		t.Fatalf("forked run diverges:\nstraight: %+v\nforked:   %+v", straight, forked)
	}
	hits, misses, _, _ := st.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("first run: %d hits, %d misses; want 0/1", hits, misses)
	}
	// A second identical run reuses the warmup checkpoint.
	again, err := Run(m, config.IDYLL(), "PR", o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(straight, again) {
		t.Fatal("cached-warmup run diverges")
	}
	hits, misses, _, _ = st.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("second run: %d hits, %d misses; want 1/1", hits, misses)
	}
}

// Different schemes share nothing: the warmup state depends on the scheme, so
// each gets its own checkpoint.
func TestWarmupKeySeparatesSchemes(t *testing.T) {
	o := QuickOptions()
	m := config.Default()
	m.CUsPerGPU = o.CUsPerGPU
	trace := workload.Generate(mustApp(t, "PR"), m.NumGPUs, m.CUsPerGPU, o.AccessesPerCU, o.Seed)
	a := WarmupKey(m, config.Baseline(), 50, trace)
	b := WarmupKey(m, config.IDYLL(), 50, trace)
	c := WarmupKey(m, config.IDYLL(), 60, trace)
	if a == b || b == c || a == c {
		t.Fatalf("warmup keys collide: %s %s %s", a, b, c)
	}
	if b != WarmupKey(m, config.IDYLL(), 50, trace) {
		t.Fatal("warmup key is not deterministic")
	}
}

// ThresholdFactor scales the access-counter threshold at run time but is not
// carried by tracefile.Save, so the key must separate traces differing only
// in it.
func TestWarmupKeyIncludesThresholdFactor(t *testing.T) {
	o := QuickOptions()
	m := config.Default()
	m.CUsPerGPU = o.CUsPerGPU
	p := mustApp(t, "PR")
	t1 := workload.Generate(p, m.NumGPUs, m.CUsPerGPU, o.AccessesPerCU, o.Seed)
	t2 := workload.Generate(p, m.NumGPUs, m.CUsPerGPU, o.AccessesPerCU, o.Seed)
	t2.Params.ThresholdFactor = 4
	if WarmupKey(m, config.IDYLL(), 50, t1) == WarmupKey(m, config.IDYLL(), 50, t2) {
		t.Fatal("keys collide across ThresholdFactor values")
	}
}

// The default (no warmup) must encode to the exact canonical bytes of the
// pre-warmup format, preserving every existing content-addressed result.
func TestCanonicalJSONOmitsZeroWarmup(t *testing.T) {
	raw, err := DefaultOptions().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("warmup")) {
		t.Fatalf("zero warmup leaked into canonical JSON: %s", raw)
	}
	o := DefaultOptions()
	o.WarmupAccessesPerCU = 100
	raw, err = o.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"warmup_accesses_per_cu":100`)) {
		t.Fatalf("warmup missing from canonical JSON: %s", raw)
	}
	back, err := OptionsFromCanonicalJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.WarmupAccessesPerCU != 100 {
		t.Fatalf("round-trip lost warmup: %+v", back)
	}
}

// A checkpoint that verifies at the store level but fails to decode (poison
// bytes) must cost a recompute, never the job: the bad entry is quarantined,
// the warmup recomputed, and the results stay identical to a clean run.
func TestCorruptCheckpointRecoversAndMatches(t *testing.T) {
	o := QuickOptions()
	o.WarmupAccessesPerCU = 50
	o.Apps = []string{"PR"}
	m := config.Default()

	st := store.New(8, "")
	o.CheckpointStore = st
	clean, err := Run(m, config.IDYLL(), "PR", o)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the key exactly as RunParams derives it.
	mm := m
	if o.CUsPerGPU > 0 {
		mm.CUsPerGPU = o.CUsPerGPU
	}
	if o.CounterThreshold > 0 {
		mm.AccessCounterThreshold = o.CounterThreshold
	}
	trace := workload.Generate(mustApp(t, "PR"), mm.NumGPUs, mm.CUsPerGPU, o.AccessesPerCU, o.Seed)
	key := WarmupKey(mm, config.IDYLL(), o.WarmupAccessesPerCU, trace)
	if _, ok := st.Get(key); !ok {
		t.Fatal("reconstructed warmup key not in store; test setup is wrong")
	}

	// Poison the stored checkpoint with bytes Resume cannot decode.
	st.Put(key, []byte("not a checkpoint"))

	again, err := Run(m, config.IDYLL(), "PR", o)
	if err != nil {
		t.Fatalf("run with poisoned checkpoint failed instead of recovering: %v", err)
	}
	if !reflect.DeepEqual(clean, again) {
		t.Fatal("recovered run diverges from the clean run")
	}
	if _, q := st.IntegrityStats(); q < 1 {
		t.Fatalf("quarantined = %d, want >= 1", q)
	}
	// The recompute repaired the store in place.
	if blob, ok := st.Get(key); !ok || len(blob) <= len("not a checkpoint") {
		t.Fatalf("store not repaired: ok=%v len=%d", ok, len(blob))
	}
}

func mustApp(t *testing.T, abbr string) workload.Params {
	t.Helper()
	p, err := workload.App(abbr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
