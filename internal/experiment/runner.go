// The concurrent suite runner. Every figure of the evaluation is a
// (scheme × application) matrix of independent simulation cells; a cell is a
// pure function of its spec — machine, scheme, workload, scale, seed — with
// no shared mutable state (each cell builds its own engine, system, stats,
// and trace). The runner fans cells out across a bounded worker pool and
// merges results back in submission order, so parallel regeneration renders
// byte-identical tables to a serial run.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"idyll/internal/config"
	"idyll/internal/stats"
	"idyll/internal/workload"
)

// CellSpec identifies one simulation run of an experiment's matrix.
type CellSpec struct {
	// Figure is the experiment ID ("fig11"); it salts the cell seed and
	// labels progress and error reports.
	Figure string
	// App is the application abbreviation. It salts the cell seed, so it
	// must be set even when Params or Trace supply the workload.
	App     string
	Machine config.Machine
	Scheme  config.Scheme
	// Params, when non-nil, supplies explicit generator parameters instead
	// of resolving App through the Table 3 registry.
	Params *workload.Params
	// Trace, when non-nil, replays a pre-generated trace (no generation, no
	// seed derivation). The machine's GPU/CU geometry is taken from it.
	Trace *workload.Trace
	// Opts, when non-nil, overrides the suite options for this cell
	// (Figure 20 varies the counter threshold per cell this way).
	Opts *Options
}

// CellSeed derives the workload seed of one (figure, application) cell from
// the suite seed, so a cell's trace depends only on its own identity — never
// on how many cells ran before it or on which worker it lands. The scheme is
// deliberately not mixed in: every figure is a ratio against a baseline run
// of the byte-identical trace (see EXPERIMENTS.md "Calibration"), so all
// schemes of a cell pair must draw the same trace.
func CellSeed(suiteSeed uint64, figureID, appAbbr string) uint64 {
	// FNV-1a over the cell identity, then a splitmix64-style finalizer so
	// neighbouring IDs ("fig12"/"fig13") land in well-separated streams.
	h := suiteSeed ^ 0xcbf29ce484222325
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
		h ^= 0xff // separator: ("ab","c") and ("a","bc") must differ
		h *= 0x100000001b3
	}
	mix(figureID)
	mix(appAbbr)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// jobs resolves the worker-pool width: Options.Jobs, or every core.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// RunCells executes the cells on a bounded worker pool of o.jobs() workers
// and returns their stats in spec order. The first failing cell cancels the
// pool — queued cells are abandoned, in-flight ones finish — and the joined
// error names every failed (figure, app, scheme). Each completed cell
// reports through o.Progress (serialized, never concurrent).
//
// When o carries a context (see Options.WithContext), cancellation stops
// dispatching queued cells and interrupts in-flight cells at their next
// event-loop batch boundary; RunCells then returns the context's error.
func RunCells(o Options, specs []CellSpec) ([]*stats.Sim, error) {
	ctx := o.Context()
	n := len(specs)
	results := make([]*stats.Sim, n)
	errs := make([]error, n)
	workers := o.jobs()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes the done counter and Progress calls
		done     int
		stop     = make(chan struct{})
		stopOnce sync.Once
	)
	work := make(chan int)
	go func() {
		defer close(work)
		for i := range specs {
			select {
			case work <- i:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := specs[i]
				st, err := runCell(spec, o)
				if err != nil {
					errs[i] = fmt.Errorf("%s: cell (app=%s, scheme=%s): %w",
						spec.Figure, spec.App, spec.Scheme.Name, err)
					stopOnce.Do(func() { close(stop) })
					continue
				}
				results[i] = st
				mu.Lock()
				done++
				if o.Progress != nil {
					o.Progress(done, n, fmt.Sprintf("%s %s/%s",
						spec.Figure, spec.App, spec.Scheme.Name))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// Cancellation can win the dispatch race before any cell starts (or
	// after some finished cleanly); never report a partial pass as success.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runCell executes one cell: resolve its options and workload, build a
// private system, run to completion.
func runCell(spec CellSpec, o Options) (*stats.Sim, error) {
	co := o
	if spec.Opts != nil {
		co = *spec.Opts
		if co.ctx == nil { // per-cell options inherit the pass's context
			co.ctx = o.ctx
		}
		if co.CheckpointStore == nil { // execution knob, inherited like the context
			co.CheckpointStore = o.CheckpointStore
		}
	}
	if spec.Trace != nil {
		m := spec.Machine
		m.NumGPUs = spec.Trace.NumGPUs
		m.CUsPerGPU = len(spec.Trace.Accesses[0])
		if co.CounterThreshold > 0 {
			m.AccessCounterThreshold = co.CounterThreshold
		}
		return runSystem(co, m, spec.Scheme, spec.Trace)
	}
	co.Seed = CellSeed(co.Seed, spec.Figure, spec.App)
	if spec.Params != nil {
		return RunParams(spec.Machine, spec.Scheme, *spec.Params, co)
	}
	return Run(spec.Machine, spec.Scheme, spec.App, co)
}

// cells accumulates one figure's specs so the whole matrix runs in a single
// pool pass; add methods return the index of the cell's result.
type cells struct {
	fig   string
	o     Options
	specs []CellSpec
}

func newCells(fig string, o Options) *cells { return &cells{fig: fig, o: o} }

// add schedules one (machine, scheme, app) run.
func (c *cells) add(m config.Machine, s config.Scheme, abbr string) int {
	c.specs = append(c.specs, CellSpec{
		Figure: c.fig, App: abbr, Machine: m, Scheme: s,
	})
	return len(c.specs) - 1
}

// addOpts is add with per-cell options (threshold studies).
func (c *cells) addOpts(m config.Machine, s config.Scheme, abbr string, o Options) int {
	o2 := o
	c.specs = append(c.specs, CellSpec{
		Figure: c.fig, App: abbr, Machine: m, Scheme: s, Opts: &o2,
	})
	return len(c.specs) - 1
}

// addParams schedules a run with explicit workload parameters.
func (c *cells) addParams(m config.Machine, s config.Scheme, p workload.Params) int {
	p2 := p
	c.specs = append(c.specs, CellSpec{
		Figure: c.fig, App: p.Abbr, Machine: m, Scheme: s, Params: &p2,
	})
	return len(c.specs) - 1
}

// addParamsOpts is addParams with per-cell options.
func (c *cells) addParamsOpts(m config.Machine, s config.Scheme, p workload.Params, o Options) int {
	p2, o2 := p, o
	c.specs = append(c.specs, CellSpec{
		Figure: c.fig, App: p.Abbr, Machine: m, Scheme: s, Params: &p2, Opts: &o2,
	})
	return len(c.specs) - 1
}

// run executes the accumulated specs on the pool.
func (c *cells) run() ([]*stats.Sim, error) { return RunCells(c.o, c.specs) }

// schemeMatrix runs baseline plus each scheme for every app in one pool pass
// and returns one speedup row per scheme — the (scheme × app) shape most
// figures share.
func schemeMatrix(fig string, o Options, m config.Machine, apps []string, schemes []config.Scheme) ([][]float64, error) {
	cs := newCells(fig, o)
	baseIdx := make([]int, len(apps))
	idx := make([][]int, len(schemes))
	for i := range idx {
		idx[i] = make([]int, len(apps))
	}
	for j, abbr := range apps {
		baseIdx[j] = cs.add(m, config.Baseline(), abbr)
		for i, s := range schemes {
			idx[i][j] = cs.add(m, s, abbr)
		}
	}
	res, err := cs.run()
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(schemes))
	for i := range schemes {
		rows[i] = make([]float64, len(apps))
		for j := range apps {
			rows[i][j] = res[idx[i][j]].Speedup(res[baseIdx[j]])
		}
	}
	return rows, nil
}

// pairRuns runs (baseline, scheme) for every app in one pool pass and
// returns both result rows in app order.
func pairRuns(fig string, o Options, m config.Machine, s config.Scheme, apps []string) (base, opt []*stats.Sim, err error) {
	cs := newCells(fig, o)
	for _, abbr := range apps {
		cs.add(m, config.Baseline(), abbr)
		cs.add(m, s, abbr)
	}
	res, err := cs.run()
	if err != nil {
		return nil, nil, err
	}
	base = make([]*stats.Sim, len(apps))
	opt = make([]*stats.Sim, len(apps))
	for j := range apps {
		base[j], opt[j] = res[2*j], res[2*j+1]
	}
	return base, opt, nil
}

// baselineRuns runs the baseline for every app in one pool pass.
func baselineRuns(fig string, o Options, m config.Machine, apps []string) ([]*stats.Sim, error) {
	cs := newCells(fig, o)
	for _, abbr := range apps {
		cs.add(m, config.Baseline(), abbr)
	}
	return cs.run()
}
