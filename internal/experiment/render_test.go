package experiment

import (
	"strings"
	"testing"
)

func renderFixture() *Table {
	t := &Table{Title: "Fixture", Caption: "cap", Columns: []string{"A", "B"}}
	t.AddRow("plain", []float64{1.5, 2})
	t.AddRow(`with,comma "q"`, []float64{3, 4})
	return t
}

func TestRenderCSV(t *testing.T) {
	out := renderFixture().RenderCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "series,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "plain,1.5,2" {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], `"with,comma ""q"""`) {
		t.Fatalf("quoted label wrong: %q", lines[2])
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	orig := renderFixture()
	raw, err := orig.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTableJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != orig.Title || got.Caption != orig.Caption {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Rows) != 2 || got.Rows[1].Values[1] != 4 {
		t.Fatalf("rows lost: %+v", got.Rows)
	}
	v, err := got.Get("plain", "B")
	if err != nil || v != 2 {
		t.Fatalf("Get after round trip = %v, %v", v, err)
	}
}

func TestParseTableJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseTableJSON("{nope"); err == nil {
		t.Fatal("garbage accepted")
	}
}
