package experiment

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"idyll/internal/config"
)

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	if CellSeed(1, "fig11", "PR") != CellSeed(1, "fig11", "PR") {
		t.Fatal("CellSeed not deterministic")
	}
	seeds := map[uint64]string{}
	for _, fig := range []string{"fig11", "fig12", "fig13", "fig2", "table3"} {
		for _, app := range []string{"PR", "KM", "MT", "BS"} {
			s := CellSeed(20231028, fig, app)
			if prev, dup := seeds[s]; dup {
				t.Fatalf("seed collision: (%s,%s) and %s", fig, app, prev)
			}
			seeds[s] = fig + "/" + app
		}
	}
	// Concatenation ambiguity: ("fig1","1PR") must differ from ("fig11","PR").
	if CellSeed(1, "fig1", "1PR") == CellSeed(1, "fig11", "PR") {
		t.Fatal("CellSeed ambiguous across field boundaries")
	}
	// The suite seed must matter.
	if CellSeed(1, "fig11", "PR") == CellSeed(2, "fig11", "PR") {
		t.Fatal("CellSeed ignores suite seed")
	}
}

func TestOptionsJobsResolution(t *testing.T) {
	var o Options
	if got := o.jobs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("jobs() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	o.Jobs = 3
	if got := o.jobs(); got != 3 {
		t.Fatalf("jobs() = %d, want 3", got)
	}
}

// The determinism gate: a multi-cell figure regenerated serially (-jobs=1)
// and on a wide pool (-jobs=8) must render byte-identical tables. This is
// the property the CI race job pins down: cells share no mutable state, so
// scheduling cannot leak into results.
func TestParallelMatchesSerial(t *testing.T) {
	o := quick() // PR, KM: fig11 is 12 cells
	e, err := Find("fig11")
	if err != nil {
		t.Fatal(err)
	}
	serial := o
	serial.Jobs = 1
	parallel := o
	parallel.Jobs = 8
	ts, err := e.Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Run(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Render() != tp.Render() {
		t.Fatalf("parallel table differs from serial:\n--- jobs=1\n%s\n--- jobs=8\n%s",
			ts.Render(), tp.Render())
	}
	if ts.RenderCSV() != tp.RenderCSV() {
		t.Fatal("parallel CSV differs from serial")
	}
	js, _ := ts.RenderJSON()
	jp, _ := tp.RenderJSON()
	if js != jp {
		t.Fatal("parallel JSON differs from serial")
	}
}

func TestRunCellsErrorNamesFailedCell(t *testing.T) {
	o := quick()
	o.Jobs = 2
	m := config.Default()
	specs := []CellSpec{
		{Figure: "fig-test", App: "PR", Machine: m, Scheme: config.Baseline()},
		{Figure: "fig-test", App: "nope", Machine: m, Scheme: config.IDYLL()},
	}
	res, err := RunCells(o, specs)
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	if res != nil {
		t.Fatal("results returned alongside error")
	}
	for _, want := range []string{"fig-test", "app=nope", "scheme=IDYLL"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

// A failed cell must cancel the pool: with one worker, a failure in the
// first cell abandons the queued remainder (at most one already-dequeued
// cell may still complete).
func TestRunCellsFailureCancelsQueue(t *testing.T) {
	o := quick()
	o.Jobs = 1
	o.CUsPerGPU, o.AccessesPerCU = 1, 20
	completed := 0
	o.Progress = func(done, total int, cell string) { completed = done }
	m := config.Default()
	specs := []CellSpec{{Figure: "f", App: "nope", Machine: m, Scheme: config.Baseline()}}
	for i := 0; i < 10; i++ {
		specs = append(specs, CellSpec{Figure: "f", App: "PR", Machine: m, Scheme: config.Baseline()})
	}
	if _, err := RunCells(o, specs); err == nil {
		t.Fatal("failing cell accepted")
	}
	if completed > 1 {
		t.Fatalf("pool ran %d cells after the failure, want ≤1", completed)
	}
}

func TestRunCellsProgressSequence(t *testing.T) {
	o := quick()
	o.Jobs = 4
	o.CUsPerGPU, o.AccessesPerCU = 1, 20
	m := config.Default()
	var specs []CellSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, CellSpec{Figure: "f", App: "KM", Machine: m, Scheme: config.Baseline()})
	}
	var dones []int
	o.Progress = func(done, total int, cell string) {
		if total != len(specs) {
			t.Errorf("total = %d, want %d", total, len(specs))
		}
		if cell == "" {
			t.Error("empty cell label")
		}
		dones = append(dones, done)
	}
	res, err := RunCells(o, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("%d results, want %d", len(res), len(specs))
	}
	for i, st := range res {
		if st == nil || st.Accesses == 0 {
			t.Fatalf("result %d empty", i)
		}
	}
	if len(dones) != len(specs) {
		t.Fatalf("%d progress calls, want %d", len(dones), len(specs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotonic", dones)
		}
	}
}

// A cancelled context must abort RunCells with context.Canceled — never a
// partial result reported as success — and must not disturb results of runs
// that complete before the cancellation.
func TestRunCellsCancellation(t *testing.T) {
	m := config.Default()
	mkSpecs := func(n int) []CellSpec {
		var specs []CellSpec
		for i := 0; i < n; i++ {
			specs = append(specs, CellSpec{Figure: "f", App: "PR", Machine: m, Scheme: config.Baseline()})
		}
		return specs
	}

	// Pre-cancelled: nothing runs, the error is context.Canceled.
	o := quick()
	o.Jobs = 2
	o.CUsPerGPU, o.AccessesPerCU = 1, 20
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o = o.WithContext(ctx)
	ran := 0
	o.Progress = func(done, total int, cell string) { ran = done }
	res, err := RunCells(o, mkSpecs(8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("results returned alongside cancellation")
	}
	if ran > 2 {
		t.Fatalf("%d cells completed after pre-cancellation, want ≤ jobs", ran)
	}

	// Cancel mid-flight (from a progress callback): RunCells stops early.
	o2 := quick()
	o2.Jobs = 1
	o2.CUsPerGPU, o2.AccessesPerCU = 1, 20
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	o2 = o2.WithContext(ctx2)
	completed := 0
	o2.Progress = func(done, total int, cell string) {
		completed = done
		if done == 2 {
			cancel2()
		}
	}
	if _, err := RunCells(o2, mkSpecs(10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight err = %v, want context.Canceled", err)
	}
	if completed > 3 {
		t.Fatalf("%d cells completed after mid-flight cancel, want ≤3", completed)
	}

	// An un-cancelled context leaves results identical to no context at all:
	// cancellation support must never perturb simulation output.
	plain := quick()
	plain.CUsPerGPU, plain.AccessesPerCU = 2, 50
	withCtx := plain.WithContext(context.Background())
	a, err := RunCells(plain, mkSpecs(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCells(withCtx, mkSpecs(1))
	if err != nil {
		t.Fatal(err)
	}
	if a[0].ExecCycles != b[0].ExecCycles || a[0].Accesses != b[0].Accesses {
		t.Fatal("context plumbing changed simulation results")
	}
}

// Identical (figure, app) cells share one trace regardless of scheme — the
// calibration invariant every figure's normalization depends on — while
// different figures draw independent traces.
func TestCellTracePairing(t *testing.T) {
	o := quick()
	o.CUsPerGPU, o.AccessesPerCU = 2, 50
	m := config.Default()
	// The page-sharing distribution is a pure function of the trace (which
	// pages each GPU touches), untouched by the scheme's timing — a
	// fingerprint of which trace a cell actually ran.
	run := func(fig string, s config.Scheme) []float64 {
		res, err := RunCells(o, []CellSpec{
			{Figure: fig, App: "PR", Machine: m, Scheme: s}})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Sharing().AccessDistribution(m.NumGPUs)
	}
	equal := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// Same cell, different scheme: same trace.
	if !equal(run("figA", config.Baseline()), run("figA", config.IDYLL())) {
		t.Fatal("schemes of one cell did not share the trace")
	}
	// Different figure: an independent trace.
	if equal(run("figA", config.Baseline()), run("figB", config.Baseline())) {
		t.Fatal("different figures drew the same trace")
	}
	// Baseline runs of the same cell are bit-repeatable.
	a, err := RunCells(o, []CellSpec{{Figure: "figA", App: "PR", Machine: m, Scheme: config.Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCells(o, []CellSpec{{Figure: "figA", App: "PR", Machine: m, Scheme: config.Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].ExecCycles != b[0].ExecCycles || a[0].Accesses != b[0].Accesses {
		t.Fatal("repeated cell not deterministic")
	}
}

// The PDES identity gate, experiment-level: a figure regenerated on the
// serial engine and on the parallel engine (-par=8, with -jobs=1 so the only
// concurrency is inside the cells) must render byte-identical tables. CI
// enforces the same property on the shipped fig11 artifact via the
// pdes-gate job.
func TestParEngineMatchesSerial(t *testing.T) {
	o := quick()
	o.Jobs = 1
	e, err := Find("fig11")
	if err != nil {
		t.Fatal(err)
	}
	serial := o
	par := o
	par.Par = 8
	ts, err := e.Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := e.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Render() != tp.Render() {
		t.Fatalf("parallel-engine table differs from serial:\n--- par=0\n%s\n--- par=8\n%s",
			ts.Render(), tp.Render())
	}
	js, _ := ts.RenderJSON()
	jp, _ := tp.RenderJSON()
	if js != jp {
		t.Fatal("parallel-engine JSON differs from serial")
	}
}
