package experiment

import (
	"fmt"
	"sort"
	"strings"

	"idyll/internal/config"
)

// Entry is one regenerable experiment in the suite.
type Entry struct {
	ID    string // "fig11", "table3", ...
	Run   func(Options) (*Table, error)
	Notes string
}

// Registry lists every regenerable table and figure, in paper order.
func Registry() []Entry {
	return []Entry{
		{"fig1", Figure1, "invalidation overhead, 2-GPU motivation"},
		{"fig2", Figure2, "migration-policy comparison"},
		{"table2", Table2, "baseline machine configuration"},
		{"table3", Table3, "application list with measured MPKI"},
		{"fig4", Figure4, "page-sharing distribution"},
		{"fig5", Figure5, "walker request mix"},
		{"fig6", Figure6, "demand miss latency without invalidation"},
		{"fig7", Figure7, "migration waiting latency share"},
		{"fig11", Figure11, "overall performance (headline)"},
		{"fig12", Figure12, "IDYLL demand miss latency"},
		{"fig13", Figure13, "IDYLL invalidation count and latency"},
		{"fig14", Figure14, "IDYLL migration waiting latency"},
		{"fig15", Figure15, "IRMB geometry sweep"},
		{"fig16", Figure16, "walker thread count sweep"},
		{"fig17", Figure17, "2048-entry L2 TLB"},
		{"fig18", Figure18, "8/16 GPU scaling"},
		{"fig19", Figure19, "4 unused bits, 8/16/32 GPUs"},
		{"fig20", Figure20, "access-counter threshold study"},
		{"fig21", Figure21, "2MB pages"},
		{"fig22", Figure22, "vs page replication"},
		{"fig23", Figure23, "vs Trans-FW"},
		{"fig24", Figure24, "DNN workloads"},
		{"ablation-drain", AblationDrainOnIdle, "IRMB drain-on-idle ablation"},
	}
}

// Find returns the registry entry with the given ID.
func Find(id string) (Entry, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiment: unknown id %q (known: %s)", id, strings.Join(ids, ", "))
}

// Table2 renders the machine configuration in the style of the paper's
// Table 2. It takes Options for signature uniformity; scale options do not
// change the configuration other than the CU count.
func Table2(o Options) (*Table, error) {
	m := config.Default()
	if o.CUsPerGPU > 0 {
		m.CUsPerGPU = o.CUsPerGPU
	}
	if o.CounterThreshold > 0 {
		m.AccessCounterThreshold = o.CounterThreshold
	}
	t := &Table{
		Title:   "Table 2: Baseline multi-GPU configuration",
		Columns: []string{"value"},
	}
	add := func(label string, v float64) { t.AddRow(label, []float64{v}) }
	add("GPUs", float64(m.NumGPUs))
	add("CUs per GPU", float64(m.CUsPerGPU))
	add("L1 TLB entries", float64(m.L1TLBEntries))
	add("L1 TLB latency (cy)", float64(m.L1TLBLatency))
	add("L2 TLB entries", float64(m.L2TLBEntries))
	add("L2 TLB ways", float64(m.L2TLBWays))
	add("L2 TLB latency (cy)", float64(m.L2TLBLatency))
	add("PTW threads", float64(m.PTWThreads))
	add("PTW level latency (cy)", float64(m.PTWLevelLatency))
	add("PWC entries", float64(m.PWCEntries))
	add("Walk queue depth", float64(m.WalkQueueDepth))
	add("Access counter threshold", float64(m.AccessCounterThreshold))
	add("Migration block (pages)", float64(m.MigrationBlockPages))
	add("NVLink B/cycle", m.NVLinkBytesPerCycle)
	add("PCIe B/cycle", m.PCIeBytesPerCycle)
	return t, nil
}
