package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderCSV emits the table as CSV: a header row of columns, then one line
// per series. Labels containing commas or quotes are quoted.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	b.WriteString("series")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// jsonTable is the stable JSON shape of a rendered experiment.
type jsonTable struct {
	Title   string            `json:"title"`
	Caption string            `json:"caption,omitempty"`
	Columns []string          `json:"columns"`
	Series  []jsonSeries      `json:"series"`
	Cells   map[string]string `json:"-"`
}

type jsonSeries struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// RenderJSON emits the table as indented JSON.
func (t *Table) RenderJSON() (string, error) {
	out := jsonTable{Title: t.Title, Caption: t.Caption, Columns: t.Columns}
	for _, r := range t.Rows {
		out.Series = append(out.Series, jsonSeries{Label: r.Label, Values: r.Values})
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// ParseTableJSON round-trips a RenderJSON output back into a Table, so
// downstream tools (and tests) can consume saved results.
func ParseTableJSON(raw string) (*Table, error) {
	var in jsonTable
	if err := json.Unmarshal([]byte(raw), &in); err != nil {
		return nil, fmt.Errorf("experiment: parsing table JSON: %w", err)
	}
	t := &Table{Title: in.Title, Caption: in.Caption, Columns: in.Columns}
	for _, s := range in.Series {
		t.AddRow(s.Label, s.Values)
	}
	return t, nil
}
