package experiment

import (
	"bytes"
	"context"
	"testing"
)

func TestCanonicalFillsDefaults(t *testing.T) {
	c, err := Options{}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultOptions()
	if c.CUsPerGPU != def.CUsPerGPU || c.AccessesPerCU != def.AccessesPerCU ||
		c.Seed != def.Seed || c.CounterThreshold != def.CounterThreshold {
		t.Errorf("zero options canonicalized to %+v, want defaults %+v", c, def)
	}
	// A spelled-out default and the zero value must hash identically.
	a, err := Options{}.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := def.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("zero options encode %s, defaults encode %s", a, b)
	}
}

func TestCanonicalRejectsNegative(t *testing.T) {
	for _, o := range []Options{
		{CUsPerGPU: -1},
		{AccessesPerCU: -4},
		{CounterThreshold: -2},
		{Jobs: -8},
	} {
		if _, err := o.Canonical(); err == nil {
			t.Errorf("Canonical(%+v) accepted a negative field", o)
		}
	}
}

func TestCanonicalRejectsUnknownApp(t *testing.T) {
	if _, err := (Options{Apps: []string{"NOSUCH"}}).Canonical(); err == nil {
		t.Error("Canonical accepted an unknown app")
	}
}

func TestCanonicalExcludesExecutionKnobs(t *testing.T) {
	base := QuickOptions()
	noisy := base
	noisy.Jobs = 7
	noisy.Progress = func(int, int, string) {}
	noisy = noisy.WithContext(context.Background())
	a, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := noisy.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("execution knobs leaked into the canonical encoding:\n%s\n%s", a, b)
	}
}

// TestCanonicalJSONByteStable is the cache-key correctness property:
// encode(decode(encode(x))) == encode(x), byte for byte, including for specs
// that arrive partially filled or with non-canonical app spellings.
func TestCanonicalJSONByteStable(t *testing.T) {
	cases := []Options{
		{},
		DefaultOptions(),
		QuickOptions(),
		{CUsPerGPU: 2, AccessesPerCU: 50, Seed: 99, CounterThreshold: 1},
		{Apps: []string{"pr", "bs"}}, // non-canonical case resolves via registry
		{Seed: 1<<53 - 1},            // largest float64-exact seed region
	}
	for _, o := range cases {
		first, err := o.CanonicalJSON()
		if err != nil {
			t.Fatalf("encode(%+v): %v", o, err)
		}
		decoded, err := OptionsFromCanonicalJSON(first)
		if err != nil {
			t.Fatalf("decode(%s): %v", first, err)
		}
		second, err := decoded.CanonicalJSON()
		if err != nil {
			t.Fatalf("re-encode(%+v): %v", decoded, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("not byte-stable:\n first=%s\nsecond=%s", first, second)
		}
	}
}

func TestOptionsFromCanonicalJSONRejectsUnknownField(t *testing.T) {
	_, err := OptionsFromCanonicalJSON([]byte(`{"cus_per_gpu":4,"warp_width":32}`))
	if err == nil {
		t.Error("unknown field accepted — it would alias a different result")
	}
}
