// Package interconnect models the multi-GPU system's links: an all-to-all
// NVLink-v2 fabric between GPUs (300 GB/s per directed link) and a PCIe-v4
// connection from each GPU to the CPU/UVM driver (32 GB/s), per Table 2.
//
// Each directed link serializes messages at its bandwidth (bytes per cycle
// of the 1 GHz clock: 300 B/cy for NVLink, 32 B/cy for PCIe) and then adds a
// fixed propagation latency. Contention therefore appears as serialization
// queueing — the effect behind the paper's observation that broadcasting
// invalidations congests the interconnect even when they cost zero cycles on
// the GPUs (§7.1).
//
// Links are the system's synchronization-domain boundaries: a directed link
// is owned by its sender's pdes.Domain (its serialization state is read and
// advanced only there), and a message's arrival closure is posted to the
// receiver's domain with the full wire latency. Because every link's
// propagation is at least the cluster lookahead minus the one guaranteed
// serialization cycle, link traffic can never deliver inside the sender's
// current window — the property the conservative parallel engine rests on
// (see internal/sim/pdes).
package interconnect

import (
	"fmt"

	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
)

// Link is a single directed channel. It must be used only from its owning
// domain's events.
type Link struct {
	owner         *pdes.Domain
	dst           pdes.DomainID
	bytesPerCycle float64
	propagation   sim.VTime
	nextFree      sim.VTime

	messages  uint64
	bytesSent uint64
	busyTime  sim.VTime
}

// NewLink builds a directed link with the given bandwidth (bytes per cycle)
// and propagation delay (cycles), owned by the sender's domain and
// delivering into dst. In a multi-domain cluster the propagation plus the
// guaranteed serialization cycle must cover the cluster lookahead; a link
// fast enough to deliver inside a window is a configuration error caught
// here, at build time, rather than as a mid-run conservatism panic.
func NewLink(owner *pdes.Domain, dst pdes.DomainID, bytesPerCycle float64, propagation sim.VTime) *Link {
	if bytesPerCycle <= 0 {
		panic("interconnect: non-positive bandwidth")
	}
	if cl := owner.Cluster(); cl.NumDomains() > 1 && owner.ID() != dst &&
		propagation+1 < cl.Lookahead() {
		panic(fmt.Sprintf(
			"interconnect: link propagation %d cannot cover cluster lookahead %d",
			propagation, cl.Lookahead()))
	}
	return &Link{owner: owner, dst: dst, bytesPerCycle: bytesPerCycle, propagation: propagation}
}

// Send transmits a message of the given size. When the last byte arrives at
// the far end, deliver (if non-nil) runs in the receiver's domain and local
// (if non-nil) runs in the sender's domain — both at the same arrival
// cycle. Messages on one link are serialized in send order. Senders that
// need receiver-side state pass deliver; senders that continue their own
// protocol once the wire is known to have delivered pass local, which stays
// domain-internal and costs no cross-domain traffic.
func (l *Link) Send(bytes int, deliver, local func()) {
	if bytes <= 0 {
		bytes = 1
	}
	now := l.owner.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	ser := sim.VTime(float64(bytes)/l.bytesPerCycle + 0.999999)
	if ser < 1 {
		ser = 1
	}
	l.nextFree = start + ser
	l.messages++
	l.bytesSent += uint64(bytes)
	l.busyTime += ser
	at := l.nextFree + l.propagation
	if deliver != nil {
		l.owner.Post(l.dst, at, deliver)
	}
	if local != nil {
		l.owner.ScheduleAt(at, local)
	}
}

// Stats reports messages, bytes, and busy cycles on this link.
func (l *Link) Stats() (messages, bytes uint64, busy sim.VTime) {
	return l.messages, l.bytesSent, l.busyTime
}

// Network is the system fabric: directed GPU↔GPU links and directed
// GPU↔CPU links. Each link lives in its sender's domain; the Network struct
// itself is immutable after construction and safe to reference from any
// domain.
type Network struct {
	numGPUs int
	gpuGPU  [][]*Link // [from][to], nil on the diagonal
	gpuCPU  []*Link   // GPU → CPU
	cpuGPU  []*Link   // CPU → GPU
}

// Config sets link parameters for a Network.
type Config struct {
	NumGPUs int
	// NVLinkBytesPerCycle is the inter-GPU bandwidth (Table 2: 300 GB/s at
	// 1 GHz = 300 bytes/cycle).
	NVLinkBytesPerCycle float64
	// NVLinkLatency is the propagation delay between GPUs.
	NVLinkLatency sim.VTime
	// PCIeBytesPerCycle is the CPU↔GPU bandwidth (Table 2: 32 GB/s = 32 B/cy).
	PCIeBytesPerCycle float64
	// PCIeLatency is the propagation delay between a GPU and the CPU.
	PCIeLatency sim.VTime
}

// NewNetwork builds the all-to-all fabric on the cluster's domains. The
// cluster carries either one domain (everything shares one engine — the
// degenerate layout zero-latency idealizations require) or NumGPUs+1
// domains: one per GPU, in GPU order, plus the host domain last.
func NewNetwork(cl *pdes.Cluster, cfg Config) *Network {
	if cl.NumDomains() != 1 && cl.NumDomains() != cfg.NumGPUs+1 {
		panic(fmt.Sprintf("interconnect: cluster has %d domains for %d GPUs; want 1 or %d",
			cl.NumDomains(), cfg.NumGPUs, cfg.NumGPUs+1))
	}
	gpuDom := func(i int) pdes.DomainID {
		if cl.NumDomains() == 1 {
			return 0
		}
		return pdes.DomainID(i)
	}
	hostDom := pdes.DomainID(0)
	if cl.NumDomains() > 1 {
		hostDom = pdes.DomainID(cfg.NumGPUs)
	}
	n := &Network{
		numGPUs: cfg.NumGPUs,
		gpuGPU:  make([][]*Link, cfg.NumGPUs),
		gpuCPU:  make([]*Link, cfg.NumGPUs),
		cpuGPU:  make([]*Link, cfg.NumGPUs),
	}
	for i := 0; i < cfg.NumGPUs; i++ {
		n.gpuGPU[i] = make([]*Link, cfg.NumGPUs)
		for j := 0; j < cfg.NumGPUs; j++ {
			if i != j {
				n.gpuGPU[i][j] = NewLink(cl.Domain(int(gpuDom(i))), gpuDom(j),
					cfg.NVLinkBytesPerCycle, cfg.NVLinkLatency)
			}
		}
		n.gpuCPU[i] = NewLink(cl.Domain(int(gpuDom(i))), hostDom,
			cfg.PCIeBytesPerCycle, cfg.PCIeLatency)
		n.cpuGPU[i] = NewLink(cl.Domain(int(hostDom)), gpuDom(i),
			cfg.PCIeBytesPerCycle, cfg.PCIeLatency)
	}
	return n
}

// NumGPUs reports the number of GPUs on the fabric.
func (n *Network) NumGPUs() int { return n.numGPUs }

// GPUToGPU sends a message between two distinct GPUs; call only from the
// sending GPU's domain. deliver runs in the receiving GPU's domain, local
// in the sender's (either may be nil).
func (n *Network) GPUToGPU(from, to, bytes int, deliver, local func()) {
	if from == to {
		panic("interconnect: GPU self-send")
	}
	n.gpuGPU[from][to].Send(bytes, deliver, local)
}

// GPUToCPU sends a message from a GPU to the host; call only from the GPU's
// domain. deliver runs in the host domain, local in the GPU's.
func (n *Network) GPUToCPU(gpu, bytes int, deliver, local func()) {
	n.gpuCPU[gpu].Send(bytes, deliver, local)
}

// CPUToGPU sends a message from the host to a GPU; call only from the host
// domain. deliver runs in the GPU's domain, local in the host's.
func (n *Network) CPUToGPU(gpu, bytes int, deliver, local func()) {
	n.cpuGPU[gpu].Send(bytes, deliver, local)
}

// TotalBytes reports bytes carried on the NVLink fabric and the PCIe links.
// Call only after the run completes (it reads every domain's links).
func (n *Network) TotalBytes() (nvlink, pcie uint64) {
	for i := 0; i < n.numGPUs; i++ {
		for j := 0; j < n.numGPUs; j++ {
			if l := n.gpuGPU[i][j]; l != nil {
				_, b, _ := l.Stats()
				nvlink += b
			}
		}
		_, b1, _ := n.gpuCPU[i].Stats()
		_, b2, _ := n.cpuGPU[i].Stats()
		pcie += b1 + b2
	}
	return
}
