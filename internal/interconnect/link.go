// Package interconnect models the multi-GPU system's links: an all-to-all
// NVLink-v2 fabric between GPUs (300 GB/s per directed link) and a PCIe-v4
// connection from each GPU to the CPU/UVM driver (32 GB/s), per Table 2.
//
// Each directed link serializes messages at its bandwidth (bytes per cycle
// of the 1 GHz clock: 300 B/cy for NVLink, 32 B/cy for PCIe) and then adds a
// fixed propagation latency. Contention therefore appears as serialization
// queueing — the effect behind the paper's observation that broadcasting
// invalidations congests the interconnect even when they cost zero cycles on
// the GPUs (§7.1).
package interconnect

import (
	"idyll/internal/sim"
)

// Link is a single directed channel.
type Link struct {
	engine        *sim.Engine
	bytesPerCycle float64
	propagation   sim.VTime
	nextFree      sim.VTime

	messages  uint64
	bytesSent uint64
	busyTime  sim.VTime
}

// NewLink builds a directed link with the given bandwidth (bytes per cycle)
// and propagation delay (cycles).
func NewLink(engine *sim.Engine, bytesPerCycle float64, propagation sim.VTime) *Link {
	if bytesPerCycle <= 0 {
		panic("interconnect: non-positive bandwidth")
	}
	return &Link{engine: engine, bytesPerCycle: bytesPerCycle, propagation: propagation}
}

// Send transmits a message of the given size and invokes deliver when the
// last byte arrives at the far end. Messages on one link are serialized in
// send order.
func (l *Link) Send(bytes int, deliver func()) {
	if bytes <= 0 {
		bytes = 1
	}
	now := l.engine.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	ser := sim.VTime(float64(bytes)/l.bytesPerCycle + 0.999999)
	if ser < 1 {
		ser = 1
	}
	l.nextFree = start + ser
	l.messages++
	l.bytesSent += uint64(bytes)
	l.busyTime += ser
	l.engine.ScheduleAt(l.nextFree+l.propagation, deliver)
}

// Stats reports messages, bytes, and busy cycles on this link.
func (l *Link) Stats() (messages, bytes uint64, busy sim.VTime) {
	return l.messages, l.bytesSent, l.busyTime
}

// Network is the system fabric: directed GPU↔GPU links and directed
// GPU↔CPU links.
type Network struct {
	numGPUs int
	gpuGPU  [][]*Link // [from][to], nil on the diagonal
	gpuCPU  []*Link   // GPU → CPU
	cpuGPU  []*Link   // CPU → GPU
}

// Config sets link parameters for a Network.
type Config struct {
	NumGPUs int
	// NVLinkBytesPerCycle is the inter-GPU bandwidth (Table 2: 300 GB/s at
	// 1 GHz = 300 bytes/cycle).
	NVLinkBytesPerCycle float64
	// NVLinkLatency is the propagation delay between GPUs.
	NVLinkLatency sim.VTime
	// PCIeBytesPerCycle is the CPU↔GPU bandwidth (Table 2: 32 GB/s = 32 B/cy).
	PCIeBytesPerCycle float64
	// PCIeLatency is the propagation delay between a GPU and the CPU.
	PCIeLatency sim.VTime
}

// NewNetwork builds the all-to-all fabric.
func NewNetwork(engine *sim.Engine, cfg Config) *Network {
	n := &Network{
		numGPUs: cfg.NumGPUs,
		gpuGPU:  make([][]*Link, cfg.NumGPUs),
		gpuCPU:  make([]*Link, cfg.NumGPUs),
		cpuGPU:  make([]*Link, cfg.NumGPUs),
	}
	for i := 0; i < cfg.NumGPUs; i++ {
		n.gpuGPU[i] = make([]*Link, cfg.NumGPUs)
		for j := 0; j < cfg.NumGPUs; j++ {
			if i != j {
				n.gpuGPU[i][j] = NewLink(engine, cfg.NVLinkBytesPerCycle, cfg.NVLinkLatency)
			}
		}
		n.gpuCPU[i] = NewLink(engine, cfg.PCIeBytesPerCycle, cfg.PCIeLatency)
		n.cpuGPU[i] = NewLink(engine, cfg.PCIeBytesPerCycle, cfg.PCIeLatency)
	}
	return n
}

// NumGPUs reports the number of GPUs on the fabric.
func (n *Network) NumGPUs() int { return n.numGPUs }

// GPUToGPU sends a message between two distinct GPUs.
func (n *Network) GPUToGPU(from, to, bytes int, deliver func()) {
	if from == to {
		panic("interconnect: GPU self-send")
	}
	n.gpuGPU[from][to].Send(bytes, deliver)
}

// GPUToCPU sends a message from a GPU to the host.
func (n *Network) GPUToCPU(gpu, bytes int, deliver func()) {
	n.gpuCPU[gpu].Send(bytes, deliver)
}

// CPUToGPU sends a message from the host to a GPU.
func (n *Network) CPUToGPU(gpu, bytes int, deliver func()) {
	n.cpuGPU[gpu].Send(bytes, deliver)
}

// TotalBytes reports bytes carried on the NVLink fabric and the PCIe links.
func (n *Network) TotalBytes() (nvlink, pcie uint64) {
	for i := 0; i < n.numGPUs; i++ {
		for j := 0; j < n.numGPUs; j++ {
			if l := n.gpuGPU[i][j]; l != nil {
				_, b, _ := l.Stats()
				nvlink += b
			}
		}
		_, b1, _ := n.gpuCPU[i].Stats()
		_, b2, _ := n.cpuGPU[i].Stats()
		pcie += b1 + b2
	}
	return
}
