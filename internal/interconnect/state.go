package interconnect

import (
	"idyll/internal/checkpoint"
	"idyll/internal/sim"
)

// Checkpoint support. At a quiescent point no message is on the wire (the
// delivery closures have all fired), but a link's serialization horizon can
// still sit beyond the drained clock — a backlog queued at the end of the
// run keeps nextFree in the future — so nextFree is state, not derivable.
// The link topology is fixed by configuration; only the per-link scalars
// travel.

// SaveState writes the link's serialization horizon and traffic counters.
func (l *Link) SaveState(w *checkpoint.Writer) {
	w.I64(int64(l.nextFree))
	w.U64(l.messages)
	w.U64(l.bytesSent)
	w.I64(int64(l.busyTime))
}

// RestoreState reads the state written by SaveState.
func (l *Link) RestoreState(r *checkpoint.Reader) {
	l.nextFree = sim.VTime(r.I64())
	l.messages = r.U64()
	l.bytesSent = r.U64()
	l.busyTime = sim.VTime(r.I64())
}

// SaveState writes every link's state in fixed topology order: GPU→GPU by
// [from][to] skipping the diagonal, then GPU→CPU and CPU→GPU by GPU index.
func (n *Network) SaveState(w *checkpoint.Writer) {
	w.Int(n.numGPUs)
	for i := 0; i < n.numGPUs; i++ {
		for j := 0; j < n.numGPUs; j++ {
			if i != j {
				n.gpuGPU[i][j].SaveState(w)
			}
		}
		n.gpuCPU[i].SaveState(w)
		n.cpuGPU[i].SaveState(w)
	}
}

// RestoreState reads the state written by SaveState into a fabric of the
// same shape.
func (n *Network) RestoreState(r *checkpoint.Reader) {
	if g := r.Int(); g != n.numGPUs {
		r.Failf("interconnect: %d GPUs in checkpoint, %d configured", g, n.numGPUs)
		return
	}
	for i := 0; i < n.numGPUs; i++ {
		for j := 0; j < n.numGPUs; j++ {
			if i != j {
				n.gpuGPU[i][j].RestoreState(r)
			}
		}
		n.gpuCPU[i].RestoreState(r)
		n.cpuGPU[i].RestoreState(r)
	}
}
