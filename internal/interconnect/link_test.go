package interconnect

import (
	"testing"

	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
)

// testDomain builds a single-domain cluster, where links degenerate to plain
// engine scheduling — the pre-parallel semantics every timing test asserts.
func testDomain() (*pdes.Domain, *sim.Engine) {
	cl := pdes.NewCluster(1, 1)
	d := cl.Domain(0)
	return d, d.Engine()
}

func TestLinkLatencyAndSerialization(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 300, 200) // NVLink-like: 300 B/cy, 200 cy propagation
	var arrive sim.VTime
	l.Send(4096, func() { arrive = e.Now() }, nil) // 4 KB page: ceil(4096/300)=14 cy
	e.Run()
	if arrive != 14+200 {
		t.Fatalf("page arrived at %d, want 214", arrive)
	}
}

func TestLinkBackToBackSerializes(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 32, 100) // PCIe-like
	var first, second sim.VTime
	l.Send(64, func() { first = e.Now() }, nil)  // ser 2 cy → arrives 102
	l.Send(64, func() { second = e.Now() }, nil) // starts at 2, ser 2 → arrives 104
	e.Run()
	if first != 102 || second != 104 {
		t.Fatalf("arrivals = %d,%d; want 102,104", first, second)
	}
}

func TestLinkFreesAfterIdle(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 64, 10)
	var second sim.VTime
	l.Send(64, func() {}, nil)
	e.Schedule(100, func() {
		l.Send(64, func() { second = e.Now() }, nil)
	})
	e.Run()
	// Second send starts fresh at t=100: 1 cycle ser + 10 propagation.
	if second != 111 {
		t.Fatalf("second arrival = %d, want 111", second)
	}
}

func TestLinkMinimumOneCycle(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 1000, 0)
	var at sim.VTime = -1
	l.Send(8, func() { at = e.Now() }, nil)
	e.Run()
	if at != 1 {
		t.Fatalf("tiny message arrived at %d, want 1", at)
	}
}

func TestLinkLocalContinuationFiresWithDelivery(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 300, 200)
	var deliverAt, localAt sim.VTime
	l.Send(4096, func() { deliverAt = e.Now() }, func() { localAt = e.Now() })
	e.Run()
	// The sender-side continuation models "the transfer is done" from the
	// source's clock; it carries the same latency as the delivery.
	if deliverAt != 214 || localAt != 214 {
		t.Fatalf("deliver=%d local=%d, want both 214", deliverAt, localAt)
	}
}

func TestLinkRejectsSubLookaheadCrossDomain(t *testing.T) {
	cl := pdes.NewCluster(2, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-domain link faster than the lookahead did not panic")
		}
	}()
	// propagation 10 + 1 serialization cycle < lookahead 50: messages could
	// land inside a window, so construction must refuse.
	NewLink(cl.Domain(0), 1, 300, 10)
}

func TestLinkStats(t *testing.T) {
	d, e := testDomain()
	l := NewLink(d, 0, 100, 5)
	l.Send(100, func() {}, nil)
	l.Send(300, func() {}, nil)
	e.Run()
	msgs, bytes, busy := l.Stats()
	if msgs != 2 || bytes != 400 {
		t.Fatalf("msgs=%d bytes=%d", msgs, bytes)
	}
	if busy != 1+3 {
		t.Fatalf("busy = %d, want 4", busy)
	}
}

func TestNetworkTopology(t *testing.T) {
	cl := pdes.NewCluster(1, 1)
	e := cl.Domain(0).Engine()
	n := NewNetwork(cl, Config{
		NumGPUs:             4,
		NVLinkBytesPerCycle: 300, NVLinkLatency: 200,
		PCIeBytesPerCycle: 32, PCIeLatency: 600,
	})
	if n.NumGPUs() != 4 {
		t.Fatal("wrong GPU count")
	}
	var viaNVLink, viaPCIe sim.VTime
	n.GPUToGPU(0, 3, 64, func() { viaNVLink = e.Now() }, nil)
	n.GPUToCPU(2, 64, func() { viaPCIe = e.Now() }, nil)
	e.Run()
	if viaNVLink != 201 {
		t.Fatalf("NVLink control msg at %d, want 201", viaNVLink)
	}
	if viaPCIe != 602 {
		t.Fatalf("PCIe control msg at %d, want 602", viaPCIe)
	}
}

func TestNetworkLinksAreIndependent(t *testing.T) {
	cl := pdes.NewCluster(1, 1)
	e := cl.Domain(0).Engine()
	n := NewNetwork(cl, Config{
		NumGPUs:             2,
		NVLinkBytesPerCycle: 1, NVLinkLatency: 0,
		PCIeBytesPerCycle: 1, PCIeLatency: 0,
	})
	var a, b sim.VTime
	// Opposite directions must not serialize against each other.
	n.GPUToGPU(0, 1, 10, func() { a = e.Now() }, nil)
	n.GPUToGPU(1, 0, 10, func() { b = e.Now() }, nil)
	e.Run()
	if a != 10 || b != 10 {
		t.Fatalf("duplex arrivals = %d,%d; want 10,10", a, b)
	}
}

func TestNetworkSelfSendPanics(t *testing.T) {
	cl := pdes.NewCluster(1, 1)
	n := NewNetwork(cl, Config{NumGPUs: 2, NVLinkBytesPerCycle: 1, PCIeBytesPerCycle: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.GPUToGPU(1, 1, 8, func() {}, nil)
}

func TestNetworkRejectsBadDomainLayout(t *testing.T) {
	cl := pdes.NewCluster(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched domain layout did not panic")
		}
	}()
	// 4 GPUs need 1 or 5 domains; a 3-domain cluster fits neither layout.
	NewNetwork(cl, Config{NumGPUs: 4, NVLinkBytesPerCycle: 1, PCIeBytesPerCycle: 1})
}

func TestNetworkByteAccounting(t *testing.T) {
	cl := pdes.NewCluster(1, 1)
	e := cl.Domain(0).Engine()
	n := NewNetwork(cl, Config{NumGPUs: 2, NVLinkBytesPerCycle: 10, PCIeBytesPerCycle: 10})
	n.GPUToGPU(0, 1, 4096, func() {}, nil)
	n.GPUToCPU(0, 64, func() {}, nil)
	n.CPUToGPU(1, 64, func() {}, nil)
	e.Run()
	nv, pcie := n.TotalBytes()
	if nv != 4096 || pcie != 128 {
		t.Fatalf("nvlink=%d pcie=%d", nv, pcie)
	}
}

func TestNetworkMultiDomainTimingMatchesSingle(t *testing.T) {
	// The same sends, once on a single shared domain and once on the per-GPU
	// layout under the cluster's serial executor, must deliver at identical
	// cycles.
	run := func(domains int) (a, b sim.VTime) {
		lookahead := sim.VTime(1)
		if domains > 1 {
			lookahead = 201 // min(NVLink prop 200, PCIe prop 600) + 1
		}
		cl := pdes.NewCluster(domains, lookahead)
		n := NewNetwork(cl, Config{
			NumGPUs:             2,
			NVLinkBytesPerCycle: 300, NVLinkLatency: 200,
			PCIeBytesPerCycle: 32, PCIeLatency: 600,
		})
		gpuDom := func(i int) *pdes.Domain {
			if cl.NumDomains() == 1 {
				return cl.Domain(0)
			}
			return cl.Domain(i)
		}
		host := cl.Domain(cl.NumDomains() - 1)
		gpuDom(0).ScheduleAt(0, func() {
			n.GPUToGPU(0, 1, 4096, nil, nil)
			n.GPUToCPU(0, 64, func() { a = host.Now() }, nil)
		})
		host.ScheduleAt(10, func() {
			n.CPUToGPU(1, 64, func() { b = gpuDom(1).Now() }, nil)
		})
		cl.Run(1)
		return a, b
	}
	a1, b1 := run(1)
	a3, b3 := run(3)
	if a1 != a3 || b1 != b3 {
		t.Fatalf("timing differs across layouts: single=(%d,%d) multi=(%d,%d)", a1, b1, a3, b3)
	}
	if a1 != 602 || b1 != 612 {
		t.Fatalf("arrivals = %d,%d; want 602,612", a1, b1)
	}
}
