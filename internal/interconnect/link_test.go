package interconnect

import (
	"testing"

	"idyll/internal/sim"
)

func TestLinkLatencyAndSerialization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 300, 200) // NVLink-like: 300 B/cy, 200 cy propagation
	var arrive sim.VTime
	l.Send(4096, func() { arrive = e.Now() }) // 4 KB page: ceil(4096/300)=14 cy
	e.Run()
	if arrive != 14+200 {
		t.Fatalf("page arrived at %d, want 214", arrive)
	}
}

func TestLinkBackToBackSerializes(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 32, 100) // PCIe-like
	var first, second sim.VTime
	l.Send(64, func() { first = e.Now() })  // ser 2 cy → arrives 102
	l.Send(64, func() { second = e.Now() }) // starts at 2, ser 2 → arrives 104
	e.Run()
	if first != 102 || second != 104 {
		t.Fatalf("arrivals = %d,%d; want 102,104", first, second)
	}
}

func TestLinkFreesAfterIdle(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 64, 10)
	var second sim.VTime
	l.Send(64, func() {})
	e.Schedule(100, func() {
		l.Send(64, func() { second = e.Now() })
	})
	e.Run()
	// Second send starts fresh at t=100: 1 cycle ser + 10 propagation.
	if second != 111 {
		t.Fatalf("second arrival = %d, want 111", second)
	}
}

func TestLinkMinimumOneCycle(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0)
	var at sim.VTime = -1
	l.Send(8, func() { at = e.Now() })
	e.Run()
	if at != 1 {
		t.Fatalf("tiny message arrived at %d, want 1", at)
	}
}

func TestLinkStats(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 100, 5)
	l.Send(100, func() {})
	l.Send(300, func() {})
	e.Run()
	msgs, bytes, busy := l.Stats()
	if msgs != 2 || bytes != 400 {
		t.Fatalf("msgs=%d bytes=%d", msgs, bytes)
	}
	if busy != 1+3 {
		t.Fatalf("busy = %d, want 4", busy)
	}
}

func TestNetworkTopology(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, Config{
		NumGPUs:             4,
		NVLinkBytesPerCycle: 300, NVLinkLatency: 200,
		PCIeBytesPerCycle: 32, PCIeLatency: 600,
	})
	if n.NumGPUs() != 4 {
		t.Fatal("wrong GPU count")
	}
	var viaNVLink, viaPCIe sim.VTime
	n.GPUToGPU(0, 3, 64, func() { viaNVLink = e.Now() })
	n.GPUToCPU(2, 64, func() { viaPCIe = e.Now() })
	e.Run()
	if viaNVLink != 201 {
		t.Fatalf("NVLink control msg at %d, want 201", viaNVLink)
	}
	if viaPCIe != 602 {
		t.Fatalf("PCIe control msg at %d, want 602", viaPCIe)
	}
}

func TestNetworkLinksAreIndependent(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, Config{
		NumGPUs:             2,
		NVLinkBytesPerCycle: 1, NVLinkLatency: 0,
		PCIeBytesPerCycle: 1, PCIeLatency: 0,
	})
	var a, b sim.VTime
	// Opposite directions must not serialize against each other.
	n.GPUToGPU(0, 1, 10, func() { a = e.Now() })
	n.GPUToGPU(1, 0, 10, func() { b = e.Now() })
	e.Run()
	if a != 10 || b != 10 {
		t.Fatalf("duplex arrivals = %d,%d; want 10,10", a, b)
	}
}

func TestNetworkSelfSendPanics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, Config{NumGPUs: 2, NVLinkBytesPerCycle: 1, PCIeBytesPerCycle: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	n.GPUToGPU(1, 1, 8, func() {})
}

func TestNetworkByteAccounting(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e, Config{NumGPUs: 2, NVLinkBytesPerCycle: 10, PCIeBytesPerCycle: 10})
	n.GPUToGPU(0, 1, 4096, func() {})
	n.GPUToCPU(0, 64, func() {})
	n.CPUToGPU(1, 64, func() {})
	e.Run()
	nv, pcie := n.TotalBytes()
	if nv != 4096 || pcie != 128 {
		t.Fatalf("nvlink=%d pcie=%d", nv, pcie)
	}
}
