package driver

import (
	"testing"

	"idyll/internal/config"
	"idyll/internal/interconnect"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
	"idyll/internal/stats"
)

// fakeGPU records driver→GPU traffic and acks invalidations after a fixed
// delay, standing in for the full GPU model.
type fakeGPU struct {
	engine   *sim.Engine
	ackDelay sim.VTime

	invals   []memdef.VPN
	mappings map[memdef.VPN]pagetable.PTE
	prt      []memdef.VPN
}

func newFakeGPU(e *sim.Engine, ackDelay sim.VTime) *fakeGPU {
	return &fakeGPU{engine: e, ackDelay: ackDelay, mappings: make(map[memdef.VPN]pagetable.PTE)}
}

func (f *fakeGPU) ReceiveInvalidation(vpn memdef.VPN, ack func()) {
	f.invals = append(f.invals, vpn)
	f.engine.Schedule(f.ackDelay, ack)
}

func (f *fakeGPU) ReceiveMapping(vpn memdef.VPN, pte pagetable.PTE) {
	f.mappings[vpn] = pte
}

func (f *fakeGPU) ReceivePRTInsert(vpn memdef.VPN, holder int) {
	f.prt = append(f.prt, vpn)
}

// rig builds a driver with four fake GPUs on a single-domain cluster, where
// the domain plumbing degenerates to the plain engine the assertions drive.
func rig(t *testing.T, scheme config.Scheme) (*sim.Engine, *Driver, []*fakeGPU, *stats.Sim) {
	t.Helper()
	cl := pdes.NewCluster(1, 1)
	dom := cl.Domain(0)
	e := dom.Engine()
	m := config.Default()
	m.MigrationBlockPages = 1 // page-granular for precise assertions
	st := stats.NewSim()
	net := interconnect.NewNetwork(cl, interconnect.Config{
		NumGPUs:             m.NumGPUs,
		NVLinkBytesPerCycle: m.NVLinkBytesPerCycle,
		NVLinkLatency:       m.NVLinkLatency,
		PCIeBytesPerCycle:   m.PCIeBytesPerCycle,
		PCIeLatency:         m.PCIeLatency,
	})
	d := New(dom, m, scheme, net, st)
	fakes := make([]*fakeGPU, m.NumGPUs)
	ports := make([]GPUPort, m.NumGPUs)
	for i := range fakes {
		fakes[i] = newFakeGPU(e, 50)
		ports[i] = fakes[i]
	}
	d.AttachGPUs(ports)
	return e, d, fakes, st
}

func TestFirstTouchPlacesPageOnFaultingGPU(t *testing.T) {
	e, d, fakes, _ := rig(t, config.Baseline())
	d.FarFault(2, 100, false)
	e.Run()
	owner, ok := d.Owner(100)
	if !ok || owner != memdef.GPUDevice(2) {
		t.Fatalf("owner = %v,%v; want GPU2", owner, ok)
	}
	pte, ok := fakes[2].mappings[100]
	if !ok || !pte.Valid || pte.PFN.Device() != memdef.GPUDevice(2) {
		t.Fatalf("GPU2 mapping = %+v,%v", pte, ok)
	}
}

func TestSecondFaultGetsRemoteMapping(t *testing.T) {
	e, d, fakes, _ := rig(t, config.Baseline())
	d.FarFault(0, 7, false)
	e.Run()
	d.FarFault(1, 7, false)
	e.Run()
	pte, ok := fakes[1].mappings[7]
	if !ok || pte.PFN.Device() != memdef.GPUDevice(0) {
		t.Fatalf("GPU1 should get a remote mapping to GPU0's memory, got %+v,%v", pte, ok)
	}
}

func TestMigrationBroadcastsAndMoves(t *testing.T) {
	e, d, fakes, st := rig(t, config.Baseline())
	d.FarFault(0, 7, false) // owner: GPU0
	e.Run()
	d.FarFault(1, 7, false) // GPU1 remote-maps
	e.Run()
	d.RequestMigration(1, 7)
	e.Run()
	if owner, _ := d.Owner(7); owner != memdef.GPUDevice(1) {
		t.Fatalf("page did not move: owner %v", owner)
	}
	// Broadcast: every GPU got exactly one invalidation.
	for i, f := range fakes {
		if len(f.invals) != 1 || f.invals[0] != 7 {
			t.Fatalf("GPU%d invals = %v", i, f.invals)
		}
	}
	if st.Migrations != 1 {
		t.Fatalf("migrations = %d", st.Migrations)
	}
	if st.MigrationWait.Count != 1 || st.MigrationWait.Max == 0 {
		t.Fatalf("wait latency not recorded: %+v", st.MigrationWait)
	}
	// The new owner received a fresh local mapping.
	if pte := fakes[1].mappings[7]; pte.PFN.Device() != memdef.GPUDevice(1) {
		t.Fatalf("GPU1 mapping after migration = %+v", pte)
	}
}

func TestInPTEDirectoryTargetsOnlyHolders(t *testing.T) {
	e, d, fakes, st := rig(t, config.OnlyInPTE())
	d.FarFault(0, 9, false)
	e.Run()
	d.FarFault(1, 9, false)
	e.Run()
	d.RequestMigration(1, 9)
	e.Run()
	// Only GPUs 0 and 1 ever touched the page; GPUs 2 and 3 stay quiet.
	if len(fakes[2].invals) != 0 || len(fakes[3].invals) != 0 {
		t.Fatalf("untouched GPUs invalidated: %v %v", fakes[2].invals, fakes[3].invals)
	}
	if len(fakes[0].invals) != 1 || len(fakes[1].invals) != 1 {
		t.Fatalf("holders not invalidated: %v %v", fakes[0].invals, fakes[1].invals)
	}
	if st.DirectoryFiltered != 2 {
		t.Fatalf("filtered = %d, want 2", st.DirectoryFiltered)
	}
}

func TestMigrationWaitsForAcks(t *testing.T) {
	e, d, fakes, st := rig(t, config.Baseline())
	for i := range fakes {
		fakes[i].ackDelay = 5000 // slow invalidation walks
	}
	d.FarFault(0, 3, false)
	e.Run()
	d.FarFault(1, 3, false)
	e.Run()
	d.RequestMigration(1, 3)
	e.Run()
	// Wait must include the 5000-cycle GPU-side ack delay.
	if st.MigrationWait.Max < 5000 {
		t.Fatalf("migration wait %d did not include slow acks", st.MigrationWait.Max)
	}
}

func TestZeroLatencyDoesNotWaitForAcks(t *testing.T) {
	e, d, fakes, st := rig(t, config.ZeroLatency())
	for i := range fakes {
		fakes[i].ackDelay = 5000
	}
	d.FarFault(0, 3, false)
	e.Run()
	d.FarFault(1, 3, false)
	e.Run()
	d.RequestMigration(1, 3)
	e.Run()
	if st.MigrationWait.Max >= 5000 {
		t.Fatalf("zero-latency migration waited %d for acks", st.MigrationWait.Max)
	}
	// Requests are still broadcast for interconnect fidelity.
	total := 0
	for _, f := range fakes {
		total += len(f.invals)
	}
	if total != 4 {
		t.Fatalf("broadcast count = %d, want 4", total)
	}
}

func TestDuplicateMigrationRequestIgnored(t *testing.T) {
	e, d, _, st := rig(t, config.Baseline())
	d.FarFault(0, 5, false)
	e.Run()
	d.FarFault(1, 5, false)
	e.Run()
	d.RequestMigration(1, 5)
	d.RequestMigration(1, 5) // second request while first in flight
	e.Run()
	if st.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", st.Migrations)
	}
	if st.MigrationRequests != 2 {
		t.Fatalf("requests = %d, want 2", st.MigrationRequests)
	}
}

func TestMigrationToCurrentOwnerIgnored(t *testing.T) {
	e, d, _, st := rig(t, config.Baseline())
	d.FarFault(0, 5, false)
	e.Run()
	d.RequestMigration(0, 5)
	e.Run()
	if st.Migrations != 0 {
		t.Fatalf("migrated a page to its own owner")
	}
}

func TestFaultDuringMigrationDeferredAndReplayed(t *testing.T) {
	e, d, fakes, _ := rig(t, config.Baseline())
	for i := range fakes {
		fakes[i].ackDelay = 3000
	}
	d.FarFault(0, 11, false)
	e.Run()
	d.FarFault(1, 11, false)
	e.Run()
	d.RequestMigration(1, 11)
	// GPU3 faults while the migration is in flight.
	e.Schedule(100, func() { d.FarFault(3, 11, false) })
	e.Run()
	pte, ok := fakes[3].mappings[11]
	if !ok {
		t.Fatal("deferred fault never replayed")
	}
	if pte.PFN.Device() != memdef.GPUDevice(1) {
		t.Fatalf("replayed mapping points at %v, want new owner GPU1", pte.PFN.Device())
	}
}

func TestOnTouchMigratesOnFault(t *testing.T) {
	e, d, _, st := rig(t, config.OnTouchScheme())
	d.FarFault(0, 21, false)
	e.Run()
	d.FarFault(2, 21, false) // on-touch: this fault migrates the page
	e.Run()
	if st.Migrations != 1 {
		t.Fatalf("on-touch migrations = %d, want 1", st.Migrations)
	}
	if owner, _ := d.Owner(21); owner != memdef.GPUDevice(2) {
		t.Fatalf("owner = %v, want GPU2", owner)
	}
}

func TestReplicationReadMakesLocalReplica(t *testing.T) {
	e, d, fakes, st := rig(t, config.ReplicationScheme())
	d.FarFault(0, 31, false)
	e.Run()
	d.FarFault(1, 31, false) // read → replica
	e.Run()
	pte := fakes[1].mappings[31]
	if pte.PFN.Device() != memdef.GPUDevice(1) {
		t.Fatalf("replica not local: %v", pte.PFN.Device())
	}
	if pte.Writable {
		t.Fatal("replica must be read-only")
	}
	if st.Replications != 1 {
		t.Fatalf("replications = %d", st.Replications)
	}
	// Owner was downgraded to read-only.
	if owner := fakes[0].mappings[31]; owner.Writable {
		t.Fatal("owner still writable after replication")
	}
	if d.ReplicaCount(31) != 1 {
		t.Fatalf("replica count = %d", d.ReplicaCount(31))
	}
}

func TestReplicationWriteCollapses(t *testing.T) {
	e, d, fakes, st := rig(t, config.ReplicationScheme())
	d.FarFault(0, 31, false)
	e.Run()
	d.FarFault(1, 31, false) // replica on GPU1
	e.Run()
	d.FarFault(2, 31, true) // write from GPU2 → collapse
	e.Run()
	if st.WriteCollapses == 0 {
		t.Fatal("write did not collapse replicas")
	}
	if owner, _ := d.Owner(31); owner != memdef.GPUDevice(2) {
		t.Fatalf("owner after collapse = %v, want writer GPU2", owner)
	}
	pte := fakes[2].mappings[31]
	if !pte.Writable || pte.PFN.Device() != memdef.GPUDevice(2) {
		t.Fatalf("writer mapping = %+v", pte)
	}
	if d.ReplicaCount(31) != 0 {
		t.Fatal("replicas survive collapse")
	}
}

func TestTransFWSchemePushesPRTInserts(t *testing.T) {
	e, d, fakes, _ := rig(t, config.TransFWScheme())
	d.FarFault(0, 41, false)
	e.Run()
	// Every other GPU learns that GPU0 holds vpn 41.
	for i := 1; i < 4; i++ {
		if len(fakes[i].prt) != 1 || fakes[i].prt[0] != 41 {
			t.Fatalf("GPU%d PRT inserts = %v", i, fakes[i].prt)
		}
	}
	if len(fakes[0].prt) != 0 {
		t.Fatal("holder received its own PRT insert")
	}
}

func TestBlockMigrationMovesWholeRegion(t *testing.T) {
	cl := pdes.NewCluster(1, 1)
	dom := cl.Domain(0)
	e := dom.Engine()
	m := config.Default()
	m.MigrationBlockPages = 4
	st := stats.NewSim()
	net := interconnect.NewNetwork(cl, interconnect.Config{
		NumGPUs: m.NumGPUs, NVLinkBytesPerCycle: 300, NVLinkLatency: 100,
		PCIeBytesPerCycle: 32, PCIeLatency: 300,
	})
	d := New(dom, m, config.Baseline(), net, st)
	fakes := make([]*fakeGPU, m.NumGPUs)
	ports := make([]GPUPort, m.NumGPUs)
	for i := range fakes {
		fakes[i] = newFakeGPU(e, 10)
		ports[i] = fakes[i]
	}
	d.AttachGPUs(ports)
	// Pre-place pages 0..3 on GPU0, then GPU1 requests page 1's migration.
	for p := memdef.VPN(0); p < 4; p++ {
		fakes[0].mappings[p] = d.Preinstall(p, 0)
	}
	d.RequestMigration(1, 1)
	e.Run()
	for p := memdef.VPN(0); p < 4; p++ {
		if owner, _ := d.Owner(p); owner != memdef.GPUDevice(1) {
			t.Fatalf("block page %d not migrated (owner %v)", p, owner)
		}
	}
	if st.Migrations != 4 {
		t.Fatalf("migrations = %d, want 4 (whole block)", st.Migrations)
	}
}

func TestPreinstall(t *testing.T) {
	_, d, _, _ := rig(t, config.Baseline())
	pte := d.Preinstall(77, 3)
	if !pte.Valid || pte.PFN.Device() != memdef.GPUDevice(3) {
		t.Fatalf("preinstalled PTE = %+v", pte)
	}
	if owner, ok := d.Owner(77); !ok || owner != memdef.GPUDevice(3) {
		t.Fatalf("owner = %v,%v", owner, ok)
	}
}
