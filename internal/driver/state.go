package driver

import (
	"sort"

	"idyll/internal/checkpoint"
	"idyll/internal/core"
	"idyll/internal/memdef"
)

// Checkpoint support. A driver at a quiescent point has no fault batched, no
// migration open, and no mapping reply on the wire — SaveState asserts all of
// it — so what travels is the host page table (whose Aux bits carry the
// in-PTE directory), the frame allocators, the replica sets, the host-walker
// counters, and whatever residual state the active directory kind owns. The
// directory kind is fixed by the scheme the restoring system was built from,
// which the content-addressed checkpoint key guarantees matches.

// SaveState writes the driver's state to w. Panics if the driver is not
// quiescent — checkpoints are only taken after a full drain.
func (d *Driver) SaveState(w *checkpoint.Writer) {
	if len(d.faultQueue) != 0 || d.batchScheduled || len(d.migrating) != 0 ||
		len(d.repliesInFlight) != 0 || len(d.queuedMigration) != 0 {
		panic("driver: SaveState with in-flight work")
	}
	d.hostPT.SaveState(w)
	d.hostWalkers.SaveState(w)

	devs := make([]memdef.DeviceID, 0, len(d.nextFrame))
	for dev := range d.nextFrame {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	w.U32(uint32(len(devs)))
	for _, dev := range devs {
		w.Int(int(dev))
		w.U64(d.nextFrame[dev])
	}

	vpns := make([]memdef.VPN, 0, len(d.replicas))
	for vpn := range d.replicas {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		w.U64(uint64(vpn))
		set := d.replicas[vpn]
		gpus := make([]int, 0, len(set))
		for g := range set {
			gpus = append(gpus, g)
		}
		sort.Ints(gpus)
		w.U32(uint32(len(gpus)))
		for _, g := range gpus {
			w.Int(g)
			w.U64(uint64(set[g]))
		}
	}

	switch dir := d.dir.(type) {
	case *core.InPTEDirectory:
		dir.SaveState(w) // access bits ride the host PT's Aux; this is counters
	case *core.VMDirectory:
		dir.SaveState(w)
	default:
		// Broadcast directory is stateless.
	}
}

// RestoreState reads the state written by SaveState into d, which must be
// freshly constructed from the same machine and scheme.
func (d *Driver) RestoreState(r *checkpoint.Reader) {
	d.hostPT.RestoreState(r)
	d.hostWalkers.RestoreState(r)

	clear(d.nextFrame)
	for i, n := 0, r.Count(16); i < n && r.Err() == nil; i++ {
		dev := memdef.DeviceID(r.Int())
		d.nextFrame[dev] = r.U64()
	}

	clear(d.replicas)
	for i, n := 0, r.Count(12); i < n && r.Err() == nil; i++ {
		vpn := memdef.VPN(r.U64())
		set := make(map[int]memdef.PFN)
		for j, m := 0, r.Count(16); j < m && r.Err() == nil; j++ {
			g := r.Int()
			set[g] = memdef.PFN(r.U64())
		}
		d.replicas[vpn] = set
	}

	switch dir := d.dir.(type) {
	case *core.InPTEDirectory:
		dir.RestoreState(r)
	case *core.VMDirectory:
		dir.RestoreState(r)
	}
}
