// Package driver models the host-side UVM driver of §3.1–§3.3: the
// centralized host page table, far-fault batching, the page-migration state
// machine with its invalidation round, the four migration policies
// (first-touch, on-touch, access-counter, page replication), and the
// integration points for IDYLL's invalidation directory.
//
// The driver talks to GPUs over the PCIe links of an interconnect.Network;
// GPUs are attached as GPUPort implementations. All driver entry points
// (FarFault, RequestMigration, RecordResidency) are invoked *after* network
// delivery — the GPU model pays the PCIe cost when sending.
package driver

import (
	"fmt"

	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/interconnect"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
	"idyll/internal/sim/pdes"
	"idyll/internal/stats"
)

// GPUPort is the driver's view of one GPU. *gpu.GPU implements it; the
// methods are invoked after the CPU→GPU network delivery.
type GPUPort interface {
	// ReceiveInvalidation delivers a PTE-invalidation request. The GPU must
	// call ack exactly once when, per its scheme, the invalidation may be
	// considered accepted (baseline: local walk complete; IDYLL: buffered
	// in the IRMB; zero-latency: immediately).
	ReceiveInvalidation(vpn memdef.VPN, ack func())
	// ReceiveMapping delivers a new translation for the GPU's local page
	// table (far-fault replay or post-migration remap).
	ReceiveMapping(vpn memdef.VPN, pte pagetable.PTE)
	// ReceivePRTInsert tells a Trans-FW GPU that holder obtained a valid
	// translation for vpn.
	ReceivePRTInsert(vpn memdef.VPN, holder int)
}

// fault is one queued far fault.
type fault struct {
	gpu   int
	vpn   memdef.VPN
	write bool
	at    sim.VTime
}

// migration tracks one in-flight migration (or replication collapse).
type migration struct {
	vpn      memdef.VPN
	to       int
	start    sim.VTime
	collapse bool

	pendingAcks  int
	hostWalkDone bool
	transferred  bool
	deferred     []fault
}

// Driver is the UVM driver instance. All of its state belongs to the host
// synchronization domain; GPUs reach it only through network deliveries.
type Driver struct {
	dom     *pdes.Domain
	engine  *sim.Engine // dom's engine
	machine config.Machine
	scheme  config.Scheme
	net     *interconnect.Network
	st      *stats.Sim

	hostPT      *pagetable.Table
	hostWalkers *sim.Resource
	dir         core.Directory
	vmdir       *core.VMDirectory // non-nil when scheme.Directory == VMTable

	gpus []GPUPort

	faultQueue     []fault
	batchScheduled bool
	migrating      map[memdef.VPN]*migration
	replicas       map[memdef.VPN]map[int]memdef.PFN // reader GPU → its replica frame
	nextFrame      map[memdef.DeviceID]uint64
	// repliesInFlight counts mapping replies on the wire per page; a new
	// migration of that page must wait for them to land, or a late reply
	// would reinstall a translation the migration just killed. This is the
	// per-page operation serialization real UVM drivers enforce with
	// va_block locks.
	repliesInFlight map[memdef.VPN]int
	queuedMigration map[memdef.VPN]queuedMig
}

// queuedMig is a migration held back by in-flight replies.
type queuedMig struct {
	to       int
	collapse bool
}

// New builds a driver on the host synchronization domain.
func New(dom *pdes.Domain, machine config.Machine, scheme config.Scheme,
	net *interconnect.Network, st *stats.Sim) *Driver {
	if scheme.ZeroLatencyInval && dom.Cluster().NumDomains() > 1 {
		// The idealization invalidates every GPU synchronously from the
		// host's event — a genuinely zero-lookahead interaction that only a
		// single-domain layout can express (see internal/sim/pdes).
		panic("driver: zero-latency invalidation requires a single-domain cluster")
	}
	engine := dom.Engine()
	d := &Driver{
		dom:             dom,
		engine:          engine,
		machine:         machine,
		scheme:          scheme,
		net:             net,
		st:              st,
		hostPT:          pagetable.New(machine.PageSize),
		hostWalkers:     sim.NewResource(engine, machine.HostWalkers, -1),
		migrating:       make(map[memdef.VPN]*migration),
		replicas:        make(map[memdef.VPN]map[int]memdef.PFN),
		nextFrame:       make(map[memdef.DeviceID]uint64),
		repliesInFlight: make(map[memdef.VPN]int),
		queuedMigration: make(map[memdef.VPN]queuedMig),
	}
	switch scheme.Directory {
	case config.InPTE:
		bits := scheme.UnusedBits
		if bits <= 0 {
			bits = 11
		}
		d.dir = core.NewInPTEDirectory(d.hostPT, machine.NumGPUs, bits)
	case config.VMTable:
		d.vmdir = core.NewVMDirectory(machine.NumGPUs, 2, machine.DRAMLatency/2)
		d.dir = d.vmdir
	default:
		d.dir = core.NewBroadcastDirectory(machine.NumGPUs)
	}
	return d
}

// AttachGPUs wires the GPU ports; must be called once before simulation.
func (d *Driver) AttachGPUs(gpus []GPUPort) {
	if len(gpus) != d.machine.NumGPUs {
		panic(fmt.Sprintf("driver: %d GPU ports for %d GPUs", len(gpus), d.machine.NumGPUs))
	}
	d.gpus = gpus
}

// HostPageTable exposes the centralized page table (used by tests and the
// correctness checker).
func (d *Driver) HostPageTable() *pagetable.Table { return d.hostPT }

// VMDirectory returns the IDYLL-InMem directory, or nil.
func (d *Driver) VMDirectory() *core.VMDirectory { return d.vmdir }

// Owner reports the device currently holding vpn, if mapped.
func (d *Driver) Owner(vpn memdef.VPN) (memdef.DeviceID, bool) {
	pte, ok := d.hostPT.Lookup(vpn)
	if !ok || !pte.Valid {
		return memdef.CPUDevice, false
	}
	return pte.PFN.Device(), true
}

// Migrating reports whether vpn has an in-flight migration or collapse.
func (d *Driver) Migrating(vpn memdef.VPN) bool {
	_, ok := d.migrating[vpn]
	return ok
}

// alloc returns a fresh frame on dev.
func (d *Driver) alloc(dev memdef.DeviceID) memdef.PFN {
	f := d.nextFrame[dev]
	d.nextFrame[dev] = f + 1
	return memdef.MakePFN(dev, f)
}

// hostWalkLatency is one host page-table walk.
func (d *Driver) hostWalkLatency() sim.VTime {
	return sim.VTime(d.hostPT.Levels()) * d.machine.HostLevelLatency
}

// pageBytes is the transfer size of one page.
func (d *Driver) pageBytes() int { return int(d.machine.PageSize.Bytes()) }

// ---------------------------------------------------------------------------
// Far-fault path (§3.2): buffer, batch, walk, resolve, reply.
// ---------------------------------------------------------------------------

// FarFault is invoked when a GPU's fault notification arrives over PCIe.
func (d *Driver) FarFault(gpu int, vpn memdef.VPN, write bool) {
	d.faultQueue = append(d.faultQueue, fault{gpu: gpu, vpn: vpn, write: write, at: d.engine.Now()})
	if !d.batchScheduled {
		d.batchScheduled = true
		d.engine.Schedule(d.machine.FaultBatchWindow, d.processBatch)
	}
}

// processBatch drains up to FaultBatchSize faults into per-fault service.
func (d *Driver) processBatch() {
	n := len(d.faultQueue)
	if n > d.machine.FaultBatchSize {
		n = d.machine.FaultBatchSize
	}
	batch := d.faultQueue[:n]
	d.faultQueue = append([]fault(nil), d.faultQueue[n:]...)
	if len(d.faultQueue) > 0 {
		d.engine.Schedule(d.machine.FaultBatchWindow, d.processBatch)
	} else {
		d.batchScheduled = false
	}
	for _, f := range batch {
		d.serviceFault(f)
	}
}

// serviceFault runs one fault through the host walker and resolves it.
func (d *Driver) serviceFault(f fault) {
	if m, ok := d.migrating[f.vpn]; ok {
		m.deferred = append(m.deferred, f)
		return
	}
	d.hostWalkers.Acquire(func(release func()) {
		d.engine.Schedule(d.hostWalkLatency()+d.machine.FaultFixedLatency, func() {
			release()
			// A migration may have begun while this fault was walking.
			if m, ok := d.migrating[f.vpn]; ok {
				m.deferred = append(m.deferred, f)
				return
			}
			d.resolveFault(f)
		})
	})
}

// resolveFault decides the outcome of a walked fault per the scheme policy.
func (d *Driver) resolveFault(f fault) {
	pte, mapped := d.hostPT.Lookup(f.vpn)
	if !mapped || !pte.Valid {
		d.firstTouchPlace(f)
		return
	}
	owner := pte.PFN.Device()
	if owner == memdef.GPUDevice(f.gpu) {
		if d.scheme.Policy == config.Replication && f.write && !pte.Writable {
			// The downgraded owner wrote to a replicated page: collapse
			// back to a single writable copy (§7.4).
			d.st.WriteCollapses++
			d.startMigration(f.vpn, f.gpu, true)
			d.deferOrRetry(f)
			return
		}
		// Local already: PTE/TLB were shot down but the page never moved.
		d.recordAndReply(f.gpu, f.vpn, pte.PFN, pte.Writable)
		return
	}
	switch d.scheme.Policy {
	case config.OnTouch:
		d.startMigration(f.vpn, f.gpu, false)
		d.deferOrRetry(f)
	case config.Replication:
		d.resolveReplication(f, pte)
	default: // AccessCounter, FirstTouch: remote mapping (§3.2)
		d.recordAndReply(f.gpu, f.vpn, pte.PFN, pte.Writable)
	}
}

// firstTouchPlace migrates an untouched page from CPU memory to the faulting
// GPU — the initial placement every policy shares (§3.3).
func (d *Driver) firstTouchPlace(f fault) {
	frame := d.alloc(memdef.GPUDevice(f.gpu))
	d.hostPT.Map(f.vpn, pagetable.PTE{PFN: frame, Valid: true, Writable: true})
	d.dir.Record(f.vpn, f.gpu)
	// Page data moves CPU→GPU over PCIe, then the translation is replayed.
	// The replay is the driver's own continuation (it sends the mapping), so
	// it rides the send's local completion, not the remote delivery.
	d.net.CPUToGPU(f.gpu, d.pageBytes(), nil, func() {
		d.sendMapping(f.gpu, f.vpn, pagetable.PTE{PFN: frame, Valid: true, Writable: true})
	})
}

// recordAndReply records residency in the directory and sends the mapping.
func (d *Driver) recordAndReply(gpu int, vpn memdef.VPN, pfn memdef.PFN, writable bool) {
	d.dir.Record(vpn, gpu)
	d.sendMapping(gpu, vpn, pagetable.PTE{PFN: pfn, Valid: true, Writable: writable})
}

// sendMapping delivers a translation to a GPU over PCIe and, with Trans-FW,
// pushes fingerprint updates to the other GPUs.
func (d *Driver) sendMapping(gpu int, vpn memdef.VPN, pte pagetable.PTE) {
	d.repliesInFlight[vpn]++
	// Two continuations at the same arrival cycle: the GPU installs the
	// mapping in its own domain, while the driver retires the in-flight
	// reply in the host domain. They touch disjoint state.
	d.net.CPUToGPU(gpu, memdef.ControlMsgBytes, func() {
		d.gpus[gpu].ReceiveMapping(vpn, pte)
	}, func() {
		d.replyDelivered(vpn)
	})
	if d.scheme.TransFW {
		for g := 0; g < d.machine.NumGPUs; g++ {
			if g == gpu {
				continue
			}
			g := g
			d.net.CPUToGPU(g, memdef.ControlMsgBytes, func() {
				d.gpus[g].ReceivePRTInsert(vpn, gpu)
			}, nil)
		}
	}
}

// replyDelivered retires one in-flight reply and releases a migration that
// was waiting for the page's wire traffic to quiesce.
func (d *Driver) replyDelivered(vpn memdef.VPN) {
	d.repliesInFlight[vpn]--
	if d.repliesInFlight[vpn] > 0 {
		return
	}
	delete(d.repliesInFlight, vpn)
	q, ok := d.queuedMigration[vpn]
	if !ok {
		return
	}
	delete(d.queuedMigration, vpn)
	// Re-validate: the page may already be where the requester wants it.
	pte, mapped := d.hostPT.Lookup(vpn)
	if _, busy := d.migrating[vpn]; busy || !mapped || !pte.Valid ||
		pte.PFN.Device() == memdef.GPUDevice(q.to) {
		return
	}
	d.startMigration(vpn, q.to, q.collapse)
}

// RecordResidency is the asynchronous Trans-FW notification that a GPU
// installed a forwarded translation, keeping the directory coherent.
func (d *Driver) RecordResidency(gpu int, vpn memdef.VPN) {
	d.dir.Record(vpn, gpu)
}

// ---------------------------------------------------------------------------
// Migration path (§3.3 step 1-4, §6.2): invalidate → ack → transfer → remap.
// ---------------------------------------------------------------------------

// RequestMigration is invoked when a GPU's region access counter crosses
// the threshold and its migration request arrives over PCIe. The driver
// migrates the whole aligned block containing vpn (UVM va_block behaviour):
// every mapped page of the block that does not already live on the
// requester gets its own invalidate→transfer→remap round, all starting
// together — the invalidation burst the paper's motivation measures.
func (d *Driver) RequestMigration(gpu int, vpn memdef.VPN) {
	d.st.MigrationRequests++
	block := d.machine.MigrationBlockPages
	if block < 1 {
		block = 1
	}
	start := vpn - vpn%memdef.VPN(block)
	for p := start; p < start+memdef.VPN(block); p++ {
		if _, busy := d.migrating[p]; busy {
			continue
		}
		pte, ok := d.hostPT.Lookup(p)
		if !ok || !pte.Valid || pte.PFN.Device() == memdef.GPUDevice(gpu) {
			continue
		}
		d.startMigration(p, gpu, false)
	}
}

// startMigration opens the migration FSM for vpn toward GPU to. If mapping
// replies for the page are still on the wire, the migration queues behind
// them (per-page serialization; see repliesInFlight).
func (d *Driver) startMigration(vpn memdef.VPN, to int, collapse bool) {
	if d.repliesInFlight[vpn] > 0 {
		if _, queued := d.queuedMigration[vpn]; !queued {
			d.queuedMigration[vpn] = queuedMig{to: to, collapse: collapse}
		}
		return
	}
	m := &migration{vpn: vpn, to: to, start: d.engine.Now(), collapse: collapse}
	d.migrating[vpn] = m

	if d.scheme.ZeroLatencyInval {
		// Idealization: invalidations take effect instantaneously on every
		// GPU (zero latency includes zero delivery time) and the driver
		// waits only for its own host walk. The request messages are still
		// put on the wire so the idealization keeps the interconnect
		// congestion of a broadcast (§7.1).
		for g := 0; g < d.machine.NumGPUs; g++ {
			d.st.DirectoryTargeted++
			d.gpus[g].ReceiveInvalidation(vpn, func() {})
			d.net.CPUToGPU(g, memdef.ControlMsgBytes, nil, nil)
		}
		d.hostWalkInvalidate(m, nil)
		return
	}

	if d.dir.RequiresHostWalkFirst() {
		// §6.2: the in-PTE directory must finish the host walk to learn the
		// access bits, delaying the send — a cost the paper accepts.
		d.hostWalkInvalidate(m, func(targets []int) {
			d.sendInvalidations(m, targets)
		})
		return
	}
	// Baseline broadcasts before the walk completes; the VM-Cache lookup
	// runs in parallel with the walk and adds only its own latency.
	targets, extra := d.dir.Targets(vpn)
	d.engine.Schedule(extra, func() { d.sendInvalidations(m, targets) })
	d.hostWalkInvalidate(m, nil)
}

// hostWalkInvalidate walks the host table, reads directory targets (when
// needed), clears the directory and invalidates the host PTE. afterTargets,
// if non-nil, receives the directory's targets once the walk is done.
func (d *Driver) hostWalkInvalidate(m *migration, afterTargets func([]int)) {
	d.hostWalkers.Acquire(func(release func()) {
		d.engine.Schedule(d.hostWalkLatency(), func() {
			release()
			var targets []int
			if afterTargets != nil {
				targets, _ = d.dir.Targets(m.vpn)
			}
			d.dir.Clear(m.vpn)
			d.hostPT.Invalidate(m.vpn)
			m.hostWalkDone = true
			if afterTargets != nil {
				afterTargets(targets)
			}
			d.maybeTransfer(m)
		})
	})
}

// sendInvalidations issues the invalidation round for a migration.
func (d *Driver) sendInvalidations(m *migration, targets []int) {
	m.pendingAcks = len(targets)
	d.st.DirectoryTargeted += uint64(len(targets))
	d.st.DirectoryFiltered += uint64(d.machine.NumGPUs - len(targets))
	if len(targets) == 0 {
		d.maybeTransfer(m)
		return
	}
	for _, g := range targets {
		g := g
		d.net.CPUToGPU(g, memdef.ControlMsgBytes, func() {
			d.gpus[g].ReceiveInvalidation(m.vpn, func() {
				// The GPU acks over PCIe once its scheme says so; both the
				// ReceiveInvalidation handler and this ack send run in GPU
				// g's domain, while the ack's delivery advances the
				// migration FSM back in the host domain.
				d.net.GPUToCPU(g, memdef.ControlMsgBytes, func() {
					m.pendingAcks--
					d.maybeTransfer(m)
				}, nil)
			})
		}, nil)
	}
}

// maybeTransfer begins the data transfer once the host walk is done and all
// invalidation acks (if any are awaited) have arrived.
func (d *Driver) maybeTransfer(m *migration) {
	if m.transferred || !m.hostWalkDone || m.pendingAcks > 0 {
		return
	}
	m.transferred = true
	d.st.MigrationWait.Add(d.engine.Now() - m.start)
	d.st.Migrations++

	// The page's pre-invalidation location was recorded in the host PTE;
	// re-read it via the (now invalid, but resident) entry.
	stale, _ := d.hostPT.Lookup(m.vpn)
	from := stale.PFN.Device()
	newFrame := d.alloc(memdef.GPUDevice(m.to))
	finish := func() { d.completeMigration(m, newFrame) }
	switch {
	case from.IsCPU():
		// finish mutates driver state, so it rides the host-side completion
		// of the data push, not the GPU-side delivery.
		d.net.CPUToGPU(m.to, d.pageBytes(), nil, finish)
	case from == memdef.GPUDevice(m.to):
		// Collapse onto a GPU that already holds the bytes (it had a
		// replica or is the owner): no bulk transfer needed.
		d.engine.Schedule(1, finish)
	default:
		// GPU→GPU copy as the command chain real drivers issue: the host
		// orders the source GPU to push the page over NVLink, and the
		// destination GPU reports the landed page back to the host, which
		// then remaps. Each hop runs in the domain that owns its link.
		d.copyGPUToGPU(from.GPUIndex(), m.to, finish)
	}
}

// copyGPUToGPU moves one page from GPU src to GPU dst via the host-issued
// command chain (ctrl to src; bulk data src→dst; ctrl ack to host) and runs
// done in the host domain once the ack lands.
func (d *Driver) copyGPUToGPU(src, dst int, done func()) {
	d.net.CPUToGPU(src, memdef.ControlMsgBytes, func() {
		d.net.GPUToGPU(src, dst, d.pageBytes(), func() {
			d.net.GPUToCPU(dst, memdef.ControlMsgBytes, done, nil)
		}, nil)
	}, nil)
}

// completeMigration installs the new mapping, replays deferred faults and
// closes the FSM.
func (d *Driver) completeMigration(m *migration, frame memdef.PFN) {
	d.hostPT.Map(m.vpn, pagetable.PTE{PFN: frame, Valid: true, Writable: true})
	delete(d.replicas, m.vpn)
	d.dir.Record(m.vpn, m.to)
	d.st.MigrationTotal.Add(d.engine.Now() - m.start)
	delete(d.migrating, m.vpn)
	d.sendMapping(m.to, m.vpn, pagetable.PTE{PFN: frame, Valid: true, Writable: true})

	// Replay deferred faults, one per GPU (the MSHR guarantees one
	// outstanding fault per page per GPU, but on-touch defers its trigger
	// fault alongside later ones).
	seen := map[int]bool{m.to: true}
	for _, f := range m.deferred {
		if seen[f.gpu] {
			continue
		}
		seen[f.gpu] = true
		d.serviceFault(f)
	}
}

// ---------------------------------------------------------------------------
// Page replication (§7.4): replicate on read, collapse on write.
// ---------------------------------------------------------------------------

// deferOrRetry parks a fault behind its page's migration; if the migration
// itself is queued behind in-flight replies, the fault retries shortly.
func (d *Driver) deferOrRetry(f fault) {
	if m, ok := d.migrating[f.vpn]; ok {
		m.deferred = append(m.deferred, f)
		return
	}
	d.engine.Schedule(64, func() { d.serviceFault(f) })
}

// resolveReplication handles a fault under the replication policy.
func (d *Driver) resolveReplication(f fault, hostPTE pagetable.PTE) {
	if f.write {
		d.st.WriteCollapses++
		d.startMigration(f.vpn, f.gpu, true)
		d.deferOrRetry(f)
		return
	}
	owner := hostPTE.PFN.Device()
	// First replica downgrades the owner to read-only so its writes trap.
	if len(d.replicas[f.vpn]) == 0 && hostPTE.Writable {
		e := d.hostPT.Entry(f.vpn)
		e.Writable = false
		if !owner.IsCPU() {
			d.sendMapping(owner.GPUIndex(), f.vpn,
				pagetable.PTE{PFN: hostPTE.PFN, Valid: true, Writable: false})
		}
	}
	frame := d.alloc(memdef.GPUDevice(f.gpu))
	if d.replicas[f.vpn] == nil {
		d.replicas[f.vpn] = make(map[int]memdef.PFN)
	}
	d.replicas[f.vpn][f.gpu] = frame
	d.dir.Record(f.vpn, f.gpu)
	d.st.Replications++
	// Copy the page from its owner to the reader, then map it locally. The
	// mapping send is driver work, so it follows the copy's host-side
	// completion (CPU owner) or the command chain's ack (GPU owner).
	mapReplica := func() {
		d.sendMapping(f.gpu, f.vpn, pagetable.PTE{PFN: frame, Valid: true, Writable: false})
	}
	if owner.IsCPU() {
		d.net.CPUToGPU(f.gpu, d.pageBytes(), nil, mapReplica)
	} else {
		d.copyGPUToGPU(owner.GPUIndex(), f.gpu, mapReplica)
	}
}

// ReplicaCount reports how many GPUs hold replicas of vpn (tests).
func (d *Driver) ReplicaCount(vpn memdef.VPN) int { return len(d.replicas[vpn]) }

// Preinstall places vpn on a GPU before simulation begins, modelling the
// staged data placement real multi-GPU applications perform (explicit
// prefetch/memadvise) so that runs measure steady-state sharing behaviour
// rather than cold-start CPU→GPU paging. It costs no simulated time and
// returns the mapping the owning GPU should pre-install locally.
func (d *Driver) Preinstall(vpn memdef.VPN, gpu int) pagetable.PTE {
	pte := pagetable.PTE{PFN: d.alloc(memdef.GPUDevice(gpu)), Valid: true, Writable: true}
	d.hostPT.Map(vpn, pte)
	d.dir.Record(vpn, gpu)
	return pte
}
