// Package cache provides a generic set-associative container with true-LRU
// replacement. It is the storage substrate for every cache-like structure in
// the system: L1/L2 TLBs, the page-walk cache, the L1/L2 data caches, and
// the IDYLL-InMem VM-Cache. It models capacity and replacement only; timing
// belongs to the components that embed it.
package cache

// SetAssoc is a set-associative cache mapping keys of type K to values of
// type V. The zero value is not usable; construct with New.
type SetAssoc[K comparable, V any] struct {
	sets    int
	ways    int
	index   func(K) uint64
	lines   [][]line[K, V] // [set][way], ordered MRU-first
	size    int
	lookups uint64
	hits    uint64
	evicts  uint64
}

type line[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache with the given geometry. index maps a key to a set
// (reduced modulo sets); a nil index uses the identity for integer-like
// hashing via the provided function — callers must supply one for non-integer
// keys.
func New[K comparable, V any](sets, ways int, index func(K) uint64) *SetAssoc[K, V] {
	if sets <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	if index == nil {
		panic("cache: nil index function")
	}
	return &SetAssoc[K, V]{
		sets:  sets,
		ways:  ways,
		index: index,
		lines: make([][]line[K, V], sets),
	}
}

// Sets reports the number of sets.
func (c *SetAssoc[K, V]) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *SetAssoc[K, V]) Ways() int { return c.ways }

// Len reports the number of resident entries.
func (c *SetAssoc[K, V]) Len() int { return c.size }

// Capacity reports sets × ways.
func (c *SetAssoc[K, V]) Capacity() int { return c.sets * c.ways }

// Lookups reports the number of Lookup calls.
func (c *SetAssoc[K, V]) Lookups() uint64 { return c.lookups }

// Hits reports the number of Lookup calls that hit.
func (c *SetAssoc[K, V]) Hits() uint64 { return c.hits }

// Evictions reports the number of entries displaced by Insert.
func (c *SetAssoc[K, V]) Evictions() uint64 { return c.evicts }

// HitRate reports hits/lookups, or 0 if there were no lookups.
func (c *SetAssoc[K, V]) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}

func (c *SetAssoc[K, V]) set(key K) int {
	return int(c.index(key) % uint64(c.sets))
}

// Lookup finds key, promoting it to MRU on hit.
func (c *SetAssoc[K, V]) Lookup(key K) (V, bool) {
	c.lookups++
	s := c.set(key)
	ln := c.lines[s]
	for i := range ln {
		if ln[i].key == key {
			c.hits++
			hit := ln[i]
			copy(ln[1:i+1], ln[:i])
			ln[0] = hit
			return hit.val, true
		}
	}
	var zero V
	return zero, false
}

// Peek finds key without touching LRU state or statistics.
func (c *SetAssoc[K, V]) Peek(key K) (V, bool) {
	ln := c.lines[c.set(key)]
	for i := range ln {
		if ln[i].key == key {
			return ln[i].val, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds or updates key→val as the MRU line of its set, evicting the
// LRU line if the set is full. It returns the evicted pair, if any.
func (c *SetAssoc[K, V]) Insert(key K, val V) (evictedKey K, evictedVal V, evicted bool) {
	s := c.set(key)
	ln := c.lines[s]
	for i := range ln {
		if ln[i].key == key {
			copy(ln[1:i+1], ln[:i])
			ln[0] = line[K, V]{key: key, val: val}
			return
		}
	}
	if len(ln) >= c.ways {
		victim := ln[len(ln)-1]
		copy(ln[1:], ln[:len(ln)-1])
		ln[0] = line[K, V]{key: key, val: val}
		c.evicts++
		return victim.key, victim.val, true
	}
	// Grow in place: sets are allocated at full associativity on first use,
	// so the steady-state insert path never allocates.
	if ln == nil {
		ln = make([]line[K, V], 0, c.ways)
	}
	ln = append(ln, line[K, V]{})
	copy(ln[1:], ln[:len(ln)-1])
	ln[0] = line[K, V]{key: key, val: val}
	c.lines[s] = ln
	c.size++
	return
}

// Invalidate removes key and reports whether it was resident.
func (c *SetAssoc[K, V]) Invalidate(key K) bool {
	s := c.set(key)
	ln := c.lines[s]
	for i := range ln {
		if ln[i].key == key {
			c.lines[s] = append(ln[:i], ln[i+1:]...)
			c.size--
			return true
		}
	}
	return false
}

// InvalidateIf removes every entry for which pred returns true and reports
// how many were removed. Used for page-granular flushes of cacheline-keyed
// caches.
func (c *SetAssoc[K, V]) InvalidateIf(pred func(K, V) bool) int {
	removed := 0
	for s := range c.lines {
		ln := c.lines[s]
		kept := ln[:0]
		for i := range ln {
			if pred(ln[i].key, ln[i].val) {
				removed++
			} else {
				kept = append(kept, ln[i])
			}
		}
		c.lines[s] = kept
	}
	c.size -= removed
	return removed
}

// Flush removes every entry, keeping each set's storage for reuse.
func (c *SetAssoc[K, V]) Flush() {
	for s := range c.lines {
		clear(c.lines[s])
		c.lines[s] = c.lines[s][:0]
	}
	c.size = 0
}

// Range calls fn for every resident entry until fn returns false.
func (c *SetAssoc[K, V]) Range(fn func(K, V) bool) {
	for s := range c.lines {
		for i := range c.lines[s] {
			if !fn(c.lines[s][i].key, c.lines[s][i].val) {
				return
			}
		}
	}
}

// ResetStats zeroes the hit/lookup/eviction counters.
func (c *SetAssoc[K, V]) ResetStats() {
	c.lookups, c.hits, c.evicts = 0, 0, 0
}
