package cache

import (
	"testing"
	"testing/quick"
)

func ident(k uint64) uint64 { return k }

func newTest(sets, ways int) *SetAssoc[uint64, int] {
	return New[uint64, int](sets, ways, ident)
}

func TestInsertLookup(t *testing.T) {
	c := newTest(4, 2)
	c.Insert(10, 100)
	v, ok := c.Lookup(10)
	if !ok || v != 100 {
		t.Fatalf("Lookup(10) = %d,%v", v, ok)
	}
	if _, ok := c.Lookup(11); ok {
		t.Fatal("phantom hit")
	}
	if c.Hits() != 1 || c.Lookups() != 2 {
		t.Fatalf("stats hits=%d lookups=%d", c.Hits(), c.Lookups())
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	c := newTest(1, 2)
	c.Insert(1, 10)
	c.Insert(1, 20)
	if c.Len() != 1 {
		t.Fatalf("duplicate key grew cache to %d", c.Len())
	}
	if v, _ := c.Lookup(1); v != 20 {
		t.Fatalf("update lost: %d", v)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newTest(1, 2)
	c.Insert(1, 1)
	c.Insert(2, 2)
	c.Lookup(1) // 1 becomes MRU; 2 is LRU
	ek, _, ev := c.Insert(3, 3)
	if !ev || ek != 2 {
		t.Fatalf("evicted %d,%v; want key 2", ek, ev)
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("MRU line 1 evicted")
	}
}

func TestSetIsolation(t *testing.T) {
	c := newTest(4, 1)
	// Keys 0..3 land in distinct sets; none should evict another.
	for k := uint64(0); k < 4; k++ {
		if _, _, ev := c.Insert(k, int(k)); ev {
			t.Fatalf("cross-set eviction on key %d", k)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest(2, 2)
	c.Insert(5, 50)
	if !c.Invalidate(5) {
		t.Fatal("Invalidate missed resident key")
	}
	if c.Invalidate(5) {
		t.Fatal("Invalidate hit absent key")
	}
	if _, ok := c.Peek(5); ok {
		t.Fatal("key survived invalidation")
	}
}

func TestInvalidateIf(t *testing.T) {
	c := newTest(4, 4)
	for k := uint64(0); k < 16; k++ {
		c.Insert(k, int(k))
	}
	n := c.InvalidateIf(func(k uint64, _ int) bool { return k%2 == 0 })
	if n != 8 {
		t.Fatalf("removed %d, want 8", n)
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
	c.Range(func(k uint64, _ int) bool {
		if k%2 == 0 {
			t.Fatalf("even key %d survived", k)
		}
		return true
	})
}

func TestFlush(t *testing.T) {
	c := newTest(2, 2)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k, 0)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len = %d after flush", c.Len())
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := newTest(1, 2)
	c.Insert(1, 1)
	c.Insert(2, 2) // MRU=2, LRU=1
	c.Peek(1)      // must NOT promote 1
	ek, _, _ := c.Insert(3, 3)
	if ek != 1 {
		t.Fatalf("evicted %d; Peek promoted the LRU line", ek)
	}
}

func TestHitRate(t *testing.T) {
	c := newTest(1, 4)
	c.Insert(1, 1)
	c.Lookup(1)
	c.Lookup(2)
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
	c.ResetStats()
	if c.HitRate() != 0 {
		t.Fatal("hit rate not reset")
	}
}

// Property: occupancy never exceeds capacity and no set exceeds its ways,
// regardless of the insertion sequence.
func TestCapacityInvariantProperty(t *testing.T) {
	prop := func(keys []uint64, sets8, ways8 uint8) bool {
		sets := int(sets8%8) + 1
		ways := int(ways8%8) + 1
		c := New[uint64, struct{}](sets, ways, ident)
		for _, k := range keys {
			c.Insert(k, struct{}{})
			if c.Len() > c.Capacity() {
				return false
			}
		}
		// Per-set occupancy check.
		counts := make(map[int]int)
		c.Range(func(k uint64, _ struct{}) bool {
			counts[int(k%uint64(sets))]++
			return true
		})
		for _, n := range counts {
			if n > ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an entry just inserted is always resident (insert-then-peek).
func TestInsertThenPeekProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		c := New[uint64, int](4, 2, ident)
		for i, k := range keys {
			c.Insert(k, i)
			if v, ok := c.Peek(k); !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
