package cache

import "idyll/internal/checkpoint"

// Checkpoint support. A set-associative cache's observable behaviour depends
// on the exact per-set line order (true-LRU replacement), so SaveState and
// RestoreState carry it verbatim: sets in index order, ways MRU-first. The
// key/value encoding belongs to the embedding component, passed in as
// enc/dec callbacks, because only it knows the concrete K and V.

// SaveState writes the cache's geometry fingerprint, statistics, and every
// resident line to w, using enc for each key/value pair.
func (c *SetAssoc[K, V]) SaveState(w *checkpoint.Writer, enc func(*checkpoint.Writer, K, V)) {
	w.Int(c.sets)
	w.Int(c.ways)
	w.U64(c.lookups)
	w.U64(c.hits)
	w.U64(c.evicts)
	for s := range c.lines {
		w.U32(uint32(len(c.lines[s])))
		for i := range c.lines[s] {
			enc(w, c.lines[s][i].key, c.lines[s][i].val)
		}
	}
}

// RestoreState rebuilds the contents written by SaveState into c, which must
// have the same geometry (normally a freshly constructed cache from the same
// machine configuration). Line order — and therefore future replacement
// decisions — is restored exactly. Decode failures land in r's sticky error.
func (c *SetAssoc[K, V]) RestoreState(r *checkpoint.Reader, dec func(*checkpoint.Reader) (K, V)) {
	if sets := r.Int(); sets != c.sets {
		r.Failf("cache: %d sets in checkpoint, %d configured", sets, c.sets)
		return
	}
	if ways := r.Int(); ways != c.ways {
		r.Failf("cache: %d ways in checkpoint, %d configured", ways, c.ways)
		return
	}
	c.lookups, c.hits, c.evicts = r.U64(), r.U64(), r.U64()
	c.size = 0
	for s := range c.lines {
		n := int(r.U32())
		if r.Err() != nil {
			return
		}
		if n > c.ways {
			r.Failf("cache: set %d holds %d lines, only %d ways", s, n, c.ways)
			return
		}
		ln := c.lines[s][:0]
		if cap(ln) < n {
			ln = make([]line[K, V], 0, c.ways)
		}
		for i := 0; i < n; i++ {
			k, v := dec(r)
			ln = append(ln, line[K, V]{key: k, val: v})
		}
		c.lines[s] = ln
		c.size += n
	}
}
