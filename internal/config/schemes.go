package config

import (
	"fmt"
	"strings"
)

// schemeEntry binds one CLI/API scheme name (plus aliases) to its
// constructor, in the stable sweep order every consumer shares.
type schemeEntry struct {
	name    string
	aliases []string
	build   func() Scheme
}

func schemeTable() []schemeEntry {
	return []schemeEntry{
		{"baseline", nil, Baseline},
		{"lazy", []string{"only-lazy"}, OnlyLazy},
		{"inpte", []string{"only-inpte", "directory"}, OnlyInPTE},
		{"idyll", nil, IDYLL},
		{"inmem", []string{"idyll-inmem"}, IDYLLInMem},
		{"zero", []string{"zero-latency"}, ZeroLatency},
		{"first-touch", nil, FirstTouchScheme},
		{"on-touch", nil, OnTouchScheme},
		{"replication", nil, ReplicationScheme},
		{"transfw", nil, TransFWScheme},
		{"idyll+transfw", nil, IDYLLTransFW},
	}
}

// SchemeNames returns every canonical scheme name in stable sweep order —
// the single source of truth for cmd/idyllsim, cmd/idylltrace "-scheme all",
// and the idylld job-spec validator.
func SchemeNames() []string {
	tbl := schemeTable()
	names := make([]string, len(tbl))
	for i, e := range tbl {
		names[i] = e.name
	}
	return names
}

// SchemeByName resolves a scheme name (case-insensitive, aliases accepted)
// to its design point. The error for an unknown name lists every valid one.
func SchemeByName(name string) (Scheme, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, e := range schemeTable() {
		if e.name == want {
			return e.build(), nil
		}
		for _, a := range e.aliases {
			if a == want {
				return e.build(), nil
			}
		}
	}
	return Scheme{}, fmt.Errorf("config: unknown scheme %q (known: %s)",
		name, strings.Join(SchemeNames(), ", "))
}
