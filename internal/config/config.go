// Package config defines the simulated machine configuration (the paper's
// Table 2) and the scheme matrix evaluated in §7 — baseline, the IDYLL
// variants, the idealized zero-latency-invalidation system, the alternative
// migration policies, page replication, and Trans-FW.
package config

import (
	"fmt"

	"idyll/internal/core"
	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// Machine is the hardware configuration (Table 2 defaults via Default).
type Machine struct {
	NumGPUs   int
	CUsPerGPU int
	// OutstandingPerCU is the number of memory accesses a CU keeps in
	// flight (warp-level parallelism available to hide latency).
	OutstandingPerCU int

	PageSize memdef.PageSize

	// TLBs.
	L1TLBEntries  int
	L1TLBLatency  sim.VTime
	L2TLBEntries  int
	L2TLBWays     int
	L2TLBLatency  sim.VTime
	L2MSHREntries int

	// GMMU.
	PTWThreads      int
	PTWLevelLatency sim.VTime
	PWCEntries      int
	PWCWays         int
	WalkQueueDepth  int

	// Host-side (UVM driver) translation resources. §7.1: host walks are
	// much faster than GPU walks (high bandwidth, fewer competing faults).
	HostWalkers       int
	HostLevelLatency  sim.VTime
	FaultBatchSize    int
	FaultBatchWindow  sim.VTime
	FaultFixedLatency sim.VTime

	// Migration. Access counters on NVIDIA GPUs track memory *regions*
	// rather than individual 4 KB pages, and the UVM driver migrates at
	// va_block granularity — so one counter trip moves a contiguous block
	// of pages and broadcasts one invalidation per page in it. This is also
	// the locality the IRMB exploits (§6.3: "pages being migrated are
	// nearby to each other in the address space").
	AccessCounterThreshold int
	MigrationBlockPages    int

	// Interconnect (Table 2: 300 GB/s NVLink-v2, 32 GB/s PCIe-v4; at the
	// 1 GHz CU clock that is 300 and 32 bytes per cycle).
	NVLinkBytesPerCycle float64
	NVLinkLatency       sim.VTime
	PCIeBytesPerCycle   float64
	PCIeLatency         sim.VTime

	// Data path.
	L1CacheBytes    int
	L1CacheWays     int
	L1CacheLatency  sim.VTime
	L2CacheBytes    int
	L2CacheWays     int
	L2CacheLatency  sim.VTime
	DRAMLatency     sim.VTime
	RemoteDRAMExtra sim.VTime
	// RemoteEnginePorts/RemoteEngineOccupancy model the remote-access
	// transaction engines at each GPU: fine-grained (cacheline) remote
	// reads over NVLink are engine-limited far below link peak bandwidth,
	// which is exactly the NUMA penalty page migration exists to avoid
	// (§2). Effective fine-grained throughput ≈ ports/occupancy accesses
	// per cycle. Ports = 0 disables the engine model (the default: at the
	// calibrated trace scale the engine constraint and the trace-scaled
	// migration threshold interact badly; see EXPERIMENTS.md).
	RemoteEnginePorts     int
	RemoteEngineOccupancy sim.VTime
}

// Default returns the Table 2 baseline: a 4-GPU system, 4 KB pages,
// counter threshold 256.
func Default() Machine {
	return Machine{
		NumGPUs:          4,
		CUsPerGPU:        64,
		OutstandingPerCU: 8,

		PageSize: memdef.Page4K,

		L1TLBEntries:  32,
		L1TLBLatency:  1,
		L2TLBEntries:  512,
		L2TLBWays:     16,
		L2TLBLatency:  10,
		L2MSHREntries: 128,

		PTWThreads:      8,
		PTWLevelLatency: 100,
		PWCEntries:      128,
		PWCWays:         8,
		WalkQueueDepth:  64,

		HostWalkers:       8,
		HostLevelLatency:  20,
		FaultBatchSize:    256,
		FaultBatchWindow:  200,
		FaultFixedLatency: 50,

		AccessCounterThreshold: 256,
		MigrationBlockPages:    16,

		NVLinkBytesPerCycle: 300,
		NVLinkLatency:       100,
		PCIeBytesPerCycle:   32,
		PCIeLatency:         300,

		L1CacheBytes:          16 << 10,
		L1CacheWays:           4,
		L1CacheLatency:        4,
		L2CacheBytes:          256 << 10,
		L2CacheWays:           16,
		L2CacheLatency:        30,
		DRAMLatency:           200,
		RemoteDRAMExtra:       0,
		RemoteEnginePorts:     0,
		RemoteEngineOccupancy: 32,
	}
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.NumGPUs < 1:
		return fmt.Errorf("config: NumGPUs = %d", m.NumGPUs)
	case m.CUsPerGPU < 1:
		return fmt.Errorf("config: CUsPerGPU = %d", m.CUsPerGPU)
	case m.PTWThreads < 1:
		return fmt.Errorf("config: PTWThreads = %d", m.PTWThreads)
	case m.AccessCounterThreshold < 1:
		return fmt.Errorf("config: AccessCounterThreshold = %d", m.AccessCounterThreshold)
	}
	return nil
}

// MigrationPolicy selects how pages move between memories (§3.3).
type MigrationPolicy int

const (
	// AccessCounter is the baseline on NVIDIA A100: migrate when a page's
	// remote-access counter reaches the threshold.
	AccessCounter MigrationPolicy = iota
	// FirstTouch pins a page to the GPU that first touched it.
	FirstTouch
	// OnTouch migrates on every remote far fault.
	OnTouch
	// Replication duplicates pages on read and collapses them on write (§7.4).
	Replication
)

func (p MigrationPolicy) String() string {
	switch p {
	case AccessCounter:
		return "access-counter"
	case FirstTouch:
		return "first-touch"
	case OnTouch:
		return "on-touch"
	case Replication:
		return "replication"
	}
	return "unknown"
}

// DirectoryKind selects the invalidation-filtering mechanism.
type DirectoryKind int

const (
	// Broadcast is the conventional UVM driver: invalidate every GPU.
	Broadcast DirectoryKind = iota
	// InPTE is §6.2's directory in the unused host-PTE bits.
	InPTE
	// VMTable is §6.4's in-memory directory with the VM-Cache (IDYLL-InMem).
	VMTable
)

func (d DirectoryKind) String() string {
	switch d {
	case Broadcast:
		return "broadcast"
	case InPTE:
		return "in-PTE"
	case VMTable:
		return "VM-Table"
	}
	return "unknown"
}

// Scheme is one evaluated design point.
type Scheme struct {
	Name      string
	Policy    MigrationPolicy
	Directory DirectoryKind
	// Lazy enables the IRMB (lazy invalidation, §6.3).
	Lazy bool
	// IRMB is the buffer geometry when Lazy is set.
	IRMB core.Geometry
	// UnusedBits is the in-PTE hash width m (11 default; §7.2 studies 4).
	UnusedBits int
	// ZeroLatencyInval makes PTE invalidations instantaneous and free on
	// the GPUs (the idealization of Figures 2, 6 and 11). Requests are
	// still broadcast, so interconnect traffic remains.
	ZeroLatencyInval bool
	// TransFW enables fingerprint-based remote fault forwarding (§7.5).
	TransFW bool
	// PRTCapacity sizes the Trans-FW PRT (default 443 per §7.5).
	PRTCapacity int
	// NoIdleDrain disables the IRMB's idle-time write-back, leaving only
	// eviction-driven write-back — an ablation of §6.3's design choice.
	NoIdleDrain bool
}

// Named scheme constructors for the evaluation matrix.

// Baseline is access-counter migration with broadcast invalidations.
func Baseline() Scheme {
	return Scheme{Name: "Baseline", Policy: AccessCounter, Directory: Broadcast, UnusedBits: 11}
}

// OnlyLazy enables only the IRMB ("Only Lazy" in Figure 11).
func OnlyLazy() Scheme {
	s := Baseline()
	s.Name, s.Lazy, s.IRMB = "Only Lazy", true, core.DefaultGeometry
	return s
}

// OnlyInPTE enables only the in-PTE directory ("Only In-PTE Directory").
func OnlyInPTE() Scheme {
	s := Baseline()
	s.Name, s.Directory = "Only In-PTE Directory", InPTE
	return s
}

// IDYLL is the full design: in-PTE directory + lazy invalidation.
func IDYLL() Scheme {
	s := Baseline()
	s.Name, s.Directory, s.Lazy, s.IRMB = "IDYLL", InPTE, true, core.DefaultGeometry
	return s
}

// IDYLLInMem is the VM-Table alternative (§6.4).
func IDYLLInMem() Scheme {
	s := IDYLL()
	s.Name, s.Directory = "IDYLL-InMem", VMTable
	return s
}

// ZeroLatency is the idealized free-invalidation system.
func ZeroLatency() Scheme {
	s := Baseline()
	s.Name, s.ZeroLatencyInval = "Zero-Latency Invalidation", true
	return s
}

// FirstTouchScheme pins pages at first touch (Figure 2).
func FirstTouchScheme() Scheme {
	s := Baseline()
	s.Name, s.Policy = "First-touch", FirstTouch
	return s
}

// OnTouchScheme migrates on every touch (Figure 2).
func OnTouchScheme() Scheme {
	s := Baseline()
	s.Name, s.Policy = "On-touch", OnTouch
	return s
}

// ReplicationScheme replicates read-shared pages (§7.4).
func ReplicationScheme() Scheme {
	s := Baseline()
	s.Name, s.Policy = "Page Replication", Replication
	return s
}

// TransFWScheme is Trans-FW on the baseline (§7.5).
func TransFWScheme() Scheme {
	s := Baseline()
	s.Name, s.TransFW, s.PRTCapacity = "Trans-FW", true, 443
	return s
}

// IDYLLTransFW combines IDYLL with Trans-FW (§7.5).
func IDYLLTransFW() Scheme {
	s := IDYLL()
	s.Name, s.TransFW, s.PRTCapacity = "IDYLL+Trans-FW", true, 443
	return s
}
