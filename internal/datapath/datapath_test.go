package datapath

import (
	"testing"

	"idyll/internal/memdef"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

func newHier(cus int) (*sim.Engine, *Hierarchy, *stats.Sim) {
	e := sim.NewEngine()
	st := stats.NewSim()
	return e, New(e, cus, DefaultConfig(), st), st
}

func runAccess(t *testing.T, e *sim.Engine, h *Hierarchy, cu int, pa memdef.PAddr, write bool) sim.VTime {
	t.Helper()
	start := e.Now()
	var took sim.VTime = -1
	h.Access(cu, pa, write, func() { took = e.Now() - start })
	e.Run()
	if took < 0 {
		t.Fatal("access never completed")
	}
	return took
}

func TestColdMissGoesToDRAM(t *testing.T) {
	e, h, _ := newHier(1)
	cfg := DefaultConfig()
	want := cfg.L1HitLatency + cfg.L2HitLatency + cfg.DRAMLatency
	if got := runAccess(t, e, h, 0, 0x1000, false); got != want {
		t.Fatalf("cold access took %d, want %d", got, want)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	e, h, st := newHier(1)
	runAccess(t, e, h, 0, 0x1000, false)
	got := runAccess(t, e, h, 0, 0x1000, false)
	if got != DefaultConfig().L1HitLatency {
		t.Fatalf("L1 hit took %d", got)
	}
	if st.L1DHits != 1 {
		t.Fatalf("L1 hits = %d", st.L1DHits)
	}
}

func TestSameLineDifferentWordHits(t *testing.T) {
	e, h, _ := newHier(1)
	runAccess(t, e, h, 0, 0x1000, false)
	if got := runAccess(t, e, h, 0, 0x1030, false); got != DefaultConfig().L1HitLatency {
		t.Fatalf("same-line access took %d", got)
	}
}

func TestL2SharedAcrossCUs(t *testing.T) {
	e, h, st := newHier(2)
	runAccess(t, e, h, 0, 0x2000, false)
	cfg := DefaultConfig()
	// CU1 misses its private L1 but hits the shared L2.
	if got := runAccess(t, e, h, 1, 0x2000, false); got != cfg.L1HitLatency+cfg.L2HitLatency {
		t.Fatalf("cross-CU access took %d", got)
	}
	if st.L2DHits != 1 {
		t.Fatalf("L2 hits = %d", st.L2DHits)
	}
}

func TestInvalidatePageDropsLines(t *testing.T) {
	e, h, _ := newHier(1)
	for off := memdef.PAddr(0); off < 4096; off += 64 {
		runAccess(t, e, h, 0, 0x10000+off, false)
	}
	n := h.InvalidatePage(0x10000, 4096)
	if n == 0 {
		t.Fatal("no lines invalidated")
	}
	// Next access to the page must miss to DRAM again.
	cfg := DefaultConfig()
	if got := runAccess(t, e, h, 0, 0x10000, false); got != cfg.L1HitLatency+cfg.L2HitLatency+cfg.DRAMLatency {
		t.Fatalf("post-invalidate access took %d", got)
	}
}

func TestInvalidatePageLeavesNeighbours(t *testing.T) {
	e, h, _ := newHier(1)
	runAccess(t, e, h, 0, 0x10000, false) // page A
	runAccess(t, e, h, 0, 0x11000, false) // page B
	h.InvalidatePage(0x10000, 4096)
	if got := runAccess(t, e, h, 0, 0x11000, false); got != DefaultConfig().L1HitLatency {
		t.Fatalf("neighbour page evicted: access took %d", got)
	}
}

func TestHitRates(t *testing.T) {
	e, h, _ := newHier(1)
	runAccess(t, e, h, 0, 0, false)
	runAccess(t, e, h, 0, 0, false)
	if hr := h.L1HitRate(); hr != 0.5 {
		t.Fatalf("L1 hit rate = %v", hr)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	e, h, _ := newHier(1)
	// A write then read should both complete; dirty state is internal but
	// the write path must not corrupt residency.
	runAccess(t, e, h, 0, 0x3000, true)
	if got := runAccess(t, e, h, 0, 0x3000, false); got != DefaultConfig().L1HitLatency {
		t.Fatalf("read after write took %d", got)
	}
}
