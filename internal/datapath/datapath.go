// Package datapath models the data side of each GPU once translation has
// succeeded: per-CU L1 vector caches, the shared L2 cache, and local DRAM
// (Table 2: 16 KB/4-way L1V$, 256 KB/16-way L2$, 4 GB device memory).
//
// Remote data is not modelled here: per §3.2 it is fetched from the remote
// GPU at cacheline granularity and bypasses the local cache hierarchy, so
// the GPU model charges it as interconnect round-trip + remote DRAM latency.
package datapath

import (
	"idyll/internal/cache"
	"idyll/internal/memdef"
	"idyll/internal/sim"
	"idyll/internal/stats"
)

// Config sets cache geometry and latency.
type Config struct {
	L1Bytes      int
	L1Ways       int
	L1HitLatency sim.VTime
	L2Bytes      int
	L2Ways       int
	L2HitLatency sim.VTime
	DRAMLatency  sim.VTime
	LineBytes    int
}

// DefaultConfig returns the Table 2 data-path configuration.
func DefaultConfig() Config {
	return Config{
		L1Bytes: 16 << 10, L1Ways: 4, L1HitLatency: 4,
		L2Bytes: 256 << 10, L2Ways: 16, L2HitLatency: 30,
		DRAMLatency: 200,
		LineBytes:   memdef.CachelineBytes,
	}
}

type lineState struct {
	dirty bool
}

// Hierarchy is one GPU's local data-cache hierarchy.
type Hierarchy struct {
	engine *sim.Engine
	cfg    Config
	l1     []*cache.SetAssoc[uint64, lineState] // per CU
	l2     *cache.SetAssoc[uint64, lineState]
	st     *stats.Sim

	lineShift uint
}

// New builds the hierarchy for numCUs compute units.
func New(engine *sim.Engine, numCUs int, cfg Config, st *stats.Sim) *Hierarchy {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	idx := func(k uint64) uint64 { return k }
	l1Sets := cfg.L1Bytes / cfg.LineBytes / cfg.L1Ways
	if l1Sets < 1 {
		l1Sets = 1
	}
	l2Sets := cfg.L2Bytes / cfg.LineBytes / cfg.L2Ways
	if l2Sets < 1 {
		l2Sets = 1
	}
	h := &Hierarchy{engine: engine, cfg: cfg, st: st, lineShift: shift}
	h.l1 = make([]*cache.SetAssoc[uint64, lineState], numCUs)
	for i := range h.l1 {
		h.l1[i] = cache.New[uint64, lineState](l1Sets, cfg.L1Ways, idx)
	}
	h.l2 = cache.New[uint64, lineState](l2Sets, cfg.L2Ways, idx)
	return h
}

// line returns the cacheline key of a physical address.
func (h *Hierarchy) line(pa memdef.PAddr) uint64 { return uint64(pa) >> h.lineShift }

// Access performs a local data access by cu to physical address pa and
// invokes done when the data is available (write completion is acknowledged
// at the same point; stores are modelled write-allocate/write-back).
func (h *Hierarchy) Access(cu int, pa memdef.PAddr, write bool, done func()) {
	ln := h.line(pa)
	l1 := h.l1[cu]
	h.st.L1DLookups++
	if st, ok := l1.Lookup(ln); ok {
		h.st.L1DHits++
		if write && !st.dirty {
			l1.Insert(ln, lineState{dirty: true})
		}
		h.engine.Schedule(h.cfg.L1HitLatency, done)
		return
	}
	h.st.L2DLookups++
	if _, ok := h.l2.Lookup(ln); ok {
		h.st.L2DHits++
		l1.Insert(ln, lineState{dirty: write})
		h.engine.Schedule(h.cfg.L1HitLatency+h.cfg.L2HitLatency, done)
		return
	}
	// Miss everywhere: DRAM fill. Write-back traffic of dirty victims is
	// absorbed in DRAMLatency; the experiments are translation-bound.
	h.l2.Insert(ln, lineState{})
	l1.Insert(ln, lineState{dirty: write})
	h.engine.Schedule(h.cfg.L1HitLatency+h.cfg.L2HitLatency+h.cfg.DRAMLatency, done)
}

// InvalidatePage drops every cached line of the given physical page, called
// when a page migrates away so stale data cannot be read locally.
func (h *Hierarchy) InvalidatePage(base memdef.PAddr, pageBytes uint64) int {
	lo := h.line(base)
	hi := h.line(base + memdef.PAddr(pageBytes) - 1)
	pred := func(k uint64, _ lineState) bool { return k >= lo && k <= hi }
	n := h.l2.InvalidateIf(pred)
	for _, l1 := range h.l1 {
		n += l1.InvalidateIf(pred)
	}
	return n
}

// L1HitRate reports the aggregate L1 hit rate.
func (h *Hierarchy) L1HitRate() float64 {
	var hits, lookups uint64
	for _, c := range h.l1 {
		hits += c.Hits()
		lookups += c.Lookups()
	}
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// L2HitRate reports the shared L2 hit rate.
func (h *Hierarchy) L2HitRate() float64 { return h.l2.HitRate() }
