package datapath

import "idyll/internal/checkpoint"

// Checkpoint support: the per-CU L1 caches and the shared L2 carry their
// line contents (with dirty bits) in recency order. Hit/miss statistics
// accumulate in the shared stats.Sim shard, serialized at the system level.

func encLine(w *checkpoint.Writer, ln uint64, st lineState) {
	w.U64(ln)
	w.Bool(st.dirty)
}

func decLine(r *checkpoint.Reader) (uint64, lineState) {
	ln := r.U64()
	return ln, lineState{dirty: r.Bool()}
}

// SaveState writes the hierarchy's cache contents to w.
func (h *Hierarchy) SaveState(w *checkpoint.Writer) {
	w.Int(len(h.l1))
	for _, c := range h.l1 {
		c.SaveState(w, encLine)
	}
	h.l2.SaveState(w, encLine)
}

// RestoreState reads the state written by SaveState into h, which must have
// the same geometry.
func (h *Hierarchy) RestoreState(r *checkpoint.Reader) {
	if n := r.Int(); n != len(h.l1) {
		r.Failf("datapath: %d L1 caches in checkpoint, %d configured", n, len(h.l1))
		return
	}
	for _, c := range h.l1 {
		c.RestoreState(r, decLine)
	}
	h.l2.RestoreState(r, decLine)
}
