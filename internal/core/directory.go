// Package core implements the paper's primary contribution: the IDYLL
// mechanisms. It contains
//
//   - the invalidation Directory abstraction with three implementations:
//     conventional broadcast (baseline), the in-PTE directory that stores
//     per-GPU access bits in the unused bits 62–52 of host page-table
//     entries (§6.2, Figure 8), and the in-memory VM-Table + VM-Cache
//     alternative (IDYLL-InMem, §6.4, Figure 10); and
//
//   - the Invalidation Request Merging Buffer (IRMB) that realizes lazy
//     invalidation (§6.3, Figure 9).
//
// Timing is expressed as extra latencies returned to the caller (the UVM
// driver and the GPU GMMU), which schedule them on the shared event engine.
package core

import (
	"idyll/internal/cache"
	"idyll/internal/memdef"
	"idyll/internal/pagetable"
	"idyll/internal/sim"
)

// Directory decides which GPUs must receive the PTE-invalidation requests
// for a migrating page, and records which GPUs establish mappings.
type Directory interface {
	// Targets returns the GPUs that must be invalidated for vpn and any
	// extra lookup latency beyond the host page-table walk the driver
	// performs anyway. Supersets are allowed (false positives cost extra
	// requests but preserve correctness, §6.2); subsets are not.
	Targets(vpn memdef.VPN) (gpus []int, extra sim.VTime)
	// Record notes that gpu established a valid mapping for vpn, and
	// returns any extra latency of the bookkeeping.
	Record(vpn memdef.VPN, gpu int) sim.VTime
	// Clear forgets all holders of vpn (called once invalidations are sent,
	// §6.2: "the access bits are also cleared to 0").
	Clear(vpn memdef.VPN)
	// RequiresHostWalkFirst reports whether the driver must complete the
	// host page-table walk before it can name targets. True for the in-PTE
	// directory (the bits live in the PTE); false for broadcast (which the
	// baseline sends before the walk completes, §6.2) and for the VM-Cache
	// (looked up in parallel with the walk, §6.4).
	RequiresHostWalkFirst() bool
}

// BroadcastDirectory is the conventional UVM behaviour: invalidations go to
// every GPU because the driver has no residency information.
type BroadcastDirectory struct {
	numGPUs int
	all     []int
}

// NewBroadcastDirectory builds the baseline directory for numGPUs GPUs.
func NewBroadcastDirectory(numGPUs int) *BroadcastDirectory {
	all := make([]int, numGPUs)
	for i := range all {
		all[i] = i
	}
	return &BroadcastDirectory{numGPUs: numGPUs, all: all}
}

// Targets returns every GPU with no extra latency.
func (d *BroadcastDirectory) Targets(memdef.VPN) ([]int, sim.VTime) { return d.all, 0 }

// Record is a no-op: the baseline keeps no residency state.
func (d *BroadcastDirectory) Record(memdef.VPN, int) sim.VTime { return 0 }

// Clear is a no-op.
func (d *BroadcastDirectory) Clear(memdef.VPN) {}

// RequiresHostWalkFirst is false: the baseline broadcasts immediately.
func (d *BroadcastDirectory) RequiresHostWalkFirst() bool { return false }

// InPTEDirectory stores GPU access bits in the unused bits of host PTEs
// (Figure 8). With m unused bits and more than m GPUs, GPU id maps to bit
// h(id) = id mod m, so distinct GPUs may share a bit — lookups then
// over-approximate, which is safe.
type InPTEDirectory struct {
	hostPT  *pagetable.Table
	numGPUs int
	// unusedBits is m in the paper's hash h(GPUid) = GPUid % m + 52.
	// The default design uses the 11 bits 62–52; §7.2 also evaluates m=4.
	unusedBits int

	falseTargets uint64 // targets named only due to hash collisions
}

// NewInPTEDirectory builds the in-PTE directory over the host page table.
func NewInPTEDirectory(hostPT *pagetable.Table, numGPUs, unusedBits int) *InPTEDirectory {
	if unusedBits <= 0 || unusedBits > 14 {
		// §6.2: at most 14 unused bits exist (62–52 and 11–9); the design
		// uses 62–52 to keep the hash simple.
		panic("core: unused-bit count out of range")
	}
	return &InPTEDirectory{hostPT: hostPT, numGPUs: numGPUs, unusedBits: unusedBits}
}

// bit returns the access-bit index for gpu.
func (d *InPTEDirectory) bit(gpu int) uint { return uint(gpu % d.unusedBits) }

// Targets decodes the access bits of vpn's host PTE. The information rides
// on the host walk the driver performs anyway, so extra latency is zero —
// but RequiresHostWalkFirst forces the driver to finish that walk before
// sending, which is the "additional latency in sending invalidation
// requests" the paper accepts (§6.2).
func (d *InPTEDirectory) Targets(vpn memdef.VPN) ([]int, sim.VTime) {
	pte, ok := d.hostPT.Lookup(vpn)
	if !ok {
		return nil, 0
	}
	var gpus []int
	for g := 0; g < d.numGPUs; g++ {
		if pte.Aux&(1<<d.bit(g)) != 0 {
			gpus = append(gpus, g)
		}
	}
	return gpus, 0
}

// Record sets gpu's access bit in vpn's host PTE.
func (d *InPTEDirectory) Record(vpn memdef.VPN, gpu int) sim.VTime {
	d.hostPT.Entry(vpn).Aux |= 1 << d.bit(gpu)
	return 0
}

// Clear zeroes vpn's access bits.
func (d *InPTEDirectory) Clear(vpn memdef.VPN) {
	if e := d.hostPT.Entry(vpn); e != nil {
		e.Aux = 0
	}
}

// RequiresHostWalkFirst is true: the bits live in the PTE itself.
func (d *InPTEDirectory) RequiresHostWalkFirst() bool { return true }

// VMDirectory is IDYLL-InMem (§6.4): an in-memory VM-Table holding one
// 64-bit entry per page (45-bit VPN + 19 GPU access bits), fronted by a
// small hardware VM-Cache (64 entries, 4-way, write-allocate, write-back).
type VMDirectory struct {
	numGPUs int
	// hashBits is 19 in the paper: with more than 19 GPUs the same modular
	// hash as the in-PTE design compresses access bits.
	hashBits int
	table    map[memdef.VPN]uint32
	vmCache  *cache.SetAssoc[memdef.VPN, uint32]

	// CacheHitLatency is the VM-Cache lookup time; MemLatency is a VM-Table
	// memory access on a VM-Cache miss.
	CacheHitLatency sim.VTime
	MemLatency      sim.VTime

	lookups uint64
	hits    uint64
}

// NewVMDirectory builds the IDYLL-InMem directory.
func NewVMDirectory(numGPUs int, cacheHit, mem sim.VTime) *VMDirectory {
	return &VMDirectory{
		numGPUs:  numGPUs,
		hashBits: 19,
		table:    make(map[memdef.VPN]uint32),
		vmCache: cache.New[memdef.VPN, uint32](16, 4, // 64 entries, 4-way
			func(v memdef.VPN) uint64 { return uint64(v) }),
		CacheHitLatency: cacheHit,
		MemLatency:      mem,
	}
}

func (d *VMDirectory) bit(gpu int) uint { return uint(gpu % d.hashBits) }

// load returns vpn's access mask, the latency of obtaining it, and caches it.
func (d *VMDirectory) load(vpn memdef.VPN) (uint32, sim.VTime) {
	d.lookups++
	if mask, ok := d.vmCache.Lookup(vpn); ok {
		d.hits++
		return mask, d.CacheHitLatency
	}
	mask := d.table[vpn] // absent ⇒ first access: zero mask (§6.4)
	d.install(vpn, mask)
	return mask, d.CacheHitLatency + d.MemLatency
}

// install caches vpn→mask, writing back any evicted dirty entry.
func (d *VMDirectory) install(vpn memdef.VPN, mask uint32) {
	ek, ev, evicted := d.vmCache.Insert(vpn, mask)
	if evicted {
		d.table[ek] = ev // write-back on eviction (Figure 10 ⓓ)
	}
}

// Targets decodes vpn's access mask. The lookup happens in parallel with the
// host walk (§6.4), so the returned latency is only what exceeds a typical
// walk — we report the raw lookup latency and let the driver overlap it.
func (d *VMDirectory) Targets(vpn memdef.VPN) ([]int, sim.VTime) {
	mask, lat := d.load(vpn)
	var gpus []int
	for g := 0; g < d.numGPUs; g++ {
		if mask&(1<<d.bit(g)) != 0 {
			gpus = append(gpus, g)
		}
	}
	return gpus, lat
}

// Record sets gpu's bit in vpn's mask.
func (d *VMDirectory) Record(vpn memdef.VPN, gpu int) sim.VTime {
	mask, lat := d.load(vpn)
	d.install(vpn, mask|1<<d.bit(gpu))
	return lat
}

// Clear zeroes vpn's mask in both cache and table.
func (d *VMDirectory) Clear(vpn memdef.VPN) {
	d.install(vpn, 0)
	delete(d.table, vpn)
}

// RequiresHostWalkFirst is false: the VM-Cache is consulted in parallel with
// the host-side walk.
func (d *VMDirectory) RequiresHostWalkFirst() bool { return false }

// HitRate reports the VM-Cache hit rate (the paper observes 60.2%).
func (d *VMDirectory) HitRate() float64 {
	if d.lookups == 0 {
		return 0
	}
	return float64(d.hits) / float64(d.lookups)
}

// Lookups reports total VM-Cache lookups.
func (d *VMDirectory) Lookups() uint64 { return d.lookups }
