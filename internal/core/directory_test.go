package core

import (
	"testing"

	"idyll/internal/memdef"
	"idyll/internal/pagetable"
)

func TestBroadcastDirectoryNamesEveryGPU(t *testing.T) {
	d := NewBroadcastDirectory(4)
	gpus, extra := d.Targets(123)
	if extra != 0 {
		t.Fatalf("extra = %d", extra)
	}
	if len(gpus) != 4 {
		t.Fatalf("targets = %v", gpus)
	}
	if d.RequiresHostWalkFirst() {
		t.Fatal("baseline must broadcast before the host walk")
	}
	d.Record(123, 1) // must be a no-op
	gpus, _ = d.Targets(123)
	if len(gpus) != 4 {
		t.Fatal("Record changed broadcast behaviour")
	}
}

func newInPTE(numGPUs, bits int) (*InPTEDirectory, *pagetable.Table) {
	pt := pagetable.New(memdef.Page4K)
	return NewInPTEDirectory(pt, numGPUs, bits), pt
}

func TestInPTEDirectoryTracksAccessors(t *testing.T) {
	d, pt := newInPTE(4, 11)
	pt.Map(7, pagetable.PTE{Valid: true})
	if gpus, _ := d.Targets(7); len(gpus) != 0 {
		t.Fatalf("fresh page has targets %v", gpus)
	}
	d.Record(7, 0)
	d.Record(7, 2)
	gpus, _ := d.Targets(7)
	if len(gpus) != 2 || gpus[0] != 0 || gpus[1] != 2 {
		t.Fatalf("targets = %v, want [0 2]", gpus)
	}
	if !d.RequiresHostWalkFirst() {
		t.Fatal("in-PTE directory needs the host walk")
	}
}

func TestInPTEDirectoryClear(t *testing.T) {
	d, pt := newInPTE(4, 11)
	pt.Map(9, pagetable.PTE{Valid: true})
	d.Record(9, 3)
	d.Clear(9)
	if gpus, _ := d.Targets(9); len(gpus) != 0 {
		t.Fatalf("targets after clear = %v", gpus)
	}
}

func TestInPTEDirectoryStoresBitsInPTEAux(t *testing.T) {
	d, pt := newInPTE(4, 11)
	pt.Map(5, pagetable.PTE{Valid: true})
	d.Record(5, 3)
	pte, _ := pt.Lookup(5)
	if pte.Aux != 1<<3 {
		t.Fatalf("Aux = %#x, want bit 3 (GPU3 → unused bit 55 = offset 3)", pte.Aux)
	}
}

// With 8 GPUs and only 4 unused bits (Figure 19's setting), GPUs 0 and 4
// share bit 0: recording GPU4 must also name GPU0 (false positive, never a
// false negative).
func TestInPTEDirectoryHashCollisionsAreSupersets(t *testing.T) {
	d, pt := newInPTE(8, 4)
	pt.Map(11, pagetable.PTE{Valid: true})
	d.Record(11, 4)
	gpus, _ := d.Targets(11)
	want := map[int]bool{0: true, 4: true}
	if len(gpus) != 2 {
		t.Fatalf("targets = %v, want GPUs 0 and 4", gpus)
	}
	for _, g := range gpus {
		if !want[g] {
			t.Fatalf("unexpected target %d", g)
		}
	}
}

// Property-style check across all GPUs: every recorded GPU always appears in
// Targets (no false negatives), for both wide and narrow hash widths.
func TestInPTEDirectoryNoFalseNegatives(t *testing.T) {
	for _, bits := range []int{4, 11} {
		for numGPUs := 1; numGPUs <= 32; numGPUs *= 2 {
			d, pt := newInPTE(numGPUs, bits)
			pt.Map(1, pagetable.PTE{Valid: true})
			for g := 0; g < numGPUs; g++ {
				d.Record(1, g)
				found := false
				gpus, _ := d.Targets(1)
				for _, got := range gpus {
					if got == g {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("bits=%d gpus=%d: GPU %d recorded but not targeted", bits, numGPUs, g)
				}
			}
		}
	}
}

func TestInPTEDirectoryUnmappedPageHasNoTargets(t *testing.T) {
	d, _ := newInPTE(4, 11)
	if gpus, _ := d.Targets(999); gpus != nil {
		t.Fatalf("targets for unmapped page = %v", gpus)
	}
}

func TestVMDirectoryExactTracking(t *testing.T) {
	d := NewVMDirectory(4, 2, 150)
	d.Record(3, 1)
	d.Record(3, 2)
	gpus, _ := d.Targets(3)
	if len(gpus) != 2 || gpus[0] != 1 || gpus[1] != 2 {
		t.Fatalf("targets = %v", gpus)
	}
	d.Clear(3)
	if gpus, _ := d.Targets(3); len(gpus) != 0 {
		t.Fatalf("targets after clear = %v", gpus)
	}
	if d.RequiresHostWalkFirst() {
		t.Fatal("VM-Cache is parallel to the host walk")
	}
}

func TestVMDirectoryCacheMissCostsMemoryAccess(t *testing.T) {
	d := NewVMDirectory(4, 2, 150)
	_, lat := d.Targets(1) // cold: miss
	if lat != 152 {
		t.Fatalf("cold lookup latency = %d, want 152", lat)
	}
	_, lat = d.Targets(1) // now cached
	if lat != 2 {
		t.Fatalf("warm lookup latency = %d, want 2", lat)
	}
	if d.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", d.HitRate())
	}
}

func TestVMDirectoryEvictionWritesBack(t *testing.T) {
	d := NewVMDirectory(4, 2, 150)
	// Fill one VM-Cache set (16 sets, 4 ways): VPNs congruent mod 16.
	for i := 0; i < 5; i++ {
		d.Record(memdef.VPN(i*16), i%4)
	}
	// VPN 0 was evicted; its mask must survive in the VM-Table.
	gpus, _ := d.Targets(0)
	if len(gpus) != 1 || gpus[0] != 0 {
		t.Fatalf("written-back mask lost: targets = %v", gpus)
	}
}

func TestVMDirectoryHashBeyond19GPUs(t *testing.T) {
	d := NewVMDirectory(24, 2, 150)
	d.Record(1, 20) // bit 20%19 = 1, shared with GPU 1
	gpus, _ := d.Targets(1)
	want := map[int]bool{1: true, 20: true}
	if len(gpus) != 2 {
		t.Fatalf("targets = %v", gpus)
	}
	for _, g := range gpus {
		if !want[g] {
			t.Fatalf("unexpected target %d", g)
		}
	}
}
