package core

import (
	"idyll/internal/memdef"
)

// IRMB is the Invalidation Request Merging Buffer of §6.3 (Figure 9): a
// small per-GPU structure that absorbs incoming PTE-invalidation requests so
// they stop contending with demand TLB-miss page walks.
//
// The VPN of each request is split into a base (all bits above the leaf
// page-table index) and a 9-bit offset (the leaf index). Requests sharing a
// base merge into one entry; an entry holds up to offsetsPerEntry offsets.
// Entries are kept in LRU order. Evictions — of a whole LRU entry when the
// bases are full, or of an entry's offsets when its offset slots are full —
// hand the batched VPNs back to the GMMU for a write-back walk, which enjoys
// high page-walk-cache locality because all VPNs in a batch share every
// non-leaf level.
type IRMB struct {
	maxEntries      int
	offsetsPerEntry int
	entries         []*mergedEntry // MRU first

	inserts    uint64
	mergeHits  uint64
	evictions  uint64
	lookups    uint64
	lookupHits uint64
	removed    uint64
}

// mergedEntry is one base with its merged offsets (Figure 9's "merged
// entry"). Offsets are kept in insertion order; membership is small-N linear
// scan, matching a CAM row.
type mergedEntry struct {
	base    uint64
	offsets []uint16
}

// Geometry describes an IRMB configuration; the paper's default is
// 32 bases × 16 offsets and Figure 15 sweeps (16,8), (16,16), (32,8), (64,16).
type Geometry struct {
	Bases   int
	Offsets int
}

// DefaultGeometry is the paper's chosen configuration (§6.3).
var DefaultGeometry = Geometry{Bases: 32, Offsets: 16}

// Bytes reports the hardware cost of the geometry using the paper's
// arithmetic: each entry stores a 36-bit base (4 × 9 bits) plus
// offsets × 9 bits, and the total is rounded to bytes. For the default
// (32, 16): (36 + 144) × 32 / 8 = 720 bytes.
func (g Geometry) Bytes() int { return (36 + 9*g.Offsets) * g.Bases / 8 }

// NewIRMB builds an empty IRMB.
func NewIRMB(g Geometry) *IRMB {
	if g.Bases <= 0 || g.Offsets <= 0 {
		panic("core: IRMB geometry must be positive")
	}
	return &IRMB{maxEntries: g.Bases, offsetsPerEntry: g.Offsets}
}

// Len reports the number of live merged entries.
func (b *IRMB) Len() int { return len(b.entries) }

// PendingInvalidations reports the total number of buffered VPNs.
func (b *IRMB) PendingInvalidations() int {
	n := 0
	for _, e := range b.entries {
		n += len(e.offsets)
	}
	return n
}

// Empty reports whether nothing is buffered.
func (b *IRMB) Empty() bool { return len(b.entries) == 0 }

// find returns the entry index for base, or -1.
func (b *IRMB) find(base uint64) int {
	for i, e := range b.entries {
		if e.base == base {
			return i
		}
	}
	return -1
}

// promote moves entry i to MRU position.
func (b *IRMB) promote(i int) {
	if i == 0 {
		return
	}
	e := b.entries[i]
	copy(b.entries[1:i+1], b.entries[:i])
	b.entries[0] = e
}

// Insert buffers an invalidation for vpn. If buffering forces an eviction —
// the LRU entry when all bases are in use ( b in Figure 9), or the target
// entry's own offsets when its slots are full — the displaced VPNs are
// returned and must be written back to the page table as one batch.
func (b *IRMB) Insert(vpn memdef.VPN) (writeback []memdef.VPN) {
	base := memdef.IRMBBase(vpn)
	off := memdef.IRMBOffset(vpn)
	b.inserts++

	if i := b.find(base); i >= 0 {
		e := b.entries[i]
		for _, o := range e.offsets {
			if o == off {
				// Already buffered: the request fully merges.
				b.mergeHits++
				b.promote(i)
				return nil
			}
		}
		if len(e.offsets) >= b.offsetsPerEntry {
			// Offset slots full: evict all offsets of this entry and start
			// it over with the new request (§6.3 "IRMB insertion and
			// eviction", second case).
			writeback = b.vpnsOf(e)
			b.evictions++
			e.offsets = e.offsets[:0]
		}
		e.offsets = append(e.offsets, off)
		b.mergeHits++
		b.promote(i)
		return writeback
	}

	// New base needed.
	if len(b.entries) >= b.maxEntries {
		// Evict the LRU merged entry ( b ): recently-migrated neighbourhoods
		// stay resident to keep coalescing.
		victim := b.entries[len(b.entries)-1]
		writeback = b.vpnsOf(victim)
		b.evictions++
		b.entries = b.entries[:len(b.entries)-1]
	}
	e := &mergedEntry{base: base, offsets: []uint16{off}}
	b.entries = append([]*mergedEntry{e}, b.entries...)
	return writeback
}

// vpnsOf expands an entry's offsets back into VPNs.
func (b *IRMB) vpnsOf(e *mergedEntry) []memdef.VPN {
	out := make([]memdef.VPN, len(e.offsets))
	for i, o := range e.offsets {
		out[i] = memdef.IRMBJoin(e.base, o)
	}
	return out
}

// Lookup reports whether vpn has a buffered invalidation. It is performed
// in parallel with the L2 TLB lookup ( B in Figure 9); a hit means the local
// PTE is stale, so the GMMU must bypass the walk and raise a far fault
// directly ( C ). Lookup does not disturb LRU order.
func (b *IRMB) Lookup(vpn memdef.VPN) bool {
	b.lookups++
	if i := b.find(memdef.IRMBBase(vpn)); i >= 0 {
		off := memdef.IRMBOffset(vpn)
		for _, o := range b.entries[i].offsets {
			if o == off {
				b.lookupHits++
				return true
			}
		}
	}
	return false
}

// Remove drops vpn's buffered invalidation, if present. Called when a new
// mapping for vpn arrives from the driver: the stale-PTE marker is obsolete
// because the PTE is about to be overwritten with a valid translation
// (§6.3 "IRMB lookup", last paragraph).
func (b *IRMB) Remove(vpn memdef.VPN) bool {
	i := b.find(memdef.IRMBBase(vpn))
	if i < 0 {
		return false
	}
	e := b.entries[i]
	off := memdef.IRMBOffset(vpn)
	for j, o := range e.offsets {
		if o == off {
			e.offsets = append(e.offsets[:j], e.offsets[j+1:]...)
			b.removed++
			if len(e.offsets) == 0 {
				b.entries = append(b.entries[:i], b.entries[i+1:]...)
			}
			return true
		}
	}
	return false
}

// DrainLRU removes and returns the LRU entry's VPNs for an idle-time
// write-back walk ("when the page table walker is available, we invalidate
// the LRU merged entry['s] corresponding PTEs", §6.3). It returns nil when
// the buffer is empty.
func (b *IRMB) DrainLRU() []memdef.VPN {
	if len(b.entries) == 0 {
		return nil
	}
	victim := b.entries[len(b.entries)-1]
	b.entries = b.entries[:len(b.entries)-1]
	return b.vpnsOf(victim)
}

// Stats reports insert/merge/evict/lookup counters.
func (b *IRMB) Stats() (inserts, mergeHits, evictions, lookups, lookupHits, removed uint64) {
	return b.inserts, b.mergeHits, b.evictions, b.lookups, b.lookupHits, b.removed
}
