package core

import "testing"

func TestAccessBitPositionMatchesFigure8(t *testing.T) {
	// §6.2: "in our default 4-GPU system, the unused bits 55-52 of PTE
	// correspond to the access bit of GPU3-GPU0".
	for gpu := 0; gpu < 4; gpu++ {
		if got := AccessBitPosition(gpu, 11); got != 52+gpu {
			t.Errorf("GPU%d bit = %d, want %d", gpu, got, 52+gpu)
		}
	}
	// With m=11, GPU11 wraps onto GPU0's bit.
	if AccessBitPosition(11, 11) != AccessBitPosition(0, 11) {
		t.Error("hash wrap broken for m=11")
	}
	// §7.2's m=4: GPU4 collides with GPU0.
	if AccessBitPosition(4, 4) != 52 {
		t.Error("m=4 hash wrong")
	}
	// All positions stay within the unused-bit range 52..62.
	for gpu := 0; gpu < 64; gpu++ {
		p := AccessBitPosition(gpu, 11)
		if p < 52 || p > 62 {
			t.Fatalf("bit position %d outside 52..62", p)
		}
	}
}

func TestVMTableOverheadMatchesSection64(t *testing.T) {
	// §6.4: footprint 2^x needs 2^(x-12) entries × 8 B = 2^(x-9) bytes,
	// which is 1/512 ≈ 0.2% of the footprint.
	footprint := uint64(1) << 30 // 1 GiB
	got := VMTableBytes(footprint)
	if got != footprint/512 {
		t.Fatalf("VM-Table bytes = %d, want %d", got, footprint/512)
	}
	frac := float64(got) / float64(footprint)
	if frac > 0.0021 || frac < 0.0019 {
		t.Fatalf("VM-Table overhead = %.4f%%, want ≈0.2%%", frac*100)
	}
}

func TestVMCacheOverheadIs480Bytes(t *testing.T) {
	if got := VMCacheBytes(); got != 480 {
		t.Fatalf("VM-Cache bytes = %d, want 480 (§6.4)", got)
	}
}

func TestUnusedBitBudget(t *testing.T) {
	if MaxUnusedPTEBits != 14 {
		t.Fatal("§6.2: the PTE format has 14 unused bits (62-52 and 11-9)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccessBitPosition accepted m=0")
		}
	}()
	AccessBitPosition(0, 0)
}
