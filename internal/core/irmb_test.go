package core

import (
	"testing"
	"testing/quick"

	"idyll/internal/memdef"
)

func TestIRMBGeometryBytes(t *testing.T) {
	// §6.3: (36 + 144) × 32 / 8 = 720 bytes for the default geometry.
	if got := DefaultGeometry.Bytes(); got != 720 {
		t.Fatalf("default IRMB size = %d bytes, want 720", got)
	}
	if got := (Geometry{Bases: 16, Offsets: 8}).Bytes(); got != (36+72)*16/8 {
		t.Fatalf("(16,8) size = %d", got)
	}
}

func TestIRMBInsertLookup(t *testing.T) {
	b := NewIRMB(DefaultGeometry)
	if wb := b.Insert(100); wb != nil {
		t.Fatalf("first insert wrote back %v", wb)
	}
	if !b.Lookup(100) {
		t.Fatal("inserted VPN not found")
	}
	if b.Lookup(101) {
		t.Fatal("phantom hit")
	}
	if b.PendingInvalidations() != 1 {
		t.Fatalf("pending = %d", b.PendingInvalidations())
	}
}

func TestIRMBMergesSameBase(t *testing.T) {
	b := NewIRMB(DefaultGeometry)
	// VPNs 0..15 share a base (offsets 0..15).
	for v := memdef.VPN(0); v < 16; v++ {
		if wb := b.Insert(v); wb != nil {
			t.Fatalf("insert %d wrote back %v", v, wb)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("entries = %d, want 1 merged entry", b.Len())
	}
	if b.PendingInvalidations() != 16 {
		t.Fatalf("pending = %d, want 16", b.PendingInvalidations())
	}
}

func TestIRMBDuplicateInsertIsIdempotent(t *testing.T) {
	b := NewIRMB(DefaultGeometry)
	b.Insert(5)
	if wb := b.Insert(5); wb != nil {
		t.Fatalf("duplicate insert wrote back %v", wb)
	}
	if b.PendingInvalidations() != 1 {
		t.Fatalf("pending = %d, want 1", b.PendingInvalidations())
	}
}

func TestIRMBOffsetOverflowEvictsEntryOffsets(t *testing.T) {
	b := NewIRMB(Geometry{Bases: 4, Offsets: 4})
	for v := memdef.VPN(0); v < 4; v++ {
		b.Insert(v)
	}
	wb := b.Insert(4) // fifth offset of the same base
	if len(wb) != 4 {
		t.Fatalf("writeback = %v, want the 4 displaced VPNs", wb)
	}
	seen := map[memdef.VPN]bool{}
	for _, v := range wb {
		seen[v] = true
	}
	for v := memdef.VPN(0); v < 4; v++ {
		if !seen[v] {
			t.Fatalf("VPN %d missing from writeback", v)
		}
	}
	if !b.Lookup(4) {
		t.Fatal("new offset lost after overflow")
	}
	if b.Lookup(0) {
		t.Fatal("evicted offset still resident")
	}
}

func TestIRMBBaseOverflowEvictsLRUEntry(t *testing.T) {
	b := NewIRMB(Geometry{Bases: 2, Offsets: 4})
	b.Insert(0 << 9)         // base 0
	b.Insert(1 << 9)         // base 1
	b.Insert(0<<9 | 1)       // touch base 0 → base 1 is now LRU
	wb := b.Insert(2<<9 | 3) // base 2 evicts base 1
	if len(wb) != 1 || wb[0] != 1<<9 {
		t.Fatalf("writeback = %v, want [%d]", wb, 1<<9)
	}
	if !b.Lookup(0<<9) || !b.Lookup(0<<9|1) || !b.Lookup(2<<9|3) {
		t.Fatal("survivors lost")
	}
}

func TestIRMBRemoveOnNewMapping(t *testing.T) {
	b := NewIRMB(DefaultGeometry)
	b.Insert(10)
	b.Insert(11)
	if !b.Remove(10) {
		t.Fatal("Remove missed buffered VPN")
	}
	if b.Lookup(10) {
		t.Fatal("removed VPN still resident")
	}
	if !b.Lookup(11) {
		t.Fatal("sibling offset lost")
	}
	if b.Remove(10) {
		t.Fatal("second Remove should miss")
	}
	// Removing the last offset of an entry frees the base.
	b.Remove(11)
	if b.Len() != 0 {
		t.Fatalf("entries = %d after removing all offsets", b.Len())
	}
}

func TestIRMBDrainLRU(t *testing.T) {
	b := NewIRMB(Geometry{Bases: 4, Offsets: 4})
	b.Insert(0 << 9)
	b.Insert(1 << 9)
	b.Insert(1<<9 | 1)
	// Base 0 is LRU (base 1 touched later).
	wb := b.DrainLRU()
	if len(wb) != 1 || wb[0] != 0 {
		t.Fatalf("drained %v, want [0]", wb)
	}
	wb = b.DrainLRU()
	if len(wb) != 2 {
		t.Fatalf("drained %v, want base-1's two VPNs", wb)
	}
	if b.DrainLRU() != nil {
		t.Fatal("drain of empty IRMB returned entries")
	}
	if !b.Empty() {
		t.Fatal("IRMB not empty after draining")
	}
}

func TestIRMBStats(t *testing.T) {
	b := NewIRMB(DefaultGeometry)
	b.Insert(1)
	b.Insert(2)  // merge into same base
	b.Lookup(1)  // hit
	b.Lookup(99) // miss (same base, absent offset)
	ins, merges, _, lookups, hits, _ := b.Stats()
	if ins != 2 || merges != 1 || lookups != 2 || hits != 1 {
		t.Fatalf("stats = %d inserts, %d merges, %d lookups, %d hits", ins, merges, lookups, hits)
	}
}

// Invariants under arbitrary insert/remove/drain sequences:
//   - entries never exceed Bases, offsets per entry never exceed Offsets;
//   - a VPN inserted and not since evicted/removed/drained is always found;
//   - writeback batches always share a single base.
func TestIRMBInvariantsProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		g := Geometry{Bases: 4, Offsets: 4}
		b := NewIRMB(g)
		live := map[memdef.VPN]bool{}
		evict := func(vpns []memdef.VPN) bool {
			if len(vpns) == 0 {
				return true
			}
			base := memdef.IRMBBase(vpns[0])
			for _, v := range vpns {
				if memdef.IRMBBase(v) != base {
					return false
				}
				delete(live, v)
			}
			return true
		}
		for _, op := range ops {
			vpn := memdef.VPN(op % 64) // few bases, many collisions
			switch op % 3 {
			case 0, 1:
				if !evict(b.Insert(vpn)) {
					return false
				}
				live[vpn] = true
			case 2:
				if op%6 == 2 {
					b.Remove(vpn)
					delete(live, vpn)
				} else if !evict(b.DrainLRU()) {
					return false
				}
			}
			if b.Len() > g.Bases {
				return false
			}
			for v := range live {
				if !b.Lookup(v) {
					return false
				}
			}
		}
		return b.PendingInvalidations() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
