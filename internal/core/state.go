package core

import (
	"idyll/internal/checkpoint"
	"idyll/internal/memdef"
	"sort"
)

// Checkpoint support. The IRMB carries its merged entries verbatim in MRU
// order (both the LRU replacement and the offset insertion order are
// behaviour-visible). Directories: broadcast is stateless; the in-PTE
// directory's state lives in the host page table's Aux bits (serialized with
// that table by the driver) plus one counter; the VM-Table directory owns a
// map and a VM-Cache of its own.

// SaveState writes the IRMB's entries (MRU first, offsets in insertion
// order) and counters to w.
func (b *IRMB) SaveState(w *checkpoint.Writer) {
	w.Int(b.maxEntries)
	w.Int(b.offsetsPerEntry)
	w.U32(uint32(len(b.entries)))
	for _, e := range b.entries {
		w.U64(e.base)
		w.U32(uint32(len(e.offsets)))
		for _, o := range e.offsets {
			w.U16(o)
		}
	}
	w.U64(b.inserts)
	w.U64(b.mergeHits)
	w.U64(b.evictions)
	w.U64(b.lookups)
	w.U64(b.lookupHits)
	w.U64(b.removed)
}

// RestoreState reads the state written by SaveState into b, which must be an
// empty IRMB of the same geometry.
func (b *IRMB) RestoreState(r *checkpoint.Reader) {
	if n := r.Int(); n != b.maxEntries {
		r.Failf("core: IRMB with %d bases in checkpoint, %d configured", n, b.maxEntries)
		return
	}
	if n := r.Int(); n != b.offsetsPerEntry {
		r.Failf("core: IRMB with %d offsets/entry in checkpoint, %d configured", n, b.offsetsPerEntry)
		return
	}
	n := r.Count(12)
	if n > b.maxEntries {
		r.Failf("core: IRMB checkpoint holds %d entries, max %d", n, b.maxEntries)
		return
	}
	b.entries = b.entries[:0]
	for i := 0; i < n; i++ {
		e := &mergedEntry{base: r.U64()}
		no := r.Count(2)
		if no > b.offsetsPerEntry {
			r.Failf("core: IRMB entry holds %d offsets, max %d", no, b.offsetsPerEntry)
			return
		}
		for j := 0; j < no; j++ {
			e.offsets = append(e.offsets, r.U16())
		}
		b.entries = append(b.entries, e)
	}
	b.inserts = r.U64()
	b.mergeHits = r.U64()
	b.evictions = r.U64()
	b.lookups = r.U64()
	b.lookupHits = r.U64()
	b.removed = r.U64()
}

// SaveState writes the in-PTE directory's residual state: only the
// false-target counter — the access bits themselves ride in the host page
// table's Aux bits.
func (d *InPTEDirectory) SaveState(w *checkpoint.Writer) {
	w.U64(d.falseTargets)
}

// RestoreState reads the state written by SaveState.
func (d *InPTEDirectory) RestoreState(r *checkpoint.Reader) {
	d.falseTargets = r.U64()
}

// SaveState writes the VM-Table (sorted by VPN), the VM-Cache contents in
// recency order, and the lookup counters.
func (d *VMDirectory) SaveState(w *checkpoint.Writer) {
	vpns := make([]memdef.VPN, 0, len(d.table))
	for vpn := range d.table {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		w.U64(uint64(vpn))
		w.U32(d.table[vpn])
	}
	d.vmCache.SaveState(w, func(w *checkpoint.Writer, vpn memdef.VPN, mask uint32) {
		w.U64(uint64(vpn))
		w.U32(mask)
	})
	w.U64(d.lookups)
	w.U64(d.hits)
}

// RestoreState reads the state written by SaveState into d, which must be
// freshly constructed.
func (d *VMDirectory) RestoreState(r *checkpoint.Reader) {
	n := r.Count(12)
	clear(d.table)
	for i := 0; i < n; i++ {
		vpn := memdef.VPN(r.U64())
		d.table[vpn] = r.U32()
	}
	d.vmCache.RestoreState(r, func(r *checkpoint.Reader) (memdef.VPN, uint32) {
		vpn := memdef.VPN(r.U64())
		return vpn, r.U32()
	})
	d.lookups = r.U64()
	d.hits = r.U64()
}
