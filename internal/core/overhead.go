package core

// Hardware-overhead arithmetic of §6.2–§6.4, reproduced exactly so the
// paper's cost claims are checkable in tests.

// AccessBitPosition returns the host-PTE bit used as GPU gpu's access bit
// under the in-PTE directory's modular hash: h(GPUid) = GPUid % m + 52
// (Figure 8). m is the number of unused bits used for access bits (11 in
// the default design, 4 in the §7.2 sensitivity study).
func AccessBitPosition(gpu, m int) int {
	if m <= 0 {
		panic("core: non-positive unused-bit count")
	}
	return gpu%m + 52
}

// MaxUnusedPTEBits is the total number of unused bits in the 4 KB-page PTE
// format: bits 62–52 (11 bits) plus bits 11–9 (3 bits), §6.2.
const MaxUnusedPTEBits = 14

// VMTableEntryBytes is the size of one VM-Table entry: 45-bit VPN + 19 GPU
// access bits = 64 bits (§6.4).
const VMTableEntryBytes = 8

// VMTableBytes returns the VM-Table size for an application whose memory
// footprint is footprintBytes, per §6.4: one 8-byte entry per 4 KB page,
// i.e. footprint/2^12 × 8 = footprint/2^9 — 0.2% of the footprint.
func VMTableBytes(footprintBytes uint64) uint64 {
	return footprintBytes >> 9
}

// VMCacheBytes is the hardware cost of the 64-entry VM-Cache: each entry
// holds a 41-bit VPN tag and 19 access bits, (41+19) × 64 / 8 = 480 bytes
// (§6.4).
func VMCacheBytes() int { return (41 + 19) * 64 / 8 }
