// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (BenchmarkFigNN...), each reporting the experiment's headline
// number as a custom metric, plus micro-benchmarks of the core structures.
//
// The figure benchmarks run at a reduced scale so `go test -bench=.` stays
// tractable; `cmd/idyllbench` regenerates the full-scale tables.
package idyll_test

import (
	"testing"

	"idyll"
	"idyll/internal/checkpoint/store"
	"idyll/internal/core"
	"idyll/internal/experiment"
	"idyll/internal/memdef"
	"idyll/internal/sim"
)

// benchOptions is the reduced scale for benchmark runs. Jobs is pinned to 1
// so the per-figure benchmarks keep measuring simulator cost, not pool
// scheduling; BenchmarkSuiteFig11Parallel measures the runner's scaling.
func benchOptions() experiment.Options {
	o := experiment.DefaultOptions()
	o.CUsPerGPU = 8
	o.AccessesPerCU = 300
	o.Jobs = 1
	return o
}

// benchFigure runs one registry experiment per benchmark iteration and
// reports the value at (row, "Ave.") as a custom metric.
func benchFigure(b *testing.B, id, row, metric string) {
	b.Helper()
	o := benchOptions()
	e, err := experiment.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var headline float64
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		v, err := tab.Get(row, "Ave.")
		if err != nil {
			// Single-column tables (Table 2) have no Ave.
			v = tab.Rows[0].Values[0]
		}
		headline = v
	}
	b.ReportMetric(headline, metric)
}

func BenchmarkFig01InvalidationOverhead(b *testing.B) {
	benchFigure(b, "fig1", "Invalidation overhead", "overhead-frac")
}

func BenchmarkFig02MigrationPolicies(b *testing.B) {
	benchFigure(b, "fig2", "Zero-Latency Invalidation", "zero-latency-speedup")
}

func BenchmarkTable3MPKI(b *testing.B) {
	benchFigure(b, "table3", "Measured MPKI", "mean-mpki")
}

func BenchmarkFig04Sharing(b *testing.B) {
	benchFigure(b, "fig4", "Shared by 4", "shared-by-4-frac")
}

func BenchmarkFig05RequestMix(b *testing.B) {
	benchFigure(b, "fig5", "Unnecessary invalidation", "unnecessary-frac")
}

func BenchmarkFig06DemandLatency(b *testing.B) {
	benchFigure(b, "fig6", "Eliminating invalidation (rel.)", "relative-latency")
}

func BenchmarkFig07MigrationWait(b *testing.B) {
	benchFigure(b, "fig7", "Waiting fraction", "wait-frac")
}

func BenchmarkFig11Overall(b *testing.B) {
	benchFigure(b, "fig11", "IDYLL", "idyll-speedup")
}

func BenchmarkFig12DemandLatency(b *testing.B) {
	benchFigure(b, "fig12", "Relative", "relative-latency")
}

func BenchmarkFig13Invalidation(b *testing.B) {
	benchFigure(b, "fig13", "Total latency", "relative-latency")
}

func BenchmarkFig14MigrationWait(b *testing.B) {
	benchFigure(b, "fig14", "Relative", "relative-wait")
}

func BenchmarkFig15IRMBSize(b *testing.B) {
	benchFigure(b, "fig15", "(32,16)", "default-geometry-speedup")
}

func BenchmarkFig16PTWThreads(b *testing.B) {
	benchFigure(b, "fig16", "16 threads", "idyll-speedup")
}

func BenchmarkFig17L2TLB(b *testing.B) {
	benchFigure(b, "fig17", "IDYLL", "idyll-speedup")
}

func BenchmarkFig18GPUCount(b *testing.B) {
	benchFigure(b, "fig18", "8-GPU", "idyll-speedup")
}

func BenchmarkFig19UnusedBits(b *testing.B) {
	benchFigure(b, "fig19", "8-GPU", "idyll-speedup")
}

func BenchmarkFig20Threshold(b *testing.B) {
	benchFigure(b, "fig20", "512 IDYLL", "idyll-speedup")
}

func BenchmarkFig21LargePages(b *testing.B) {
	benchFigure(b, "fig21", "IDYLL (2MB pages)", "idyll-speedup")
}

func BenchmarkFig22Replication(b *testing.B) {
	benchFigure(b, "fig22", "IDYLL vs replication", "idyll-speedup")
}

func BenchmarkFig23TransFW(b *testing.B) {
	benchFigure(b, "fig23", "IDYLL+Trans-FW", "combined-speedup")
}

func BenchmarkFig24DNN(b *testing.B) {
	benchFigure(b, "fig24", "IDYLL", "idyll-speedup")
}

func BenchmarkAblationDrainOnIdle(b *testing.B) {
	benchFigure(b, "ablation-drain", "Drain on idle (default)", "idyll-speedup")
}

// BenchmarkSuiteFig11Serial and BenchmarkSuiteFig11Parallel regenerate the
// headline figure's 54-cell matrix serially (-jobs=1) and on a full-width
// pool (-jobs=0, all cores); the ratio of their wall times is the suite
// runner's speedup on this machine. Output is byte-identical either way.
func BenchmarkSuiteFig11Serial(b *testing.B) {
	benchSuiteFig11(b, 1, 0)
}

func BenchmarkSuiteFig11Parallel(b *testing.B) {
	benchSuiteFig11(b, 0, 0)
}

// BenchmarkSuiteFig11PDES8 runs the same matrix with cells serialized
// (-jobs=1) but each cell's event loop on the 8-worker parallel engine
// (-par=8): its ratio against BenchmarkSuiteFig11Serial is the PDES core's
// single-simulation speedup. Output is byte-identical to the serial engine.
func BenchmarkSuiteFig11PDES8(b *testing.B) {
	benchSuiteFig11(b, 1, 8)
}

func benchSuiteFig11(b *testing.B, jobs, par int) {
	o := benchOptions()
	o.Jobs = jobs
	o.Par = par
	var headline float64
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure11(o)
		if err != nil {
			b.Fatal(err)
		}
		headline, _ = tab.Get("IDYLL", "Ave.")
	}
	b.ReportMetric(headline, "idyll-speedup")
}

// BenchmarkSuiteFig11Warmup and BenchmarkSuiteFig11Checkpointed regenerate
// the headline matrix with a warmup drain barrier at 80% of the trace
// (-warmup). Warmup runs the two-phase schedule straight through every time;
// Checkpointed forks each cell's warmup from a pre-populated checkpoint
// store, so each regeneration simulates only the post-warmup remainder —
// the repeated-sweep case the store exists for (parameter studies, idylld
// re-submissions). Their wall-clock ratio is the warmup-sharing speedup;
// both render byte-identical tables (CI-enforced).
func BenchmarkSuiteFig11Warmup(b *testing.B) {
	benchSuiteFig11Warmup(b, nil)
}

func BenchmarkSuiteFig11Checkpointed(b *testing.B) {
	st := store.New(128, "")
	benchSuiteFig11Warmup(b, st)
}

func benchSuiteFig11Warmup(b *testing.B, st *store.Store) {
	o := benchOptions()
	o.WarmupAccessesPerCU = o.AccessesPerCU * 4 / 5
	o.CheckpointStore = st
	if st != nil {
		// Populate the store once outside the timed region: the benchmark
		// measures the steady state, where every cell's warmup is a cache hit.
		if _, err := experiment.Figure11(o); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
	}
	var headline float64
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure11(o)
		if err != nil {
			b.Fatal(err)
		}
		headline, _ = tab.Get("IDYLL", "Ave.")
	}
	b.ReportMetric(headline, "idyll-speedup")
}

// BenchmarkSimulatePageRank measures raw simulator throughput: simulated
// accesses per wall-clock second on the default IDYLL configuration.
func BenchmarkSimulatePageRank(b *testing.B) {
	app, err := idyll.App("PR")
	if err != nil {
		b.Fatal(err)
	}
	m := idyll.DefaultMachine()
	m.CUsPerGPU = 8
	m.AccessCounterThreshold = 2
	rc := idyll.RunConfig{AccessesPerCU: 300}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		st, err := idyll.Simulate(m, idyll.IDYLL(), app, rc)
		if err != nil {
			b.Fatal(err)
		}
		total += int(st.Accesses)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// Micro-benchmarks of the core hardware structures.

func BenchmarkIRMBInsertLookup(b *testing.B) {
	irmb := core.NewIRMB(core.DefaultGeometry)
	r := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vpn := memdef.VPN(r.Intn(1 << 14))
		irmb.Insert(vpn)
		irmb.Lookup(vpn)
	}
}

func BenchmarkEventEngine(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.VTime(i%64), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkZipfSampling(b *testing.B) {
	z := sim.NewZipf(sim.NewRand(3), 4096, 1.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Rank()
	}
}
