package idyll

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"idyll/internal/analysis"
)

// bannedCoreImports are the packages whose mere presence in a deterministic
// core import block breaks the contract idyllvet enforces (DESIGN.md "The
// determinism contract"). time is banned outright — even time.Duration:
// configuration surfaces that want duration knobs live in internal/config,
// which is outside the core set. This test is a deliberately cheap backstop
// for the full idyllvet pass: it runs with the ordinary unit tests, so even
// if the idyllvet CI job is skipped or broken, a wall-clock or concurrency
// import in the core still fails `go test ./...`.
var bannedCoreImports = map[string]string{
	"time":         "core time is virtual (sim.VTime); wall-clock use breaks byte-identical replay",
	"sync":         "the core is single-threaded by contract; concurrency belongs to experiment/service",
	"sync/atomic":  "the core is single-threaded by contract; concurrency belongs to experiment/service",
	"math/rand":    "core randomness must come from the seeded sim.Rand",
	"math/rand/v2": "core randomness must come from the seeded sim.Rand",
}

// concurrencyBoundaryAllowed are the bans lifted — only — for the parallel
// engine's synchronization layer (analysis.ConcurrencyBoundary): its barrier
// protocol is built from sync and sync/atomic, while the wall-clock and
// global-rand bans still bind it like any other core package.
var concurrencyBoundaryAllowed = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// TestCoreImportsStayDeterministic parses only the import clauses of every
// non-test file in every core package — no type-checking, so it stays fast
// enough to never be worth skipping.
func TestCoreImportsStayDeterministic(t *testing.T) {
	fset := token.NewFileSet()
	for _, rel := range analysis.CorePackages {
		dir := filepath.FromSlash(rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("core package %s listed in analysis.CorePackages cannot be read: %v", rel, err)
		}
		checked := 0
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			checked++
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if rel == analysis.ConcurrencyBoundary && concurrencyBoundaryAllowed[ipath] {
					continue
				}
				if why, banned := bannedCoreImports[ipath]; banned {
					pos := fset.Position(imp.Pos())
					t.Errorf("%s:%d imports %q: %s", path, pos.Line, ipath, why)
				}
			}
		}
		if checked == 0 {
			t.Errorf("core package %s has no non-test Go files; fix analysis.CorePackages", rel)
		}
	}
}
