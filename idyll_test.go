package idyll_test

import (
	"testing"

	"idyll"
)

func TestQuickstartFlow(t *testing.T) {
	app, err := idyll.App("PR")
	if err != nil {
		t.Fatal(err)
	}
	m := idyll.DefaultMachine()
	m.CUsPerGPU = 4
	m.AccessCounterThreshold = 2
	rc := idyll.RunConfig{AccessesPerCU: 200, Check: true}
	base, err := idyll.Simulate(m, idyll.Baseline(), app, rc)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := idyll.Simulate(m, idyll.IDYLL(), app, rc)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Speedup(base) <= 1.0 {
		t.Fatalf("IDYLL speedup on PR = %.2f, want >1", opt.Speedup(base))
	}
}

func TestAppsCoverTable3(t *testing.T) {
	if len(idyll.Apps()) != 9 {
		t.Fatalf("Apps() returned %d entries, want 9", len(idyll.Apps()))
	}
	for _, abbr := range []string{"MT", "MM", "PR", "ST", "SC", "KM", "IM", "C2D", "BS", "VGG16", "ResNet18"} {
		if _, err := idyll.App(abbr); err != nil {
			t.Errorf("App(%q): %v", abbr, err)
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	o := idyll.DefaultExperimentOptions()
	o.CUsPerGPU, o.AccessesPerCU = 4, 150
	o.Apps = []string{"KM"}
	tab, err := idyll.Experiment("fig5", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fig5 has %d rows", len(tab.Rows))
	}
	if _, err := idyll.Experiment("fig99", o); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(idyll.Experiments()) < 20 {
		t.Fatal("experiment registry too small")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	app, _ := idyll.App("ST")
	tr := idyll.GenerateTrace(app, 2, 3, 50, 7)
	if tr.TotalAccesses() != 2*3*50 {
		t.Fatalf("trace has %d accesses", tr.TotalAccesses())
	}
}

func TestNewSystemDirectUse(t *testing.T) {
	m := idyll.DefaultMachine()
	m.CUsPerGPU = 2
	m.AccessCounterThreshold = 2
	sys, err := idyll.NewSystem(m, idyll.IDYLL())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := idyll.App("KM")
	tr := idyll.GenerateTrace(app, m.NumGPUs, m.CUsPerGPU, 100, 3)
	st, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCycles == 0 {
		t.Fatal("no execution recorded")
	}
}
