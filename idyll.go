// Package idyll is a from-scratch reproduction of "IDYLL: Enhancing Page
// Translation in Multi-GPUs via Light Weight PTE Invalidations" (Li et al.,
// MICRO 2023): an event-driven multi-GPU address-translation simulator with
// the paper's two mechanisms — the in-PTE invalidation directory and lazy
// invalidation via the Invalidation Request Merging Buffer (IRMB) — plus
// every baseline and comparison point of its evaluation.
//
// This package is the public facade. A minimal run:
//
//	app, _ := idyll.App("PR")
//	machine := idyll.DefaultMachine()
//	base, _ := idyll.Simulate(machine, idyll.Baseline(), app, idyll.RunConfig{})
//	opt, _ := idyll.Simulate(machine, idyll.IDYLL(), app, idyll.RunConfig{})
//	fmt.Printf("IDYLL speedup on PageRank: %.2fx\n", opt.Speedup(base))
//
// The full evaluation regenerates via the experiment suite:
//
//	table, _ := idyll.Experiment("fig11", idyll.DefaultExperimentOptions())
//	fmt.Println(table.Render())
//
// Lower-level building blocks (the event engine, TLBs, page tables, GMMU,
// UVM driver, interconnect, IRMB, directories) live in internal/ packages
// and are documented there; see DESIGN.md for the system inventory.
package idyll

import (
	"idyll/internal/config"
	"idyll/internal/core"
	"idyll/internal/experiment"
	"idyll/internal/stats"
	"idyll/internal/system"
	"idyll/internal/workload"
)

// Machine is the simulated hardware configuration (the paper's Table 2).
type Machine = config.Machine

// Scheme is one design point of the evaluation matrix.
type Scheme = config.Scheme

// Stats is the measurement set produced by one simulation run.
type Stats = stats.Sim

// Workload describes an application's trace generator (Table 3 entries).
type Workload = workload.Params

// Trace is a generated multi-GPU access trace.
type Trace = workload.Trace

// System is an assembled machine instance (advanced use; Simulate covers
// the common case).
type System = system.System

// Table is a rendered experiment result (one paper table or figure).
type Table = experiment.Table

// ExperimentOptions sets the scale of the experiment suite and the width
// of its concurrent cell pool (Jobs; 0 = all cores). Regenerated tables
// are byte-identical at any Jobs width.
type ExperimentOptions = experiment.Options

// IRMBGeometry is an IRMB configuration (bases × offsets).
type IRMBGeometry = core.Geometry

// DefaultMachine returns the paper's Table 2 configuration: 4 GPUs, 64 CUs
// each, 4 KB pages, access-counter migration.
func DefaultMachine() Machine { return config.Default() }

// Scheme constructors, mirroring the paper's evaluation matrix.
var (
	// Baseline is counter-based migration with broadcast invalidations.
	Baseline = config.Baseline
	// OnlyLazy enables just the IRMB (§6.3).
	OnlyLazy = config.OnlyLazy
	// OnlyInPTE enables just the in-PTE directory (§6.2).
	OnlyInPTE = config.OnlyInPTE
	// IDYLL is the full design.
	IDYLL = config.IDYLL
	// IDYLLInMem uses the VM-Table directory (§6.4).
	IDYLLInMem = config.IDYLLInMem
	// ZeroLatency is the free-invalidation ideal.
	ZeroLatency = config.ZeroLatency
	// FirstTouch pins pages where first touched.
	FirstTouch = config.FirstTouchScheme
	// OnTouch migrates on every remote fault.
	OnTouch = config.OnTouchScheme
	// Replication replicates read-shared pages (§7.4).
	Replication = config.ReplicationScheme
	// TransFW is the HPCA'23 comparison point (§7.5).
	TransFW = config.TransFWScheme
	// IDYLLTransFW combines IDYLL with Trans-FW.
	IDYLLTransFW = config.IDYLLTransFW
)

// App returns a Table 3 application (or a §7.6 DNN workload) by
// abbreviation: MT, MM, PR, ST, SC, KM, IM, C2D, BS, VGG16, ResNet18.
func App(abbr string) (Workload, error) { return workload.App(abbr) }

// Apps returns all nine Table 3 applications.
func Apps() []Workload { return workload.Apps() }

// GenerateTrace builds a deterministic multi-GPU trace for a workload.
func GenerateTrace(w Workload, numGPUs, cusPerGPU, accessesPerCU int, seed uint64) *Trace {
	return workload.Generate(w, numGPUs, cusPerGPU, accessesPerCU, seed)
}

// RunConfig tunes a Simulate call. Zero values select sensible defaults.
type RunConfig struct {
	// CUsPerGPU overrides the machine's CU count (0 = machine default).
	CUsPerGPU int
	// AccessesPerCU is the trace length per CU (0 = 600).
	AccessesPerCU int
	// Seed is the workload seed (0 = the suite default).
	Seed uint64
	// Check enables the online translation-coherence checker.
	Check bool
	// Par runs the simulation on the parallel event engine with this many
	// worker goroutines (values below 2 run serially). A pure execution
	// knob: results are byte-identical at any setting.
	Par int
}

// Simulate builds a system, generates the workload's trace, runs it to
// completion, and returns the measurements.
func Simulate(m Machine, s Scheme, w Workload, rc RunConfig) (*Stats, error) {
	if rc.CUsPerGPU > 0 {
		m.CUsPerGPU = rc.CUsPerGPU
	}
	if rc.AccessesPerCU == 0 {
		rc.AccessesPerCU = 600
	}
	if rc.Seed == 0 {
		rc.Seed = 20231028
	}
	sys, err := system.New(m, s)
	if err != nil {
		return nil, err
	}
	sys.CheckTranslations = rc.Check
	sys.ParWorkers = rc.Par
	trace := workload.Generate(w, m.NumGPUs, m.CUsPerGPU, rc.AccessesPerCU, rc.Seed)
	return sys.Run(trace)
}

// NewSystem assembles a machine without running it, for callers that want
// to drive the simulation directly (custom traces, mid-run inspection).
func NewSystem(m Machine, s Scheme) (*System, error) { return system.New(m, s) }

// DefaultExperimentOptions is the scale used to regenerate the paper's
// tables and figures (see EXPERIMENTS.md for the calibration notes).
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// Experiment regenerates one paper table or figure by ID ("fig1".."fig24",
// "table2", "table3", "ablation-drain"). The figure's simulation cells run
// concurrently on a pool of o.Jobs workers (0 = all cores) with output
// independent of the pool width.
func Experiment(id string, o ExperimentOptions) (*Table, error) {
	e, err := experiment.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// Experiments lists the regenerable experiment IDs with descriptions.
func Experiments() map[string]string {
	out := make(map[string]string)
	for _, e := range experiment.Registry() {
		out[e.ID] = e.Notes
	}
	return out
}
