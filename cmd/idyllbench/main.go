// Command idyllbench regenerates the paper's evaluation: every table and
// figure of the IDYLL paper (MICRO'23), printed as text tables in the same
// row/column layout as the plots.
//
// Simulation cells (one (scheme, application) run each) fan out across a
// bounded worker pool; tables on stdout are byte-identical at any -jobs
// width, so output can be diffed across runs and machines. Progress and
// timing go to stderr.
//
// Usage:
//
//	idyllbench                 # regenerate everything, all cores
//	idyllbench -jobs 1         # serial (same output, slower)
//	idyllbench -fig fig11      # one experiment
//	idyllbench fig11 fig12     # same, positional (unknown IDs exit non-zero)
//	idyllbench -list           # list experiment IDs
//	idyllbench -cus 8 -accesses 300   # smaller scale
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idyll/internal/checkpoint/store"
	"idyll/internal/experiment"
	"idyll/internal/profiling"
)

func main() {
	var (
		fig      = flag.String("fig", "", "run a single experiment by ID (e.g. fig11)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		cus      = flag.Int("cus", 0, "CUs per GPU (default: suite default)")
		accesses = flag.Int("accesses", 0, "accesses per CU (default: suite default)")
		seed     = flag.Uint64("seed", 0, "workload seed (default: suite default)")
		appsFlag = flag.String("apps", "", "comma-separated app subset (default: all)")
		format   = flag.String("format", "text", "output format: text, csv, json")
		jobs     = flag.Int("jobs", 0, "concurrent simulation cells (0 = all cores)")
		par      = flag.Int("par", 0, "parallel-engine workers per cell (<2 = serial engine; results identical)")
		warmup   = flag.Int("warmup", 0, "warmup accesses per CU before the drain barrier (0 = single-phase run; changes results)")
		ckptDir  = flag.String("ckpt-dir", "", "persist warmup checkpoints to this directory (with -warmup; empty = memory only)")
		quiet    = flag.Bool("quiet", false, "suppress the stderr progress display")
		prof     profiling.Flags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "idyllbench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "idyllbench:", err)
		}
	}()

	if *list {
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Notes)
		}
		return
	}

	o := experiment.DefaultOptions()
	if *cus > 0 {
		o.CUsPerGPU = *cus
	}
	if *accesses > 0 {
		o.AccessesPerCU = *accesses
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *appsFlag != "" {
		o.Apps = splitCSV(*appsFlag)
	}
	o.Jobs = *jobs
	o.Par = *par
	// The drain barrier is semantic (see experiment.Options), so tables at
	// -warmup N differ from the default single-phase tables. The store is an
	// execution knob: with -ckpt-dir, cells fork from cached warmup
	// checkpoints (byte-identical to the two-phase straight-line run, which
	// an empty -ckpt-dir keeps; CI diffs the two).
	o.WarmupAccessesPerCU = *warmup
	if *warmup > 0 && *ckptDir != "" {
		o.CheckpointStore = store.New(64, *ckptDir)
	}

	// Ctrl-C / SIGTERM cancels the suite cooperatively: workers stop at
	// their next event-loop batch instead of running their cell to the end.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	o = o.WithContext(ctx)

	// Figure IDs come from -fig and/or positional arguments; every ID must
	// resolve, and an unknown one exits non-zero naming the valid set
	// (positional IDs used to be ignored silently, regenerating everything).
	ids := flag.Args()
	if *fig != "" {
		ids = append([]string{*fig}, ids...)
	}
	entries := experiment.Registry()
	if len(ids) > 0 {
		entries = entries[:0]
		for _, id := range ids {
			e, err := experiment.Find(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "idyllbench:", err)
				os.Exit(1)
			}
			entries = append(entries, e)
		}
	}

	start := time.Now()
	for _, e := range entries {
		t0 := time.Now()
		if !*quiet {
			o.Progress = experiment.ProgressPrinter(os.Stderr, e.ID)
		}
		tab, err := e.Run(o)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "idyllbench: %s: interrupted\n", e.ID)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "idyllbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var body string
		switch *format {
		case "csv":
			body = tab.RenderCSV()
		case "json":
			body, err = tab.RenderJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "idyllbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		default:
			body = tab.Render()
		}
		// Tables go to stdout and depend only on (scale, seed, apps);
		// timing goes to stderr so runs diff cleanly.
		fmt.Printf("== %s ==\n%s\n", e.ID, body)
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", e.ID, time.Since(t0).Seconds())
	}
	fmt.Fprintf(os.Stderr, "regenerated %d experiments in %.1fs\n",
		len(entries), time.Since(start).Seconds())
}

func splitCSV(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		if r != ' ' {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
