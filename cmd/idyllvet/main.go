// idyllvet is the repository's determinism linter: a pure-stdlib static
// analysis pass that enforces the simulator core's determinism contract
// (virtual time only, seeded RNG only, no stray concurrency, no
// order-sensitive map iteration). See DESIGN.md "The determinism contract".
//
// Usage:
//
//	idyllvet [-checks walltime,maporder] [-list] [packages]
//
// Packages default to ./... and accept the go tool's "./dir/..." pattern
// syntax. Findings print as "file:line:col: [check] message" and any
// unsuppressed finding makes the tool exit 1; load or type-check failures
// exit 2. Suppress a reviewed exception with
//
//	//idyllvet:ignore <check>[,<check>...] <justification>
//
// on, or directly above, the offending line (ignore-file for a whole file).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"idyll/internal/analysis"
	"idyll/internal/analysis/checks"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		checksFlag = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		listFlag   = flag.Bool("list", false, "list available checks and exit")
		rootFlag   = flag.String("root", ".", "module root directory")
	)
	flag.Parse()

	analyzers := checks.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checksFlag != "" {
		var unknown string
		analyzers, unknown = checks.ByName(strings.Split(*checksFlag, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "idyllvet: unknown check %q (see idyllvet -list)\n", unknown)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*rootFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "idyllvet: no packages match %v\n", patterns)
		return 2
	}
	// Only packages an analyzer applies to need type information; parsing
	// alone is enough to ignore the rest, which keeps ./... runs cheap.
	for _, pkg := range pkgs {
		if analysis.NeedsTypes(analyzers, pkg) {
			if err := loader.TypeCheck(pkg); err != nil {
				fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
				return 2
			}
		}
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Position.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Position.Line, d.Position.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "idyllvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
