// idyllvet is the repository's determinism linter: a pure-stdlib static
// analysis pass that enforces the simulator core's determinism contract
// (virtual time only, seeded RNG only, no stray concurrency, no
// order-sensitive map iteration — transitively, over the whole static call
// graph) plus the service-layer operational contracts (integrity envelopes
// on every disk write, disk errors degrading to cache misses, the metric-
// key registry, mutex acquisition order). See DESIGN.md "The determinism
// contract".
//
// Usage:
//
//	idyllvet [-checks walltime,maporder] [-list] [-json] [-counts]
//	         [-baseline .idyllvet-baseline] [-write-baseline] [packages]
//
// Packages default to ./... and accept the go tool's "./dir/..." pattern
// syntax. Findings print as "file:line:col: [check] message" (or as SARIF
// 2.1.0 with -json) and any unsuppressed, unbaselined finding makes the
// tool exit 1; load or type-check failures exit 2. Suppress a reviewed
// exception with
//
//	//idyllvet:ignore <check>[,<check>...] <justification>
//
// on, or directly above, the offending line (ignore-file for a whole
// file). The baseline file (default .idyllvet-baseline at the module root,
// when present) grandfathers known findings by "path [check] message" —
// line numbers excluded so unrelated edits don't invalidate it; regenerate
// with -write-baseline and review the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"idyll/internal/analysis"
	"idyll/internal/analysis/checks"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		checksFlag   = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		listFlag     = flag.Bool("list", false, "list available checks and exit")
		rootFlag     = flag.String("root", ".", "module root directory")
		jsonFlag     = flag.Bool("json", false, "emit findings as SARIF 2.1.0 JSON on stdout")
		countsFlag   = flag.Bool("counts", false, "print per-check finding counts to stderr")
		baselineFlag = flag.String("baseline", ".idyllvet-baseline", "baseline file (module-root relative; ignored if absent)")
		writeFlag    = flag.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
	)
	flag.Parse()

	analyzers := checks.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checksFlag != "" {
		var unknown string
		analyzers, unknown = checks.ByName(strings.Split(*checksFlag, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "idyllvet: unknown check %q (see idyllvet -list)\n", unknown)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*rootFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "idyllvet: no packages match %v\n", patterns)
		return 2
	}
	diags, err := analysis.RunAll(analyzers, analysis.NewProgram(loader, pkgs))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}

	if *writeFlag {
		path := filepath.Join(loader.Root, *baselineFlag)
		if err := writeBaseline(path, loader.Root, diags); err != nil {
			fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "idyllvet: wrote %d finding(s) to %s\n", len(diags), path)
		return 0
	}

	baseline, err := readBaseline(filepath.Join(loader.Root, *baselineFlag))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
		return 2
	}
	var fresh []analysis.Diagnostic
	matched := make(map[string]bool)
	for _, d := range diags {
		key := baselineKey(loader.Root, d)
		if baseline[key] {
			matched[key] = true
			continue
		}
		fresh = append(fresh, d)
	}
	stale := make([]string, 0, len(baseline))
	for key := range baseline {
		if !matched[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		fmt.Fprintf(os.Stderr, "idyllvet: stale baseline entry (fixed? regenerate with -write-baseline): %s\n", key)
	}

	if *jsonFlag {
		if err := json.NewEncoder(os.Stdout).Encode(sarifReport(loader.Root, analyzers, fresh)); err != nil {
			fmt.Fprintf(os.Stderr, "idyllvet: %v\n", err)
			return 2
		}
	} else {
		cwd, _ := os.Getwd()
		for _, d := range fresh {
			file := d.Position.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Position.Line, d.Position.Column, d.Check, d.Message)
		}
	}
	if *countsFlag {
		printCounts(analyzers, fresh)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "idyllvet: %d finding(s)\n", len(fresh))
		return 1
	}
	return 0
}

// baselineKey renders a diagnostic in the line-number-free form baselines
// store: "module-relative/path [check] message". Dropping positions keeps
// the baseline stable across unrelated edits to the same file.
func baselineKey(root string, d analysis.Diagnostic) string {
	file := d.Position.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s [%s] %s", file, d.Check, d.Message)
}

// readBaseline parses a baseline file into its key set. A missing file is
// an empty baseline, not an error; blank lines and '#' comments are
// skipped.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, nil
}

// writeBaseline writes the current findings as a sorted baseline file with
// a self-describing header.
func writeBaseline(path, root string, diags []analysis.Diagnostic) error {
	keys := make([]string, 0, len(diags))
	seen := make(map[string]bool)
	for _, d := range diags {
		key := baselineKey(root, d)
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# idyllvet baseline: grandfathered findings, one \"path [check] message\" per line.\n")
	b.WriteString("# Regenerate with `go run ./cmd/idyllvet -write-baseline ./...` and review the diff;\n")
	b.WriteString("# every entry that stays must carry a justification in review, not here.\n")
	for _, key := range keys {
		b.WriteString(key)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// printCounts emits one "check: N" line per registered analyzer (zeros
// included, so a check silently matching nothing is visible) plus a total.
func printCounts(analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) {
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Check]++
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	// Directive misuse reports under the reserved "idyllvet" pseudo-check.
	if counts["idyllvet"] > 0 {
		names = append(names, "idyllvet")
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "idyllvet: %-15s %d\n", name, counts[name])
	}
	fmt.Fprintf(os.Stderr, "idyllvet: total %d finding(s)\n", len(diags))
}

// --- SARIF 2.1.0 (the minimal subset GitHub code scanning accepts) ---

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string    `json:"id"`
	Desc sarifText `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifReport(root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) sarifLog {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, Desc: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Position.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = filepath.ToSlash(rel)
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: uri},
				Region:   sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "idyllvet", Rules: rules}}, Results: results}},
	}
}
