// Command idylltrace generates, inspects, and replays workload traces.
// Saving a generated trace lets every scheme of an experiment run the
// byte-identical access stream, and gives external tools a way to feed
// their own traces into the simulator.
//
//	idylltrace gen -app PR -out pr.trace              # generate + save
//	idylltrace info pr.trace                          # summarize
//	idylltrace run -scheme idyll pr.trace             # simulate a file
//	idylltrace run -scheme all -jobs 4 pr.trace       # scheme sweep, parallel
//
// With a comma-separated -scheme list (or "all"), the schemes run
// concurrently on the suite's worker pool, all replaying the same loaded
// trace; summaries print in the order the schemes were named.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"idyll/internal/checkpoint/store"
	"idyll/internal/config"
	"idyll/internal/experiment"
	"idyll/internal/memdef"
	"idyll/internal/profiling"
	"idyll/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  idylltrace gen  -app <abbr> [-gpus N] [-cus N] [-accesses N] [-seed N] -out FILE
  idylltrace info FILE
  idylltrace run  [-scheme NAME[,NAME...]|all] [-threshold N] [-jobs N] [-warmup N [-ckpt-dir DIR]] FILE`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	app := fs.String("app", "PR", "application abbreviation")
	gpus := fs.Int("gpus", 4, "GPUs")
	cus := fs.Int("cus", 16, "CUs per GPU")
	accesses := fs.Int("accesses", 600, "accesses per CU")
	seed := fs.Uint64("seed", 20231028, "seed")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	p, err := workload.App(*app)
	fatal(err)
	trace := workload.Generate(p, *gpus, *cus, *accesses, *seed)
	f, err := os.Create(*out)
	fatal(err)
	defer f.Close()
	fatal(trace.Save(f))
	fmt.Printf("wrote %s: %s on %d GPUs, %d accesses\n",
		*out, p.Abbr, trace.NumGPUs, trace.TotalAccesses())
}

func loadTrace(path string) *workload.Trace {
	f, err := os.Open(path)
	fatal(err)
	defer f.Close()
	t, err := workload.ReadTrace(f)
	fatal(err)
	return t
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := loadTrace(fs.Arg(0))
	writes := 0
	pages := map[memdef.VPN]bool{}
	for _, gpu := range t.Accesses {
		for _, cu := range gpu {
			for _, a := range cu {
				if a.Write {
					writes++
				}
				pages[memdef.PageNum(a.VA, memdef.Page4K)] = true
			}
		}
	}
	total := t.TotalAccesses()
	fmt.Printf("name:        %s\n", t.Params.Abbr)
	fmt.Printf("gpus:        %d\n", t.NumGPUs)
	fmt.Printf("cus/gpu:     %d\n", len(t.Accesses[0]))
	fmt.Printf("accesses:    %d (%.1f%% writes)\n", total, float64(writes)/float64(total)*100)
	fmt.Printf("4KB pages:   %d (%.1f MB footprint)\n", len(pages), float64(len(pages))*4/1024)
	fmt.Printf("issue shape: gap=%d cy, instr/access=%d\n",
		t.Params.ComputeGap, t.Params.InstrPerAccess)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	schemeNames := fs.String("scheme", "idyll",
		"scheme, comma-separated scheme list, or 'all'")
	threshold := fs.Int("threshold", 2, "access-counter threshold")
	jobs := fs.Int("jobs", 0, "concurrent scheme runs (0 = all cores)")
	par := fs.Int("par", 0, "parallel-engine workers per run (<2 = serial engine; results identical)")
	warmup := fs.Int("warmup", 0, "warmup accesses per CU before the drain barrier (0 = single-phase run; changes results)")
	ckptDir := fs.String("ckpt-dir", "", "cache warmup checkpoints (with -warmup): schemes sharing a warmup fork from it; empty string keeps the per-run two-phase path")
	quiet := fs.Bool("quiet", false, "suppress the stderr progress display")
	engineStats := fs.Bool("enginestats", false,
		"also print the event engine's internal counters per scheme")
	var prof profiling.Flags
	prof.Register(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	stopProf, err := prof.Start()
	fatal(err)
	defer func() { fatal(stopProf()) }()
	t := loadTrace(fs.Arg(0))
	names := *schemeNames
	if names == "all" {
		names = strings.Join(config.SchemeNames(), ",")
	}
	m := config.Default()
	m.AccessCounterThreshold = *threshold // trace geometry is set per cell

	// Each scheme is one cell of the pool; every cell replays the same
	// loaded trace (read-only during runs), so the sweep parallelizes
	// without re-reading or regenerating anything.
	o := experiment.Options{Jobs: *jobs, Par: *par, CounterThreshold: *threshold,
		WarmupAccessesPerCU: *warmup}
	if *warmup > 0 && *ckptDir != "" {
		// Fork-from-checkpoint replays byte-identically to the two-phase
		// straight-line run (CI diffs the two), so the store only changes
		// wall-clock: a repeated sweep reloads its warmup state from disk.
		o.CheckpointStore = store.New(64, *ckptDir)
	}
	if !*quiet {
		o.Progress = experiment.ProgressPrinter(os.Stderr, t.Params.Abbr)
	}
	var specs []experiment.CellSpec
	var schemes []config.Scheme
	for _, name := range strings.Split(names, ",") {
		scheme, err := config.SchemeByName(name)
		fatal(err)
		schemes = append(schemes, scheme)
		specs = append(specs, experiment.CellSpec{
			Figure: "trace", App: t.Params.Abbr,
			Machine: m, Scheme: scheme, Trace: t,
		})
	}
	res, err := experiment.RunCells(o, specs)
	fatal(err)
	for i, st := range res {
		if len(res) > 1 {
			fmt.Printf("== %s ==\n", schemes[i].Name)
		}
		fmt.Println(st.Summary())
		if *engineStats {
			fmt.Printf("engine: events=%d bucket=%.1f%% (ring=%d heap=%d migrated=%d) "+
				"cancelled=%d pool-hits=%d\n",
				st.EngineEvents, st.EngineBucketFraction()*100,
				st.EngineRingScheduled, st.EngineFarScheduled, st.EngineMigrated,
				st.EngineCancelled, st.EnginePoolHits)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "idylltrace:", err)
		os.Exit(1)
	}
}
